"""Setuptools shim so ``pip install -e .`` works without network access.

The sandboxed environment has no ``wheel`` package, which the PEP 660
editable path requires; keeping a ``setup.py`` lets pip fall back to the
legacy ``setup.py develop`` editable install. All metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
