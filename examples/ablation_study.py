#!/usr/bin/env python3
"""The Section 4.1 methodology, end to end: hardware ablation study plus
fleetwide profiling, surfacing the software-prefetch targets.

Builds two paired fleets (control: prefetchers on; experiment: off),
profiles both with the sampling fleet profiler, diffs the per-function
profiles, and feeds them to the target-identification pipeline — which
selects exactly the data center tax functions.

Run:  python examples/ablation_study.py
"""

from repro import identify_targets
from repro.core.soft.targets import selected_functions
from repro.fleet import AblationStudy


def main() -> None:
    print("running paired control/experiment fleets (prefetchers on/off)…")
    study = AblationStudy(mode="off", machines=20, epochs=60,
                          warmup_epochs=20, seed=11)
    result = study.run()

    bandwidth = result.bandwidth_reduction()
    latency = result.latency_reduction()
    print("\nfleet-level effect of disabling hardware prefetchers")
    print(f"  socket bandwidth : {bandwidth['mean']:+.1%} mean, "
          f"{bandwidth['p99']:+.1%} P99, {bandwidth['peak']:+.1%} peak")
    print(f"  memory latency   : {latency['p50']:+.1%} P50, "
          f"{latency['p99']:+.1%} P99")
    print(f"  app throughput   : {result.throughput_change():+.1%}")

    print("\nper-function profile deltas (experiment vs control)")
    cycles = result.function_cycle_deltas()
    mpki = result.function_mpki_deltas()
    print(f"  {'function':16} {'Δcycles':>9} {'ΔMPKI':>9}")
    for name in sorted(cycles, key=cycles.get, reverse=True):
        print(f"  {name:16} {cycles[name]:+9.1%} {mpki.get(name, 0):+9.1%}")

    selections = identify_targets(result.control_profile.as_mapping(),
                                  result.experiment_profile.as_mapping())
    targets = selected_functions(selections)
    print("\nselected software-prefetch targets:", ", ".join(targets))
    print("(every target is a data center tax function:",
          all(s.is_tax for s in selections if s.selected), ")")


if __name__ == "__main__":
    main()
