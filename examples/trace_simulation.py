#!/usr/bin/env python3
"""Run memory traces through the cycle-level simulator directly.

Shows the three regimes the paper reasons about, on a single memcpy:

1. hardware prefetchers ON  — low MPKI, extra DRAM traffic;
2. hardware prefetchers OFF — MPKI explodes, memcpy crawls;
3. OFF + Soft Limoncello    — software prefetches recover the MPKI with
   far less traffic than the hardware prefetchers burned.

Run:  python examples/trace_simulation.py
"""

from repro import MemoryHierarchy, PrefetchDescriptor, SoftwarePrefetchInjector
from repro.memsys import PrefetcherBank, default_prefetcher_bank
from repro.units import KB
from repro.workloads import memcpy_trace


def simulate(label, trace, hardware_on):
    bank = default_prefetcher_bank() if hardware_on else PrefetcherBank([])
    hierarchy = MemoryHierarchy(prefetchers=bank)
    result = hierarchy.run(trace)
    stats = result.total
    print(f"{label:24} {result.elapsed_ns:10.0f} ns   "
          f"MPKI {stats.llc_mpki:7.2f}   "
          f"DRAM fills {result.dram_total_fills:5d} "
          f"(prefetch {result.dram_prefetch_fills:5d})   "
          f"covered {stats.prefetch_covered:5d}")
    return result


def main() -> None:
    size = 256 * KB
    plain = memcpy_trace(src=0x10_0000, dst=0x90_0000, size=size)

    # Soft Limoncello's production memcpy descriptor: 512B ahead, 256B per
    # prefetch, only for calls of 2 KiB or more, clamped to the copy.
    descriptor = PrefetchDescriptor(
        "memcpy", distance_bytes=512, degree_bytes=256,
        min_size_bytes=2 * KB, clamp_to_stream=True)
    injector = SoftwarePrefetchInjector([descriptor])
    prefetched = injector.inject(plain)
    stats = injector.last_stats
    print(f"memcpy of {size // KB} KiB; injector inserted "
          f"{stats.prefetches_inserted} prefetches into "
          f"{stats.streams_instrumented} streams\n")

    print(f"{'configuration':24} {'runtime':>13}")
    on = simulate("+HW (prefetchers on)", plain, hardware_on=True)
    off = simulate("-HW (prefetchers off)", plain, hardware_on=False)
    soft = simulate("-HW +SW (Limoncello)", prefetched, hardware_on=False)

    print(f"\nslowdown from disabling HW prefetchers: "
          f"{off.elapsed_ns / on.elapsed_ns - 1:+.0%}")
    print(f"recovered by software prefetching:      "
          f"{off.elapsed_ns / soft.elapsed_ns - 1:+.0%}")
    print(f"DRAM traffic, SW vs HW prefetching:     "
          f"{soft.dram_total_fills / on.dram_total_fills - 1:+.0%}")


if __name__ == "__main__":
    main()
