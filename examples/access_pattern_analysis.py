#!/usr/bin/env python3
"""Section 8.2: replacing software-prefetch guesswork with visibility.

Analyzes the fleet-representative workload's memory trace, prints each
function's access-pattern summary (the visibility the paper wishes it
had), auto-proposes prefetch descriptors for the streaming functions, and
validates them on the fleet-mix load test.

Run:  python examples/access_pattern_analysis.py
"""

import random

from repro.access import AddressSpace
from repro.analysis import analyze_trace, propose_descriptors
from repro.microbench import FleetMixLoadTest
from repro.workloads import fleetbench_trace


def main() -> None:
    trace = fleetbench_trace(random.Random(7), AddressSpace())
    patterns = analyze_trace(trace)

    print(f"{'function':>16} {'accesses':>9} {'seq frac':>9} "
          f"{'p50 stream':>11} {'verdict':>12}")
    for pattern in sorted(patterns.values(), key=lambda p: -p.accesses):
        verdict = "streaming" if pattern.is_streaming else "irregular"
        print(f"{pattern.function:>16} {pattern.accesses:9d} "
              f"{pattern.sequential_fraction:9.2f} "
              f"{pattern.stream_p50_bytes:11.0f} {verdict:>12}")

    proposals = propose_descriptors(patterns)
    print(f"\nauto-proposed descriptors ({len(proposals)}):")
    for descriptor in proposals:
        print(f"  {descriptor.label()}")

    print("\nvalidating each proposal on the fleet-mix load test "
          "(prefetchers off, heavy background load)…")
    loadtest = FleetMixLoadTest(scale=1.0)
    for descriptor in proposals[:4]:
        speedup = loadtest.speedup(descriptor)
        verdict = "keep" if speedup > 0 else "iterate"
        print(f"  {descriptor.function:>14}: {speedup:+6.2%}  [{verdict}]")


if __name__ == "__main__":
    main()
