#!/usr/bin/env python3
"""The Section 6 evaluation: rolling Limoncello out to a simulated fleet.

Runs the before / Hard-only / full-Limoncello arms and prints the
headline numbers behind Figures 16-20: throughput by CPU-utilization
band, memory-latency and bandwidth reductions, the CPU-utilization
capacity gain, and the tax-function cycle-share story.

Run:  python examples/fleet_rollout.py
"""

from repro.fleet import RolloutStudy


def main() -> None:
    print("running rollout arms (before / hard-only / full / "
          "full+scheduler)…")
    result = RolloutStudy(machines=24, epochs=80, warmup_epochs=25,
                          seed=5).run()

    print("\nFigure 16 — application throughput gain by CPU band")
    for band, gain in result.throughput_gain_by_band().items():
        print(f"  {band:>4}: {gain:+.1%}")

    latency = result.latency_reduction()
    print("\nFigure 17 — memory latency change")
    for stat in ("p50", "p90", "p99"):
        print(f"  {stat.upper():>4}: {latency[stat]:+.1%}")

    bandwidth = result.bandwidth_reduction()
    print("\nFigure 18 — socket bandwidth change")
    for stat in ("mean", "p90", "p99"):
        print(f"  {stat:>4}: {bandwidth[stat]:+.1%}")
    print(f"  saturated sockets: {result.saturated_socket_change():+.1%}")

    print("\nFigure 19 — capacity: mean machine CPU utilization")
    print(f"  before: {result.before.cpu_utilization_mean():.1%}")
    print(f"  after (scheduler-integrated): "
          f"{result.full_integrated.cpu_utilization_mean():.1%} "
          f"({result.cpu_utilization_gain():+.1%})")

    print("\nFigure 20 — fleet cycle share in targeted tax functions")
    for arm, shares in result.tax_cycle_shares().items():
        print(f"  {arm:5}: {shares['all targeted DC tax']:.1%} "
              f"(movement {shares['data movement']:.1%}, "
              f"compression {shares['compression']:.1%}, "
              f"hashing {shares['hashing']:.1%}, "
              f"transmission {shares['data transmission']:.1%})")


if __name__ == "__main__":
    main()
