#!/usr/bin/env python3
"""Tuning Soft Limoncello's memcpy prefetch (Sections 4.2-4.3).

Sweeps prefetch distances and degrees on the memcpy microbenchmark
(LLVM-libc stand-in), then validates the microbenchmark winner on the
fleet-mix load test — the paper's iterate-until-it-holds-under-load flow.

Run:  python examples/tune_memcpy_prefetch.py
"""

from repro import PrefetchDescriptor, PrefetchTuner
from repro.microbench import FleetMixLoadTest, MemcpyMicrobenchmark
from repro.units import KB


def main() -> None:
    microbench = MemcpyMicrobenchmark(
        sizes=(1 * KB, 4 * KB, 16 * KB, 64 * KB, 256 * KB),
        bytes_per_point=128 * KB)
    loadtest = FleetMixLoadTest(scale=1.0)

    tuner = PrefetchTuner(
        microbenchmark=microbench.mean_speedup,
        loadtest=loadtest.speedup,
        min_speedup=0.0,
        max_candidates=3)

    base = PrefetchDescriptor("memcpy", min_size_bytes=2 * KB,
                              clamp_to_stream=True)
    print("sweeping distances x degrees on the memcpy microbenchmark…")
    result = tuner.tune(
        base,
        distances=(128, 256, 512, 1024),
        degrees=(128, 256, 512))

    print(f"\n{'distance':>9} {'degree':>7} {'microbench speedup':>19}")
    for point in sorted(result.sweep,
                        key=lambda p: p.speedup, reverse=True):
        print(f"{point.descriptor.distance_bytes:9d} "
              f"{point.descriptor.degree_bytes:7d} "
              f"{point.speedup:19.1%}")

    if result.succeeded:
        print(f"\nchosen: {result.chosen.label()}")
        print(f"  microbenchmark speedup: "
              f"{result.chosen_microbench_speedup:+.1%}")
        print(f"  load-test speedup:      "
              f"{result.chosen_loadtest_speedup:+.1%}")
        if result.rejected:
            rejected = ", ".join(p.descriptor.label()
                                 for p in result.rejected)
            print(f"  rejected by load test:  {rejected}")
    else:
        print("\nno candidate survived load testing — iterate with new "
              "distances/degrees (Section 4.2's loop)")


if __name__ == "__main__":
    main()
