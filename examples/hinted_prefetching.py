#!/usr/bin/env python3
"""The Section 8 research directions, as working prototypes.

1. §8.1 accuracy-first hardware: a feedback gate turns a blind next-line
   prefetcher into an accuracy-aware one — most of the wasted traffic
   disappears at no performance cost.
2. §8.3 a hardware/software interface: one *stream hint* instruction per
   memcpy replaces thousands of prefetch instructions, letting hardware
   pace a stream whose exact extent software provided.

Run:  python examples/hinted_prefetching.py
"""

import random

from repro.access import AccessKind, AddressSpace
from repro.core import PrefetchDescriptor, SoftwarePrefetchInjector
from repro.memsys import MemoryHierarchy, PrefetcherBank
from repro.memsys.prefetchers import AdjacentLinePrefetcher, NextLinePrefetcher
from repro.memsys.prefetchers.feedback import FeedbackThrottledPrefetcher
from repro.memsys.prefetchers.hinted import HintedRegionPrefetcher
from repro.units import KB
from repro.workloads import fleet_mix_trace, memcpy_trace


def accuracy_first_demo() -> None:
    print("§8.1 — accuracy-first hardware prefetching")
    weights = {"btree_lookup": 0.35, "hashmap_probe": 0.25,
               "random_access": 0.15, "memcpy": 0.15, "hash": 0.10}

    def mix():
        return fleet_mix_trace(random.Random(7), AddressSpace(),
                               weights=weights)

    def blind():
        return [NextLinePrefetcher(name="l1_next_line", degree=1,
                                   page_filter_entries=None),
                AdjacentLinePrefetcher(name="l2_adjacent_line",
                                       page_filter_entries=None)]

    raw = MemoryHierarchy(prefetchers=PrefetcherBank(blind())).run(mix())
    gated_bank = PrefetcherBank(
        [FeedbackThrottledPrefetcher(p) for p in blind()])
    gated = MemoryHierarchy(prefetchers=gated_bank).run(mix())

    for label, result in (("blind", raw), ("feedback-gated", gated)):
        wasted = result.dram_prefetch_fills - result.useful_prefetches
        print(f"  {label:>15}: {result.total.cycles:11.0f} cycles, "
              f"{result.dram_prefetch_fills:6d} prefetch fills "
              f"({wasted} wasted)")
    saved = 1 - gated.dram_prefetch_fills / raw.dram_prefetch_fills
    print(f"  gate removes {saved:.0%} of prefetch traffic "
          f"on irregular-heavy code\n")


def hinted_interface_demo() -> None:
    print("§8.3 — one stream hint vs thousands of prefetch instructions")
    size = 256 * KB
    trace = memcpy_trace(0x10_0000, 0x90_0000, size)
    descriptor = PrefetchDescriptor("memcpy", distance_bytes=512,
                                    degree_bytes=256,
                                    min_size_bytes=2 * KB)

    sw_trace = SoftwarePrefetchInjector([descriptor]).inject(trace)
    hint_trace = SoftwarePrefetchInjector(
        [descriptor], emit_hints=True).inject(trace)
    hint_count = sum(1 for r in hint_trace
                     if r.kind is AccessKind.STREAM_HINT)

    baseline = MemoryHierarchy(prefetchers=PrefetcherBank([])).run(trace)
    sw = MemoryHierarchy(prefetchers=PrefetcherBank([])).run(sw_trace)
    hinted = MemoryHierarchy(prefetchers=PrefetcherBank(
        [HintedRegionPrefetcher()])).run(hint_trace)

    print(f"  {'-HW baseline':>22}: {baseline.elapsed_ns:9.0f} ns")
    print(f"  {'prefetch instructions':>22}: {sw.elapsed_ns:9.0f} ns  "
          f"({sw.total.software_prefetches} extra instructions)")
    print(f"  {'stream hints':>22}: {hinted.elapsed_ns:9.0f} ns  "
          f"({hint_count} hint instructions, hardware-paced)")
    print(f"  hint interface: {baseline.elapsed_ns / hinted.elapsed_ns - 1:+.0%} "
          f"vs instructions' {baseline.elapsed_ns / sw.elapsed_ns - 1:+.0%}, "
          f"at ~{hint_count}/{sw.total.software_prefetches} the "
          f"instruction cost")


def main() -> None:
    accuracy_first_demo()
    hinted_interface_demo()


if __name__ == "__main__":
    main()
