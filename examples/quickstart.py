#!/usr/bin/env python3
"""Quickstart: the Limoncello control loop on one socket.

Reproduces the worked example of the paper's Figure 9: a socket whose
memory bandwidth follows a scripted profile, a Hard Limoncello daemon
sampling it every second, and prefetcher state actuated through simulated
model-specific registers. Watch the hysteresis: bandwidth must stay past
a threshold for the sustain duration before anything toggles, and the
dip to 75% (between the two thresholds) changes nothing.

Run:  python examples/quickstart.py
"""

from repro import LimoncelloConfig, LimoncelloDaemon, MSRPrefetcherActuator
from repro.msr import INTEL_LIKE_MAP, MSRFile
from repro.telemetry import PerfBandwidthSampler, ScriptedBandwidthSource
from repro.units import SECOND


def main() -> None:
    # A socket with 100 GB/s saturation bandwidth whose load follows the
    # Figure 9 script: high, briefly lower (but above the lower
    # threshold), low, moderate, then high again.
    profile = [
        (0 * SECOND, 85.0),    # above the 80% upper threshold
        (8 * SECOND, 75.0),    # between thresholds: no change
        (12 * SECOND, 55.0),   # below the 60% lower threshold
        (22 * SECOND, 70.0),   # between thresholds: no change
        (28 * SECOND, 90.0),   # above the upper threshold again
    ]
    socket = ScriptedBandwidthSource(profile, saturation_bandwidth=100.0)

    # The prefetcher controls live in a (simulated) MSR file, laid out
    # like a real platform's registers.
    msrs = MSRFile()
    actuator = MSRPrefetcherActuator(msrs, INTEL_LIKE_MAP)

    config = LimoncelloConfig(          # the deployed 60/80 configuration
        lower_threshold=0.60,
        upper_threshold=0.80,
        sustain_duration_ns=3 * SECOND,  # short, to keep the demo brisk
        sample_period_ns=1 * SECOND,
    )
    daemon = LimoncelloDaemon(PerfBandwidthSampler(socket), actuator, config)

    print(f"{'t(s)':>5} {'bw(GB/s)':>9} {'util':>6} {'state':>12} "
          f"{'prefetchers':>12}")
    for tick in range(40):
        now = tick * SECOND
        state = daemon.step(now)
        sample = daemon.report.utilization.last()
        prefetchers = "ENABLED" if actuator.is_enabled() else "disabled"
        print(f"{tick:5d} {socket.memory_bandwidth(now):9.1f} "
              f"{sample.value:6.2f} {state.value:>12} {prefetchers:>12}")

    report = daemon.report
    print(f"\nsamples={report.samples}  transitions={report.transitions}  "
          f"time disabled={report.duty_cycle_disabled():.0%}")
    print("MSR 0x1A4 =", hex(msrs.rdmsr(0x1A4)),
          "(set bits are per-prefetcher disables)")


if __name__ == "__main__":
    main()
