"""Shared fixtures for the figure/table benchmarks.

Every benchmark regenerates one table or figure from the paper's
evaluation, asserts its qualitative shape, and writes the rows it would
plot to ``benchmarks/results/<name>.txt`` (also echoed to stdout when
pytest runs with ``-s``).

Fleet-study benchmarks run through the sharded execution engine, so the
suite honours ``REPRO_WORKERS`` (parallel shards; results are identical
at any worker count). Study results are also cached on disk under
``benchmarks/results/.cache`` — a repeated ``make bench`` replays the
heavy fleet studies from the cache instead of recomputing them. Set
``REPRO_NO_CACHE=1`` to force recomputation, or ``make clean`` to drop
the cache with the rest of the results.
"""

import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session", autouse=True)
def fleet_result_cache():
    """Point the fleet studies' result cache at benchmarks/results/.cache
    unless the caller disabled caching or chose another directory."""
    from repro.fleet.result_cache import CACHE_ENV_VAR

    if os.environ.get("REPRO_NO_CACHE") or os.environ.get(CACHE_ENV_VAR):
        yield
        return
    os.environ[CACHE_ENV_VAR] = str(RESULTS_DIR / ".cache")
    try:
        yield
    finally:
        os.environ.pop(CACHE_ENV_VAR, None)


@pytest.fixture
def report():
    """Write (and echo) the reproduced rows for one experiment."""

    def _report(name: str, title: str, lines) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        body = [title, "=" * len(title)]
        body.extend(str(line) for line in lines)
        text = "\n".join(body) + "\n"
        (RESULTS_DIR / f"{name}.txt").write_text(text)
        print("\n" + text)

    return _report
