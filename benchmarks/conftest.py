"""Shared fixtures for the figure/table benchmarks.

Every benchmark regenerates one table or figure from the paper's
evaluation, asserts its qualitative shape, and writes the rows it would
plot to ``benchmarks/results/<name>.txt`` (also echoed to stdout when
pytest runs with ``-s``).
"""

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def report():
    """Write (and echo) the reproduced rows for one experiment."""

    def _report(name: str, title: str, lines) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        body = [title, "=" * len(title)]
        body.extend(str(line) for line in lines)
        text = "\n".join(body) + "\n"
        (RESULTS_DIR / f"{name}.txt").write_text(text)
        print("\n" + text)

    return _report
