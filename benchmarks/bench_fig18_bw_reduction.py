"""Figure 18: socket memory-bandwidth usage reduction under Limoncello.

Paper: ~-15% average socket bandwidth, with the number of saturated
sockets falling by ~8%.
"""

from repro.fleet import AblationStudy


def run_experiment():
    study = AblationStudy(mode="hard+soft", machines=24, epochs=80,
                          warmup_epochs=25, seed=9)
    return study.run()


def test_fig18_bw_reduction(benchmark, report):
    result = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    bandwidth = result.bandwidth_reduction()

    assert bandwidth["mean"] < -0.01
    assert bandwidth["p90"] < 0.01
    assert bandwidth["p99"] < 0.01

    saturated_before = result.control.saturated_socket_fraction(0.90)
    saturated_after = result.experiment.saturated_socket_fraction(0.90)
    assert saturated_after <= saturated_before

    lines = [f"{'stat':>5} {'Δ socket bandwidth':>19}"]
    for stat in ("mean", "p90", "p99"):
        lines.append(f"{stat:>5} {bandwidth[stat]:19.1%}")
    lines.append(f"sockets above 90% of saturation: "
                 f"{saturated_before:.1%} -> {saturated_after:.1%}")
    lines.append("paper: -15% average; saturated sockets -8%")
    report("fig18", "Figure 18 — socket bandwidth reduction", lines)
