"""Figure 11: per-function cycle and MPKI change when hardware
prefetchers are disabled — measured on the cycle-level simulator.

Paper: data center tax functions (copying, compression, hashing,
serialization) regress — cycles and LLC MPKI both rise sharply — while
irregular functions improve slightly. This ranking is what surfaces the
software-prefetch targets.
"""

from repro.analysis import MicroAblationStudy
from repro.workloads import TAX_CATEGORIES


def run_experiment():
    return MicroAblationStudy(seed=7, scale=1.0).run()


def test_fig11_function_ablation(benchmark, report):
    ablations = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    # Tax functions dominate the top of the regression ranking.
    top = ablations[:5]
    assert all(a.category in TAX_CATEGORIES for a in top)
    # Their MPKI increases are massive; irregular functions are flat.
    by_name = {a.function: a for a in ablations}
    assert by_name["memcpy"].mpki_delta > 2.0
    assert by_name["crc32"].cycle_delta > 0.5
    assert abs(by_name["pointer_chase"].mpki_delta) < 0.1
    assert by_name["pointer_chase"].cycle_delta < 0.02
    # Some functions genuinely improve (less pollution/latency).
    assert any(a.cycle_delta < 0 for a in ablations)

    lines = [f"{'function':>16} {'category':>18} {'Δcycles':>9} "
             f"{'ΔMPKI':>10}"]
    for ablation in ablations:
        mpki = (f"{ablation.mpki_delta:10.1%}"
                if ablation.mpki_delta != float("inf") else "       inf")
        lines.append(f"{ablation.function:>16} "
                     f"{ablation.category.value:>18} "
                     f"{ablation.cycle_delta:9.1%} {mpki}")
    report("fig11", "Figure 11 — per-function prefetcher ablation", lines)
