"""Adaptive early stopping vs exhaustive ablation: machine-runs saved.

The adaptive runner schedules ablation arms in fixed rounds and stops
an arm once its confidence interval has separated from every other
arm's. Because the schedule and the stopping decisions are pure
functions of the study parameters, the headline metric here — machine
runs scheduled, adaptive vs exhaustive — is *deterministic*: the same
number on every machine, every run, which is why it can be a hard CI
gate rather than a statistical hope.

The benchmark runs the exhaustive studies first (the oracle), then the
adaptive study, and refuses to report savings unless the adaptive
verdict ordering matches the exhaustive one. Results go to
``benchmarks/results/BENCH_adaptive_sampling.json``; CI fails the run
when the savings drop below ``--min-savings`` (default 2x, the ISSUE
acceptance bar) and gates the ratio against ``benchmarks/baselines/``.
"""

import argparse
import json
import pathlib
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
try:
    import repro  # noqa: F401
except ImportError:  # CLI use without PYTHONPATH=src
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.fleet import AblationStudy, AdaptiveAblation

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
OUTPUT_PATH = RESULTS_DIR / "BENCH_adaptive_sampling.json"

ARMS = ("off", "control")
MACHINES = 48
EPOCHS = 12
WARMUP = 4
SEED = 3
SHARD_SIZE = 4
MARGIN = 0.005
DEFAULT_ROUNDS = 1

STUDY_KW = dict(machines=MACHINES, epochs=EPOCHS, warmup_epochs=WARMUP,
                seed=SEED, shard_size=SHARD_SIZE)


def run_exhaustive():
    """Wall time and per-arm throughput change of the full-budget arms.

    ``cache_dir=''`` keeps the benchmark suite's shared study cache out
    of the measurement.
    """
    start = time.perf_counter()
    changes = {}
    for mode in ARMS:
        result = AblationStudy(mode=mode, **STUDY_KW).run(
            cache_dir="", checkpoint_dir="")
        changes[mode] = result.throughput_change()
    elapsed = time.perf_counter() - start
    order = {mode: index for index, mode in enumerate(ARMS)}
    ranking = sorted(ARMS, key=lambda m: (-changes[m], order[m]))
    return elapsed, changes, ranking


def run_adaptive():
    start = time.perf_counter()
    outcome = AdaptiveAblation(modes=ARMS, margin=MARGIN,
                               **STUDY_KW).run(checkpoint_dir="")
    elapsed = time.perf_counter() - start
    return elapsed, outcome


def run_experiment(rounds=DEFAULT_ROUNDS):
    exhaustive_s = float("inf")
    adaptive_s = float("inf")
    for _ in range(rounds):
        elapsed, changes, exhaustive_ranking = run_exhaustive()
        exhaustive_s = min(exhaustive_s, elapsed)
        elapsed, outcome = run_adaptive()
        adaptive_s = min(adaptive_s, elapsed)

    if outcome.ranking() != exhaustive_ranking:
        raise AssertionError(
            f"adaptive ranking {outcome.ranking()} disagrees with "
            f"exhaustive ranking {exhaustive_ranking}; refusing to "
            "report savings for a wrong verdict")

    return {
        "benchmark": "adaptive_sampling",
        "rounds": rounds,
        "modes": list(ARMS),
        "machines_per_arm": MACHINES,
        "shard_size": SHARD_SIZE,
        "margin": MARGIN,
        "exhaustive_ranking": exhaustive_ranking,
        "exhaustive_throughput_change": changes,
        "verdicts": outcome.verdicts(),
        "arms": {
            "adaptive": {
                "machine_runs": outcome.machine_runs(),
                "exhaustive_machine_runs":
                    outcome.exhaustive_machine_runs(),
                "rounds_run": outcome.rounds_run,
                "rounds_total": outcome.rounds_total,
                "exhaustive_s": exhaustive_s,
                "adaptive_s": adaptive_s,
                "wall_speedup": exhaustive_s / adaptive_s,
                # Gate metric: machine-runs saved, exhaustive over
                # adaptive. Deterministic — identical on every runner.
                "speedup": outcome.savings(),
                "target_speedup": 2.0,
                "ranking_matches_exhaustive": True,
            },
        },
    }


def write_output(data, path=OUTPUT_PATH):
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(data, indent=2) + "\n")
    return path


def summary_lines(data):
    arm = data["arms"]["adaptive"]
    return [
        f"arms {', '.join(data['modes'])}: {data['machines_per_arm']} "
        f"machines each in shards of {data['shard_size']}, margin "
        f"{data['margin']}",
        f"exhaustive: {arm['exhaustive_machine_runs']} machine-runs "
        f"in {arm['exhaustive_s']:.3f} s",
        f"adaptive:   {arm['machine_runs']} machine-runs "
        f"in {arm['adaptive_s']:.3f} s "
        f"(stopped after round {arm['rounds_run']}/"
        f"{arm['rounds_total']})",
        f"machine-runs saved: {arm['speedup']:.2f}x (target "
        f"{arm['target_speedup']:.1f}x); wall "
        f"{arm['wall_speedup']:.2f}x",
        "adaptive ranking verified against the exhaustive verdict",
    ]


def test_adaptive_sampling(benchmark, report):
    data = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    write_output(data)

    # The ISSUE acceptance bar: the exhaustive verdict at >= 2x fewer
    # machine-runs, deterministically.
    assert data["arms"]["adaptive"]["speedup"] >= 2.0
    assert data["arms"]["adaptive"]["ranking_matches_exhaustive"]

    report("BENCH_adaptive_sampling",
           "Adaptive early stopping - machine-runs vs exhaustive",
           summary_lines(data))


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Measure machine-runs saved by adaptive early "
                    "stopping against the exhaustive ablation.")
    parser.add_argument("--rounds", type=int, default=DEFAULT_ROUNDS,
                        help="timing rounds (best-of; the savings "
                             "metric is deterministic regardless)")
    parser.add_argument("--output", default=str(OUTPUT_PATH),
                        help="where to write the JSON results")
    parser.add_argument("--min-savings", type=float, default=0.0,
                        help="fail unless adaptive saves this factor of "
                             "machine-runs (CI passes 2.0)")
    args = parser.parse_args(argv)

    data = run_experiment(rounds=args.rounds)
    path = write_output(data, args.output)
    print("\n".join(summary_lines(data)))
    print(f"wrote {path}")

    savings = data["arms"]["adaptive"]["speedup"]
    if savings < args.min_savings:
        print(f"PERF GATE FAILED: adaptive savings {savings:.2f}x "
              f"< required {args.min_savings:.2f}x", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
