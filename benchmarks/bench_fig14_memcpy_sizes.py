"""Figure 14: the memcpy call-size distribution.

Paper: the PDF of copy sizes is dominated by small copies with a long
tail of large ones; regressing workloads had ~26% larger average copies.
"""

import random

from repro.workloads import MemcpySizeDistribution, size_histogram

BIN_EDGES = (16, 64, 256, 1024, 4096, 1 << 16, 1 << 20, 1 << 23)
SAMPLES = 50_000


def run_experiment():
    rng = random.Random(14)
    dist = MemcpySizeDistribution()
    samples = dist.sample_many(rng, SAMPLES)
    histogram = size_histogram(samples, BIN_EDGES)
    regressing = dist.scaled(1.26)
    mean_base = dist.mean_of(random.Random(1), 20_000)
    mean_regressing = regressing.mean_of(random.Random(1), 20_000)
    return histogram, samples, mean_base, mean_regressing


def test_fig14_memcpy_sizes(benchmark, report):
    histogram, samples, mean_base, mean_regressing = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1)

    fractions = dict(histogram)
    # Most copies are small…
    small_mass = sum(frac for edge, frac in histogram if edge <= 1024)
    assert small_mass > 0.7
    # …with a real long tail.
    assert any(size >= 1 << 16 for size in samples)
    # The regressing-workload distribution is ~26% larger on average.
    assert 1.15 < mean_regressing / mean_base < 1.40

    lines = [f"{'size <=':>10} {'fraction':>9}"]
    for edge, frac in histogram:
        lines.append(f"{edge:>10} {frac:9.3f}")
    lines.append(f"mass at or below 1 KiB: {small_mass:.0%} "
                 f"(paper: 'most copy sizes are small')")
    lines.append(f"regressing workloads' mean copy size: "
                 f"{mean_regressing / mean_base - 1:+.0%} (paper: +26%)")
    report("fig14", "Figure 14 — memcpy size distribution", lines)
