"""Sharded parallel fleet-ablation engine: correctness and speedup.

A paper-scale (200-machine) ablation study splits into seven balanced
shards. The engine's contract: the parallel result is bit-identical to
the serial result for the same seed, and on a multi-core host the
parallel run finishes materially faster. Equality is asserted
unconditionally; the >= 1.8x wall-clock speedup is asserted where the
host actually has the CPUs to deliver it (process pools cannot beat
serial on a single core).
"""

import os
import time

from repro.fleet import AblationStudy
from repro.serialization import ablation_result_to_dict

MACHINES = 200
EPOCHS = 30
WARMUP = 10
SEED = 11
WORKERS = 4

#: Required speedup at WORKERS workers — modest against the theoretical
#: 4x to absorb pool startup and the serial merge.
MIN_SPEEDUP = 1.8


def _study():
    return AblationStudy(mode="off", machines=MACHINES, epochs=EPOCHS,
                         warmup_epochs=WARMUP, seed=SEED)


def _available_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def run_experiment():
    # cache_dir="" pins caching off: the benchmark times real execution,
    # and the parallel run must not replay the serial run's cache entry.
    start = time.perf_counter()
    serial = _study().run(workers=1, cache_dir="")
    serial_s = time.perf_counter() - start

    start = time.perf_counter()
    parallel = _study().run(workers=WORKERS, cache_dir="")
    parallel_s = time.perf_counter() - start

    return {
        "serial": serial,
        "parallel": parallel,
        "serial_s": serial_s,
        "parallel_s": parallel_s,
        "speedup": serial_s / parallel_s if parallel_s > 0 else 0.0,
        "shards": len(_study().shard_plan()),
    }


def test_parallel_ablation(benchmark, report):
    outcome = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    # Correctness first: worker count must not change a single bit.
    assert (ablation_result_to_dict(outcome["serial"])
            == ablation_result_to_dict(outcome["parallel"]))
    assert outcome["shards"] == 7  # ceil(200 / 32)

    # And the sharded study still shows the paper's Table 1 shape.
    reduction = outcome["serial"].bandwidth_reduction()
    assert -0.30 < reduction["mean"] < -0.05

    cores = _available_cores()
    if cores >= WORKERS:
        assert outcome["speedup"] >= MIN_SPEEDUP, (
            f"{outcome['speedup']:.2f}x on {cores} cores")

    lines = [
        f"machines={MACHINES} epochs={EPOCHS} shards={outcome['shards']} "
        f"workers={WORKERS} cores={cores}",
        f"serial:   {outcome['serial_s']:8.2f} s",
        f"parallel: {outcome['parallel_s']:8.2f} s",
        f"speedup:  {outcome['speedup']:8.2f}x "
        f"(assertion {'active' if cores >= WORKERS else 'skipped: too few cores'})",
        "parallel == serial: bit-identical",
    ]
    report("parallel_ablation", "Sharded parallel ablation engine", lines)
