"""Figure 10: application throughput across Hard Limoncello threshold
configurations (lower/upper as % of bandwidth saturation).

Paper: 60/80 performed best among {50/70, 60/80, 70/90} (+0.5% to +2.2%
throughput) and became the deployed configuration. The study arm runs
full Limoncello (controller + targeted software prefetches).

Reproduction note: our model reproduces the magnitudes (+0-3%) and the
collapse of the conservative 70/90 configuration, but ranks 50/70
marginally above 60/80 — in the simulator, Soft Limoncello recovers the
prefetchers-off penalty so completely that eager disabling is nearly
free. See EXPERIMENTS.md.
"""

from repro.analysis import ThresholdStudy


def run_experiment():
    study = ThresholdStudy(machines=20, epochs=80, warmup_epochs=25,
                           seed=9, soft=True)
    return study.run()


def test_fig10_threshold_sweep(benchmark, report):
    outcomes = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    by_label = {o.label: o for o in outcomes}

    # Every configuration helps (Figure 10 shows all three positive)…
    for outcome in outcomes:
        assert outcome.throughput_change > -0.003, outcome.label
    # …and the deployed 60/80 decisively beats the conservative 70/90,
    # which barely ever triggers.
    assert (by_label["60/80"].throughput_change
            > by_label["70/90"].throughput_change + 0.005)
    best = ThresholdStudy.best(outcomes)
    assert (by_label["60/80"].throughput_change
            >= best.throughput_change - 0.015)
    # Configurations that trigger actually reduce bandwidth.
    assert by_label["60/80"].bandwidth_change_mean < 0

    lines = [f"{'config':>8} {'Δthroughput':>12} {'Δlatency p50':>13} "
             f"{'Δbandwidth':>11}"]
    for outcome in outcomes:
        lines.append(f"{outcome.label:>8} "
                     f"{outcome.throughput_change:12.2%} "
                     f"{outcome.latency_change_p50:13.2%} "
                     f"{outcome.bandwidth_change_mean:11.2%}")
    lines.append(f"best configuration: {best.label} "
                 f"(paper deployed 60/80)")
    report("fig10", "Figure 10 — threshold configuration sweep", lines)
