"""Trace-pipeline throughput: the columnar path vs the record path.

The trace pipeline has three stages — generation, software-prefetch
injection, and the hierarchy run — and each stage has two
implementations: the columnar fast path (builder-generated traces,
compiled injection, zero-cost ``compile()``) and the record-path oracle
(``REPRO_SLOW_BUILDER=1`` / ``REPRO_SLOW_INJECTOR=1``). This benchmark
times both over three arms:

* ``generate`` — bare fleetbench-mix generation: the builder writing
  compiled columns vs per-record dataclass construction plus the
  validating ``Trace``. Target: >= 1.5x.
* ``inject`` — software-prefetch injection over one memcpy batch:
  columnar run detection + splice vs the record-path rebuild.
* ``sweep`` — an end-to-end distance/degree speedup sweep: the new
  pipeline generates one columnar base and runs one baseline for the
  whole sweep, then re-injects and simulates per config; the old
  pipeline (the seed microbenchmark's behaviour) regenerated the batch
  for every run and re-ran the baseline for every speedup, so each
  config paid two generations, two lowerings, a record-path injection,
  and two simulations. This is the shape of Figure 13/15 sweeps, the
  tuner, and fleet calibration. Target: >= 2x.

Every arm first checks the two paths produce bit-identical traces (and,
for the sweep, bit-identical simulator results) before any number is
reported. Results go to ``benchmarks/results/BENCH_trace_pipeline.json``;
CI's perf-smoke job runs the CLI with ``--min-*-speedup`` gates and
diffs the JSON against the committed baseline.
"""

import argparse
import contextlib
import json
import os
import pathlib
import random
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
try:
    import repro  # noqa: F401
except ImportError:  # CLI use without PYTHONPATH=src
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.access import AddressSpace, Trace
from repro.access.builder import SLOW_BUILDER_ENV
from repro.core.soft.descriptor import PrefetchDescriptor
from repro.core.soft.injector import (
    SLOW_INJECTOR_ENV,
    SoftwarePrefetchInjector,
)
from repro.memsys import MemoryHierarchy, PrefetcherBank
from repro.units import KB
from repro.workloads.mixes import fleetbench_trace
from repro.workloads.tax import memcpy_call_trace

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
OUTPUT_PATH = RESULTS_DIR / "BENCH_trace_pipeline.json"

MIX_SEED = 7
MIX_SCALE = 2.0
SWEEP_CALL_SIZES = tuple([64 * KB] * 6 + [16 * KB] * 8 + [256] * 20)
SWEEP_DISTANCES = (256, 1024)
SWEEP_DEGREES = (128, 256)
DEFAULT_ROUNDS = 3

STAT_FIELDS = (
    "instructions", "compute_cycles", "stall_cycles", "loads", "stores",
    "software_prefetches", "l1_misses", "l2_misses", "llc_misses",
    "prefetch_covered", "late_prefetch_hits", "dram_wait_ns",
    "late_prefetch_wait_ns",
)


@contextlib.contextmanager
def forced_env(*names):
    """Temporarily set the given env switches to "1"."""
    saved = {name: os.environ.get(name) for name in names}
    try:
        for name in names:
            os.environ[name] = "1"
        yield
    finally:
        for name, value in saved.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value


def trace_fingerprint(trace):
    """Compiled columns + interning: the bit-identity key for a trace."""
    compiled = Trace(list(trace)).compile()
    return tuple(compiled.functions), tuple(compiled.packed)


def result_fingerprint(result):
    return (
        result.elapsed_ns,
        tuple(getattr(result.total, field) for field in STAT_FIELDS),
        tuple(sorted(
            (name, tuple(getattr(stats, field) for field in STAT_FIELDS))
            for name, stats in result.functions.items())),
    )


def best_of(fn, rounds):
    best = float("inf")
    value = None
    for _ in range(rounds):
        start = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - start)
    return best, value


# --- arm: generate -----------------------------------------------------------

def generate_mix():
    return fleetbench_trace(random.Random(MIX_SEED), AddressSpace(),
                            scale=MIX_SCALE)


def run_generate_arm(rounds):
    columnar_s, columnar = best_of(generate_mix, rounds)
    with forced_env(SLOW_BUILDER_ENV):
        record_s, record = best_of(generate_mix, rounds)
    if trace_fingerprint(columnar) != trace_fingerprint(record):
        raise AssertionError(
            "builder backends disagree on the fleetbench mix; refusing to "
            "report throughput for a broken columnar path")
    return {
        "records": len(columnar),
        "record_path_s": record_s,
        "columnar_s": columnar_s,
        "record_path_records_per_s": len(record) / record_s,
        "columnar_records_per_s": len(columnar) / columnar_s,
        "speedup": record_s / columnar_s,
        "target_speedup": 1.5,
        "equivalent": True,
    }


# --- arm: inject -------------------------------------------------------------

def make_injector():
    return SoftwarePrefetchInjector([
        PrefetchDescriptor("memcpy", distance_bytes=512, degree_bytes=256,
                           min_size_bytes=2 * KB)])


def run_inject_arm(rounds):
    base = memcpy_call_trace(AddressSpace(), list(SWEEP_CALL_SIZES) * 2)
    base.compile()
    # The record-path oracle iterates records; materialize them up front
    # so the timing compares injection work, not lazy materialization.
    record_base = Trace(list(base))

    columnar_s, columnar = best_of(
        lambda: make_injector().inject(base), rounds)
    with forced_env(SLOW_INJECTOR_ENV):
        record_s, record = best_of(
            lambda: make_injector().inject(record_base), rounds)
    if trace_fingerprint(columnar) != trace_fingerprint(record):
        raise AssertionError(
            "injector paths disagree; refusing to report throughput for "
            "a broken compiled injector")
    return {
        "records": len(base),
        "prefetches_inserted": len(columnar) - len(base),
        "record_path_s": record_s,
        "columnar_s": columnar_s,
        "speedup": record_s / columnar_s,
        "target_speedup": None,
        "equivalent": True,
    }


# --- arm: sweep --------------------------------------------------------------

def sweep_configs():
    return [(distance, degree) for distance in SWEEP_DISTANCES
            for degree in SWEEP_DEGREES]


def sweep_descriptor(distance, degree):
    return PrefetchDescriptor("memcpy", distance_bytes=distance,
                              degree_bytes=degree, min_size_bytes=2 * KB)


def simulate(trace):
    hierarchy = MemoryHierarchy(prefetchers=PrefetcherBank([]))
    hierarchy.set_hardware_prefetchers(False)
    return hierarchy.run(trace)


def sweep_columnar():
    """The new pipeline: one columnar base and one baseline run for the
    whole sweep; each config only re-injects and simulates."""
    base = memcpy_call_trace(AddressSpace(), list(SWEEP_CALL_SIZES))
    baseline = simulate(base)
    results = []
    for distance, degree in sweep_configs():
        injector = SoftwarePrefetchInjector([
            sweep_descriptor(distance, degree)])
        results.append((baseline, simulate(injector.inject(base))))
    return results


def sweep_record_path():
    """The old pipeline, per config, exactly as the seed microbenchmark
    ran a speedup sweep: every ``run()`` regenerated the batch trace and
    every ``speedup()`` re-ran the baseline, so one config costs two
    generations, two lowerings, a record-path injection, and two
    simulations."""
    with forced_env(SLOW_BUILDER_ENV, SLOW_INJECTOR_ENV):
        results = []
        for distance, degree in sweep_configs():
            baseline = simulate(
                memcpy_call_trace(AddressSpace(), list(SWEEP_CALL_SIZES)))
            base = memcpy_call_trace(AddressSpace(), list(SWEEP_CALL_SIZES))
            injector = SoftwarePrefetchInjector([
                sweep_descriptor(distance, degree)])
            results.append((baseline, simulate(injector.inject(base))))
        return results


def run_sweep_arm(rounds):
    columnar_s, columnar = best_of(sweep_columnar, rounds)
    record_s, record = best_of(sweep_record_path, rounds)
    fast_prints = [(result_fingerprint(baseline), result_fingerprint(out))
                   for baseline, out in columnar]
    slow_prints = [(result_fingerprint(baseline), result_fingerprint(out))
                   for baseline, out in record]
    if fast_prints != slow_prints:
        raise AssertionError(
            "sweep pipelines disagree on simulator results; refusing to "
            "report throughput for a broken columnar pipeline")
    return {
        "configs": len(sweep_configs()),
        "calls_per_config": len(SWEEP_CALL_SIZES),
        "baseline_runs_record_path": len(sweep_configs()),
        "baseline_runs_columnar": 1,
        "record_path_s": record_s,
        "columnar_s": columnar_s,
        "speedup": record_s / columnar_s,
        "target_speedup": 2.0,
        "equivalent": True,
    }


def run_experiment(rounds=DEFAULT_ROUNDS):
    return {
        "benchmark": "trace_pipeline",
        "rounds": rounds,
        "mix_seed": MIX_SEED,
        "mix_scale": MIX_SCALE,
        "arms": {
            "generate": run_generate_arm(rounds),
            "inject": run_inject_arm(rounds),
            "sweep": run_sweep_arm(rounds),
        },
    }


def write_output(data, path=OUTPUT_PATH):
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(data, indent=2) + "\n")
    return path


def summary_lines(data):
    lines = [f"{'arm':>9} {'record path':>12} {'columnar':>9} "
             f"{'speedup':>8} {'target':>7}"]
    for name, arm in data["arms"].items():
        target = (f"{arm['target_speedup']:.1f}x"
                  if arm["target_speedup"] else "-")
        lines.append(
            f"{name:>9} {arm['record_path_s']:11.3f}s "
            f"{arm['columnar_s']:8.3f}s {arm['speedup']:7.2f}x {target:>7}")
    lines.append("both paths verified bit-identical on every arm "
                 "(sweep: simulator results included)")
    return lines


def test_trace_pipeline(benchmark, report):
    data = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    write_output(data)

    # The ISSUE targets (1.5x generate, 2x sweep) are what the JSON
    # records; the enforced floor stays conservative so shared CI
    # runners do not flake the suite.
    assert data["arms"]["generate"]["speedup"] >= 1.2
    assert data["arms"]["sweep"]["speedup"] >= 1.2
    assert data["arms"]["inject"]["speedup"] >= 0.8

    report("BENCH_trace_pipeline",
           "Trace pipeline — columnar vs record path",
           summary_lines(data))


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Benchmark the columnar trace pipeline against the "
                    "record-path oracle.")
    parser.add_argument("--rounds", type=int, default=DEFAULT_ROUNDS,
                        help="timing rounds per path (best-of)")
    parser.add_argument("--output", default=str(OUTPUT_PATH),
                        help="where to write the JSON results")
    parser.add_argument("--min-generate-speedup", type=float, default=0.0,
                        help="fail unless bare generation reaches this "
                             "columnar/record speedup")
    parser.add_argument("--min-inject-speedup", type=float, default=0.0,
                        help="fail unless injection reaches this speedup")
    parser.add_argument("--min-sweep-speedup", type=float, default=0.0,
                        help="fail unless the end-to-end sweep reaches "
                             "this speedup")
    args = parser.parse_args(argv)

    data = run_experiment(rounds=args.rounds)
    path = write_output(data, args.output)
    print("\n".join(summary_lines(data)))
    print(f"wrote {path}")

    gates = (("generate", args.min_generate_speedup),
             ("inject", args.min_inject_speedup),
             ("sweep", args.min_sweep_speedup))
    failures = []
    for name, floor in gates:
        speedup = data["arms"][name]["speedup"]
        if speedup < floor:
            failures.append(f"{name} speedup {speedup:.2f}x "
                            f"< required {floor:.2f}x")
    for failure in failures:
        print(f"PERF GATE FAILED: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
