"""Figure 6: Limoncello rides the lower envelope of the latency curves.

Below the upper threshold it keeps prefetchers on (optimizing hit rate);
above, it disables them (optimizing latency), so its effective latency
curve follows the on-curve early and the off-curve late.
"""

from repro.analysis import limoncello_envelope, measure_latency_curve

UTILIZATIONS = tuple(x / 10 for x in range(11))
UPPER_THRESHOLD = 0.8


def run_experiment():
    on = measure_latency_curve(True, UTILIZATIONS, probe_hops=350)
    off = measure_latency_curve(False, UTILIZATIONS, probe_hops=350)
    envelope = limoncello_envelope(on, off, UPPER_THRESHOLD)
    return on, off, envelope


def test_fig06_envelope(benchmark, report):
    on, off, envelope = benchmark.pedantic(run_experiment, rounds=1,
                                           iterations=1)

    for point in envelope.points:
        if point.utilization <= UPPER_THRESHOLD:
            assert point.latency_ns == on.latency_at(point.utilization)
        else:
            assert point.latency_ns == off.latency_at(point.utilization)
            assert point.latency_ns < on.latency_at(point.utilization)

    gain_at_peak = 1 - envelope.latency_at(1.0) / on.latency_at(1.0)
    assert gain_at_peak > 0.05

    lines = [f"{'util':>6} {'HW on':>8} {'HW off':>8} {'Limoncello':>11}"]
    for point_on, point_off, point_env in zip(on.points, off.points,
                                              envelope.points):
        lines.append(f"{point_on.utilization:6.1f} "
                     f"{point_on.latency_ns:8.1f} "
                     f"{point_off.latency_ns:8.1f} "
                     f"{point_env.latency_ns:11.1f}")
    lines.append(f"latency saved at full load: {gain_at_peak:.1%}")
    report("fig06", "Figure 6 — Limoncello's latency envelope", lines)
