"""Figure 5: SPEC memory bandwidth with/without hardware prefetching
across three server generations.

Paper: 30-40% more memory traffic with prefetchers on, with the overhead
growing in the newest generation (prefetchers got more aggressive).
"""

import random

from repro.access import AddressSpace
from repro.memsys import MemoryHierarchy, PrefetcherBank, StreamPrefetcher
from repro.memsys.prefetchers import (
    AdjacentLinePrefetcher,
    NextLinePrefetcher,
    StridePrefetcher,
)
from repro.workloads.spec import suite_trace

#: Three generations' streamer tunings: newer parts chase coverage harder.
GENERATIONS = (
    ("gen 1", dict(distance=8, degree=2)),
    ("gen 2", dict(distance=12, degree=3)),
    ("gen 3", dict(distance=16, degree=4)),
)


def bank_for(streamer_params):
    return PrefetcherBank([
        NextLinePrefetcher(name="l1_next_line", degree=1),
        StridePrefetcher(name="l1_stride"),
        StreamPrefetcher(**streamer_params),
        AdjacentLinePrefetcher(name="l2_adjacent_line"),
    ])


def run_experiment():
    rows = []
    for label, params in GENERATIONS:
        def fresh_trace():
            return suite_trace(random.Random(1), AddressSpace(), scale=0.8)

        on = MemoryHierarchy(prefetchers=bank_for(params)).run(fresh_trace())
        off_hierarchy = MemoryHierarchy(prefetchers=PrefetcherBank([]))
        off = off_hierarchy.run(fresh_trace())
        rows.append((label,
                     on.average_bandwidth, off.average_bandwidth,
                     on.dram_total_bytes / off.dram_total_bytes - 1.0,
                     on.prefetch_traffic_fraction))
    return rows


def test_fig05_spec_bw(benchmark, report):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    overheads = [overhead for _, _, _, overhead, _ in rows]
    # Paper: 30-40% extra traffic from prefetching.
    for overhead in overheads:
        assert 0.10 < overhead < 0.60
    # The newest generation has the largest overhead.
    assert overheads[-1] == max(overheads)
    assert overheads[-1] > 0.25

    lines = [f"{'generation':>10} {'bw on':>8} {'bw off':>8} "
             f"{'traffic overhead':>17} {'prefetch share':>15}"]
    for label, bw_on, bw_off, overhead, share in rows:
        lines.append(f"{label:>10} {bw_on:8.2f} {bw_off:8.2f} "
                     f"{overhead:17.1%} {share:15.1%}")
    lines.append("paper: 30-40% traffic overhead, growing in the newest gen")
    report("fig05", "Figure 5 — SPEC bandwidth, prefetchers on vs off", lines)
