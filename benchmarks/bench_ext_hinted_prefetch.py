"""Section 8.3 prototype: a hardware/software prefetching interface.

The paper closes by arguing that today's ISAs force an either/or choice —
software knows *what* will be accessed, hardware is better at issuing
*timely* fetches — and calls for interfaces that combine them. This bench
compares three ways to cover a memcpy-heavy workload with hardware
prefetchers off:

* prefetch instructions (Soft Limoncello, one per `degree` bytes);
* a single stream hint per copy, consumed by a hint-paced engine;
* nothing (the -HW baseline).
"""

import random

from repro.access import AccessKind, AddressSpace
from repro.core import PrefetchDescriptor, SoftwarePrefetchInjector
from repro.memsys import MemoryHierarchy, PrefetcherBank
from repro.memsys.prefetchers.hinted import HintedRegionPrefetcher
from repro.units import KB
from repro.workloads import MemcpySizeDistribution, memcpy_call_trace

DESCRIPTOR = PrefetchDescriptor("memcpy", distance_bytes=512,
                                degree_bytes=256, min_size_bytes=2 * KB)


def workload():
    sizes = MemcpySizeDistribution(
        min_bytes=1 * KB, max_bytes=512 * KB).sample_many(
        random.Random(9), 60)
    return memcpy_call_trace(AddressSpace(), sizes)


def run_experiment():
    base_trace = workload()
    sw_trace = SoftwarePrefetchInjector([DESCRIPTOR]).inject(workload())
    hint_trace = SoftwarePrefetchInjector(
        [DESCRIPTOR], emit_hints=True).inject(workload())

    baseline = MemoryHierarchy(prefetchers=PrefetcherBank([])).run(
        base_trace)
    sw = MemoryHierarchy(prefetchers=PrefetcherBank([])).run(sw_trace)
    hinted = MemoryHierarchy(prefetchers=PrefetcherBank(
        [HintedRegionPrefetcher(degree=4, lead_lines=24)])).run(hint_trace)

    hint_count = sum(1 for r in hint_trace
                     if r.kind is AccessKind.STREAM_HINT)
    return baseline, sw, hinted, hint_count


def test_ext_hinted_prefetch(benchmark, report):
    baseline, sw, hinted, hint_count = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1)

    sw_speedup = baseline.elapsed_ns / sw.elapsed_ns - 1.0
    hint_speedup = baseline.elapsed_ns / hinted.elapsed_ns - 1.0
    # Both mechanisms help; the hinted interface helps at least as much…
    assert sw_speedup > 0.10
    assert hint_speedup > sw_speedup - 0.02
    # …at a tiny fraction of the instruction cost.
    assert (hinted.total.software_prefetches
            < 0.05 * sw.total.software_prefetches)

    lines = [f"{'mechanism':>22} {'speedup':>9} {'extra instrs':>13} "
             f"{'pf fills':>9}"]
    lines.append(f"{'-HW baseline':>22} {0.0:9.1%} {0:13d} "
                 f"{baseline.dram_prefetch_fills:9d}")
    lines.append(f"{'prefetch instructions':>22} {sw_speedup:9.1%} "
                 f"{sw.total.software_prefetches:13d} "
                 f"{sw.dram_prefetch_fills:9d}")
    lines.append(f"{'stream hints (8.3)':>22} {hint_speedup:9.1%} "
                 f"{hinted.total.software_prefetches:13d} "
                 f"{hinted.dram_prefetch_fills:9d}")
    lines.append(f"({hint_count} hints covered the whole workload: one "
                 f"instruction per stream, hardware pacing, no overshoot)")
    report("ext_hinted", "Extension — software-hinted hardware "
           "prefetching (Section 8.3)", lines)
