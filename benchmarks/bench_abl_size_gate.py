"""Design ablation: the call-size gate on software prefetches.

Section 4.3: "Conditioning software prefetching on larger call sizes for
memcpy allowed us to ensure prefetches are timely enough." This bench
runs a realistic (mostly-small, Figure 14-distributed) memcpy workload
under load with and without the gate, at increasing aggressiveness.
"""

import random

from repro.access import AddressSpace
from repro.core import PrefetchDescriptor, SoftwarePrefetchInjector
from repro.memsys import MemoryHierarchy, PrefetcherBank
from repro.units import KB
from repro.workloads import MemcpySizeDistribution, memcpy_call_trace

BACKGROUND = 0.65


def run_one(descriptor):
    sizes = MemcpySizeDistribution().sample_many(random.Random(5), 120)
    trace = memcpy_call_trace(AddressSpace(), sizes)
    if descriptor is not None:
        trace = SoftwarePrefetchInjector([descriptor]).inject(trace)
    hierarchy = MemoryHierarchy(
        prefetchers=PrefetcherBank([]),
        external_load=lambda now: BACKGROUND * 3.0)
    return hierarchy.run(trace).elapsed_ns


def run_experiment():
    baseline = run_one(None)
    rows = {}
    for label, gate, clamp in (("no gate, unclamped", 0, False),
                               ("no gate, clamped", 0, True),
                               ("2KiB gate, clamped", 2 * KB, True)):
        descriptor = PrefetchDescriptor(
            "memcpy", distance_bytes=512, degree_bytes=512,
            min_size_bytes=gate, clamp_to_stream=clamp)
        rows[label] = baseline / run_one(descriptor) - 1.0
    return rows


def test_abl_size_gate(benchmark, report):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    # Each production safeguard helps on the realistic size mix.
    assert rows["no gate, clamped"] >= rows["no gate, unclamped"] - 0.01
    assert rows["2KiB gate, clamped"] >= rows["no gate, unclamped"]
    # The full production descriptor is a clear net win.
    assert rows["2KiB gate, clamped"] > 0.02

    lines = [f"{'descriptor':>22} {'speedup':>9}"]
    for label, speedup in rows.items():
        lines.append(f"{label:>22} {speedup:9.1%}")
    lines.append("Figure 14's size mix: most calls are small, so gating "
                 "and clamping control the waste")
    report("abl_size_gate", "Ablation — software prefetch size gate", lines)
