"""Regenerate the perf-gate baselines from fresh benchmark runs.

Runs every gated benchmark (the :data:`KNOWN_BENCHMARKS` that
``check_throughput_regression.py`` enforces), then copies the fresh
``benchmarks/results/BENCH_*.json`` files over the committed baselines
in ``benchmarks/baselines/``. Use it after a change that is *supposed*
to shift throughput — ``make bench-baselines`` is the front door —
and commit the updated baseline files with that change.

The baselines are recorded on whatever machine runs this, but the gate
compares speedup *ratios*, so a baseline refreshed on a fast laptop
still gates correctly on a slow CI runner.
"""

import argparse
import pathlib
import subprocess
import sys

BENCH_DIR = pathlib.Path(__file__).resolve().parent
REPO_ROOT = BENCH_DIR.parent

BENCHMARK_SCRIPTS = {
    "sim_throughput": BENCH_DIR / "bench_sim_throughput.py",
    "trace_pipeline": BENCH_DIR / "bench_trace_pipeline.py",
    "batched_engine": BENCH_DIR / "bench_batched_engine.py",
    "batched_enabled": BENCH_DIR / "bench_batched_enabled.py",
    "resume_overhead": BENCH_DIR / "bench_resume_overhead.py",
    "adaptive_sampling": BENCH_DIR / "bench_adaptive_sampling.py",
    "policy_compare": BENCH_DIR / "bench_policy_compare.py",
    "scenarios": BENCH_DIR / "bench_scenarios.py",
}


def run_benchmark(name, rounds):
    script = BENCHMARK_SCRIPTS[name]
    print(f"== running {script.name} (rounds={rounds}) ==")
    subprocess.run(
        [sys.executable, str(script), "--rounds", str(rounds)],
        check=True, cwd=str(REPO_ROOT))


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Re-run the gated benchmarks and overwrite the "
                    "committed baselines with the fresh results.")
    parser.add_argument("--benchmarks",
                        default=",".join(BENCHMARK_SCRIPTS),
                        help="comma-separated benchmark names to refresh "
                             "(default: all gated)")
    parser.add_argument("--rounds", type=int, default=3,
                        help="timing rounds per benchmark (best-of); "
                             "more rounds give a steadier baseline")
    args = parser.parse_args(argv)

    names = [n for n in args.benchmarks.split(",") if n]
    unknown = sorted(set(names) - set(BENCHMARK_SCRIPTS))
    if unknown:
        raise SystemExit(f"unknown benchmarks: {', '.join(unknown)} "
                         f"(known: {', '.join(BENCHMARK_SCRIPTS)})")

    for name in names:
        run_benchmark(name, args.rounds)

    gate = BENCH_DIR / "check_throughput_regression.py"
    subprocess.run(
        [sys.executable, str(gate), "--benchmarks", ",".join(names),
         "--update"],
        check=True, cwd=str(REPO_ROOT))
    print("baselines refreshed; review the diff and commit the updated "
          "files under benchmarks/baselines/")
    return 0


if __name__ == "__main__":
    sys.exit(main())
