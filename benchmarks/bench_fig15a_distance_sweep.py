"""Figure 15a: memcpy speedup vs copy size, sweeping prefetch distance
(degree fixed at 256 bytes).

Paper: longer distances win on large copies; on small copies prefetching
far ahead fetches data the call never touches and loses. The sweep runs
unclamped (the raw design space, before the size-gate lesson of §4.3).
"""

from repro.core import PrefetchDescriptor
from repro.microbench import MemcpyMicrobenchmark
from repro.units import KB

DISTANCES = (64, 128, 256, 512, 1024)
SIZES = (256, 1 * KB, 4 * KB, 16 * KB, 64 * KB, 256 * KB)
DEGREE = 256


def run_experiment():
    bench = MemcpyMicrobenchmark(sizes=SIZES, bytes_per_point=128 * KB)
    sweeps = {}
    for distance in DISTANCES:
        descriptor = PrefetchDescriptor(
            "memcpy", distance_bytes=distance, degree_bytes=DEGREE,
            clamp_to_stream=False)
        sweeps[distance] = bench.speedup(descriptor)
    return sweeps


def test_fig15a_distance_sweep(benchmark, report):
    sweeps = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    # Large copies: longer distance is better (more timely).
    assert sweeps[1024][256 * KB] > sweeps[128][256 * KB] \
        > sweeps[64][256 * KB] > 0
    # Small copies: long distances overshoot and hurt.
    assert sweeps[1024][256] < -0.05
    assert sweeps[64][256] > sweeps[1024][256]
    # Crossover: every distance eventually helps at large sizes.
    for distance in DISTANCES:
        assert sweeps[distance][64 * KB] > 0.1

    header = "size(KB) " + " ".join(f"d={d:>5}" for d in DISTANCES)
    lines = [header]
    for size in SIZES:
        cells = " ".join(f"{sweeps[d][size]*100:7.1f}" for d in DISTANCES)
        lines.append(f"{size / KB:8.2f} {cells}")
    lines.append("columns: % speedup over no software prefetch "
                 "(degree 256B, unclamped)")
    report("fig15a", "Figure 15a — prefetch distance sweep", lines)
