"""Figure 19: after Limoncello (with the scheduler integration), machines
reach higher CPU utilization before hitting bandwidth saturation.

Paper: the saturation point moves from the 40-50% CPU band (Figure 4) to
the 70-80% band, unlocking stranded CPU capacity.
"""

from repro.fleet import RolloutStudy


def run_experiment():
    return RolloutStudy(machines=28, epochs=90, warmup_epochs=30,
                        seed=5).run()


def test_fig19_bw_vs_cpu_after(benchmark, report):
    result = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    curves = result.bandwidth_vs_cpu()

    def top_bucket(curve):
        return max(int(bucket.split("-")[0]) for bucket in curve)

    # The populated CPU range extends further right after the rollout…
    assert top_bucket(curves["after"]) >= top_bucket(curves["before"])
    # …and mean machine CPU utilization rises.
    gain = result.cpu_utilization_gain()
    assert gain > 0.01

    buckets = sorted(set(curves["before"]) | set(curves["after"]),
                     key=lambda b: int(b.split("-")[0]))
    lines = [f"{'CPU bucket':>10} {'bw util before':>15} "
             f"{'bw util after':>14}"]
    for bucket in buckets:
        before = curves["before"].get(bucket)
        after = curves["after"].get(bucket)
        lines.append(f"{bucket:>10} "
                     f"{before if before is not None else float('nan'):15.2f} "
                     f"{after if after is not None else float('nan'):14.2f}")
    lines.append(f"mean machine CPU utilization: "
                 f"{result.before.cpu_utilization_mean():.1%} -> "
                 f"{result.full_integrated.cpu_utilization_mean():.1%} "
                 f"({gain:+.1%})")
    report("fig19", "Figure 19 — bandwidth vs CPU utilization, "
           "before/after", lines)
