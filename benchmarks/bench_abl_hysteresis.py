"""Design ablation: hysteresis vs a single-threshold controller.

Section 3 argues that reacting to short bandwidth bursts "can be
counterproductive as we would constantly be toggling prefetchers". This
bench runs the same fleet under the deployed hysteresis controller and
under a naive single-threshold controller, and compares toggle counts and
throughput (toggles cost real work: serializing MSR writes, prefetcher
retraining — modelled by the socket's toggle penalty).
"""

from repro.core import SingleThresholdController
from repro.fleet import Fleet


def socket_toggles(fleet):
    return sum(socket.toggles for machine in fleet.machines
               for socket in machine.sockets)


def run_arm(controller_factory):
    fleet = Fleet(machines=16, seed=21)
    from repro.core import LimoncelloConfig
    config = LimoncelloConfig(sample_period_ns=fleet.epoch_ns,
                              sustain_duration_ns=3 * fleet.epoch_ns)
    fleet.deploy_hard_limoncello(config, controller_factory)
    fleet.deploy_soft_limoncello()
    fleet.run(25)
    metrics = fleet.run(80)
    return metrics, socket_toggles(fleet)


def run_experiment():
    hysteresis_metrics, hysteresis_toggles = run_arm(None)
    naive_metrics, naive_toggles = run_arm(
        lambda: SingleThresholdController(threshold=0.8))
    return (hysteresis_metrics, hysteresis_toggles,
            naive_metrics, naive_toggles)


def test_abl_hysteresis(benchmark, report):
    (hyst_metrics, hyst_toggles,
     naive_metrics, naive_toggles) = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1)

    # The naive controller thrashes…
    assert naive_toggles > 2 * hyst_toggles
    # …and that costs throughput.
    assert (hyst_metrics.normalized_throughput
            >= naive_metrics.normalized_throughput)

    lines = [
        f"{'controller':>22} {'toggles':>8} {'norm. throughput':>17}",
        f"{'hysteresis (deployed)':>22} {hyst_toggles:8d} "
        f"{hyst_metrics.normalized_throughput:17.3f}",
        f"{'single threshold':>22} {naive_toggles:8d} "
        f"{naive_metrics.normalized_throughput:17.3f}",
        "hysteresis (dual thresholds + sustain timer) suppresses "
        "thrashing on volatile bandwidth",
    ]
    report("abl_hysteresis", "Ablation — hysteresis vs single threshold",
           lines)
