"""Design ablation: disabling all prefetchers vs only the L2 streamer.

The paper disables *all* platform prefetchers ("For a given platform, we
disable all prefetchers in the platform", Section 3). This bench measures
what each choice buys on the fleet mix: the streamer is the dominant
traffic source, but the small prefetchers add their own overhead, so
all-off saves the most bandwidth at the highest miss cost.
"""

import random

from repro.access import AddressSpace
from repro.memsys import MemoryHierarchy
from repro.msr import INTEL_LIKE_MAP, MSRFile
from repro.workloads import fleetbench_trace

CONFIGS = (
    ("all on", ()),
    ("streamer off", ("l2_stream",)),
    ("streamer+adjacent off", ("l2_stream", "l2_adjacent_line")),
    ("all off", ("l2_stream", "l2_adjacent_line", "l1_stride",
                 "l1_next_line")),
)


def run_experiment():
    rows = []
    for label, disabled in CONFIGS:
        hierarchy = MemoryHierarchy()
        msrs = MSRFile()
        hierarchy.prefetchers.bind_msr(msrs, INTEL_LIKE_MAP)
        for name in disabled:
            INTEL_LIKE_MAP.disable_one(msrs, name)
        trace = fleetbench_trace(random.Random(7), AddressSpace(),
                                 scale=0.8)
        result = hierarchy.run(trace)
        rows.append((label, result.dram_total_bytes,
                     result.total.llc_mpki, result.total.cycles))
    return rows


def test_abl_per_prefetcher(benchmark, report):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    by_label = {label: (traffic, mpki, cycles)
                for label, traffic, mpki, cycles in rows}

    # Traffic falls monotonically as prefetchers are removed.
    traffic = [by_label[label][0] for label, _ in CONFIGS]
    assert traffic == sorted(traffic, reverse=True)
    # MPKI rises monotonically.
    mpki = [by_label[label][1] for label, _ in CONFIGS]
    assert mpki == sorted(mpki)
    # The key finding, and the reason the paper disables the *full set*:
    # partial disabling saves almost nothing, because the remaining
    # prefetchers compensate — coverage (MPKI) barely moves and most of
    # the traffic survives. Only all-off meaningfully reduces bandwidth.
    assert (by_label["streamer off"][1]
            < by_label["all off"][1] * 0.7), "others compensate on misses"
    total_saved = by_label["all on"][0] - by_label["all off"][0]
    partial_saved = (by_label["all on"][0]
                     - by_label["streamer+adjacent off"][0])
    assert partial_saved < 0.6 * total_saved

    base_traffic = by_label["all on"][0]
    lines = [f"{'configuration':>22} {'Δtraffic':>9} {'MPKI':>7} "
             f"{'Δcycles':>9}"]
    base_cycles = by_label["all on"][2]
    for label, _ in CONFIGS:
        t, m, c = by_label[label]
        lines.append(f"{label:>22} {t / base_traffic - 1:9.1%} "
                     f"{m:7.2f} {c / base_cycles - 1:9.1%}")
    lines.append("partial disabling saves little — the remaining "
                 "prefetchers compensate — which is why the paper "
                 "disables the full set and lets Soft Limoncello pay "
                 "back the miss cost")
    report("abl_per_prefetcher", "Ablation — which prefetchers to disable",
           lines)
