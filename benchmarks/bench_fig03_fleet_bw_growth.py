"""Figure 3: fleet memory-bandwidth usage per compute unit, 2020-2023.

Paper: ~1.4x growth over four years (~10% year on year) as workloads get
more data-intensive. Modelled by scaling each year's task bandwidth
demand by 10% and measuring bandwidth per scheduled compute unit.
"""

import dataclasses

from repro.fleet import Fleet
from repro.fleet.task import DEFAULT_TEMPLATE

YEARS = (2020, 2021, 2022, 2023)
YEARLY_INTENSITY_GROWTH = 1.10


def run_experiment():
    rows = []
    for index, year in enumerate(YEARS):
        scale = YEARLY_INTENSITY_GROWTH ** index
        median, sigma, low, high = DEFAULT_TEMPLATE.bandwidth_per_core
        template = dataclasses.replace(
            DEFAULT_TEMPLATE,
            bandwidth_per_core=(median * scale, sigma, low * scale,
                                high * scale))
        fleet = Fleet(machines=12, seed=3, template=template)
        metrics = fleet.run(40)
        bandwidth = metrics.bandwidth_summary().mean  # GB/s per socket
        compute_units = (metrics.cpu_utilization_mean()
                         * fleet.platform.compute_units)
        rows.append((year, bandwidth / compute_units))
    return rows


def test_fig03_fleet_bw_growth(benchmark, report):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    per_unit = [value for _, value in rows]
    growth = per_unit[-1] / per_unit[0]
    # Paper: ~1.4x over the window. The fleet's bandwidth admission caps
    # growth below the raw 1.33x intensity increase, as in production.
    assert 1.05 < growth < 1.6
    assert per_unit == sorted(per_unit)

    lines = [f"{'year':>6} {'GB/s per compute unit':>22}"]
    for year, value in rows:
        lines.append(f"{year:6d} {value:22.3f}")
    lines.append(f"growth 2020->2023: {growth:.2f}x (paper: ~1.4x)")
    report("fig03", "Figure 3 — fleet bandwidth per compute unit", lines)
