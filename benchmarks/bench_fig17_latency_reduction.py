"""Figure 17: fleet memory (L3 miss) latency reduction under Limoncello.

Paper: -13% at the median, -10% at the P99.
"""

from repro.fleet import AblationStudy


def run_experiment():
    # Matched machine populations isolate the latency effect (the paper's
    # metric is per-socket, not per-unit-of-work).
    study = AblationStudy(mode="hard+soft", machines=24, epochs=80,
                          warmup_epochs=25, seed=9)
    return study.run()


def test_fig17_latency_reduction(benchmark, report):
    result = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    latency = result.latency_reduction()

    assert latency["p50"] < -0.01
    assert latency["p90"] < 0
    assert latency["p99"] < 0
    # Median reduction of single-digit-to-teens percent, like the paper.
    assert -0.30 < latency["p50"] < -0.01

    lines = [f"{'stat':>5} {'Δ memory latency':>17}"]
    for stat in ("p50", "p90", "p99"):
        lines.append(f"{stat.upper():>5} {latency[stat]:17.1%}")
    lines.append("paper: -13% median, -10% P99")
    report("fig17", "Figure 17 — memory latency reduction", lines)
