"""Figure 7: per-machine memory bandwidth is volatile minute to minute.

Paper: a representative machine swings tens of GB/s within the hour —
the volatility that motivates the controller's hysteresis.
"""

import random

from repro.fleet import Machine, PLATFORM_1, sample_task
from repro.telemetry import TimeSeries
from repro.units import MINUTE

MINUTES = 60


def run_experiment():
    machine = Machine("fig7", PLATFORM_1, sockets=1,
                      demand_noise_sigma=0.25, rng=random.Random(3))
    socket = machine.sockets[0]
    rng = random.Random(3)
    while socket.cores_free > 8:
        task = sample_task(rng)
        if task.cores <= socket.cores_free:
            socket.add_task(task)

    series = TimeSeries("bandwidth")
    for minute in range(MINUTES):
        epochs = machine.step(minute * MINUTE, MINUTE)
        series.append(minute * MINUTE, epochs[0].bandwidth)
    return series


def test_fig07_bw_variability(benchmark, report):
    series = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    mean = series.mean()
    swing = (series.maximum() - series.minimum()) / mean
    assert swing > 0.25, "bandwidth should swing substantially"
    # Short-horizon moves: consecutive minutes regularly differ by >5%.
    moves = [abs(b - a) / mean
             for a, b in zip(series.values, series.values[1:])]
    assert sum(1 for m in moves if m > 0.05) > MINUTES // 6

    lines = [f"{'minute':>7} {'bandwidth (GB/s)':>17}"]
    for index, value in enumerate(series.values):
        if index % 5 == 0:
            lines.append(f"{index:7d} {value:17.1f}")
    lines.append(f"mean {mean:.1f} GB/s, min {series.minimum():.1f}, "
                 f"max {series.maximum():.1f} "
                 f"(peak-to-trough {swing:.0%} of mean)")
    report("fig07", "Figure 7 — per-machine bandwidth variability", lines)
