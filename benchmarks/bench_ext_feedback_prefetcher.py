"""Section 8.1 prototype: accuracy-first hardware prefetching.

The paper's discussion argues future hardware prefetchers should make
accuracy a first-class concern so that systems like Limoncello have less
waste to reclaim. This bench wraps the blind (unfiltered) next-line and
adjacent-line prefetchers — the archetypes of the coverage-over-traffic
philosophy — in the feedback-directed gate of
:class:`repro.memsys.prefetchers.feedback.FeedbackThrottledPrefetcher`
and measures the effect on an irregular-heavy mix.
"""

import random

from repro.access import AddressSpace
from repro.memsys import MemoryHierarchy, PrefetcherBank
from repro.memsys.prefetchers import (
    AdjacentLinePrefetcher,
    NextLinePrefetcher,
    StreamPrefetcher,
    StridePrefetcher,
)
from repro.memsys.prefetchers.feedback import FeedbackThrottledPrefetcher
from repro.workloads import fleet_mix_trace

WEIGHTS = {"btree_lookup": 0.35, "hashmap_probe": 0.25,
           "random_access": 0.15, "memcpy": 0.15, "hash": 0.10}


def mix():
    return fleet_mix_trace(random.Random(7), AddressSpace(),
                           weights=WEIGHTS)


def blind_prefetchers():
    return [NextLinePrefetcher(name="l1_next_line", degree=1,
                               page_filter_entries=None),
            AdjacentLinePrefetcher(name="l2_adjacent_line",
                                   page_filter_entries=None)]


def trained_prefetchers():
    return [StridePrefetcher(name="l1_stride"),
            StreamPrefetcher(distance=16, degree=4)]


def run_experiment():
    blind_bank = PrefetcherBank(blind_prefetchers() + trained_prefetchers())
    feedback_wrapped = [FeedbackThrottledPrefetcher(p)
                        for p in blind_prefetchers()]
    feedback_bank = PrefetcherBank(feedback_wrapped + trained_prefetchers())

    blind = MemoryHierarchy(prefetchers=blind_bank).run(mix())
    feedback = MemoryHierarchy(prefetchers=feedback_bank).run(mix())
    gating = {p.name: (p.gate_events, p.ungate_events, p.suppressed)
              for p in feedback_wrapped}
    return blind, feedback, gating


def test_ext_feedback_prefetcher(benchmark, report):
    blind, feedback, gating = benchmark.pedantic(run_experiment, rounds=1,
                                                 iterations=1)

    blind_unused = blind.dram_prefetch_fills - blind.useful_prefetches
    feedback_unused = (feedback.dram_prefetch_fills
                       - feedback.useful_prefetches)
    # The gate removes most of the wasted traffic…
    assert feedback.dram_prefetch_fills < 0.6 * blind.dram_prefetch_fills
    assert feedback_unused < 0.4 * blind_unused
    # …without costing performance (usually improving it).
    assert feedback.total.cycles < 1.02 * blind.total.cycles
    # The gate actually engaged, and re-opened on accurate phases.
    assert any(gates > 0 for gates, _, _ in gating.values())
    assert any(ungates > 0 for _, ungates, _ in gating.values())

    lines = [f"{'configuration':>10} {'cycles':>11} {'pf fills':>9} "
             f"{'wasted fills':>13} {'bandwidth':>10}"]
    for label, result in (("blind", blind), ("feedback", feedback)):
        unused = result.dram_prefetch_fills - result.useful_prefetches
        lines.append(f"{label:>10} {result.total.cycles:11.0f} "
                     f"{result.dram_prefetch_fills:9d} {unused:13d} "
                     f"{result.average_bandwidth:10.2f}")
    for name, (gates, ungates, suppressed) in gating.items():
        lines.append(f"  {name}: gated {gates}x, re-opened {ungates}x, "
                     f"suppressed {suppressed} proposals")
    lines.append("accuracy-first gating removes most wasted traffic at no "
                 "performance cost (Section 8.1's direction)")
    report("ext_feedback", "Extension — accuracy-throttled prefetching "
           "(Section 8.1)", lines)
