"""Batched lockstep engine throughput with ENABLED hardware prefetchers.

``bench_batched_engine`` times the ablated-fleet shape (empty banks).
This benchmark times the other half of DESIGN.md §11: 256 arms running
the *default aggressive prefetcher bank*, where the engine trains one
set of bank clones per lockstep group and issues hardware prefetches
through the shared cache state — the ``mode control`` sweep and the
noisy-neighbor control-mode shape. Scalar baseline and equivalence
checking mirror the ablated benchmark: a sample of arms runs the scalar
compiled engine and every observable number (including the hardware
prefetch counters) must match bit-for-bit before any throughput is
reported. Results go to
``benchmarks/results/BENCH_batched_enabled.json``; CI's perf job gates
the ``speedup`` ratio against ``benchmarks/baselines/``.
"""

import argparse
import json
import os
import pathlib
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
try:
    import repro  # noqa: F401
except ImportError:  # CLI use without PYTHONPATH=src
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.memsys import ConstantExternalLoad, MemoryHierarchy, run_many
from repro.memsys.hierarchy import SLOW_ENGINE_ENV
from repro.workloads.memo import memoized_fleet_mix

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
OUTPUT_PATH = RESULTS_DIR / "BENCH_batched_enabled.json"

ARMS = 256
SCALAR_SAMPLE = 8
MIXED_SEED = 7
MIXED_SCALE = 1.0
DEFAULT_ROUNDS = 2
DEFAULT_BATCH = 256

STAT_FIELDS = (
    "instructions", "compute_cycles", "stall_cycles", "loads", "stores",
    "software_prefetches", "l1_misses", "l2_misses", "llc_misses",
    "prefetch_covered", "late_prefetch_hits", "dram_wait_ns",
    "late_prefetch_wait_ns",
)

RESULT_FIELDS = (
    "elapsed_ns", "dram_demand_fills", "dram_prefetch_fills",
    "dram_demand_bytes", "dram_prefetch_bytes", "hw_prefetches_issued",
    "useful_prefetches", "wasted_prefetches",
)


def arm_load(index):
    """A deterministic per-arm background load in [0, 2) GB/s-equivalent.

    Heterogeneous loads keep the per-arm float lanes doing real work
    while cache *and prefetcher* behaviour stays arm-invariant — the
    enabled-bank lockstep invariant this benchmark exercises.
    """
    return (index % 16) * 0.125


def build_arm(index):
    # prefetchers=None keeps the hierarchy's default aggressive bank —
    # every arm identical, so the whole fleet forms one lockstep group.
    return MemoryHierarchy(
        external_load=ConstantExternalLoad(arm_load(index)))


def fingerprint(result):
    """Every observable RunResult number, for the equivalence check."""
    return (
        tuple(getattr(result, field) for field in RESULT_FIELDS),
        tuple(getattr(result.total, field) for field in STAT_FIELDS),
        tuple(sorted(
            (name, tuple(getattr(stats, field) for field in STAT_FIELDS))
            for name, stats in result.functions.items())),
    )


def time_batched(trace, arm_count, batch_size, rounds):
    """Best-of-``rounds`` sweep-path wall time, plus the last results."""
    best = float("inf")
    results = None
    for _ in range(rounds):
        arms = [build_arm(i) for i in range(arm_count)]
        start = time.perf_counter()
        results = run_many(arms, trace, batch_size=batch_size,
                           export_state=False)
        best = min(best, time.perf_counter() - start)
    return best, results


def time_scalar_sample(trace, sample_indices, rounds):
    """Best-of-``rounds`` scalar time over the sampled arms, plus results."""
    best = float("inf")
    results = None
    for _ in range(rounds):
        arms = [build_arm(i) for i in sample_indices]
        start = time.perf_counter()
        round_results = [arm.run(trace) for arm in arms]
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best = elapsed
            results = round_results
    return best, results


def run_experiment(arm_count=ARMS, batch_size=DEFAULT_BATCH,
                   rounds=DEFAULT_ROUNDS, sample=SCALAR_SAMPLE):
    if os.environ.get(SLOW_ENGINE_ENV):
        raise SystemExit(
            f"{SLOW_ENGINE_ENV} is set; it disables the batched engine, "
            "so this benchmark would measure nothing — unset it first")
    trace = memoized_fleet_mix(MIXED_SEED, MIXED_SCALE)
    compiled = trace.compile()

    step = max(1, arm_count // sample)
    sample_indices = list(range(0, arm_count, step))[:sample]

    batched_s, batched_results = time_batched(trace, arm_count,
                                              batch_size, rounds)
    scalar_s, scalar_results = time_scalar_sample(trace, sample_indices,
                                                  rounds)

    for index, scalar_result in zip(sample_indices, scalar_results):
        if fingerprint(batched_results[index]) != fingerprint(scalar_result):
            raise AssertionError(
                f"batched and scalar engines disagree on arm {index}; "
                "refusing to report throughput for a broken fast path")
    issued = batched_results[0].hw_prefetches_issued
    if issued <= 0:
        raise AssertionError(
            "the enabled bank issued no hardware prefetches; this "
            "benchmark would be timing the ablated shape by accident")

    scalar_s_per_arm = scalar_s / len(sample_indices)
    scalar_s_extrapolated = scalar_s_per_arm * arm_count
    speedup = scalar_s_extrapolated / batched_s
    accesses = compiled.length
    return {
        "benchmark": "batched_enabled",
        "rounds": rounds,
        "machines": arm_count,
        "batch_size": batch_size,
        "scalar_sample": len(sample_indices),
        "trace_seed": MIXED_SEED,
        "trace_scale": MIXED_SCALE,
        "accesses_per_arm": accesses,
        "hw_prefetches_per_arm": issued,
        "arms": {
            "sweep": {
                "machines": arm_count,
                "accesses": accesses * arm_count,
                "scalar_s_per_arm": scalar_s_per_arm,
                "scalar_s_extrapolated": scalar_s_extrapolated,
                "batched_s": batched_s,
                "batched_arms_per_s": arm_count / batched_s,
                "speedup": speedup,
                "target_speedup": 5.0,
                "equivalent": True,
            },
        },
    }


def write_output(data, path=OUTPUT_PATH):
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(data, indent=2) + "\n")
    return path


def summary_lines(data):
    arm = data["arms"]["sweep"]
    return [
        f"{data['machines']} enabled-bank arms x "
        f"{data['accesses_per_arm']} accesses, "
        f"batch size {data['batch_size']}, "
        f"{data['hw_prefetches_per_arm']} hw prefetches/arm",
        f"scalar (compiled engine): {arm['scalar_s_per_arm']:.3f} s/arm "
        f"-> {arm['scalar_s_extrapolated']:.1f} s extrapolated "
        f"({data['scalar_sample']}-arm sample)",
        f"batched lockstep sweep:   {arm['batched_s']:.1f} s total "
        f"({arm['batched_arms_per_s']:.1f} arms/s)",
        f"speedup: {arm['speedup']:.2f}x (target "
        f"{arm['target_speedup']:.1f}x)",
        "sampled arms verified bit-identical between engines",
    ]


def test_batched_enabled(benchmark, report):
    data = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    write_output(data)

    # The ISSUE target (>= 5x on a 256-machine enabled sweep) is what
    # the JSON records; the enforced floor stays conservative so shared
    # CI runners do not flake the suite.
    assert data["arms"]["sweep"]["speedup"] >= 2.0

    report("BENCH_batched_enabled",
           "Batched lockstep engine - 256 enabled-bank arms vs scalar",
           summary_lines(data))


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Benchmark the batched lockstep engine with the "
                    "default prefetcher bank enabled on every arm.")
    parser.add_argument("--arms", type=int, default=ARMS,
                        help="machine-arms in the sweep")
    parser.add_argument("--batch-size", type=int, default=DEFAULT_BATCH,
                        help="arms per lockstep batch")
    parser.add_argument("--rounds", type=int, default=DEFAULT_ROUNDS,
                        help="timing rounds per engine (best-of)")
    parser.add_argument("--sample", type=int, default=SCALAR_SAMPLE,
                        help="arms to run on the scalar engine for the "
                             "baseline and equivalence check")
    parser.add_argument("--output", default=str(OUTPUT_PATH),
                        help="where to write the JSON results")
    parser.add_argument("--min-speedup", type=float, default=0.0,
                        help="fail unless the sweep reaches this "
                             "batched/scalar speedup")
    args = parser.parse_args(argv)

    data = run_experiment(arm_count=args.arms, batch_size=args.batch_size,
                          rounds=args.rounds, sample=args.sample)
    path = write_output(data, args.output)
    print("\n".join(summary_lines(data)))
    print(f"wrote {path}")

    speedup = data["arms"]["sweep"]["speedup"]
    if speedup < args.min_speedup:
        print(f"PERF GATE FAILED: sweep speedup {speedup:.2f}x "
              f"< required {args.min_speedup:.2f}x", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
