"""Figure 15c: the libc memcpy microbenchmarks under the four prefetcher
states, relative to (+HW, -SW).

Paper: -HW,-SW is the slowest; adding the tuned software prefetch
(-HW,+SW) recovers most of the gap; +HW,+SW is a small perturbation of
the baseline. The production descriptor — clamped, size-gated — is used.
"""

from repro.core import PrefetchDescriptor
from repro.microbench import MemcpyMicrobenchmark
from repro.units import KB

#: A libc-suite-like mixed size sweep.
SIZES = (1 * KB, 4 * KB, 16 * KB, 64 * KB, 256 * KB)

PRODUCTION_DESCRIPTOR = PrefetchDescriptor(
    "memcpy", distance_bytes=512, degree_bytes=256,
    min_size_bytes=2 * KB, clamp_to_stream=True)


def run_experiment():
    bench = MemcpyMicrobenchmark(sizes=SIZES, bytes_per_point=128 * KB)
    return bench.prefetcher_state_comparison(PRODUCTION_DESCRIPTOR)


def test_fig15c_libc_states(benchmark, report):
    states = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    # -HW,-SW is the slowest configuration.
    assert states["-HW,-SW"] < 0
    assert states["-HW,-SW"] == min(states.values())
    # Software prefetching recovers most of the lost performance.
    recovered = 1 - states["-HW,+SW"] / states["-HW,-SW"]
    assert recovered > 0.6
    # On top of hardware prefetching, software adds little either way.
    assert abs(states["+HW,+SW"]) < abs(states["-HW,-SW"]) / 2

    lines = [f"{'state':>9} {'speedup vs +HW,-SW':>19}"]
    lines.append(f"{'+HW,-SW':>9} {0.0:19.1%}  (reference)")
    for state in ("-HW,-SW", "-HW,+SW", "+HW,+SW"):
        lines.append(f"{state:>9} {states[state]:19.1%}")
    lines.append(f"software prefetch recovers {recovered:.0%} of the "
                 f"no-prefetcher gap (paper: most of it)")
    report("fig15c", "Figure 15c — four prefetcher states on the libc "
           "suite", lines)
