"""Figure 12: aggregated cycle change per function category under
prefetcher ablation.

Paper: every data center tax category (compression, data transmission,
hashing, data movement) increases in cycles when prefetchers are
disabled; non-tax functions collectively decrease.
"""

from repro.analysis import MicroAblationStudy, aggregate_by_category
from repro.workloads import FunctionCategory, TAX_CATEGORIES


def run_experiment():
    ablations = MicroAblationStudy(seed=7, scale=1.0).run()
    return aggregate_by_category(ablations)


def test_fig12_category_ablation(benchmark, report):
    rollup = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    for category in TAX_CATEGORIES:
        assert rollup[category] > 0.10, category   # paper: +10-30%
    assert rollup[FunctionCategory.NON_TAX] < 0.05  # paper: net decrease

    order = (FunctionCategory.COMPRESSION,
             FunctionCategory.DATA_TRANSMISSION,
             FunctionCategory.HASHING,
             FunctionCategory.DATA_MOVEMENT,
             FunctionCategory.NON_TAX)
    lines = [f"{'category':>18} {'Δcycles':>9}"]
    for category in order:
        lines.append(f"{category.value:>18} {rollup[category]:9.1%}")
    lines.append("paper: all tax categories up (10-30%), non-tax down")
    report("fig12", "Figure 12 — per-category prefetcher ablation", lines)
