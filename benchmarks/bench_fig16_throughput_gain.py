"""Figure 16: application throughput gain by CPU-utilization band.

Paper: +6-13% depending on band, biggest at the high-utilization
operating points (70%/80%), with no degradation at moderate load.
"""

from repro.fleet import RolloutStudy


def run_experiment():
    return RolloutStudy(machines=28, epochs=90, warmup_epochs=30,
                        seed=5).run()


def test_fig16_throughput_gain(benchmark, report):
    result = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    gains = result.throughput_gain_by_band()

    assert len(gains) == 3, "all three CPU bands must be populated"
    for band, gain in gains.items():
        assert gain > 0, f"Limoncello must not degrade the {band} band"
    assert max(gains.values()) > 0.01

    lines = [f"{'CPU band':>9} {'Δ throughput':>13}"]
    for band, gain in gains.items():
        lines.append(f"{band:>9} {gain:13.1%}")
    lines.append("paper: +6% to +13%, largest at 70-80% utilization")
    report("fig16", "Figure 16 — throughput gain by CPU band", lines)
