"""Design ablation: the sustain-duration timer.

Sweeps the controller's sustain duration from zero (react instantly) to
long (react sluggishly). Too short and the controller chases noise
(toggles); too long and it misses genuine load shifts (less time in the
beneficial off-state at peak). The deployed setting sits in between.
"""

from repro.core import LimoncelloConfig
from repro.fleet import Fleet

SUSTAIN_EPOCHS = (0, 1, 3, 8)


def run_arm(sustain_epochs):
    fleet = Fleet(machines=14, seed=31)
    config = LimoncelloConfig(
        sample_period_ns=fleet.epoch_ns,
        sustain_duration_ns=sustain_epochs * fleet.epoch_ns)
    fleet.deploy_hard_limoncello(config)
    fleet.deploy_soft_limoncello()
    fleet.run(25)
    metrics = fleet.run(80)
    toggles = sum(socket.toggles for machine in fleet.machines
                  for socket in machine.sockets)
    duty_off = sum(
        1 for machine in fleet.machines for socket in machine.sockets
        for epoch in socket.history if not epoch.hw_prefetchers_on)
    epochs_total = sum(len(socket.history) for machine in fleet.machines
                       for socket in machine.sockets)
    return metrics.normalized_throughput, toggles, duty_off / epochs_total


def run_experiment():
    return {epochs: run_arm(epochs) for epochs in SUSTAIN_EPOCHS}


def test_abl_sustain_sweep(benchmark, report):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    toggles = {epochs: t for epochs, (_, t, _) in results.items()}
    # Longer sustain durations strictly reduce toggling.
    assert toggles[0] >= toggles[1] >= toggles[3] >= toggles[8]
    # An overly long sustain keeps prefetchers on longer at load.
    duty = {epochs: d for epochs, (_, _, d) in results.items()}
    assert duty[8] <= duty[0] + 0.02

    lines = [f"{'sustain (epochs)':>17} {'throughput':>11} {'toggles':>8} "
             f"{'time disabled':>14}"]
    for epochs, (throughput, toggle_count, duty_off) in results.items():
        lines.append(f"{epochs:17d} {throughput:11.3f} {toggle_count:8d} "
                     f"{duty_off:14.1%}")
    lines.append("short sustain chases noise; long sustain reacts late")
    report("abl_sustain", "Ablation — sustain-duration sweep", lines)
