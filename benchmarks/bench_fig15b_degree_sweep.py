"""Figure 15b: memcpy speedup vs copy size, sweeping prefetch degree
(distance fixed at 512 bytes).

Paper: large degrees hurt small copies badly (down to ~-60% at 2 KiB
degree on a 256-byte copy — pure over-fetch under load) while helping
large copies. This is the plot that motivated gating software prefetch
on call size (Section 4.3).
"""

from repro.core import PrefetchDescriptor
from repro.microbench import MemcpyMicrobenchmark
from repro.units import KB

DEGREES = (64, 128, 256, 512, 1024, 2048)
SIZES = (256, 1 * KB, 4 * KB, 16 * KB, 64 * KB, 256 * KB)
DISTANCE = 512


def run_experiment():
    bench = MemcpyMicrobenchmark(sizes=SIZES, bytes_per_point=128 * KB)
    sweeps = {}
    for degree in DEGREES:
        descriptor = PrefetchDescriptor(
            "memcpy", distance_bytes=DISTANCE, degree_bytes=degree,
            clamp_to_stream=False)
        sweeps[degree] = bench.speedup(descriptor)
    return sweeps


def test_fig15b_degree_sweep(benchmark, report):
    sweeps = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    # The paper's ~-60%: degree 2K destroys 256-byte copies.
    assert sweeps[2048][256] < -0.40
    # Small degrees are far safer on small copies.
    assert sweeps[64][256] > sweeps[2048][256] + 0.25
    # Large copies tolerate (and benefit from) large degrees.
    assert sweeps[2048][256 * KB] > sweeps[64][256 * KB] > 0

    header = "size(KB) " + " ".join(f"g={g:>5}" for g in DEGREES)
    lines = [header]
    for size in SIZES:
        cells = " ".join(f"{sweeps[g][size]*100:7.1f}" for g in DEGREES)
        lines.append(f"{size / KB:8.2f} {cells}")
    lines.append("columns: % speedup over no software prefetch "
                 "(distance 512B, unclamped)")
    lines.append(f"paper's -60% point: degree 2K on 256B copies -> "
                 f"{sweeps[2048][256]:+.0%} here")
    report("fig15b", "Figure 15b — prefetch degree sweep", lines)
