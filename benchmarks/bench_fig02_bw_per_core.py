"""Figure 2: memory bandwidth per core plateaus across server generations.

Paper: total bandwidth grows ~8x over 2010-2022 while bandwidth per core
stays flat — the scarcity driving the whole system.
"""

from repro.fleet import PLATFORM_CATALOG


def run_experiment():
    base = PLATFORM_CATALOG[0]
    rows = []
    for spec in PLATFORM_CATALOG:
        rows.append((
            spec.year,
            spec.saturation_bandwidth / base.saturation_bandwidth,
            spec.bandwidth_per_core / base.bandwidth_per_core,
            spec.bandwidth_per_core,
        ))
    return rows


def test_fig02_bw_per_core(benchmark, report):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    total_growth = [growth for _, growth, _, _ in rows]
    per_core_growth = [growth for _, _, growth, _ in rows]
    assert total_growth[-1] > 6.0                     # membw grows ~8x
    assert max(per_core_growth) < 1.5                 # per-core plateaus
    assert total_growth == sorted(total_growth)

    lines = [f"{'year':>6} {'membw growth':>13} {'membw/core growth':>18} "
             f"{'GB/s per core':>14}"]
    for year, total, per_core, absolute in rows:
        lines.append(f"{year:6d} {total:13.2f} {per_core:18.2f} "
                     f"{absolute:14.2f}")
    report("fig02", "Figure 2 — bandwidth growth across generations", lines)
