"""Figure 1: load-to-use latency vs memory bandwidth utilization.

Paper: measured with Intel MLC; ~100 ns unloaded rising past 350 ns at
full load, with the prefetchers-ON curve sitting ~15% above the
prefetchers-OFF curve at high utilization.
"""

from repro.analysis import measure_latency_curve

UTILIZATIONS = tuple(x / 10 for x in range(11))


def run_experiment():
    on = measure_latency_curve(True, UTILIZATIONS, probe_hops=400)
    off = measure_latency_curve(False, UTILIZATIONS, probe_hops=400)
    return on, off


def test_fig01_loaded_latency(benchmark, report):
    on, off = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    # Shape assertions (paper's qualitative claims).
    assert on.latency_at(1.0) > 2.5 * on.latency_at(0.0)      # 2x+ growth
    idle_gap = on.latency_at(0.0) / off.latency_at(0.0) - 1.0
    assert abs(idle_gap) < 0.02                               # coincide idle
    reduction = off.reduction_versus(on, 0.9)
    assert -0.35 < reduction < -0.05                          # ~-15%

    rows = [f"{'util':>6} {'HW on (ns)':>11} {'HW off (ns)':>12}"]
    for point_on, point_off in zip(on.points, off.points):
        rows.append(f"{point_on.utilization:6.1f} "
                    f"{point_on.latency_ns:11.1f} "
                    f"{point_off.latency_ns:12.1f}")
    rows.append(f"latency reduction at 90% utilization: {reduction:+.1%} "
                f"(paper: about -15%)")
    report("fig01", "Figure 1 — loaded latency, prefetchers on vs off", rows)
