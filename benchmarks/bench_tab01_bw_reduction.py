"""Table 1: disabling hardware prefetchers reduces fleet memory bandwidth.

Paper: average -15.7%/-11.2% (platform 1/2), P99 -10.4%/-2.8%,
peak -5.6%/-5.5% — with the reduction shrinking toward the tail, because
saturated sockets are demand-bound either way.
"""

from repro.fleet import AblationStudy, Fleet, PLATFORM_1, PLATFORM_2


def run_experiment():
    rows = {}
    for label, platform in (("platform 1", PLATFORM_1),
                            ("platform 2", PLATFORM_2)):
        study = AblationStudy(
            mode="off", epochs=60, warmup_epochs=20, seed=11,
            fleet_factory=lambda seed, p=platform: Fleet(
                machines=16, platform=p, seed=seed))
        rows[label] = study.run().bandwidth_reduction()
    return rows


def test_tab01_bw_reduction(benchmark, report):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    for label, reduction in rows.items():
        assert -0.30 < reduction["mean"] < -0.05, label  # paper 11-16%
        assert reduction["p99"] <= 0.02, label
        # Reduction shrinks toward the tail (saturated sockets are
        # demand-bound either way).
        assert abs(reduction["peak"]) <= abs(reduction["mean"]) + 0.03, label

    lines = [f"{'':>12} {'Average':>9} {'P99':>9} {'Peak':>9}"]
    for label, reduction in rows.items():
        lines.append(f"{label:>12} {-reduction['mean']:9.1%} "
                     f"{-reduction['p99']:9.1%} {-reduction['peak']:9.1%}")
    lines.append("paper:        15.7%/11.2%   10.4%/2.8%   5.6%/5.5%")
    report("tab01", "Table 1 — bandwidth reduction from disabling "
           "prefetchers", lines)
