"""Section 8.2 prototype: access-pattern visibility replaces guesswork.

"Better visibility into memory layouts and memory access patterns can
help with removing some of the guesswork in software prefetching." This
bench runs the analyzer over the fleet mix, auto-proposes descriptors for
whatever it classifies as streaming, and checks the proposals against
both the hand-tuned production descriptor and the ground-truth taxonomy.
"""

import random

from repro.access import AddressSpace
from repro.analysis import analyze_trace, propose_descriptors
from repro.microbench import FleetMixLoadTest
from repro.workloads import TAX_CATEGORIES, fleetbench_trace
from repro.workloads.base import category_of_function
from repro.workloads.functions import FUNCTION_ROSTER


def run_experiment():
    trace = fleetbench_trace(random.Random(7), AddressSpace())
    patterns = analyze_trace(trace)
    proposals = propose_descriptors(patterns, max_candidates=12)
    loadtest = FleetMixLoadTest(scale=1.0)
    validations = {d.function: loadtest.speedup(d) for d in proposals[:5]}
    return patterns, proposals, validations


def test_ext_pattern_analysis(benchmark, report):
    patterns, proposals, validations = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1)

    # Classification matches the ground-truth taxonomy: every tax
    # function streams; every irregular roster function does not.
    for name, profile in FUNCTION_ROSTER.items():
        if name not in patterns or patterns[name].accesses < 64:
            continue
        if profile.category in TAX_CATEGORIES:
            assert patterns[name].is_streaming, name
        elif name != "misc_streaming":
            assert not patterns[name].is_streaming, name
    # Proposals target only streaming functions, and they validate.
    for descriptor in proposals:
        assert patterns[descriptor.function].is_streaming
    assert sum(1 for s in validations.values() if s > 0) >= 3

    lines = [f"{'function':>16} {'verdict':>10} {'seq':>5} "
             f"{'p50 stream':>11}"]
    for pattern in sorted(patterns.values(), key=lambda p: -p.accesses):
        verdict = "stream" if pattern.is_streaming else "irregular"
        lines.append(f"{pattern.function:>16} {verdict:>10} "
                     f"{pattern.sequential_fraction:5.2f} "
                     f"{pattern.stream_p50_bytes:11.0f}")
    lines.append("")
    lines.append("auto-proposed descriptors, validated on the load test:")
    for function, speedup in validations.items():
        lines.append(f"  {function:>14}: {speedup:+6.2%}")
    tax_hits = sum(1 for d in proposals
                   if category_of_function(d.function) in TAX_CATEGORIES)
    lines.append(f"{tax_hits}/{len(proposals)} proposals are tax functions "
                 f"— the analyzer rediscovers Section 4.1's target list")
    report("ext_patterns", "Extension — access-pattern visibility "
           "(Section 8.2)", lines)
