"""Simulation-engine throughput: compiled fast path vs interpreter.

The memory-hierarchy simulator has two engines (DESIGN.md §5): the
reference interpreter (forced with ``REPRO_SLOW_ENGINE=1``) and the
compiled-trace fast path that ``run()`` takes by default for ``Trace``
inputs. This benchmark times both engines over three arms:

* ``stream`` — a pure 8-byte-stride load stream (L1-hit dominated),
  where the compiled engine's inlined hit path matters most.
  Target: >= 3x over the interpreter.
* ``mixed_off`` — the fleetbench workload mix with hardware
  prefetchers disabled (the ablation study's "off" arm).
  Target: >= 2x.
* ``mixed_on`` — the same mix with the default prefetcher bank
  enabled (informational; prefetcher callbacks dominate).

Each timing uses a fresh hierarchy per round (best of ``--rounds``),
and every arm first checks the two engines produce bit-identical
results before any number is reported. Results go to
``benchmarks/results/BENCH_sim_throughput.json``; CI's perf-smoke job
runs the CLI with ``--min-stream-speedup`` as a regression gate.
"""

import argparse
import json
import os
import pathlib
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
try:
    import repro  # noqa: F401
except ImportError:  # CLI use without PYTHONPATH=src
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.access import MemoryAccess, Trace
from repro.memsys import MemoryHierarchy, PrefetcherBank
from repro.memsys.hierarchy import SLOW_ENGINE_ENV
from repro.memsys.prefetchers.bank import default_prefetcher_bank
from repro.workloads.memo import memoized_fleet_mix

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
OUTPUT_PATH = RESULTS_DIR / "BENCH_sim_throughput.json"

STREAM_ACCESSES = 160_000
MIXED_SEED = 7
MIXED_SCALE = 3
DEFAULT_ROUNDS = 3

STAT_FIELDS = (
    "instructions", "compute_cycles", "stall_cycles", "loads", "stores",
    "software_prefetches", "l1_misses", "l2_misses", "llc_misses",
    "prefetch_covered", "late_prefetch_hits", "dram_wait_ns",
    "late_prefetch_wait_ns",
)

RESULT_FIELDS = (
    "elapsed_ns", "dram_demand_fills", "dram_prefetch_fills",
    "dram_demand_bytes", "dram_prefetch_bytes", "hw_prefetches_issued",
    "useful_prefetches", "wasted_prefetches",
)


def stream_trace():
    """A pure load stream with an 8-byte stride: ~7/8 L1 hits."""
    return Trace([MemoryAccess(address=i * 8, size=8, pc=1,
                               function="stream")
                  for i in range(STREAM_ACCESSES)])


def build_arms():
    mixed = memoized_fleet_mix(MIXED_SEED, MIXED_SCALE)
    return (
        {"name": "stream", "trace": stream_trace(),
         "bank": lambda: PrefetcherBank([]), "enabled": False,
         "target_speedup": 3.0},
        {"name": "mixed_off", "trace": mixed,
         "bank": default_prefetcher_bank, "enabled": False,
         "target_speedup": 2.0},
        {"name": "mixed_on", "trace": mixed,
         "bank": default_prefetcher_bank, "enabled": True,
         "target_speedup": None},
    )


def fingerprint(result):
    """Every observable RunResult number, for the equivalence check."""
    return (
        tuple(getattr(result, field) for field in RESULT_FIELDS),
        tuple(getattr(result.total, field) for field in STAT_FIELDS),
        tuple(sorted(
            (name, tuple(getattr(stats, field) for field in STAT_FIELDS))
            for name, stats in result.functions.items())),
    )


def run_engine(arm, slow, rounds):
    """Best-of-``rounds`` wall time on fresh hierarchies, plus a result."""
    saved = os.environ.get(SLOW_ENGINE_ENV)
    try:
        if slow:
            os.environ[SLOW_ENGINE_ENV] = "1"
        else:
            os.environ.pop(SLOW_ENGINE_ENV, None)
        best = float("inf")
        result = None
        for _ in range(rounds):
            hierarchy = MemoryHierarchy(prefetchers=arm["bank"]())
            hierarchy.set_hardware_prefetchers(arm["enabled"])
            start = time.perf_counter()
            result = hierarchy.run(arm["trace"])
            best = min(best, time.perf_counter() - start)
        return best, result
    finally:
        if saved is None:
            os.environ.pop(SLOW_ENGINE_ENV, None)
        else:
            os.environ[SLOW_ENGINE_ENV] = saved


def run_tracer_overhead(rounds=DEFAULT_ROUNDS):
    """Time the stream arm with observability off, disabled, and on.

    ``plain`` is the untouched simulator (``obs`` left ``None``);
    ``disabled`` attaches the falsy :data:`NULL_TRACER` — the state every
    study runs in when no ``--obs-dir`` is given — and must stay within
    the CI gate of the plain time; ``enabled`` attaches a recording
    tracer (informational).
    """
    from repro.obs import NULL_TRACER, Tracer

    arm = build_arms()[0]  # stream: the hot-loop-dominated arm
    arm["trace"].compile()

    def one_run(obs, repeats=3):
        # A single stream run is ~0.1s — short enough that scheduler
        # jitter alone exceeds the 5% CI gate. Timing several runs per
        # sample amortizes that noise.
        hierarchies = []
        for _ in range(repeats):
            hierarchy = MemoryHierarchy(prefetchers=arm["bank"]())
            hierarchy.set_hardware_prefetchers(arm["enabled"])
            hierarchy.obs = obs
            hierarchies.append(hierarchy)
        start = time.perf_counter()
        for hierarchy in hierarchies:
            hierarchy.run(arm["trace"])
        return time.perf_counter() - start

    # Interleave the modes within each round so clock drift, turbo
    # behaviour, and cache warmth hit all three equally; one untimed
    # warmup run soaks up first-touch effects. The per-run wall time is
    # ~0.1s, small enough that scheduler noise on shared runners swamps
    # a 5% gate at low sample counts — so this section takes more
    # best-of samples than the engine comparison does.
    tracer_rounds = max(3 * rounds, 9)
    one_run(None)
    plain_s = disabled_s = enabled_s = float("inf")
    for _ in range(tracer_rounds):
        plain_s = min(plain_s, one_run(None))
        disabled_s = min(disabled_s, one_run(NULL_TRACER))
        enabled_s = min(enabled_s, one_run(Tracer()))
    return {
        "accesses": STREAM_ACCESSES,
        "plain_s": plain_s,
        "disabled_s": disabled_s,
        "enabled_s": enabled_s,
        "disabled_overhead": disabled_s / plain_s - 1.0,
        "enabled_overhead": enabled_s / plain_s - 1.0,
    }


def run_experiment(rounds=DEFAULT_ROUNDS):
    arms = {}
    for arm in build_arms():
        # Lowering is one-time per trace (cached on the Trace object and
        # shared through the workload memo), so it is amortized out of
        # the per-run timing the same way it is across a fleet study.
        arm["trace"].compile()
        compiled_s, compiled_result = run_engine(arm, slow=False,
                                                 rounds=rounds)
        interp_s, interp_result = run_engine(arm, slow=True, rounds=rounds)
        if fingerprint(compiled_result) != fingerprint(interp_result):
            raise AssertionError(
                f"engines disagree on arm {arm['name']!r}; refusing to "
                "report throughput for a broken fast path")
        accesses = compiled_result.total.instructions
        arms[arm["name"]] = {
            "accesses": accesses,
            "interpreter_s": interp_s,
            "compiled_s": compiled_s,
            "interpreter_accesses_per_s": accesses / interp_s,
            "compiled_accesses_per_s": accesses / compiled_s,
            "speedup": interp_s / compiled_s,
            "target_speedup": arm["target_speedup"],
            "equivalent": True,
        }
    return {
        "benchmark": "sim_throughput",
        "rounds": rounds,
        "stream_accesses": STREAM_ACCESSES,
        "mixed_seed": MIXED_SEED,
        "mixed_scale": MIXED_SCALE,
        "arms": arms,
        "tracer": run_tracer_overhead(rounds),
    }


def write_output(data, path=OUTPUT_PATH):
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(data, indent=2) + "\n")
    return path


def summary_lines(data):
    lines = [f"{'arm':>10} {'accesses':>9} {'interp acc/s':>13} "
             f"{'compiled acc/s':>15} {'speedup':>8} {'target':>7}"]
    for name, arm in data["arms"].items():
        target = (f"{arm['target_speedup']:.1f}x"
                  if arm["target_speedup"] else "-")
        lines.append(
            f"{name:>10} {arm['accesses']:9d} "
            f"{arm['interpreter_accesses_per_s']:13.0f} "
            f"{arm['compiled_accesses_per_s']:15.0f} "
            f"{arm['speedup']:7.2f}x {target:>7}")
    lines.append("both engines verified bit-identical on every arm")
    tracer = data.get("tracer")
    if tracer:
        lines.append(
            f"tracer overhead on stream: disabled "
            f"{tracer['disabled_overhead']:+.1%}, enabled "
            f"{tracer['enabled_overhead']:+.1%}")
    return lines


def test_sim_throughput(benchmark, report):
    data = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    write_output(data)

    # The ISSUE targets (3x stream, 2x mixed) are what the JSON records;
    # the enforced floor stays conservative so shared CI runners do not
    # flake the suite.
    assert data["arms"]["stream"]["speedup"] >= 1.5
    assert data["arms"]["mixed_off"]["speedup"] >= 1.0

    report("BENCH_sim_throughput",
           "Simulation throughput — compiled engine vs interpreter",
           summary_lines(data))


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Benchmark the compiled trace engine against the "
                    "reference interpreter.")
    parser.add_argument("--rounds", type=int, default=DEFAULT_ROUNDS,
                        help="timing rounds per engine (best-of)")
    parser.add_argument("--output", default=str(OUTPUT_PATH),
                        help="where to write the JSON results")
    parser.add_argument("--min-stream-speedup", type=float, default=0.0,
                        help="fail unless the stream arm reaches this "
                             "compiled/interpreter speedup")
    parser.add_argument("--min-mixed-speedup", type=float, default=0.0,
                        help="fail unless the mixed_off arm reaches this "
                             "speedup")
    parser.add_argument("--max-tracer-overhead", type=float, default=None,
                        help="fail if a disabled tracer slows the stream "
                             "arm by more than this fraction (e.g. 0.05)")
    args = parser.parse_args(argv)

    data = run_experiment(rounds=args.rounds)
    path = write_output(data, args.output)
    print("\n".join(summary_lines(data)))
    print(f"wrote {path}")

    failures = []
    if data["arms"]["stream"]["speedup"] < args.min_stream_speedup:
        failures.append(
            f"stream speedup {data['arms']['stream']['speedup']:.2f}x "
            f"< required {args.min_stream_speedup:.2f}x")
    if data["arms"]["mixed_off"]["speedup"] < args.min_mixed_speedup:
        failures.append(
            f"mixed_off speedup {data['arms']['mixed_off']['speedup']:.2f}x "
            f"< required {args.min_mixed_speedup:.2f}x")
    if (args.max_tracer_overhead is not None
            and data["tracer"]["disabled_overhead"]
            > args.max_tracer_overhead):
        failures.append(
            f"disabled-tracer overhead "
            f"{data['tracer']['disabled_overhead']:+.1%} "
            f"> allowed {args.max_tracer_overhead:+.1%}")
    for failure in failures:
        print(f"PERF GATE FAILED: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
