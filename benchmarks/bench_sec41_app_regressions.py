"""Section 4.1's application-level ablation anecdotes.

"Disabling hardware prefetchers results in a >10% QPS gain in a
memory-bound search application, a >30% improvement of QPS in an ML model
server, and >1% throughput increase in a database server."

The three application models run their request mixes through the trace
simulator on a loaded socket, prefetchers on vs off. The ML server (almost
entirely random gathers) gains the most; the database (tax-heavy) the
least — the same ordering as the paper's anecdotes.
"""

import random

from repro.access import AddressSpace
from repro.memsys import MemoryHierarchy, PrefetcherBank, default_prefetcher_bank
from repro.workloads import database_server, ml_model_server, search_backend

BACKGROUND = 0.78  # fraction of saturation, modelling co-located load
#: Fleet-average prefetch traffic overhead: the ablation disables
#: prefetchers on the whole machine, so co-located traffic shrinks too.
FLEET_OVERFETCH = 0.13
APPS = (("search", search_backend),
        ("ml_model_server", ml_model_server),
        ("database", database_server))


def run_app(factory, prefetchers_on):
    app = factory()
    trace = app.workload_trace(random.Random(17), AddressSpace(),
                               requests=2, scale=0.5)
    bank = default_prefetcher_bank() if prefetchers_on \
        else PrefetcherBank([])
    background = BACKGROUND * 3.0
    if not prefetchers_on:
        background /= 1.0 + FLEET_OVERFETCH
    hierarchy = MemoryHierarchy(
        prefetchers=bank, external_load=lambda now: background)
    return hierarchy.run(trace).elapsed_ns


def run_experiment():
    gains = {}
    for name, factory in APPS:
        on = run_app(factory, True)
        off = run_app(factory, False)
        gains[name] = on / off - 1.0  # QPS gain of disabling prefetchers
    return gains


def test_sec41_app_regressions(benchmark, report):
    gains = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    # The irregular services (search, ML serving) gain strongly; the
    # tax-heavy database barely — the paper's pattern (>10%, >30%, >1%).
    assert gains["search"] > 0.10
    assert gains["ml_model_server"] > 0.10
    assert 0.0 < gains["database"] < min(gains["search"],
                                         gains["ml_model_server"])

    lines = [f"{'application':>16} {'QPS gain from -HW':>18}"]
    for name, gain in gains.items():
        lines.append(f"{name:>16} {gain:18.1%}")
    lines.append("paper: search >10%, ML model server >30%, database >1%")
    report("sec41_apps", "Section 4.1 — per-application ablation gains",
           lines)
