"""Checkpoint-journal overhead and kill-and-resume wall-clock.

The shard work-queue journals every finished shard to disk so an
interrupted study resumes instead of restarting. That durability must be
close to free: this benchmark times the same micro-fleet sweep three
ways —

* ``plain``: checkpointing disabled (the pre-queue behaviour),
* ``checkpoint``: journaling every shard to a fresh directory,
* ``resume``: killed deterministically after 80% of the shards
  (``REPRO_QUEUE_ABORT_AFTER`` semantics via the library knob), then
  resumed against the journal.

Before any number is reported, all three legs' result digests are
checked identical — the bit-identity contract the queue is built on.
Results go to ``benchmarks/results/BENCH_resume_overhead.json``; CI
fails the run when journaling costs more than ``--max-overhead``
(default 5%) and gates the ratios against ``benchmarks/baselines/``.
"""

import argparse
import json
import os
import pathlib
import shutil
import sys
import tempfile
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
try:
    import repro  # noqa: F401
except ImportError:  # CLI use without PYTHONPATH=src
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.errors import QueueInterrupted
from repro.fleet import MicroFleetSweep, sweep_digest
from repro.fleet.queue import ABORT_ENV_VAR

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
OUTPUT_PATH = RESULTS_DIR / "BENCH_resume_overhead.json"

MACHINES = 40
SHARD_SIZE = 4
SEED = 17
DEFAULT_ROUNDS = 3
KILL_FRACTION = 0.8


def build_sweep():
    return MicroFleetSweep(mode="off", machines=MACHINES, seed=SEED,
                           shard_size=SHARD_SIZE)


def time_plain(rounds):
    """Best-of wall time with every store disabled (cache_dir='' keeps
    the benchmark suite's shared study cache out of the measurement)."""
    best = float("inf")
    digest = None
    for _ in range(rounds):
        sweep = build_sweep()
        start = time.perf_counter()
        result = sweep.run(cache_dir="", checkpoint_dir="")
        best = min(best, time.perf_counter() - start)
        digest = sweep_digest(result)
    return best, digest


def time_checkpointed(rounds):
    """Best-of wall time journaling every shard to a fresh directory."""
    best = float("inf")
    digest = None
    for _ in range(rounds):
        root = tempfile.mkdtemp(prefix="bench-ckpt-")
        try:
            sweep = build_sweep()
            start = time.perf_counter()
            result = sweep.run(cache_dir="", checkpoint_dir=root)
            best = min(best, time.perf_counter() - start)
            digest = sweep_digest(result)
        finally:
            shutil.rmtree(root, ignore_errors=True)
    return best, digest


def time_resume(rounds):
    """Best-of wall time of the *resumed* leg after a kill at 80%.

    The interrupted leg is untimed — the number that matters is how
    fast a re-run gets back to the answer when most shards are already
    journaled.
    """
    shard_count = len(build_sweep().shard_specs())
    abort_after = max(1, int(shard_count * KILL_FRACTION))
    best = float("inf")
    digest = None
    restored = None
    for _ in range(rounds):
        root = tempfile.mkdtemp(prefix="bench-resume-")
        try:
            os.environ[ABORT_ENV_VAR] = str(abort_after)
            try:
                build_sweep().run(cache_dir="", checkpoint_dir=root)
                raise AssertionError(
                    f"{ABORT_ENV_VAR} never fired; the kill-and-resume "
                    "leg measured a plain run")
            except QueueInterrupted:
                pass
            finally:
                os.environ.pop(ABORT_ENV_VAR, None)
            sweep = build_sweep()
            start = time.perf_counter()
            result = sweep.run(cache_dir="", checkpoint_dir=root)
            best = min(best, time.perf_counter() - start)
            digest = sweep_digest(result)
            restored = sweep.queue_stats.restored
        finally:
            shutil.rmtree(root, ignore_errors=True)
    return best, digest, restored, abort_after, shard_count


def run_experiment(rounds=DEFAULT_ROUNDS):
    # Untimed warmup: pays the one-time costs (trace generation and
    # memoization, imports) so no timed leg carries them alone.
    build_sweep().run(cache_dir="", checkpoint_dir="")

    plain_s, plain_digest = time_plain(rounds)
    ckpt_s, ckpt_digest = time_checkpointed(rounds)
    resume_s, resume_digest, restored, abort_after, shards = (
        time_resume(rounds))

    if not plain_digest == ckpt_digest == resume_digest:
        raise AssertionError(
            "checkpointed or resumed digest differs from the plain run; "
            "refusing to report overhead for a queue that changes results")
    if restored != abort_after:
        raise AssertionError(
            f"resume restored {restored} shards, expected {abort_after}")

    overhead = ckpt_s / plain_s - 1.0
    return {
        "benchmark": "resume_overhead",
        "rounds": rounds,
        "machines": MACHINES,
        "shard_size": SHARD_SIZE,
        "shards": shards,
        "kill_fraction": KILL_FRACTION,
        "arms": {
            "checkpoint": {
                "plain_s": plain_s,
                "checkpointed_s": ckpt_s,
                "overhead": overhead,
                # Gate metric: plain/checkpointed wall ratio; 1.0 means
                # journaling is free, the committed floor is 0.95.
                "speedup": plain_s / ckpt_s,
                "target_speedup": 0.95,
                "bit_identical": True,
            },
            "resume": {
                "plain_s": plain_s,
                "resume_s": resume_s,
                "restored_shards": restored,
                # Gate metric: how much faster the resumed leg reaches
                # the answer than recomputing from scratch.
                "speedup": plain_s / resume_s,
                "target_speedup": 2.0,
                "bit_identical": True,
            },
        },
    }


def write_output(data, path=OUTPUT_PATH):
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(data, indent=2) + "\n")
    return path


def summary_lines(data):
    ckpt = data["arms"]["checkpoint"]
    resume = data["arms"]["resume"]
    return [
        f"{data['machines']} machines in {data['shards']} shards of "
        f"{data['shard_size']}, killed at "
        f"{data['kill_fraction']:.0%} for the resume leg",
        f"plain run:        {ckpt['plain_s']:.3f} s",
        f"checkpointed run: {ckpt['checkpointed_s']:.3f} s "
        f"({ckpt['overhead']:+.1%} overhead)",
        f"resumed run:      {resume['resume_s']:.3f} s "
        f"({resume['restored_shards']} shards restored, "
        f"{resume['speedup']:.2f}x faster than recompute)",
        "all three legs verified bit-identical",
    ]


def test_resume_overhead(benchmark, report):
    data = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    write_output(data)

    # The ISSUE gate: journaling costs at most 5% wall clock, and a
    # resume after an 80% kill beats a fresh run comfortably.
    assert data["arms"]["checkpoint"]["overhead"] <= 0.05
    assert data["arms"]["resume"]["speedup"] >= 2.0

    report("BENCH_resume_overhead",
           "Checkpoint journal - overhead and kill-and-resume",
           summary_lines(data))


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Measure checkpoint-journal overhead and "
                    "kill-and-resume wall-clock on a micro-fleet sweep.")
    parser.add_argument("--rounds", type=int, default=DEFAULT_ROUNDS,
                        help="timing rounds per leg (best-of)")
    parser.add_argument("--output", default=str(OUTPUT_PATH),
                        help="where to write the JSON results")
    parser.add_argument("--max-overhead", type=float, default=None,
                        help="fail when journaling overhead exceeds "
                             "this fraction (CI passes 0.05)")
    parser.add_argument("--min-resume-speedup", type=float, default=0.0,
                        help="fail unless the resumed leg beats a fresh "
                             "run by this factor")
    args = parser.parse_args(argv)

    data = run_experiment(rounds=args.rounds)
    path = write_output(data, args.output)
    print("\n".join(summary_lines(data)))
    print(f"wrote {path}")

    failed = False
    overhead = data["arms"]["checkpoint"]["overhead"]
    if args.max_overhead is not None and overhead > args.max_overhead:
        print(f"PERF GATE FAILED: checkpoint overhead {overhead:.1%} "
              f"> allowed {args.max_overhead:.1%}", file=sys.stderr)
        failed = True
    resume_speedup = data["arms"]["resume"]["speedup"]
    if resume_speedup < args.min_resume_speedup:
        print(f"PERF GATE FAILED: resume speedup {resume_speedup:.2f}x "
              f"< required {args.min_resume_speedup:.2f}x",
              file=sys.stderr)
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
