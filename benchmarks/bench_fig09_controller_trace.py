"""Figure 9: prefetcher state over time under threshold crossings.

The worked example from Section 3: bandwidth exceeds the 80% upper
threshold (disable), dips between the thresholds (no change), falls below
the 60% lower threshold (re-enable), rises between thresholds (no
change), and finally exceeds the upper threshold again (disable).
"""

from repro.core import LimoncelloConfig, LimoncelloDaemon, MSRPrefetcherActuator
from repro.msr import INTEL_LIKE_MAP, MSRFile
from repro.telemetry import PerfBandwidthSampler, ScriptedBandwidthSource
from repro.units import SECOND

PROFILE = (
    (0 * SECOND, 85.0),
    (8 * SECOND, 75.0),    # t=7.5 in the figure: between thresholds
    (12 * SECOND, 55.0),   # t=10: below the lower threshold
    (22 * SECOND, 70.0),   # before t=20: between thresholds
    (28 * SECOND, 90.0),   # t=20+: above the upper threshold
)
DURATION = 40 * SECOND


def run_experiment():
    socket = ScriptedBandwidthSource(PROFILE, saturation_bandwidth=100.0)
    msrs = MSRFile()
    daemon = LimoncelloDaemon(
        PerfBandwidthSampler(socket),
        MSRPrefetcherActuator(msrs, INTEL_LIKE_MAP),
        LimoncelloConfig(sustain_duration_ns=3 * SECOND))
    daemon.run(DURATION)
    return daemon


def test_fig09_controller_trace(benchmark, report):
    daemon = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    report_data = daemon.report
    states = list(report_data.prefetcher_state.values)
    utils = list(report_data.utilization.values)

    # Three transitions: disable, enable, disable (Figure 9).
    assert report_data.transitions == 3
    # Disabled during the initial 85% phase (after the sustain delay).
    assert states[6] == 0.0
    # Still disabled during the 75% dip (between thresholds).
    assert states[10] == 0.0
    # Re-enabled during the 55% phase.
    assert states[18] == 1.0
    # Still enabled during the 70% phase (between thresholds).
    assert states[25] == 1.0
    # Disabled again at the end.
    assert states[-1] == 0.0

    lines = [f"{'t(s)':>5} {'util':>6} {'prefetchers':>12}"]
    for tick, (util, state) in enumerate(zip(utils, states)):
        lines.append(f"{tick:5d} {util:6.2f} "
                     f"{'on' if state else 'OFF':>12}")
    report("fig09", "Figure 9 — prefetcher state over time", lines)
