"""Figure 8: the Hard Limoncello controller state machine.

Exercises every edge of the four-state diagram and benchmarks the
controller's decision throughput (it must be cheap: it runs every second
on every socket in the fleet).
"""

from repro.core import ControllerState, HardLimoncelloController, LimoncelloConfig
from repro.units import SECOND

CONFIG = LimoncelloConfig(lower_threshold=0.6, upper_threshold=0.8,
                          sustain_duration_ns=2 * SECOND)

#: A drive sequence touching every Figure 8 edge, with the state expected
#: *after* each sample.
EDGE_SCRIPT = (
    (0.5, ControllerState.ENABLED),        # enabled, stays enabled
    (0.9, ControllerState.OVERLOADED),     # membw > UT: start timing
    (0.7, ControllerState.ENABLED),        # membw < UT: timeout -> 0
    (0.9, ControllerState.OVERLOADED),     # membw > UT again
    (0.9, ControllerState.OVERLOADED),     # timing, not yet expired
    (0.9, ControllerState.DISABLED),       # timeout = 0: disable
    (0.7, ControllerState.DISABLED),       # membw > LT: stay disabled
    (0.5, ControllerState.UNDERLOADED),    # membw < LT: start timing
    (0.7, ControllerState.DISABLED),       # membw > LT: timeout -> 0
    (0.5, ControllerState.UNDERLOADED),    # membw < LT again
    (0.5, ControllerState.UNDERLOADED),    # timing, not yet expired
    (0.5, ControllerState.ENABLED),        # timeout = 0: enable
)


def walk_edges():
    controller = HardLimoncelloController(CONFIG)
    visited = []
    for tick, (utilization, expected) in enumerate(EDGE_SCRIPT):
        decision = controller.observe(tick * SECOND, utilization)
        visited.append((utilization, decision.state, expected))
    return controller, visited


def decision_throughput():
    controller = HardLimoncelloController(CONFIG)
    for tick in range(5000):
        controller.observe(tick * SECOND, 0.5 + 0.45 * (tick % 7 == 0))
    return controller


def test_fig08_state_machine(benchmark, report):
    controller, visited = walk_edges()
    for utilization, state, expected in visited:
        assert state is expected, (utilization, state, expected)
    assert {state for _, state, _ in visited} == set(ControllerState)
    assert controller.transitions == 2  # one disable, one enable

    benchmark(decision_throughput)

    lines = [f"{'sample util':>12} {'state after':>14}"]
    for utilization, state, _ in visited:
        lines.append(f"{utilization:12.2f} {state.value:>14}")
    lines.append("all four Figure 8 states and every edge exercised")
    report("fig08", "Figure 8 — controller state machine walk", lines)
