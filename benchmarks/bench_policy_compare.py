"""Policy head-to-head: the trained tree vs the hysteresis baseline.

Trains the per-prefetcher decision-tree policy offline (pure-python
CART over labelled ablation telemetry) and runs it against the paper's
hysteresis controller on one benched fleet configuration. The headline
metric is the band-oracle duty-cycle error advantage — how much less
often the tree leaves prefetchers in the wrong state when utilization
is unambiguously above/below the thresholds.

Both training and the comparison are pure functions of the study
parameters, so every number here is *deterministic*: the same report
digest on every runner, every run. That is what lets CI hard-gate

* tree duty-cycle error <= hysteresis duty-cycle error, and
* the speedup ratio against ``benchmarks/baselines/`` —

as exact checks rather than statistical hopes. Results go to
``benchmarks/results/BENCH_policy_compare.json``.
"""

import argparse
import json
import pathlib
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
try:
    import repro  # noqa: F401
except ImportError:  # CLI use without PYTHONPATH=src
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.config import LimoncelloConfig
from repro.policy import (HysteresisPolicy, PolicyComparison,
                          comparison_digest, policy_digest,
                          train_decision_tree_policy)
from repro.units import SECOND

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
OUTPUT_PATH = RESULTS_DIR / "BENCH_policy_compare.json"

MACHINES = 8
EPOCHS = 16
WARMUP = 4
SEED = 11
TRAIN_MACHINES = 8
PROBE_MACHINES = 2
PROBE_SCALE = 0.25

CONFIG = LimoncelloConfig(sample_period_ns=10 * SECOND,
                          sustain_duration_ns=30 * SECOND)


def run_experiment():
    train_start = time.perf_counter()
    tree = train_decision_tree_policy(
        machines=TRAIN_MACHINES, epochs=EPOCHS, warmup_epochs=WARMUP,
        seed=SEED, config=CONFIG, probe_machines=PROBE_MACHINES,
        probe_scale=PROBE_SCALE, cache_dir="", checkpoint_dir="")
    train_s = time.perf_counter() - train_start

    compare_start = time.perf_counter()
    report = PolicyComparison(
        {"hysteresis": HysteresisPolicy(CONFIG), "decision-tree": tree},
        machines=MACHINES, epochs=EPOCHS, warmup_epochs=WARMUP,
        seed=SEED, config=CONFIG).run(cache_dir="", checkpoint_dir="")
    compare_s = time.perf_counter() - compare_start

    tree_error = report["policies"]["decision-tree"]["duty_cycle_error"]
    hyst_error = report["policies"]["hysteresis"]["duty_cycle_error"]
    if tree_error > hyst_error:
        raise AssertionError(
            f"trained tree duty-cycle error {tree_error:.4f} exceeds "
            f"hysteresis baseline {hyst_error:.4f}; refusing to report "
            "an advantage that does not exist")

    return {
        "benchmark": "policy_compare",
        "machines": MACHINES,
        "epochs": EPOCHS,
        "warmup_epochs": WARMUP,
        "seed": SEED,
        "policy_digest": policy_digest(tree),
        "report_digest": comparison_digest(report),
        "ranking": report["ranking"],
        "duty_cycle_error": {"decision-tree": tree_error,
                             "hysteresis": hyst_error},
        "arms": {
            "policy_compare": {
                "tree_duty_cycle_error": tree_error,
                "hysteresis_duty_cycle_error": hyst_error,
                "tree_throughput_gain":
                    report["policies"]["decision-tree"]["throughput_gain"],
                "hysteresis_throughput_gain":
                    report["policies"]["hysteresis"]["throughput_gain"],
                "train_s": train_s,
                "compare_s": compare_s,
                # Gate metric: the baseline's error budget over the
                # tree's, shifted so a perfect tree against a perfect
                # baseline still reads 1.0. Deterministic — identical
                # on every runner.
                "speedup": (1.0 + hyst_error) / (1.0 + tree_error),
            },
        },
    }


def write_output(data, path=OUTPUT_PATH):
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(data, indent=2) + "\n")
    return path


def summary_lines(data):
    arm = data["arms"]["policy_compare"]
    return [
        f"benched fleet: {data['machines']} machines, "
        f"{data['epochs']} epochs (seed {data['seed']})",
        f"duty-cycle error: tree {arm['tree_duty_cycle_error']:.4f} vs "
        f"hysteresis {arm['hysteresis_duty_cycle_error']:.4f} "
        f"(advantage {arm['speedup']:.3f}x)",
        f"throughput gain: tree {arm['tree_throughput_gain']:+.2%} vs "
        f"hysteresis {arm['hysteresis_throughput_gain']:+.2%}",
        f"trained in {arm['train_s']:.2f} s, compared in "
        f"{arm['compare_s']:.2f} s",
        f"report digest {data['report_digest'][:16]}…  "
        f"policy digest {data['policy_digest'][:16]}…",
    ]


def test_policy_compare(benchmark, report):
    data = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    write_output(data)

    arm = data["arms"]["policy_compare"]
    # The ISSUE acceptance bar: the trained tree matches or beats the
    # hysteresis baseline on band-oracle duty-cycle error.
    assert arm["tree_duty_cycle_error"] <= arm["hysteresis_duty_cycle_error"]
    assert arm["speedup"] >= 1.0

    report("BENCH_policy_compare",
           "Trained decision-tree policy vs hysteresis baseline",
           summary_lines(data))


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Compare the offline-trained decision-tree policy "
                    "against the hysteresis baseline on the benched "
                    "fleet configuration.")
    parser.add_argument("--output", default=str(OUTPUT_PATH),
                        help="where to write the JSON results")
    parser.add_argument("--rounds", type=int, default=1,
                        help="accepted for refresh_baselines.py symmetry; "
                             "the report is deterministic, so one round "
                             "is exact and extra rounds are ignored")
    args = parser.parse_args(argv)

    data = run_experiment()
    path = write_output(data, args.output)
    print("\n".join(summary_lines(data)))
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
