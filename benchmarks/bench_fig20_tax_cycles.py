"""Figure 20: fleet cycles in targeted data-center-tax functions under
no / Hard-only / full Limoncello.

Paper: Hard Limoncello alone inflates the tax functions' cycle share
(hardware prefetchers really were helping them); adding Soft Limoncello's
insertions brings it back down — ~2% lower than the Hard-only level.
"""

from repro.fleet import RolloutStudy


def run_experiment():
    result = RolloutStudy(machines=24, epochs=80, warmup_epochs=25,
                          seed=5).run()
    return result.tax_cycle_shares()


def test_fig20_tax_cycles(benchmark, report):
    shares = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    none = shares["none"]["all targeted DC tax"]
    hard = shares["hard"]["all targeted DC tax"]
    full = shares["full"]["all targeted DC tax"]
    # Hard-only inflates tax cycles; Soft recovers them to ~baseline.
    assert hard > none + 0.005
    assert full < hard
    assert abs(full - none) < 0.03
    # Every individual category follows the same pattern.
    for category in ("compression", "data transmission", "hashing",
                     "data movement"):
        assert shares["hard"][category] >= shares["none"][category]
        assert shares["full"][category] <= shares["hard"][category]

    categories = ("compression", "data transmission", "hashing",
                  "data movement", "all targeted DC tax")
    lines = [f"{'category':>20} {'none':>7} {'hard':>7} {'full':>7}"]
    for category in categories:
        lines.append(f"{category:>20} "
                     f"{shares['none'][category]:7.1%} "
                     f"{shares['hard'][category]:7.1%} "
                     f"{shares['full'][category]:7.1%}")
    lines.append("paper: Hard raises tax cycles; Full recovers them")
    report("fig20", "Figure 20 — tax-function cycle share by arm", lines)
