"""Figure 13: prefetch distance and degree semantics.

The figure illustrates that a software prefetch issued at one address
acts on an address ``distance`` bytes ahead and fetches ``degree`` bytes.
This benchmark verifies the injector implements exactly those semantics
on a live stream, and measures injection throughput.
"""

from repro.access import AccessKind, MemoryAccess, Trace
from repro.core import PrefetchDescriptor, SoftwarePrefetchInjector

BASE = 0x8_0000
LINES = 256
DISTANCE = 4 * 64    # the figure's example: 4 cache lines ahead
DEGREE = 2 * 64


def build_trace():
    return Trace([MemoryAccess(address=BASE + i * 64, pc=11, function="f")
                  for i in range(LINES)])


def run_experiment():
    descriptor = PrefetchDescriptor(
        "f", distance_bytes=DISTANCE, degree_bytes=DEGREE,
        clamp_to_stream=False)
    injector = SoftwarePrefetchInjector([descriptor])
    out = injector.inject(build_trace())
    return injector, out


def test_fig13_distance_degree(benchmark, report):
    injector, out = run_experiment()
    prefetches = [r for r in out if r.kind is AccessKind.SOFTWARE_PREFETCH]

    # One prefetch per `degree` bytes of stream progress.
    assert len(prefetches) == LINES * 64 // DEGREE
    # Each prefetch targets exactly `distance` ahead of a stream offset
    # that is a multiple of `degree`, and covers `degree` bytes.
    for record in prefetches:
        offset = record.address - BASE
        assert (offset - DISTANCE) % DEGREE == 0
        assert offset >= DISTANCE
        assert record.size == DEGREE
    # Demand records are untouched.
    assert list(out.demand_only()) == list(build_trace())

    def inject_throughput():
        descriptor = PrefetchDescriptor(
            "f", distance_bytes=DISTANCE, degree_bytes=DEGREE)
        return SoftwarePrefetchInjector([descriptor]).inject(build_trace())

    benchmark(inject_throughput)

    lines = [
        f"stream: {LINES} lines from {BASE:#x}",
        f"descriptor: distance={DISTANCE}B ({DISTANCE // 64} lines), "
        f"degree={DEGREE}B ({DEGREE // 64} lines)",
        f"prefetches inserted: {len(prefetches)} "
        f"(= stream bytes / degree)",
        f"first prefetch: at load {BASE:#x} -> prefetch "
        f"{prefetches[0].address:#x} (+{DISTANCE}B), {DEGREE}B",
    ]
    report("fig13", "Figure 13 — distance/degree semantics", lines)
