"""Figure 4: memory bandwidth saturates at mid CPU utilization.

Paper: on bandwidth-bound platforms, sockets hit the bandwidth saturation
region at only 40-60% CPU utilization, stranding the CPU headroom the
fleet would need to reach its 70-80% utilization target.
"""

from repro.fleet import Fleet


def run_experiment():
    fleet = Fleet(machines=24, seed=7)
    metrics = fleet.run(80)
    return metrics


def test_fig04_bw_vs_cpu(benchmark, report):
    metrics = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    curve = metrics.bandwidth_by_cpu_bucket()

    # Bandwidth utilization rises with CPU utilization and reaches the
    # high-utilization region well below the 70-80% CPU target band.
    populated = {bucket: value for bucket, value in curve.items()}
    assert populated, "no machines recorded"
    saturating = [bucket for bucket, value in populated.items()
                  if value >= 0.75]
    assert saturating, "fleet never approaches bandwidth saturation"
    first_saturating_cpu = min(int(b.split("-")[0]) for b in saturating)
    assert first_saturating_cpu <= 60  # paper: 40-60% CPU

    # CPU utilization is capped by bandwidth: few machine-epochs reach
    # the 70-80% target.
    high_cpu = sum(1 for cpu, *_ in metrics.machine_points if cpu >= 0.75)
    assert high_cpu / len(metrics.machine_points) < 0.3

    lines = [f"{'CPU bucket':>10} {'mean bandwidth util':>20}"]
    for bucket, value in curve.items():
        lines.append(f"{bucket:>10} {value:20.2f}")
    lines.append(f"bandwidth reaches ~saturation from the "
                 f"{first_saturating_cpu}% CPU bucket (paper: 40-60%)")
    report("fig04", "Figure 4 — bandwidth vs CPU utilization (before)", lines)
