"""Scenario-subsystem benchmark: call-graph batching and noisy tenants.

Times the SLOFetch-style call-graph study on the lockstep-batched
engine against the scalar oracle (bit-identity asserted via digests —
the speedup is only reportable because the results are provably equal),
and runs the noisy-neighbor interference study to pin its headline
deterministic figures (disable duty cycle, controller flips, per-tenant
P99 tension versus the always-enabled twin).

The gate metric is the batched-vs-scalar wall-clock ``speedup`` of the
call-graph replay; ``check_throughput_regression.py`` diffs it against
``benchmarks/baselines/BENCH_scenarios.baseline.json`` with the
standard tolerance. Everything else in the payload (digests, duty
cycle, P99 deltas) is deterministic: identical on every runner.
Results go to ``benchmarks/results/BENCH_scenarios.json``.
"""

import argparse
import json
import pathlib
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
try:
    import repro  # noqa: F401
except ImportError:  # CLI use without PYTHONPATH=src
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.scenarios import (CallGraphScenario, NoisyNeighborScenario,
                             callgraph_digest, noisy_digest)

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
OUTPUT_PATH = RESULTS_DIR / "BENCH_scenarios.json"

#: Wide replica tiers so the mode-``off`` arms fill lockstep batches.
SERVICES = "edge:stream:32:32>leaf*1;leaf:random:32:24"
REQUESTS = 48
CALLGRAPH_SEED = 21

NOISY_MACHINES = 6
NOISY_EPOCHS = 16
NOISY_SEED = 23
SUSTAIN_NS = 30_000.0


def _time_callgraph(batch_size):
    scenario = CallGraphScenario(services=SERVICES, requests=REQUESTS,
                                 seed=CALLGRAPH_SEED, mode="off",
                                 batch_size=batch_size)
    start = time.perf_counter()
    result = scenario.run(workers=1, cache_dir="", checkpoint_dir="")
    return time.perf_counter() - start, scenario, result


def run_experiment():
    batched_s, scenario, batched = _time_callgraph(batch_size=64)
    scalar_s, _, scalar = _time_callgraph(batch_size=0)
    digest = callgraph_digest(batched)
    if digest != callgraph_digest(scalar):
        raise AssertionError(
            "batched call-graph result diverged from the scalar oracle; "
            "refusing to report a speedup for a different answer")
    slo = scenario.slo_summary(batched)

    noisy = NoisyNeighborScenario(machines=NOISY_MACHINES,
                                  epochs=NOISY_EPOCHS, seed=NOISY_SEED,
                                  mode="hard", sustain_ns=SUSTAIN_NS)
    noisy_start = time.perf_counter()
    interference = noisy.run(workers=1, cache_dir="", checkpoint_dir="")
    noisy_s = time.perf_counter() - noisy_start
    baseline = noisy.baseline_twin().run(workers=1, cache_dir="",
                                         checkpoint_dir="")
    comparison = noisy.compare_to_baseline(interference, baseline)
    duty = interference.duty_cycle_disabled()
    if duty <= 0.0:
        raise AssertionError(
            "the benched noisy-neighbor fleet never disabled prefetchers; "
            "the interference figures below would be vacuous")

    return {
        "benchmark": "scenarios",
        "services": SERVICES,
        "requests": REQUESTS,
        "callgraph_seed": CALLGRAPH_SEED,
        "noisy_machines": NOISY_MACHINES,
        "noisy_epochs": NOISY_EPOCHS,
        "noisy_seed": NOISY_SEED,
        "callgraph_digest": digest,
        "noisy_digest": noisy_digest(interference),
        "slo": {"p50_ns": slo.p50, "p90_ns": slo.p90, "p99_ns": slo.p99},
        "duty_cycle_disabled": duty,
        "transitions": interference.transitions(),
        "tenant_p99_change": {name: change["p99"]
                              for name, change in comparison.items()},
        "arms": {
            "scenarios": {
                "batched_s": batched_s,
                "scalar_s": scalar_s,
                "noisy_s": noisy_s,
                # Gate metric: scalar wall clock over batched for the
                # same (digest-identical) call-graph answer.
                "speedup": scalar_s / batched_s,
            },
        },
    }


def write_output(data, path=OUTPUT_PATH):
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(data, indent=2) + "\n")
    return path


def summary_lines(data):
    arm = data["arms"]["scenarios"]
    slo = data["slo"]
    p99 = data["tenant_p99_change"]
    return [
        f"call graph: {data['services']} x {data['requests']} requests",
        f"batched {arm['batched_s']:.3f} s vs scalar "
        f"{arm['scalar_s']:.3f} s ({arm['speedup']:.2f}x, digests equal)",
        f"end-to-end SLO: p50={slo['p50_ns']:.0f} ns "
        f"p90={slo['p90_ns']:.0f} ns p99={slo['p99_ns']:.0f} ns",
        f"noisy neighbors: {data['noisy_machines']} machines x "
        f"{data['noisy_epochs']} epochs in {arm['noisy_s']:.3f} s, "
        f"duty cycle {data['duty_cycle_disabled']:.1%}, "
        f"{data['transitions']} flips",
        "tenant p99 vs always-enabled: " + "  ".join(
            f"{name} {change:+.1%}" for name, change in p99.items()),
    ]


def test_scenarios(benchmark, report):
    data = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    write_output(data)

    # The interference study's headline tension: the socket-level
    # disable fires, and it slows the streaming tenant while not
    # slowing the random-lookup antagonist.
    assert data["duty_cycle_disabled"] > 0.0
    assert data["tenant_p99_change"]["latency"] > 0.0
    assert data["tenant_p99_change"]["batch"] <= 0.0
    assert data["arms"]["scenarios"]["speedup"] > 0.0

    report("BENCH_scenarios",
           "Scenario studies: batched call graph + noisy neighbors",
           summary_lines(data))


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Benchmark the scenario subsystem: batched-vs-scalar "
                    "call-graph replay and the noisy-neighbor "
                    "interference study.")
    parser.add_argument("--output", default=str(OUTPUT_PATH),
                        help="where to write the JSON results")
    parser.add_argument("--min-speedup", type=float, default=0.0,
                        help="fail unless the batched call-graph replay "
                             "beats the scalar oracle by this factor")
    parser.add_argument("--rounds", type=int, default=1,
                        help="accepted for refresh_baselines.py symmetry; "
                             "best-of timing uses a single round here")
    args = parser.parse_args(argv)

    data = run_experiment()
    path = write_output(data, args.output)
    print("\n".join(summary_lines(data)))
    print(f"wrote {path}")
    speedup = data["arms"]["scenarios"]["speedup"]
    if speedup < args.min_speedup:
        print(f"FAIL: speedup {speedup:.2f}x below the "
              f"--min-speedup {args.min_speedup:.2f}x gate")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
