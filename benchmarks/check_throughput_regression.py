"""Benchmark regression gate for the engine-throughput benchmarks.

Compares freshly generated ``BENCH_*.json`` results against the
committed baselines in ``benchmarks/baselines/`` and fails when any
arm's *speedup ratio* regressed by more than the allowed fraction
(default 20%). With no flags it gates every known benchmark
(:data:`KNOWN_BENCHMARKS`); ``--current``/``--baseline`` narrow it to
one explicit pair.

The gate compares speedup ratios, not absolute accesses/s: the ratio
divides out the raw speed of whatever runner CI landed on, so it is
stable across machine generations while still catching a fast path
that got slower relative to its reference engine.

Usage (CI runs this after the benchmarks themselves)::

    python benchmarks/check_throughput_regression.py

Exit codes are distinct so CI can tell setup problems from real
regressions: ``0`` all gates pass, ``1`` at least one metric regressed,
``2`` a results or baseline file is missing or malformed (run the
benchmark / commit the baseline first — that is not a perf regression).

Refresh the baselines intentionally with ``--update`` (or
``make bench-baselines``, which regenerates the results first) after a
change that is *supposed* to shift throughput, and commit the new files.
"""

import argparse
import json
import pathlib
import shutil
import sys

BENCH_DIR = pathlib.Path(__file__).resolve().parent
RESULTS_DIR = BENCH_DIR / "results"
BASELINES_DIR = BENCH_DIR / "baselines"
KNOWN_BENCHMARKS = ("sim_throughput", "trace_pipeline", "batched_engine",
                    "batched_enabled", "resume_overhead",
                    "adaptive_sampling", "policy_compare", "scenarios")
METRIC = "speedup"
DEFAULT_TOLERANCE = 0.20

EXIT_OK = 0
EXIT_REGRESSION = 1
EXIT_MISSING = 2


class MissingInput(Exception):
    """A results or baseline file is absent or unreadable (exit 2)."""


def current_path(name):
    return RESULTS_DIR / f"BENCH_{name}.json"


def baseline_path(name):
    return BASELINES_DIR / f"BENCH_{name}.baseline.json"


def load(path, role):
    path = pathlib.Path(path)
    if not path.exists():
        raise MissingInput(f"missing {role} file: {path}")
    try:
        with path.open() as handle:
            data = json.load(handle)
    except ValueError as exc:
        raise MissingInput(f"malformed {role} file ({exc}): {path}")
    if not isinstance(data, dict) or "arms" not in data:
        raise MissingInput(f"malformed {role} file (no arms): {path}")
    return data


def compare(name, current, baseline, tolerance):
    """Per-arm verdict lines plus the list of failure descriptions."""
    lines = [f"{'arm':>10} {'baseline':>9} {'current':>8} "
             f"{'change':>8} {'verdict':>8}"]
    failures = []
    for arm_name, base_arm in sorted(baseline["arms"].items()):
        base = base_arm[METRIC]
        arm = current["arms"].get(arm_name)
        if arm is None:
            failures.append(
                f"{name}: arm {arm_name!r} missing from current results")
            lines.append(f"{arm_name:>10} {base:8.2f}x {'-':>8} {'-':>8} "
                         f"{'MISSING':>8}")
            continue
        observed = arm[METRIC]
        change = (observed - base) / base
        regressed = change < -tolerance
        if regressed:
            failures.append(
                f"{name}: arm {arm_name!r} metric {METRIC!r} observed "
                f"{observed:.2f}x vs baseline {base:.2f}x "
                f"(ratio {observed / base:.2f}, allowed >= "
                f"{1.0 - tolerance:.2f})")
        lines.append(
            f"{arm_name:>10} {base:8.2f}x {observed:7.2f}x {change:+7.1%} "
            f"{'REGRESS' if regressed else 'ok':>8}")
    return lines, failures


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Fail when engine speedups regressed past the "
                    "tolerance vs the committed baselines.")
    parser.add_argument("--benchmarks", default=",".join(KNOWN_BENCHMARKS),
                        help="comma-separated benchmark names to gate "
                             "(default: all known)")
    parser.add_argument("--current", default=None,
                        help="gate one explicit results JSON instead of "
                             "the named benchmarks")
    parser.add_argument("--baseline", default=None,
                        help="baseline JSON for --current (required "
                             "together)")
    parser.add_argument("--tolerance", type=float,
                        default=DEFAULT_TOLERANCE,
                        help="allowed fractional speedup regression "
                             "(default 0.20 = 20%%)")
    parser.add_argument("--update", action="store_true",
                        help="overwrite the baselines with the current "
                             "results instead of gating")
    parser.add_argument("--list", action="store_true",
                        help="print the known benchmarks and per-file "
                             "status (results present / baseline "
                             "committed), then exit 0")
    args = parser.parse_args(argv)

    if args.list:
        print(f"{'benchmark':>18} {'results':>8} {'baseline':>9}")
        for name in KNOWN_BENCHMARKS:
            print(f"{name:>18} "
                  f"{'yes' if current_path(name).exists() else 'no':>8} "
                  f"{'yes' if baseline_path(name).exists() else 'no':>9}")
        print(f"\nexit codes: {EXIT_OK} = all gates pass, "
              f"{EXIT_REGRESSION} = regression past tolerance, "
              f"{EXIT_MISSING} = missing/malformed results or baseline")
        return EXIT_OK

    if not 0.0 < args.tolerance < 1.0:
        raise SystemExit("--tolerance must be in (0, 1)")
    if (args.current is None) != (args.baseline is None):
        raise SystemExit("--current and --baseline go together")

    if args.current is not None:
        pairs = [("explicit", pathlib.Path(args.current),
                  pathlib.Path(args.baseline))]
    else:
        names = [n for n in args.benchmarks.split(",") if n]
        pairs = [(n, current_path(n), baseline_path(n)) for n in names]

    failures = []
    try:
        for name, cur_path, base_path in pairs:
            current = load(cur_path, "results")
            if args.update:
                base_path.parent.mkdir(parents=True, exist_ok=True)
                shutil.copyfile(cur_path, base_path)
                print(f"baseline updated: {base_path}")
                continue
            baseline = load(base_path, "baseline")
            lines, gate_failures = compare(name, current, baseline,
                                           args.tolerance)
            print(f"== {name} ==")
            print("\n".join(lines))
            failures.extend(gate_failures)
    except MissingInput as exc:
        print(f"BENCH SETUP ERROR: {exc}", file=sys.stderr)
        return EXIT_MISSING

    if args.update:
        return EXIT_OK
    for failure in failures:
        print(f"BENCH REGRESSION: {failure}", file=sys.stderr)
    if not failures:
        print(f"all arms within {args.tolerance:.0%} of baseline")
    return EXIT_REGRESSION if failures else EXIT_OK


if __name__ == "__main__":
    sys.exit(main())
