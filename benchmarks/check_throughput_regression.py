"""Benchmark regression gate for the simulation-engine throughput.

Compares a fresh ``BENCH_sim_throughput.json`` against the committed
baseline in ``benchmarks/baselines/`` and fails when any arm's
compiled/interpreter *speedup ratio* regressed by more than the
allowed fraction (default 20%).

The gate compares speedup ratios, not absolute accesses/s: the ratio
divides out the raw speed of whatever runner CI landed on, so it is
stable across machine generations while still catching a fast path
that got slower relative to the interpreter.

Usage (CI runs this after the benchmark itself)::

    python benchmarks/check_throughput_regression.py \
        --current benchmarks/results/BENCH_sim_throughput.json

Refresh the baseline intentionally with ``--update`` after a change
that is *supposed* to shift throughput, and commit the new file.
"""

import argparse
import json
import pathlib
import shutil
import sys

BENCH_DIR = pathlib.Path(__file__).resolve().parent
CURRENT_PATH = BENCH_DIR / "results" / "BENCH_sim_throughput.json"
BASELINE_PATH = BENCH_DIR / "baselines" / "BENCH_sim_throughput.baseline.json"
DEFAULT_TOLERANCE = 0.20


def load(path):
    path = pathlib.Path(path)
    if not path.exists():
        raise SystemExit(f"missing benchmark file: {path}")
    with path.open() as handle:
        data = json.load(handle)
    if "arms" not in data:
        raise SystemExit(f"malformed benchmark file (no arms): {path}")
    return data


def compare(current, baseline, tolerance):
    """Per-arm verdict lines plus the list of failing arms."""
    lines = [f"{'arm':>10} {'baseline':>9} {'current':>8} "
             f"{'change':>8} {'verdict':>8}"]
    failures = []
    for name, base_arm in sorted(baseline["arms"].items()):
        base = base_arm["speedup"]
        arm = current["arms"].get(name)
        if arm is None:
            failures.append(f"arm {name!r} missing from current results")
            lines.append(f"{name:>10} {base:8.2f}x {'-':>8} {'-':>8} "
                         f"{'MISSING':>8}")
            continue
        speedup = arm["speedup"]
        change = (speedup - base) / base
        regressed = change < -tolerance
        if regressed:
            failures.append(
                f"arm {name!r} speedup {speedup:.2f}x is "
                f"{-change:.0%} below baseline {base:.2f}x "
                f"(allowed {tolerance:.0%})")
        lines.append(
            f"{name:>10} {base:8.2f}x {speedup:7.2f}x {change:+7.1%} "
            f"{'REGRESS' if regressed else 'ok':>8}")
    return lines, failures


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Fail when simulation-engine speedups regressed "
                    "past the tolerance vs the committed baseline.")
    parser.add_argument("--current", default=str(CURRENT_PATH),
                        help="freshly generated BENCH_sim_throughput.json")
    parser.add_argument("--baseline", default=str(BASELINE_PATH),
                        help="committed baseline JSON")
    parser.add_argument("--tolerance", type=float,
                        default=DEFAULT_TOLERANCE,
                        help="allowed fractional speedup regression "
                             "(default 0.20 = 20%%)")
    parser.add_argument("--update", action="store_true",
                        help="overwrite the baseline with the current "
                             "results instead of gating")
    args = parser.parse_args(argv)

    if not 0.0 < args.tolerance < 1.0:
        raise SystemExit("--tolerance must be in (0, 1)")

    current = load(args.current)
    if args.update:
        pathlib.Path(args.baseline).parent.mkdir(parents=True,
                                                 exist_ok=True)
        shutil.copyfile(args.current, args.baseline)
        print(f"baseline updated: {args.baseline}")
        return 0

    baseline = load(args.baseline)
    lines, failures = compare(current, baseline, args.tolerance)
    print("\n".join(lines))
    for failure in failures:
        print(f"BENCH REGRESSION: {failure}", file=sys.stderr)
    if not failures:
        print(f"all arms within {args.tolerance:.0%} of baseline")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
