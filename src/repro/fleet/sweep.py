"""The micro-fleet sweep: trace-driven machine-arms at batch throughput.

The ablation and rollout studies are *analytic* — their fleets evolve
epoch by epoch through the scheduler and controller models. This study
is the complementary *trace-driven* view: every machine-arm replays the
shared fleetbench-style mixed trace through a full
:class:`~repro.memsys.hierarchy.MemoryHierarchy`, differing only in its
background bandwidth pressure (a per-machine
:class:`~repro.memsys.dram.ConstantExternalLoad` drawn from a stable
BLAKE2b stream). That shape — hundreds of arms, one trace — is exactly
what the batched lockstep engine (:mod:`repro.memsys.batched`)
accelerates, and the sweep runs every shard through
:func:`~repro.memsys.hierarchy.run_many` so eligible arms batch
automatically. Both modes batch: ``off`` arms share empty-bank groups,
``control`` arms group by prefetcher-bank configuration and training
fingerprint (see ``DESIGN.md`` §11). Each shard also records a
:class:`~repro.memsys.batched.BatchOccupancy` — how many arms actually
batched, how many fell back to scalar and why — surfaced through
``repro sweep`` reports.

Determinism mirrors the other fleet studies:

* shards come from :func:`~repro.fleet.shard.plan_shards`, each with its
  :func:`~repro.fleet.shard.shard_seed`-derived trace seed;
* per-arm draws (background load, chaos crashes) come from
  :func:`~repro.faults.plan.fault_rng` streams keyed by study seed,
  shard index, and machine name — never from shared RNG state — so the
  result is independent of worker count and batch size;
* shard results merge by concatenation in plan order, so serial and
  sharded runs are bit-identical and :func:`sweep_digest` can prove it
  (the CI equivalence job also diffs digests across ``REPRO_BATCH``
  settings, pinning the batched engine to the scalar one end-to-end).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigError
from repro.faults.plan import FaultPlan, fault_rng
from repro.fleet.parallel import resolve_workers
from repro.fleet.shard import DEFAULT_SHARD_SIZE, ShardPlan, plan_shards
from repro.serialization import canonical_json

#: Sweep arm configurations: ``off`` ablates every hardware prefetcher;
#: ``control`` leaves the default aggressive bank enabled (the paired
#: baseline). Both batch through the lockstep engine — control arms
#: group by bank configuration and training fingerprint.
SWEEP_MODES = ("off", "control")

#: Shared-trace workloads the sweep can replay: the fleetbench-style
#: mixed trace (default) or the scenario subsystem's two-tenant
#: co-location interleave (the noisy-neighbor bridge).
SWEEP_WORKLOADS = ("fleetbench", "scenario")

#: Upper bound of the per-machine background-load draw, bytes/ns. Spans
#: idle co-tenants up to roughly two thirds of the DRAM saturation
#: bandwidth, the paper's busy-fleet regime.
_MAX_BACKGROUND_LOAD = 2.0

#: Fields every per-arm summary row carries, in serialization order.
_ARM_FIELDS = ("machine", "external_load", "down", "elapsed_ns",
               "stall_cycles", "llc_misses", "dram_demand_fills",
               "dram_wait_ns")

#: Extra per-arm fields a prefetcher-restricted sweep adds (policy
#: trainer probes). Emitted only when present, so plain-sweep payloads
#: and digests are unchanged.
_PREFETCH_FIELDS = ("hw_prefetches_issued", "useful_prefetches",
                    "prefetch_covered")


def background_load(study_seed: int, shard_index: int,
                    machine: str) -> float:
    """The arm's constant background DRAM pressure, bytes/ns.

    A pure function of ``(study seed, shard index, machine name)`` via a
    BLAKE2b-seeded stream, so it is identical across worker counts,
    batch sizes, and hosts.
    """
    rng = fault_rng(study_seed, "sweep-load", shard_index, machine)
    return rng.uniform(0.0, _MAX_BACKGROUND_LOAD)


def crashed(study_seed: int, shard_index: int, machine: str,
            rate: float) -> bool:
    """Whether a chaos sweep marks this arm down for the whole replay.

    The trace-driven sweep has no epoch axis, so the analytic studies'
    crash/outage/restart cycle collapses to a single draw: the arm is
    either up for the replay or down throughout (its row reports zeros).
    """
    if rate <= 0.0:
        return False
    rng = fault_rng(study_seed, "sweep-crash", shard_index, machine)
    return rng.random() < rate


@dataclass
class MicroSweepResult:
    """Per-arm summaries plus totals for one micro-fleet sweep.

    ``arms`` holds one row per machine in shard-plan order — down
    (crashed) arms included, zeroed, so row count and order are a pure
    function of the study parameters. Merging concatenates in shard
    order, which keeps serial and sharded results byte-identical.
    """

    mode: str
    machines: int = 0
    down: int = 0
    arms: List[Dict] = field(default_factory=list)
    #: Engine-occupancy telemetry for this result's shards (a
    #: :class:`~repro.memsys.batched.BatchOccupancy`), or ``None`` when
    #: restored from a cache/checkpoint payload. Deliberately excluded
    #: from :meth:`to_dict` so digests — the equivalence proof — cover
    #: results only, never how they were computed.
    occupancy: Optional[object] = field(default=None, compare=False,
                                        repr=False)

    def merge(self, other: "MicroSweepResult") -> "MicroSweepResult":
        """Fold the next shard's rows in (in place; plan order)."""
        if other.mode != self.mode:
            raise ConfigError(
                f"cannot merge mode {other.mode!r} into {self.mode!r}")
        self.machines += other.machines
        self.down += other.down
        self.arms.extend(other.arms)
        theirs = getattr(other, "occupancy", None)
        if theirs is not None:
            if self.occupancy is None:
                self.occupancy = theirs
            else:
                self.occupancy.merge(theirs)
        return self

    # --- aggregates ------------------------------------------------------------

    def total(self, field_name: str) -> float:
        """Sum of one numeric per-arm field over the live arms."""
        return sum(arm[field_name] for arm in self.arms if not arm["down"])

    def mean_elapsed_ns(self) -> float:
        """Mean simulated duration across live arms (0 if all down)."""
        live = self.machines - self.down
        return self.total("elapsed_ns") / live if live else 0.0

    def stall_fraction(self) -> float:
        """Fleet-wide share of cycles lost to memory stalls."""
        stalls = self.total("stall_cycles")
        elapsed = self.total("elapsed_ns")
        if elapsed <= 0.0:
            return 0.0
        # elapsed is in ns; stall_cycles are core cycles. The ratio uses
        # the per-arm rows' own units, so it is comparable across runs
        # of the same config only — which is all a sweep ever compares.
        return stalls / elapsed

    # --- serialization ----------------------------------------------------------

    def to_dict(self) -> Dict:
        """Lossless plain-data form (canonical field order per row)."""
        return {
            "mode": self.mode,
            "machines": self.machines,
            "down": self.down,
            "arms": [
                {name: arm[name]
                 for name in _ARM_FIELDS + _PREFETCH_FIELDS
                 if name in arm}
                for arm in self.arms
            ],
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "MicroSweepResult":
        return cls(mode=payload["mode"], machines=payload["machines"],
                   down=payload["down"],
                   arms=[dict(arm) for arm in payload["arms"]])


def sweep_digest(result: MicroSweepResult) -> str:
    """A stable content hash of a sweep result.

    Two results digest equal iff every row matches bit-for-bit —
    including each arm's float stall/elapsed values, which is what makes
    the digest a proof of engine equivalence: the CLI's
    ``--compare-serial`` and the CI batched-equivalence job diff digests
    across worker counts and ``REPRO_BATCH`` settings.
    """
    return hashlib.sha256(
        canonical_json(result.to_dict()).encode()).hexdigest()


@dataclass(frozen=True)
class MicroSweepShardSpec:
    """One shard's worth of a micro-fleet sweep (picklable pool payload)."""

    mode: str
    machines: int
    study_seed: int
    trace_seed: int
    scale: float
    crash_rate: float
    shard_index: int
    batch_size: Optional[int] = None
    #: Restrict the arm's hardware bank to these prefetchers (policy
    #: trainer probes); ``None`` keeps the mode's stock bank. Rows gain
    #: the :data:`_PREFETCH_FIELDS` counters when set.
    prefetchers: Optional[Tuple[str, ...]] = None
    #: Shared-trace workload; ``None`` means the default fleetbench mix
    #: (kept ``None`` rather than ``"fleetbench"`` so plain-sweep shard
    #: keys are unchanged).
    workload: Optional[str] = None


def run_sweep_shard(spec: MicroSweepShardSpec) -> MicroSweepResult:
    """Replay the shard's trace through its machine-arms.

    Pure function of the spec — the process-pool worker entry point.
    Arms are built cold, run through
    :func:`~repro.memsys.hierarchy.run_many` (which batches the eligible
    ones), and discarded; only their result rows survive, so the engine
    runs with ``export_state=False``.
    """
    from repro.memsys.batched import BatchOccupancy
    from repro.memsys.dram import ConstantExternalLoad
    from repro.memsys.hierarchy import MemoryHierarchy, run_many
    from repro.memsys.prefetchers.bank import (PrefetcherBank,
                                               default_prefetcher_bank)
    from repro.workloads.memo import memoized_fleet_mix, memoized_scenario_mix

    if spec.prefetchers is not None:
        if spec.mode == "off":
            raise ConfigError(
                "a prefetcher-restricted sweep needs mode 'control' "
                "(mode 'off' ablates the bank entirely)")
        known = {p.name for p in default_prefetcher_bank()}
        unknown = [name for name in spec.prefetchers if name not in known]
        if unknown:
            raise ConfigError(
                f"unknown prefetchers {unknown!r}; known: {sorted(known)}")
    if spec.workload == "scenario":
        trace = memoized_scenario_mix(spec.trace_seed, spec.scale)
    else:
        trace = memoized_fleet_mix(spec.trace_seed, spec.scale)
    rows: List[Dict] = []
    live_arms: List[MemoryHierarchy] = []
    live_rows: List[Dict] = []
    down = 0
    for index in range(spec.machines):
        machine = f"m{index}"
        load = background_load(spec.study_seed, spec.shard_index, machine)
        row = {
            "machine": f"s{spec.shard_index}/{machine}",
            "external_load": load,
            "down": False,
            "elapsed_ns": 0.0,
            "stall_cycles": 0.0,
            "llc_misses": 0,
            "dram_demand_fills": 0,
            "dram_wait_ns": 0.0,
        }
        if spec.prefetchers is not None:
            for name in _PREFETCH_FIELDS:
                row[name] = 0
        rows.append(row)
        if crashed(spec.study_seed, spec.shard_index, machine,
                   spec.crash_rate):
            row["down"] = True
            down += 1
            continue
        if spec.mode == "off":
            prefetchers = PrefetcherBank([])
        elif spec.prefetchers is not None:
            wanted = set(spec.prefetchers)
            prefetchers = PrefetcherBank(
                [p for p in default_prefetcher_bank() if p.name in wanted])
        else:
            prefetchers = None
        arm = MemoryHierarchy(
            prefetchers=prefetchers,
            external_load=ConstantExternalLoad(load))
        live_arms.append(arm)
        live_rows.append(row)

    occupancy = BatchOccupancy()
    if live_arms:
        results = run_many(live_arms, trace, batch_size=spec.batch_size,
                           export_state=False, occupancy=occupancy)
        for row, result in zip(live_rows, results):
            row["elapsed_ns"] = result.elapsed_ns
            row["stall_cycles"] = result.total.stall_cycles
            row["llc_misses"] = result.total.llc_misses
            row["dram_demand_fills"] = result.dram_demand_fills
            row["dram_wait_ns"] = result.total.dram_wait_ns
            if spec.prefetchers is not None:
                row["hw_prefetches_issued"] = result.hw_prefetches_issued
                row["useful_prefetches"] = result.useful_prefetches
                row["prefetch_covered"] = result.total.prefetch_covered
    return MicroSweepResult(mode=spec.mode, machines=spec.machines,
                            down=down, arms=rows, occupancy=occupancy)


class MicroFleetSweep:
    """A trace-driven sweep over a fleet of independent machine-arms.

    Args:
        mode: ``off`` (prefetchers ablated) or ``control`` (default
            bank enabled). Both batch through the lockstep engine —
            control arms group by bank configuration and training
            fingerprint. Same-seed off/control pairs are a paired
            experiment over identical traffic.
        machines: Total machine-arm population.
        seed: Master study seed; shard trace seeds and every per-arm
            draw derive from it deterministically.
        scale: Workload scale factor passed to the trace generator.
        crash_rate: Fraction of arms a chaos sweep marks down (drawn
            per-arm from the study's fault stream; 0 disables chaos).
        shard_size: Machines per shard (see :mod:`repro.fleet.shard`).
        batch_size: Lockstep batch size forwarded to
            :func:`~repro.memsys.hierarchy.run_many`; ``None`` defers to
            ``$REPRO_BATCH``. Never affects results, only throughput —
            which is why it is excluded from the cache key.
        prefetchers: Restrict every arm's hardware bank to these
            prefetchers (by name) — the policy trainer's per-prefetcher
            accuracy/coverage probes. Requires mode ``control``; arm
            rows gain issued/useful/covered prefetch counters. Enters
            cache and shard-task keys only when set, so plain-sweep keys
            are unchanged.
        workload: Which shared trace the arms replay — ``fleetbench``
            (default) or ``scenario`` (the noisy-neighbor tenant
            interleave from :mod:`repro.scenarios`). Enters cache and
            shard-task keys only when non-default, so existing keys are
            unchanged.
    """

    def __init__(self, mode: str = "off", machines: int = 64,
                 seed: int = 17, scale: float = 1.0,
                 crash_rate: float = 0.0,
                 shard_size: int = DEFAULT_SHARD_SIZE,
                 batch_size: Optional[int] = None,
                 fault_plan: Optional[FaultPlan] = None,
                 prefetchers: Optional[Tuple[str, ...]] = None,
                 workload: Optional[str] = None) -> None:
        if mode not in SWEEP_MODES:
            raise ConfigError(
                f"mode must be one of {SWEEP_MODES}, got {mode!r}")
        if workload is not None and workload not in SWEEP_WORKLOADS:
            raise ConfigError(
                f"workload must be one of {SWEEP_WORKLOADS}, "
                f"got {workload!r}")
        if workload == "fleetbench":
            workload = None  # the default; keep keys unchanged
        if prefetchers is not None:
            if mode == "off":
                raise ConfigError(
                    "a prefetcher-restricted sweep needs mode 'control' "
                    "(mode 'off' ablates the bank entirely)")
            prefetchers = tuple(prefetchers)
            if not prefetchers:
                raise ConfigError("prefetchers cannot be an empty tuple")
        if machines <= 0:
            raise ConfigError("need at least one machine")
        if scale <= 0:
            raise ConfigError(f"scale must be positive, got {scale}")
        if not 0.0 <= crash_rate < 1.0:
            raise ConfigError(
                f"crash rate must be in [0, 1), got {crash_rate}")
        if shard_size <= 0:
            raise ConfigError(f"shard size must be positive, got {shard_size}")
        if fault_plan is not None and crash_rate == 0.0:
            clause = fault_plan.clause("machine-crash")
            if clause is not None:
                rate = dict(clause.params).get("rate")
                crash_rate = float(rate) if rate is not None else 0.0
        self.mode = mode
        self.machines = machines
        self.seed = seed
        self.scale = scale
        self.crash_rate = crash_rate
        self.shard_size = shard_size
        self.batch_size = batch_size
        self.prefetchers = prefetchers
        self.workload = workload
        #: Work-queue disposition of the last :meth:`run` (a
        #: :class:`~repro.fleet.queue.QueueStats`), or ``None``.
        self.queue_stats = None

    # --- sharding ----------------------------------------------------------------

    def shard_plan(self) -> ShardPlan:
        """How this sweep's machines split across shards."""
        return plan_shards(self.machines, self.shard_size)

    def shard_specs(self) -> List[MicroSweepShardSpec]:
        """Per-shard specs (plan order), ready for any worker."""
        plan = self.shard_plan()
        return [
            MicroSweepShardSpec(
                mode=self.mode, machines=size, study_seed=self.seed,
                trace_seed=trace_seed, scale=self.scale,
                crash_rate=self.crash_rate, shard_index=index,
                batch_size=self.batch_size, prefetchers=self.prefetchers,
                workload=self.workload)
            for index, (size, trace_seed)
            in enumerate(zip(plan.sizes, plan.seeds(self.seed)))
        ]

    def cache_key_material(self) -> Dict:
        """Everything the result depends on, as plain data.

        Excludes the worker count *and* the batch size: the lockstep
        engine is bit-identical to the scalar one, so neither can change
        the result — a cache entry written under ``REPRO_BATCH=0`` must
        hit when read back under ``REPRO_BATCH=64``, and does.
        """
        material = {
            "study": "micro-sweep",
            "mode": self.mode,
            "machines": self.machines,
            "seed": self.seed,
            "scale": self.scale,
            "crash_rate": self.crash_rate,
            "shard_size": self.shard_size,
        }
        if self.prefetchers is not None:
            material["prefetchers"] = list(self.prefetchers)
        if self.workload is not None:
            material["workload"] = self.workload
        return material

    def shard_task_materials(self) -> List[Dict]:
        """Work-queue key material per shard (plan order).

        Each key covers the shard spec plus the trace fingerprint — the
        trace memo's own content key, ``("fleetbench_mix", trace_seed,
        scale)`` — and, like the study cache key, deliberately excludes
        the batch size (the lockstep engine is bit-identical to the
        scalar one, so a shard journaled under ``REPRO_BATCH=0`` must
        restore under ``REPRO_BATCH=64``, and does).
        """
        from repro.fleet.queue import shard_task_material

        materials = []
        for spec in self.shard_specs():
            body = {
                "mode": spec.mode,
                "machines": spec.machines,
                "study_seed": spec.study_seed,
                "trace_seed": spec.trace_seed,
                "scale": spec.scale,
                "crash_rate": spec.crash_rate,
                "shard_index": spec.shard_index,
                "trace": ["scenario_mix" if spec.workload == "scenario"
                          else "fleetbench_mix",
                          spec.trace_seed, spec.scale],
            }
            if spec.prefetchers is not None:
                body["prefetchers"] = list(spec.prefetchers)
            materials.append(shard_task_material("micro-sweep", body))
        return materials

    # --- execution ---------------------------------------------------------------

    def run(self, workers: Optional[int] = None,
            cache_dir: Optional[str] = None,
            checkpoint_dir: Optional[str] = None,
            resume: bool = True) -> MicroSweepResult:
        """Run every shard and merge the rows in plan order.

        Args:
            workers: Process-pool size. ``None`` reads ``$REPRO_WORKERS``
                (default 1, serial); ``0`` means all CPUs. The result is
                identical at any value.
            cache_dir: Result-cache directory (``None`` reads
                ``$REPRO_CACHE_DIR``; empty/unset disables caching).
            checkpoint_dir: Shard-journal directory (``None`` reads
                ``$REPRO_CHECKPOINT``; empty/unset disables
                checkpointing). Finished shards journal as they land
                and a re-run restores them; the merged result — and
                :func:`sweep_digest` — is bit-identical either way.
            resume: Whether to restore journaled shards (default) or
                recompute while still journaling.

        After the call, :attr:`queue_stats` holds the work-queue
        disposition (``None`` on a whole-study cache hit).
        """
        from repro.fleet.queue import run_checkpointed, shard_checkpoint
        from repro.fleet.result_cache import study_cache

        workers = resolve_workers(workers)
        cache = study_cache(cache_dir)
        checkpoint = shard_checkpoint(checkpoint_dir)
        self.queue_stats = None
        material = None
        if cache is not None:
            material = self.cache_key_material()
            payload = cache.load(material)
            if payload is not None:
                try:
                    return MicroSweepResult.from_dict(payload)
                except (KeyError, TypeError):
                    pass  # stale/foreign payload: recompute, overwrite
        specs = self.shard_specs()
        shards, stats = run_checkpointed(
            run_sweep_shard, specs, self.shard_task_materials(), workers,
            checkpoint=checkpoint,
            to_payload=MicroSweepResult.to_dict,
            from_payload=MicroSweepResult.from_dict,
            resume=resume)
        self.queue_stats = stats
        result = shards[0]
        for shard in shards[1:]:
            result.merge(shard)
        if cache is not None:
            cache.store(material, result.to_dict())
        return result
