"""The fleet rollout study — before/after full Limoncello (Section 6).

"Due to the size of the fleet, we rollout Limoncello to the entire fleet
over a period of a few weeks. [Figures] provide a comparison of average
fleetwide performance metrics before the rollout [...] and after the
rollout, when both Hard and Soft Limoncello were in full effect."

:class:`RolloutStudy` runs three arms from the same seed — before
(prefetchers always on), Hard-only, and full Limoncello — which is enough
to regenerate Figures 16 through 20.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.config import LimoncelloConfig
from repro.errors import ConfigError, TraceError
from repro.faults.metrics import ChaosMetrics, collect_chaos_metrics
from repro.faults.plan import FaultPlan
from repro.fleet.cluster import Fleet, FleetMetrics
from repro.fleet.parallel import resolve_workers
from repro.fleet.shard import DEFAULT_SHARD_SIZE, plan_shards
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.profiling.profile_data import ProfileData
from repro.profiling.profiler import FleetProfiler
from repro.workloads.base import FunctionCategory, TAX_CATEGORIES


@dataclass
class RolloutResult:
    """Metrics and profiles for the rollout arms.

    ``before``, ``hard_only``, and ``full`` hold the machine populations
    fixed (the scheduler is not yet prefetch-aware), isolating
    Limoncello's direct effect on latency, bandwidth, and throughput
    (Figures 16-18, 20). ``full_integrated`` additionally lets the
    scheduler see prefetcher state, converting the bandwidth savings into
    extra scheduled work — the capacity effect of Figure 19.
    """

    before: FleetMetrics
    hard_only: FleetMetrics
    full: FleetMetrics
    full_integrated: FleetMetrics
    before_profile: ProfileData
    hard_profile: ProfileData
    full_profile: ProfileData
    #: Controller-robustness aggregate for the full-Limoncello arm;
    #: ``None`` unless the study ran under a fault plan.
    chaos: Optional[ChaosMetrics] = None

    # --- combination -----------------------------------------------------------

    def merge(self, other: "RolloutResult") -> "RolloutResult":
        """Fold another shard's rollout arms into this one (in place).

        Arms merge pairwise through the associative metric/profile
        merges, so sharded rollout results are order-independent in
        every summary view. Returns ``self`` for chaining.
        """
        self.before.merge(other.before)
        self.hard_only.merge(other.hard_only)
        self.full.merge(other.full)
        self.full_integrated.merge(other.full_integrated)
        self.before_profile.merge(other.before_profile)
        self.hard_profile.merge(other.hard_profile)
        self.full_profile.merge(other.full_profile)
        if other.chaos is not None:
            if self.chaos is None:
                self.chaos = ChaosMetrics()
            self.chaos.merge(other.chaos)
        return self

    # --- Figure 16 ------------------------------------------------------------

    def throughput_gain_by_band(self, bands=((0.55, 0.65), (0.65, 0.75),
                                             (0.75, 0.85))) -> Dict[str, float]:
        """Fractional throughput gain per CPU-utilization band."""
        before = self.before.throughput_by_cpu_band(bands)
        after = self.full.throughput_by_cpu_band(bands)
        gains = {}
        for band, base in before.items():
            if base > 0 and band in after:
                gains[band] = after[band] / base - 1.0
        return gains

    # --- Figure 17 -------------------------------------------------------------

    def latency_reduction(self) -> Dict[str, float]:
        """Fractional memory-latency change, full arm vs before (Figure 17)."""
        return self.full.latency_summary().relative_change(
            self.before.latency_summary())

    # --- Figure 18 -------------------------------------------------------------

    def bandwidth_reduction(self) -> Dict[str, float]:
        """Fractional socket-bandwidth change, full arm vs before (Figure 18)."""
        return self.full.bandwidth_summary().relative_change(
            self.before.bandwidth_summary())

    def saturated_socket_change(self) -> float:
        """Fractional change in the saturated-socket share."""
        before = self.before.saturated_socket_fraction()
        if before <= 0:
            return 0.0
        return self.full.saturated_socket_fraction() / before - 1.0

    # --- capacity (Figure 19 companion numbers) ----------------------------------

    def cpu_utilization_gain(self) -> float:
        """Fractional mean CPU-utilization increase once the scheduler
        exploits Limoncello's bandwidth savings."""
        before = self.before.cpu_utilization_mean()
        if before <= 0:
            return 0.0
        return self.full_integrated.cpu_utilization_mean() / before - 1.0

    # --- Figure 19 --------------------------------------------------------------

    def bandwidth_vs_cpu(self) -> Dict[str, Dict[str, float]]:
        """Figure 19's before/after bandwidth-vs-CPU curves."""
        return {
            "before": self.before.bandwidth_by_cpu_bucket(),
            "after": self.full_integrated.bandwidth_by_cpu_bucket(),
        }

    # --- Figure 20 ---------------------------------------------------------------

    def tax_cycle_shares(self) -> Dict[str, Dict[str, float]]:
        """Fleet cycle share per tax category under the three arms."""
        out: Dict[str, Dict[str, float]] = {}
        for arm, profile in (("none", self.before_profile),
                             ("hard", self.hard_profile),
                             ("full", self.full_profile)):
            shares = profile.category_cycle_shares()
            out[arm] = {
                category.value: shares.get(category, 0.0)
                for category in FunctionCategory
                if category in TAX_CATEGORIES
            }
            out[arm]["all targeted DC tax"] = sum(out[arm].values())
        return out


@dataclass(frozen=True)
class RolloutShardSpec:
    """One shard's worth of a rollout study (picklable pool payload)."""

    machines: int
    epochs: int
    warmup_epochs: int
    seed: int
    config: Optional[LimoncelloConfig]
    profile_sample_rate: float
    fault_plan: Optional[FaultPlan] = None
    #: Position in the shard plan, for event stamping in traced workers.
    shard_index: int = 0


def run_rollout_shard(spec: RolloutShardSpec) -> RolloutResult:
    """Run one shard's four arms. Pure function of the spec — the
    process-pool worker entry point."""
    study = RolloutStudy(
        machines=spec.machines, epochs=spec.epochs,
        warmup_epochs=spec.warmup_epochs, seed=spec.seed,
        config=spec.config, profile_sample_rate=spec.profile_sample_rate,
        fault_plan=spec.fault_plan)
    return study._run_single()


def _traced_single(study: "RolloutStudy", tracer: Tracer, index: int,
                   machines: int, seed: int,
                   epochs: int) -> "RolloutResult":
    """Run a rollout's single-fleet path under ``tracer``, bracketed by
    shard-start/shard-finish events (see the ablation twin)."""
    tracer.event("shard-start", 0.0, index=index, machines=machines,
                 seed=seed)
    result = study._run_single(tracer)
    t_end = max((event["t_ns"] for event in tracer.events), default=0.0)
    tracer.event("shard-finish", t_end, index=index, epochs=epochs)
    return result


def obs_shard_payload(output: Tuple) -> Dict:
    """Serialize one traced rollout shard output — ``(result, events,
    wall)`` — for the checkpoint journal (see the ablation twin)."""
    from repro.serialization import rollout_result_to_dict

    result, events, wall = output
    return {"result": rollout_result_to_dict(result),
            "events": list(events), "wall": wall}


def obs_shard_from_payload(payload: Dict) -> Tuple:
    """Inverse of :func:`obs_shard_payload`."""
    from repro.serialization import rollout_result_from_dict

    return (rollout_result_from_dict(payload["result"]),
            list(payload["events"]), float(payload["wall"]))


def run_rollout_shard_obs(
        spec: RolloutShardSpec) -> Tuple[RolloutResult, List[Dict], float]:
    """Traced worker twin of :func:`run_rollout_shard`; returns
    ``(result, events, wall_seconds)`` — the tracer is built inside the
    worker and only its plain-dict events cross the process boundary."""
    start = time.monotonic()
    study = RolloutStudy(
        machines=spec.machines, epochs=spec.epochs,
        warmup_epochs=spec.warmup_epochs, seed=spec.seed,
        config=spec.config, profile_sample_rate=spec.profile_sample_rate,
        fault_plan=spec.fault_plan)
    tracer = Tracer()
    result = _traced_single(study, tracer, spec.shard_index, spec.machines,
                            spec.seed, spec.epochs)
    return result, tracer.events, time.monotonic() - start


class RolloutStudy:
    """Runs the before / Hard-only / full-Limoncello arms.

    Populations above ``shard_size`` machines split into deterministic
    sub-fleets that can run on parallel workers; the shard plan (and so
    the result) is independent of the worker count — see
    :mod:`repro.fleet.shard`.
    """

    def __init__(self, machines: int = 30, epochs: int = 100, seed: int = 5,
                 warmup_epochs: int = 20,
                 config: Optional[LimoncelloConfig] = None,
                 fleet_factory: Optional[Callable[[int], Fleet]] = None,
                 profile_sample_rate: float = 0.25,
                 shard_size: int = DEFAULT_SHARD_SIZE,
                 fault_plan: Optional[FaultPlan] = None) -> None:
        if epochs <= 0:
            raise ConfigError("epochs must be positive")
        if warmup_epochs < 0:
            raise ConfigError("warmup cannot be negative")
        if shard_size <= 0:
            raise ConfigError("shard size must be positive")
        self.machines = machines
        self.epochs = epochs
        self.warmup_epochs = warmup_epochs
        self.seed = seed
        self.config = config
        self.shard_size = shard_size
        self.fault_plan = fault_plan
        self._fleet_factory = fleet_factory
        self._sample_rate = profile_sample_rate
        #: Work-queue disposition of the last :meth:`run` (a
        #: :class:`~repro.fleet.queue.QueueStats`), or ``None``.
        self.queue_stats = None

    def _build(self, prefetch_aware: bool = False, tracer=None) -> Fleet:
        if self._fleet_factory is not None:
            fleet = self._fleet_factory(self.seed)
            if tracer:
                # Deploy hooks run after this, so daemons pick it up.
                for machine in fleet.machines:
                    machine.tracer = tracer
            return fleet
        from repro.fleet.scheduler import BandwidthAwareScheduler
        return Fleet(
            machines=self.machines, seed=self.seed,
            scheduler=BandwidthAwareScheduler(prefetch_aware=prefetch_aware),
            fault_plan=self.fault_plan,
            tracer=tracer if tracer else None)

    def _run_arm(self, deploy, prefetch_aware: bool = False,
                 tracer=None) -> tuple:
        fleet = self._build(prefetch_aware, tracer)
        deploy(fleet)
        if self.warmup_epochs:
            fleet.run(self.warmup_epochs)
        profiler = FleetProfiler(self._sample_rate, rng=random.Random(37))
        metrics = fleet.run(self.epochs, observers=[profiler])
        return metrics, profiler.data, fleet

    def shard_specs(self) -> list:
        """Per-shard specs (plan order), ready for any worker."""
        plan = plan_shards(self.machines, self.shard_size)
        return [
            RolloutShardSpec(
                machines=size, epochs=self.epochs,
                warmup_epochs=self.warmup_epochs, seed=seed,
                config=self.config,
                profile_sample_rate=self._sample_rate,
                fault_plan=self.fault_plan, shard_index=index)
            for index, (size, seed)
            in enumerate(zip(plan.sizes, plan.seeds(self.seed)))
        ]

    def micro_sweep_stages(self, scale: float = 1.0,
                           batch_size: Optional[int] = None) -> Dict:
        """Trace-driven companions for the rollout's before/after arms.

        Returns ``{"before": sweep, "after": sweep}`` over this study's
        population and seed: ``before`` keeps the default prefetcher
        bank (the pre-rollout fleet, scalar engine), ``after`` ablates
        it (the post-rollout steady state under Hard Limoncello's
        throttling — the lockstep-eligible shape). Staging mirrors the
        paper's weeks-long rollout: compare the two sweeps' digests and
        stall totals to see the rollout's trace-level effect at batch
        throughput.
        """
        from repro.fleet.sweep import MicroFleetSweep

        def stage(mode: str) -> MicroFleetSweep:
            return MicroFleetSweep(
                mode=mode, machines=self.machines, seed=self.seed,
                scale=scale, shard_size=self.shard_size,
                batch_size=batch_size, fault_plan=self.fault_plan)

        return {"before": stage("control"), "after": stage("off")}

    def run_material(self) -> Dict:
        """Everything the study's result depends on, as plain data (the
        manifest ``run`` block; worker count deliberately excluded)."""
        from repro.fleet.ablation import _config_key_material

        material = {
            "study": "rollout",
            "machines": self.machines,
            "epochs": self.epochs,
            "warmup_epochs": self.warmup_epochs,
            "seed": self.seed,
            "shard_size": self.shard_size,
            "profile_sample_rate": self._sample_rate,
            "config": _config_key_material(self.config),
        }
        if self.fault_plan is not None:
            material["fault_plan"] = self.fault_plan.to_key_material()
        return material

    def shard_task_materials(self, traced: bool = False) -> List[Dict]:
        """Work-queue key material per shard (plan order; see the
        ablation twin for the key-coverage argument)."""
        from repro.fleet.queue import shard_task_material

        base = self.run_material()
        return [
            shard_task_material("rollout", {
                **base,
                "shard_machines": spec.machines,
                "shard_seed": spec.seed,
                "shard_index": spec.shard_index,
                "traced": traced,
            })
            for spec in self.shard_specs()
        ]

    def run(self, workers: Optional[int] = None,
            obs_dir: Optional[str] = None,
            cache_dir: Optional[str] = None,
            checkpoint_dir: Optional[str] = None,
            resume: bool = True) -> RolloutResult:
        """Run all arms across every shard and collect the result.

        Args:
            workers: Process-pool size for sharded execution. ``None``
                reads ``$REPRO_WORKERS`` (default 1, serial); ``0``
                means all CPUs. The result is identical at any value.
            obs_dir: Run directory for the observability layer. ``None``
                reads ``$REPRO_OBS_DIR``; empty/unset disables it.
            cache_dir: Whole-study result-cache directory (``None``
                reads ``$REPRO_CACHE_DIR``; empty/unset disables it).
            checkpoint_dir: Shard-journal directory (``None`` reads
                ``$REPRO_CHECKPOINT``; empty/unset disables it). See
                :meth:`AblationStudy.run
                <repro.fleet.ablation.AblationStudy.run>`.
            resume: Whether to restore journaled shards (default) or
                recompute while still journaling.

        After the call, :attr:`queue_stats` holds the work-queue
        disposition (``None`` when the sharded path did not run).
        """
        from repro.fleet.queue import run_checkpointed, shard_checkpoint
        from repro.fleet.result_cache import study_cache
        from repro.obs.session import ObsSession, resolve_obs_dir
        from repro.serialization import (rollout_result_from_dict,
                                         rollout_result_to_dict)

        workers = resolve_workers(workers)
        obs_dir = resolve_obs_dir(obs_dir)
        session = (ObsSession(obs_dir, "rollout", workers=workers)
                   if obs_dir is not None else None)
        if session is not None:
            session.event("study-start", study="rollout")
        self.queue_stats = None

        cache = None
        checkpoint = None
        if self._fleet_factory is None:
            cache = study_cache(cache_dir)
            checkpoint = shard_checkpoint(checkpoint_dir)

        result = None
        if cache is not None:
            material = self.run_material()
            payload = cache.load(material)
            if payload is not None:
                try:
                    result = rollout_result_from_dict(payload)
                except TraceError:
                    result = None  # stale payload: recompute, overwrite
            if session is not None:
                session.cache_probe(result is not None,
                                    cache.key_for(material))

        if result is not None:
            pass
        elif self._fleet_factory is not None:
            # A custom factory cannot be resized per shard; run unsharded.
            if session is not None:
                with session.phase("execute"):
                    tracer = session.shard_tracer()
                    result = _traced_single(self, tracer, 0, self.machines,
                                            self.seed, self.epochs)
                session.add_shard(0, tracer.events)
            else:
                result = self._run_single()
        else:
            specs = self.shard_specs()
            if session is not None:
                materials = self.shard_task_materials(traced=True)
                with session.phase("execute"):
                    outputs, stats = run_checkpointed(
                        run_rollout_shard_obs, specs, materials, workers,
                        checkpoint=checkpoint,
                        to_payload=obs_shard_payload,
                        from_payload=obs_shard_from_payload,
                        resume=resume)
                self.queue_stats = stats
                if checkpoint is not None:
                    session.queue_stats(stats)
                results = []
                for spec, (shard, events, wall) in zip(specs, outputs):
                    session.add_shard(spec.shard_index, events, wall)
                    results.append(shard)
                if checkpoint is not None:
                    restored = set(stats.restored_indexes)
                    for spec in specs:
                        session.event(
                            "shard-restored"
                            if spec.shard_index in restored
                            else "shard-checkpoint",
                            index=spec.shard_index)
                with session.phase("merge"):
                    result = results[0]
                    for index, shard in enumerate(results[1:], start=1):
                        session.event("merge-step", index=index)
                        result.merge(shard)
            else:
                materials = self.shard_task_materials(traced=False)
                shards, stats = run_checkpointed(
                    run_rollout_shard, specs, materials, workers,
                    checkpoint=checkpoint,
                    to_payload=rollout_result_to_dict,
                    from_payload=rollout_result_from_dict,
                    resume=resume)
                self.queue_stats = stats
                result = shards[0]
                for shard in shards[1:]:
                    result.merge(shard)
            if cache is not None:
                material = self.run_material()
                cache.store(material, rollout_result_to_dict(result))
                if session is not None:
                    session.event("cache-store",
                                  key=cache.key_for(material))

        if session is not None:
            session.event("study-finish", study="rollout")
            plan = (plan_shards(self.machines, self.shard_size)
                    if self._fleet_factory is None else None)
            session.finalize(
                self.run_material(),
                shard_seeds=(plan.seeds(self.seed) if plan is not None
                             else [self.seed]),
                fault_plan=(self.fault_plan.spec()
                            if self.fault_plan is not None else None))
        return result

    def _run_single(self, tracer=None) -> RolloutResult:
        """Run the whole population as one fleet (no sharding)."""
        tracer = tracer or NULL_TRACER
        with tracer.context(arm="before"):
            before, before_profile, _ = self._run_arm(
                lambda fleet: None, tracer=tracer)

        def hard(fleet: Fleet) -> None:
            """Deploy Hard Limoncello only."""
            fleet.deploy_hard_limoncello(self.config)

        def full(fleet: Fleet) -> None:
            """Deploy Hard and Soft Limoncello."""
            fleet.deploy_hard_limoncello(self.config)
            fleet.deploy_soft_limoncello()

        with tracer.context(arm="hard"):
            hard_metrics, hard_profile, _ = self._run_arm(
                hard, tracer=tracer)
        with tracer.context(arm="full"):
            full_metrics, full_profile, full_fleet = self._run_arm(
                full, tracer=tracer)
        with tracer.context(arm="full+scheduler"):
            integrated_metrics, _, _ = self._run_arm(
                full, prefetch_aware=True, tracer=tracer)
        # Chaos metrics track the controller under fault, so they come
        # from the full-Limoncello arm (the deployment end-state).
        chaos = (collect_chaos_metrics(full_fleet.machines)
                 if self.fault_plan is not None else None)
        return RolloutResult(
            before=before,
            hard_only=hard_metrics,
            full=full_metrics,
            full_integrated=integrated_metrics,
            before_profile=before_profile,
            hard_profile=hard_profile,
            full_profile=full_profile,
            chaos=chaos,
        )
