"""Server platform specifications and the generation catalog (Figure 2).

Figure 2's point is that total memory bandwidth grew with core counts for
a decade while *bandwidth per core* plateaued around a few GB/s — the
scarcity that motivates Limoncello. The catalog below models successive
server generations with exactly that property; Platform 1 and Platform 2
are the two recent generations the evaluation runs on (Section 5 gives
them ~3 GB/s of achievable bandwidth per core).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True)
class PlatformSpec:
    """One server platform generation."""

    name: str
    year: int
    vendor: str
    cores_per_socket: int
    #: Qualified memory bandwidth saturation per socket, bytes/ns (GB/s).
    saturation_bandwidth: float
    #: Abstract compute units per core (Borg-style normalization [15]);
    #: newer cores do more work per core.
    compute_units_per_core: float = 1.0

    def __post_init__(self) -> None:
        if self.cores_per_socket <= 0:
            raise ConfigError(f"{self.name}: cores must be positive")
        if self.saturation_bandwidth <= 0:
            raise ConfigError(f"{self.name}: bandwidth must be positive")
        if self.compute_units_per_core <= 0:
            raise ConfigError(f"{self.name}: compute units must be positive")

    @property
    def bandwidth_per_core(self) -> float:
        """GB/s of saturation bandwidth per core."""
        return self.saturation_bandwidth / self.cores_per_socket

    @property
    def compute_units(self) -> float:
        """Total abstract compute units per socket."""
        return self.cores_per_socket * self.compute_units_per_core


#: Successive generations, 2010-2022. Total bandwidth grows ~8x while
#: bandwidth per core stays in a narrow 2.6-3.3 GB/s band (Figure 2).
PLATFORM_CATALOG = (
    PlatformSpec("gen-2010", 2010, "intel-like", 8, 26.0, 1.00),
    PlatformSpec("gen-2012", 2012, "intel-like", 12, 38.0, 1.10),
    PlatformSpec("gen-2014", 2014, "intel-like", 16, 51.0, 1.22),
    PlatformSpec("gen-2016", 2016, "intel-like", 24, 77.0, 1.35),
    PlatformSpec("gen-2018", 2018, "intel-like", 32, 102.0, 1.50),
    PlatformSpec("gen-2020", 2020, "amd-like", 48, 141.0, 1.65),
    PlatformSpec("gen-2022", 2022, "amd-like", 64, 205.0, 1.80),
)

#: The two evaluation platforms of Section 5 — the last two generations.
PLATFORM_1 = PLATFORM_CATALOG[-2]
PLATFORM_2 = PLATFORM_CATALOG[-1]


def platform_by_name(name: str) -> PlatformSpec:
    """Look up a catalog platform by name."""
    for spec in PLATFORM_CATALOG:
        if spec.name == name:
            return spec
    raise ConfigError(
        f"unknown platform {name!r}; catalog has "
        f"{[s.name for s in PLATFORM_CATALOG]}")
