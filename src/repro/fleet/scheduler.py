"""The bandwidth-aware cluster scheduler.

"When a server starts reaching memory bandwidth saturation, the cluster
scheduler avoids scheduling workloads on the machine to prevent workloads
from encountering performance cliffs due to memory bandwidth contention."
(Section 2.1.) That policy is what strands CPU capacity on
bandwidth-bound platforms — and what lets Limoncello's bandwidth savings
convert directly into schedulable cores (Figure 19).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.errors import SchedulingError
from repro.fleet.machine import Machine
from repro.fleet.socket import SimulatedSocket
from repro.fleet.task import Task


class BandwidthAwareScheduler:
    """Least-loaded placement with CPU and bandwidth admission checks.

    Args:
        bandwidth_headroom: A socket is admissible only while its
            estimated bandwidth (including the incoming task) stays below
            this fraction of the qualification saturation threshold.
        prefetch_aware: Whether admission estimates account for each
            socket's current prefetcher state. False models the
            pre-Limoncello scheduler (used in ablation studies so that
            both arms receive identical placements); True models the
            deployed integration that converts Limoncello's bandwidth
            savings into schedulable capacity (Figure 19).
    """

    def __init__(self, bandwidth_headroom: float = 1.0,
                 prefetch_aware: bool = False) -> None:
        if not 0.0 < bandwidth_headroom <= 1.0:
            raise SchedulingError(
                f"headroom must be in (0, 1], got {bandwidth_headroom}")
        self.bandwidth_headroom = bandwidth_headroom
        self.prefetch_aware = prefetch_aware
        self.placements = 0
        self.rejections = 0

    def try_place(self, task: Task,
                  machines: Sequence[Machine]) -> Optional[SimulatedSocket]:
        """Place ``task`` on the least bandwidth-loaded admissible socket.

        Returns the chosen socket, or None when no socket can admit the
        task (stranded demand — idle cores the fleet cannot sell).
        """
        best: Optional[Tuple[float, SimulatedSocket]] = None
        for machine in machines:
            for socket in machine.sockets:
                if socket.cores_free < task.cores:
                    continue
                hw_view = (socket.hw_prefetchers_on if self.prefetch_aware
                           else True)
                projected = (socket.estimated_bandwidth(self.prefetch_aware)
                             + task.estimated_bandwidth(hw_view))
                limit = self.bandwidth_headroom * socket.saturation_bandwidth
                if projected > limit:
                    continue
                score = projected / socket.saturation_bandwidth
                if best is None or score < best[0]:
                    best = (score, socket)
        if best is None:
            self.rejections += 1
            return None
        best[1].add_task(task)
        self.placements += 1
        return best[1]

    def place(self, task: Task, machines: Sequence[Machine]) -> SimulatedSocket:
        """Like :meth:`try_place` but raises when placement fails."""
        socket = self.try_place(task, machines)
        if socket is None:
            raise SchedulingError(
                f"no socket can admit task {task.name} "
                f"({task.cores:.1f} cores, "
                f"{task.estimated_bandwidth():.1f} GB/s)")
        return socket

    @staticmethod
    def drain(machines: Sequence[Machine], count: int, rng) -> List[Task]:
        """Remove up to ``count`` randomly chosen tasks (load decrease)."""
        victims: List[Task] = []
        candidates = [(socket, task)
                      for machine in machines
                      for socket in machine.sockets
                      for task in socket.tasks]
        rng.shuffle(candidates)
        for socket, task in candidates[:count]:
            socket.remove_task(task)
            victims.append(task)
        return victims
