"""Deterministic sharding of a fleet study's machine population.

The paper's ablation methodology is embarrassingly parallel: every
machine evolves independently except through the scheduler, and the
scheduler's coupling is local to its fleet. Splitting a large study into
several smaller *sub-fleets* therefore preserves the statistics while
letting the shards run on separate workers.

Two properties make sharded results reproducible:

* The shard *plan* depends only on the population size and the shard
  size — never on how many workers execute it — so the same study
  produces the same shards whether it runs serially or in parallel.
* Every shard's seed is derived from the master seed with a stable hash
  (:func:`shard_seed`), so shard ``i`` of study seed ``s`` receives the
  same machine population and traffic on every run, on every host, on
  every Python version (``hash()`` is salted per process and is not used
  here).

Shard 0 always receives the master seed itself, so a plan with a single
shard is byte-for-byte the original unsharded study.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import List, Tuple

from repro.errors import ConfigError

#: Machines per shard when the caller does not choose. Sized so the
#: repository's historical study sizes (<= 32 machines) stay single-shard
#: — and therefore numerically identical to the pre-sharding engine —
#: while paper-scale populations split into enough shards to keep every
#: worker busy.
DEFAULT_SHARD_SIZE = 32


def shard_seed(master_seed: int, index: int) -> int:
    """Stable per-shard seed derived from the master seed.

    Shard 0 keeps the master seed (a one-shard plan *is* the unsharded
    study); later shards draw 63-bit seeds from a BLAKE2b stream over
    ``(master_seed, index)``. Independent of ``PYTHONHASHSEED``, process,
    and platform.
    """
    if index < 0:
        raise ConfigError(f"shard index cannot be negative, got {index}")
    if index == 0:
        return master_seed
    digest = hashlib.blake2b(
        f"limoncello-shard:{master_seed}:{index}".encode(),
        digest_size=8).digest()
    return int.from_bytes(digest, "big") & 0x7FFF_FFFF_FFFF_FFFF


@dataclass(frozen=True)
class ShardPlan:
    """How one study's machine population splits across shards.

    Attributes:
        machines: Total machine population.
        sizes: Machines per shard; balanced, so sizes differ by at most
            one and ``sum(sizes) == machines``.
    """

    machines: int
    sizes: Tuple[int, ...]

    def __len__(self) -> int:
        return len(self.sizes)

    def seeds(self, master_seed: int) -> List[int]:
        """Per-shard seeds for ``master_seed`` (see :func:`shard_seed`)."""
        return [shard_seed(master_seed, i) for i in range(len(self.sizes))]


def plan_shards(machines: int, shard_size: int = DEFAULT_SHARD_SIZE
                ) -> ShardPlan:
    """Split ``machines`` into balanced shards of at most ``shard_size``.

    The number of shards is ``ceil(machines / shard_size)`` and machines
    are distributed as evenly as possible (the first ``machines % n``
    shards take one extra), which keeps parallel workers load-balanced.
    """
    if machines <= 0:
        raise ConfigError("need at least one machine")
    if shard_size <= 0:
        raise ConfigError(f"shard size must be positive, got {shard_size}")
    count = -(-machines // shard_size)  # ceil division
    base, extra = divmod(machines, count)
    sizes = tuple(base + 1 if i < extra else base for i in range(count))
    return ShardPlan(machines=machines, sizes=sizes)


def plan_rounds(count: int, quantum: int) -> List[Tuple[int, int]]:
    """Split ``count`` shards into fixed-quantum checkpoint rounds.

    Returns ``(start, stop)`` slices covering ``range(count)`` in order:
    every round takes exactly ``quantum`` shards except the last, which
    takes the remainder. Unlike :func:`plan_batches` the rounds are
    *not* balanced — adaptive early stopping re-evaluates after each
    round, and its decisions must depend only on the study parameters,
    so the schedule has to be a pure function of ``(count, quantum)``
    with every non-final round the same size.
    """
    if count <= 0:
        raise ConfigError("need at least one shard")
    if quantum <= 0:
        raise ConfigError(f"round quantum must be positive, got {quantum}")
    slices: List[Tuple[int, int]] = []
    start = 0
    while start < count:
        stop = min(start + quantum, count)
        slices.append((start, stop))
        start = stop
    return slices


def plan_batches(count: int, batch_size: int) -> List[Tuple[int, int]]:
    """Split ``count`` arms into contiguous lockstep batches.

    Returns ``(start, stop)`` slices covering ``range(count)`` in order.
    Like :func:`plan_shards` the split is balanced — ``ceil(count /
    batch_size)`` batches whose sizes differ by at most one — so a
    population one arm over a batch boundary doesn't leave a degenerate
    single-arm batch paying full vectorization overhead. Arms are
    independent, so batch geometry can never change results; it only
    shapes throughput and peak memory.
    """
    if count <= 0:
        raise ConfigError("need at least one arm")
    if batch_size <= 0:
        raise ConfigError(f"batch size must be positive, got {batch_size}")
    batches = -(-count // batch_size)  # ceil division
    base, extra = divmod(count, batches)
    slices: List[Tuple[int, int]] = []
    start = 0
    for index in range(batches):
        stop = start + base + (1 if index < extra else 0)
        slices.append((start, stop))
        start = stop
    return slices
