"""On-disk cache for fleet-study results.

Repeated benchmark and report runs recompute identical studies from
scratch; at paper scale (thousands of machines) that dominates the
suite's wall clock. This cache keys each result by a content hash of
everything the result depends on — study type, mode, machine count,
epochs, seed, shard size, controller config, and a schema version — so
a hit is guaranteed to be the exact result the computation would have
produced (studies are pure functions of those parameters).

Integrity is verified on every read: each entry embeds its key and a
SHA-256 digest of the canonical payload, so a truncated file, a stale
entry written under an older schema, or any bit-rot hashes wrong and is
treated as a miss — the study recomputes and overwrites the bad entry
rather than crashing or returning garbage. Writes are atomic
(temp-file + rename) so concurrent study processes can share one cache
directory.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import tempfile
from typing import Dict, Optional, Union

from repro.serialization import canonical_json

#: Environment override for the default cache directory; unset or empty
#: disables caching.
CACHE_ENV_VAR = "REPRO_CACHE_DIR"

#: Bumped whenever the engine or the payload layout changes meaning;
#: part of the key, so entries from older code never resolve.
SCHEMA_VERSION = 1

#: Default cap on cached entries per directory; the oldest (by mtime)
#: are evicted past it.
DEFAULT_MAX_ENTRIES = 256


def _canonical(obj) -> str:
    """Deterministic JSON encoding (sorted keys, no whitespace)."""
    return canonical_json(obj)


def study_cache(cache_dir: Optional[Union[str, pathlib.Path]] = None
                ) -> Optional["StudyResultCache"]:
    """The cache for ``cache_dir``, falling back to ``$REPRO_CACHE_DIR``.

    Returns ``None`` (caching disabled) when neither names a directory.
    """
    if cache_dir is None:
        cache_dir = os.environ.get(CACHE_ENV_VAR, "").strip() or None
    if not cache_dir:
        return None
    return StudyResultCache(cache_dir)


class StudyResultCache:
    """Content-addressed JSON store for study results.

    Args:
        root: Cache directory (created on first write).
        max_entries: Eviction cap; oldest entries beyond it are removed
            on each store.
    """

    def __init__(self, root: Union[str, pathlib.Path],
                 max_entries: int = DEFAULT_MAX_ENTRIES) -> None:
        self.root = pathlib.Path(root)
        self.max_entries = max_entries

    # --- keys -----------------------------------------------------------------

    def key_for(self, material: Dict) -> str:
        """Content hash of the key material (plus the schema version)."""
        payload = {"schema": SCHEMA_VERSION, "material": material}
        return hashlib.sha256(_canonical(payload).encode()).hexdigest()

    def path_for(self, material: Dict) -> pathlib.Path:
        """Where the entry for ``material`` lives (whether or not it
        exists)."""
        return self.root / f"{self.key_for(material)}.json"

    # --- raw payloads -----------------------------------------------------------

    def load(self, material: Dict) -> Optional[Dict]:
        """The stored payload for ``material``, or ``None`` on a miss.

        Corruption in any form — unreadable file, invalid JSON, schema
        or key mismatch, digest mismatch over the payload — is a miss,
        never an error: the caller recomputes and the next store
        replaces the bad entry.
        """
        path = self.path_for(material)
        try:
            entry = json.loads(path.read_text())
        except (OSError, ValueError, UnicodeDecodeError):
            return None
        if not isinstance(entry, dict):
            return None
        if entry.get("schema") != SCHEMA_VERSION:
            return None
        if entry.get("key") != self.key_for(material):
            return None
        payload = entry.get("payload")
        digest = entry.get("digest")
        if payload is None or digest is None:
            return None
        if hashlib.sha256(
                _canonical(payload).encode()).hexdigest() != digest:
            return None
        return payload

    def store(self, material: Dict, payload: Dict) -> pathlib.Path:
        """Write ``payload`` under ``material``'s key (atomically)."""
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path_for(material)
        entry = {
            "schema": SCHEMA_VERSION,
            "key": self.key_for(material),
            "digest": hashlib.sha256(
                _canonical(payload).encode()).hexdigest(),
            "payload": payload,
        }
        fd, temp_name = tempfile.mkstemp(dir=str(self.root),
                                         suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(entry, handle)
            os.replace(temp_name, path)
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise
        self.prune()
        return path

    def prune(self) -> int:
        """Evict the oldest entries beyond ``max_entries``; returns how
        many were removed."""
        try:
            entries = sorted(self.root.glob("*.json"),
                             key=lambda p: p.stat().st_mtime)
        except OSError:
            return 0
        removed = 0
        excess = len(entries) - self.max_entries
        for path in entries[:max(excess, 0)]:
            try:
                path.unlink()
                removed += 1
            except OSError:
                continue
        return removed

    # --- typed study entry points --------------------------------------------------

    def load_ablation(self, material: Dict):
        """A cached :class:`~repro.fleet.ablation.AblationResult`, or
        ``None``. A payload that no longer deserializes (e.g. written by
        a different code version despite matching keys) is a miss."""
        from repro.errors import TraceError
        from repro.serialization import ablation_result_from_dict

        payload = self.load(material)
        if payload is None:
            return None
        try:
            return ablation_result_from_dict(payload)
        except TraceError:
            return None

    def store_ablation(self, material: Dict, result) -> pathlib.Path:
        """Archive one ablation result under ``material``'s key."""
        from repro.serialization import ablation_result_to_dict

        return self.store(material, ablation_result_to_dict(result))
