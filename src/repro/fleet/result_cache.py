"""On-disk cache for fleet-study results.

Repeated benchmark and report runs recompute identical studies from
scratch; at paper scale (thousands of machines) that dominates the
suite's wall clock. This cache keys each result by a content hash of
everything the result depends on — study type, mode, machine count,
epochs, seed, shard size, controller config, and a schema version — so
a hit is guaranteed to be the exact result the computation would have
produced (studies are pure functions of those parameters).

Integrity is verified on every read: each entry embeds its key and a
SHA-256 digest of the canonical payload, so a truncated file, a stale
entry written under an older schema, or any bit-rot hashes wrong and is
treated as a miss — the study recomputes and overwrites the bad entry
rather than crashing or returning garbage. Writes are atomic
(temp-file + ``os.replace`` via
:func:`repro.serialization.atomic_write_text`) so concurrent study
processes can share one cache directory and a process killed mid-store
can never leave a torn entry.

The same store underlies the shard checkpoint journal
(:class:`repro.fleet.queue.ShardCheckpoint`), which disables eviction —
a journal must never silently drop a finished shard mid-study.

Cumulative hit/miss/store counters persist to a ``_stats`` sidecar
(deliberately extension-less so cache-entry globs never see it)
(best effort, atomic) so ``repro cache`` can report hit rates across
processes; the sidecar is not an entry and is never evicted.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
from typing import Dict, Optional, Union

from repro.serialization import atomic_write_text, canonical_json

#: Environment override for the default cache directory; unset or empty
#: disables caching.
CACHE_ENV_VAR = "REPRO_CACHE_DIR"

#: Bumped whenever the engine or the payload layout changes meaning;
#: part of the key, so entries from older code never resolve.
SCHEMA_VERSION = 1

#: Default cap on cached entries per directory; the oldest (by mtime)
#: are evicted past it. ``None`` disables eviction entirely (the shard
#: checkpoint journal runs that way).
DEFAULT_MAX_ENTRIES = 256

#: Sidecar file holding cumulative hit/miss/store counters. Not an
#: entry: it is excluded from eviction, scans, and entry counts.
STATS_NAME = "_stats"


def _canonical(obj) -> str:
    """Deterministic JSON encoding (sorted keys, no whitespace)."""
    return canonical_json(obj)


def study_cache(cache_dir: Optional[Union[str, pathlib.Path]] = None
                ) -> Optional["StudyResultCache"]:
    """The cache for ``cache_dir``, falling back to ``$REPRO_CACHE_DIR``.

    Returns ``None`` (caching disabled) when neither names a directory.
    """
    if cache_dir is None:
        cache_dir = os.environ.get(CACHE_ENV_VAR, "").strip() or None
    if not cache_dir:
        return None
    return StudyResultCache(cache_dir)


class StudyResultCache:
    """Content-addressed JSON store for study results.

    Args:
        root: Cache directory (created on first write).
        max_entries: Eviction cap; oldest entries beyond it are removed
            on each store. ``None`` disables eviction.
    """

    def __init__(self, root: Union[str, pathlib.Path],
                 max_entries: Optional[int] = DEFAULT_MAX_ENTRIES) -> None:
        self.root = pathlib.Path(root)
        self.max_entries = max_entries

    # --- keys -----------------------------------------------------------------

    def key_for(self, material: Dict) -> str:
        """Content hash of the key material (plus the schema version)."""
        payload = {"schema": SCHEMA_VERSION, "material": material}
        return hashlib.sha256(_canonical(payload).encode()).hexdigest()

    def path_for(self, material: Dict) -> pathlib.Path:
        """Where the entry for ``material`` lives (whether or not it
        exists)."""
        return self.root / f"{self.key_for(material)}.json"

    @staticmethod
    def _is_entry(path: pathlib.Path) -> bool:
        """Whether ``path`` names a cache entry (64-hex-char key)."""
        stem = path.stem
        return len(stem) == 64 and all(c in "0123456789abcdef"
                                       for c in stem)

    def _entries(self):
        """Every entry file currently on disk (sidecars excluded)."""
        try:
            return [path for path in self.root.glob("*.json")
                    if self._is_entry(path)]
        except OSError:
            return []

    # --- persistent hit statistics ------------------------------------------------

    def stats(self) -> Dict[str, int]:
        """Cumulative hit/miss/store counters from the sidecar.

        Best effort: a missing or corrupt sidecar reads as all zeros.
        """
        counters = {"hits": 0, "misses": 0, "stores": 0}
        try:
            data = json.loads((self.root / STATS_NAME).read_text())
        except (OSError, ValueError, UnicodeDecodeError):
            return counters
        if isinstance(data, dict):
            for name in counters:
                value = data.get(name)
                if isinstance(value, int) and value >= 0:
                    counters[name] = value
        return counters

    def _bump(self, **deltas: int) -> None:
        """Fold counter deltas into the sidecar (best effort, atomic).

        Never creates the cache directory (a read-only probe of a cache
        that does not exist yet must not leave one behind), and never
        raises: losing a count under a crash or a concurrent-writer race
        is acceptable — the counters are reporting, not correctness.
        """
        if not self.root.is_dir():
            return
        counters = self.stats()
        for name, delta in deltas.items():
            counters[name] = counters.get(name, 0) + delta
        try:
            atomic_write_text(self.root / STATS_NAME,
                              json.dumps(counters, sort_keys=True) + "\n")
        except OSError:
            pass

    # --- raw payloads -----------------------------------------------------------

    def load(self, material: Dict) -> Optional[Dict]:
        """The stored payload for ``material``, or ``None`` on a miss.

        Corruption in any form — unreadable file, invalid JSON, schema
        or key mismatch, digest mismatch over the payload — is a miss,
        never an error: the caller recomputes and the next store
        replaces the bad entry.
        """
        path = self.path_for(material)
        entry = self._read_entry(path)
        if entry is None or entry.get("key") != self.key_for(material):
            self._bump(misses=1)
            return None
        self._bump(hits=1)
        return entry["payload"]

    def _read_entry(self, path: pathlib.Path) -> Optional[Dict]:
        """One verified entry (schema + digest), or ``None``."""
        try:
            entry = json.loads(path.read_text())
        except (OSError, ValueError, UnicodeDecodeError):
            return None
        if not isinstance(entry, dict):
            return None
        if entry.get("schema") != SCHEMA_VERSION:
            return None
        payload = entry.get("payload")
        digest = entry.get("digest")
        if payload is None or digest is None:
            return None
        if hashlib.sha256(
                _canonical(payload).encode()).hexdigest() != digest:
            return None
        return entry

    def store(self, material: Dict, payload: Dict,
              embed_material: bool = False) -> pathlib.Path:
        """Write ``payload`` under ``material``'s key (atomically).

        ``embed_material`` additionally records the key material inside
        the entry — the checkpoint journal uses it so status tooling can
        group entries by study without re-deriving keys.
        """
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path_for(material)
        entry = {
            "schema": SCHEMA_VERSION,
            "key": self.key_for(material),
            "digest": hashlib.sha256(
                _canonical(payload).encode()).hexdigest(),
            "payload": payload,
        }
        if embed_material:
            entry["material"] = material
        atomic_write_text(path, json.dumps(entry))
        self._bump(stores=1)
        self.prune()
        return path

    def prune(self, max_entries: Optional[int] = None) -> int:
        """Evict the oldest entries beyond the cap; returns how many
        were removed.

        ``max_entries`` overrides the instance cap for this call (the
        ``repro cache --prune`` front door). With both ``None``,
        eviction is disabled and nothing is removed.
        """
        if max_entries is None:
            max_entries = self.max_entries
        if max_entries is None:
            return 0
        try:
            entries = sorted(self._entries(),
                             key=lambda p: p.stat().st_mtime)
        except OSError:
            return 0
        removed = 0
        excess = len(entries) - max_entries
        for path in entries[:max(excess, 0)]:
            try:
                path.unlink()
                removed += 1
            except OSError:
                continue
        return removed

    def scan(self) -> Dict:
        """Integrity summary of the directory: entry count, bytes on
        disk, and how many entries verify (schema + digest) vs. are
        corrupt. Never raises; a missing directory scans as empty."""
        entries = self._entries()
        total_bytes = 0
        valid = 0
        corrupt = 0
        for path in entries:
            try:
                total_bytes += path.stat().st_size
            except OSError:
                pass
            if self._read_entry(path) is None:
                corrupt += 1
            else:
                valid += 1
        return {
            "entries": len(entries),
            "bytes": total_bytes,
            "valid": valid,
            "corrupt": corrupt,
        }

    # --- typed study entry points --------------------------------------------------

    def load_ablation(self, material: Dict):
        """A cached :class:`~repro.fleet.ablation.AblationResult`, or
        ``None``. A payload that no longer deserializes (e.g. written by
        a different code version despite matching keys) is a miss."""
        from repro.errors import TraceError
        from repro.serialization import ablation_result_from_dict

        payload = self.load(material)
        if payload is None:
            return None
        try:
            return ablation_result_from_dict(payload)
        except TraceError:
            return None

    def store_ablation(self, material: Dict, result) -> pathlib.Path:
        """Archive one ablation result under ``material``'s key."""
        from repro.serialization import ablation_result_to_dict

        return self.store(material, ablation_result_to_dict(result))
