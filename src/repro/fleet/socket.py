"""The per-socket fixed-point model.

Each epoch a socket balances two coupled quantities: the bandwidth its
tasks offer (which falls as they slow down) and the DRAM latency that
slowdown depends on (which rises with offered bandwidth). The fixed point
of that loop is the socket's operating point for the epoch — the same
feedback the queuing DRAM model produces per-request at the micro level.

Hardware prefetcher state lives in a real simulated MSR file, so the
Limoncello daemon actuates the socket exactly as it would real hardware.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.errors import ConfigError
from repro.fleet.platform import PlatformSpec
from repro.fleet.task import Task
from repro.memsys.config import DRAMConfig
from repro.memsys.dram import DRAMModel
from repro.msr.platform_defs import msr_map_for_vendor
from repro.msr.registers import MSRFile
from repro.units import SECOND


@dataclass(frozen=True)
class SocketEpoch:
    """One epoch's operating point for a socket."""

    time_ns: float
    #: Offered bandwidth, bytes/ns.
    bandwidth: float
    #: Bandwidth as a fraction of the *qualification saturation threshold*
    #: (the knee of the latency curve), the unit the paper's thresholds
    #: and utilization axes use. May exceed 1 when overloaded.
    utilization: float
    #: Loaded DRAM latency, ns.
    latency_ns: float
    #: Requests served during the epoch.
    qps: float
    #: Cores occupied by placed tasks.
    cores_used: float
    hw_prefetchers_on: bool

    @property
    def saturated(self) -> bool:
        """Whether this epoch ran at or above 95% of saturation."""
        return self.utilization >= 0.95


class SimulatedSocket:
    """One socket: tasks + MSR-controlled prefetcher state + DRAM curve."""

    #: Fixed-point iterations per epoch. The bare loop is *not* a
    #: contraction near the latency knee (offered bandwidth falls steeply
    #: as latency rises), so the update is damped by ``DAMPING``; with
    #: these settings the operating point converges to well under 1%.
    ITERATIONS = 24
    DAMPING = 0.35

    #: Fraction of an epoch's throughput lost when prefetcher state flips
    #: during it: the wrmsr broadcasts serialize every core and the
    #: hardware prefetchers retrain from scratch on re-enable. This is
    #: the cost that makes controller thrashing expensive — the reason
    #: for the hysteresis design (Section 3).
    TOGGLE_PENALTY = 0.05

    def __init__(self, platform: PlatformSpec, index: int = 0,
                 dram: Optional[DRAMConfig] = None) -> None:
        self.platform = platform
        self.index = index
        self.tasks: List[Task] = []
        self.soft_deployed = False
        self.msrs = MSRFile()
        self.msr_map = msr_map_for_vendor(platform.vendor)
        self.msr_map.declare_registers(self.msrs)
        dram_config = dram or DRAMConfig(
            saturation_bandwidth=platform.saturation_bandwidth)
        if dram_config.saturation_bandwidth != platform.saturation_bandwidth:
            raise ConfigError(
                "DRAM config saturation must match the platform's")
        self._dram = DRAMModel(dram_config)
        self._unloaded_latency = dram_config.unloaded_latency_ns
        self.history: List[SocketEpoch] = []
        self._last_bandwidth = 0.0
        self._last_utilization = 0.0
        self._last_hw_state: Optional[bool] = None
        self.toggles = 0

    # --- prefetcher state (via MSRs) ---------------------------------------------

    @property
    def hw_prefetchers_on(self) -> bool:
        """True unless *all* prefetchers are disabled (the paper's actuator
        always disables the full set)."""
        return not self.msr_map.all_disabled(self.msrs)

    def force_prefetchers(self, enabled: bool) -> None:
        """Directly set prefetcher state (for always-on/off study arms)."""
        if enabled:
            self.msr_map.enable_all(self.msrs)
        else:
            self.msr_map.disable_all(self.msrs)

    # --- BandwidthSource protocol (for the Limoncello daemon's sampler) -----------

    @property
    def saturation_bandwidth(self) -> float:
        """The qualification "memory bandwidth saturation threshold".

        Section 3 defines it as the bandwidth established during machine
        qualification beyond which latency rises sharply — i.e. the knee
        of the latency curve, not the raw channel capacity. Thresholds
        (and every utilization this simulator reports) are expressed
        relative to this value, as in the paper.
        """
        return (self._dram.config.max_utilization
                * self.platform.saturation_bandwidth)

    @property
    def raw_capacity(self) -> float:
        """The physical channel capacity, bytes/ns."""
        return self.platform.saturation_bandwidth

    def memory_bandwidth(self, now_ns: float) -> float:
        """Most recent epoch's offered bandwidth — what perf would read."""
        return self._last_bandwidth

    # --- capacity accounting -------------------------------------------------------

    @property
    def cores(self) -> int:
        """CPU cores on this socket."""
        return self.platform.cores_per_socket

    @property
    def cores_used(self) -> float:
        """Cores occupied by placed tasks."""
        return sum(task.cores for task in self.tasks)

    @property
    def cores_free(self) -> float:
        """Cores not yet occupied by tasks."""
        return self.cores - self.cores_used

    def estimated_bandwidth(self, prefetch_aware: bool = False) -> float:
        """Full-speed bandwidth estimate — the scheduler's admission view.

        With ``prefetch_aware`` the estimate reflects the socket's current
        prefetcher state. That awareness is what converts Limoncello's
        bandwidth savings into schedulable capacity — with prefetchers
        disabled the same tasks are estimated ~11-16% cheaper, so the
        scheduler packs more cores onto the socket (Figure 19). A
        pre-Limoncello scheduler (ablation studies) estimates as if
        prefetchers were always on."""
        hw_on = self.hw_prefetchers_on if prefetch_aware else True
        return sum(task.estimated_bandwidth(hw_on) for task in self.tasks)

    def add_task(self, task: Task) -> None:
        """Place a task on this socket (validates core capacity)."""
        if task.cores > self.cores_free + 1e-9:
            raise ConfigError(
                f"socket has {self.cores_free:.1f} free cores; task "
                f"{task.name} needs {task.cores:.1f}")
        self.tasks.append(task)

    def remove_task(self, task: Task) -> None:
        """Remove a placed task."""
        self.tasks.remove(task)

    # --- the epoch fixed point --------------------------------------------------------

    def latency_at(self, utilization: float) -> float:
        """Loaded DRAM latency (ns) at a raw-capacity utilization."""
        return self._dram.latency_at_utilization(utilization)

    def step(self, now_ns: float, duration_ns: float = SECOND,
             demand_factor: float = 1.0) -> SocketEpoch:
        """Solve this epoch's operating point and record it.

        ``demand_factor`` is a machine-level multiplier on bandwidth
        demand this epoch (shared volatility across the socket's tasks —
        the minute-scale swings of Figure 7).
        """
        hw_on = self.hw_prefetchers_on
        load = self._last_utilization  # fraction of raw capacity
        capacity = self.platform.saturation_bandwidth
        bandwidth = 0.0
        for _ in range(self.ITERATIONS):
            latency_ratio = (self.latency_at(load)
                             / self._unloaded_latency)
            bandwidth = demand_factor * sum(
                task.offered_bandwidth(
                    task.speed(latency_ratio, hw_on, self.soft_deployed),
                    hw_on)
                for task in self.tasks)
            load += self.DAMPING * (bandwidth / capacity - load)
        bandwidth = load * capacity

        latency_ns = self.latency_at(load)
        latency_ratio = latency_ns / self._unloaded_latency
        qps = sum(
            task.base_qps
            * task.speed(latency_ratio, hw_on, self.soft_deployed)
            for task in self.tasks) * (duration_ns / SECOND)
        if self._last_hw_state is not None and hw_on != self._last_hw_state:
            self.toggles += 1
            qps *= 1.0 - self.TOGGLE_PENALTY
        self._last_hw_state = hw_on
        epoch = SocketEpoch(
            time_ns=now_ns,
            bandwidth=bandwidth,
            utilization=bandwidth / self.saturation_bandwidth,
            latency_ns=latency_ns,
            qps=qps,
            cores_used=self.cores_used,
            hw_prefetchers_on=hw_on,
        )
        self.history.append(epoch)
        self._last_bandwidth = bandwidth
        self._last_utilization = load
        return epoch
