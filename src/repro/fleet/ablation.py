"""The hardware ablation study harness (Sections 3 and 4.1).

The paper's methodology: split machines into an experiment group and a
control group, run the experiment arm with prefetchers ablated (or under
Hard Limoncello), profile both fleetwide, and compare. Here the two arms
are two fleets built from the *same seed*, so they receive identical
machine populations and traffic — a paired experiment, tighter than the
paper could manage on live traffic.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.core.config import LimoncelloConfig
from repro.errors import ConfigError
from repro.fleet.cluster import Fleet, FleetMetrics
from repro.profiling.profiler import FleetProfiler
from repro.profiling.profile_data import ProfileData

#: Experiment-arm configurations.
MODES = ("off", "hard", "hard+soft", "soft-only", "control")


@dataclass
class AblationResult:
    """Paired metrics and profiles for control vs. experiment arms."""

    mode: str
    control: FleetMetrics
    experiment: FleetMetrics
    control_profile: ProfileData
    experiment_profile: ProfileData

    def bandwidth_reduction(self) -> Dict[str, float]:
        """Fractional socket-bandwidth change, experiment vs control —
        negative values are reductions (Table 1 / Figure 18)."""
        return self.experiment.bandwidth_summary().relative_change(
            self.control.bandwidth_summary())

    def latency_reduction(self) -> Dict[str, float]:
        """Fractional memory-latency change (Figure 17)."""
        return self.experiment.latency_summary().relative_change(
            self.control.latency_summary())

    def throughput_change(self) -> float:
        """Fractional change in fleet normalized throughput."""
        base = self.control.normalized_throughput
        if base <= 0:
            return 0.0
        return self.experiment.normalized_throughput / base - 1.0

    def function_cycle_deltas(self) -> Dict[str, float]:
        """Per-function fractional cycle change at equal work — the
        Figure 11 green bars. Cycles are normalized per instruction so
        that fleet-level load differences between arms cancel."""
        deltas = {}
        for function, control_stats in self.control_profile:
            experiment_stats = self.experiment_profile.function(function)
            if (control_stats.instructions == 0
                    or experiment_stats.instructions == 0):
                continue
            control_cpi = control_stats.cycles / control_stats.instructions
            experiment_cpi = (experiment_stats.cycles
                              / experiment_stats.instructions)
            deltas[function] = experiment_cpi / control_cpi - 1.0
        return deltas

    def function_mpki_deltas(self) -> Dict[str, float]:
        """Per-function fractional MPKI change — the Figure 11 blue bars."""
        deltas = {}
        for function, control_stats in self.control_profile:
            experiment_stats = self.experiment_profile.function(function)
            if control_stats.llc_mpki <= 0:
                continue
            deltas[function] = (experiment_stats.llc_mpki
                                / control_stats.llc_mpki - 1.0)
        return deltas


class AblationStudy:
    """Builds and runs a paired control/experiment fleet comparison."""

    def __init__(self, mode: str = "off", machines: int = 30,
                 epochs: int = 100, seed: int = 11,
                 warmup_epochs: int = 20,
                 config: Optional[LimoncelloConfig] = None,
                 fleet_factory: Optional[Callable[[int], Fleet]] = None,
                 profile_sample_rate: float = 0.25) -> None:
        if mode not in MODES:
            raise ConfigError(f"mode must be one of {MODES}, got {mode!r}")
        if epochs <= 0:
            raise ConfigError("epochs must be positive")
        if warmup_epochs < 0:
            raise ConfigError("warmup cannot be negative")
        self.mode = mode
        self.machines = machines
        self.epochs = epochs
        self.warmup_epochs = warmup_epochs
        self.seed = seed
        self.config = config
        self._fleet_factory = fleet_factory
        self._sample_rate = profile_sample_rate

    def _build_fleet(self, seed: int) -> Fleet:
        if self._fleet_factory is not None:
            return self._fleet_factory(seed)
        return Fleet(machines=self.machines, seed=seed)

    def _apply_mode(self, fleet: Fleet) -> None:
        if self.mode == "control":
            return
        if self.mode == "off":
            fleet.force_prefetchers(False)
        elif self.mode == "hard":
            fleet.deploy_hard_limoncello(self.config)
        elif self.mode == "hard+soft":
            fleet.deploy_hard_limoncello(self.config)
            fleet.deploy_soft_limoncello()
        elif self.mode == "soft-only":
            fleet.deploy_soft_limoncello()

    def run(self) -> AblationResult:
        """Run both arms and collect the paired result."""
        control_fleet = self._build_fleet(self.seed)
        experiment_fleet = self._build_fleet(self.seed)
        self._apply_mode(experiment_fleet)

        control_profiler = FleetProfiler(
            self._sample_rate, rng=random.Random(71))
        experiment_profiler = FleetProfiler(
            self._sample_rate, rng=random.Random(71))

        # Warm both arms past scheduler ramp-up and controller sustain
        # timers before measuring (the paper measures a steady-state
        # fleet; its rollout took weeks).
        if self.warmup_epochs:
            control_fleet.run(self.warmup_epochs)
            experiment_fleet.run(self.warmup_epochs)
        control = control_fleet.run(self.epochs,
                                    observers=[control_profiler])
        experiment = experiment_fleet.run(self.epochs,
                                          observers=[experiment_profiler])
        return AblationResult(
            mode=self.mode,
            control=control,
            experiment=experiment,
            control_profile=control_profiler.data,
            experiment_profile=experiment_profiler.data,
        )
