"""The hardware ablation study harness (Sections 3 and 4.1).

The paper's methodology: split machines into an experiment group and a
control group, run the experiment arm with prefetchers ablated (or under
Hard Limoncello), profile both fleetwide, and compare. Here the two arms
are two fleets built from the *same seed*, so they receive identical
machine populations and traffic — a paired experiment, tighter than the
paper could manage on live traffic.

Large studies shard: the machine population splits into deterministic
sub-fleets (:mod:`repro.fleet.shard`), each shard runs both arms
end-to-end, and the per-shard results merge through the associative
:meth:`FleetMetrics.merge` / :meth:`ProfileData.merge` operations.
Because the shard plan and the merge order depend only on the study
parameters — never on the worker count — ``run(workers=8)`` returns
bit-identical results to ``run(workers=1)``.
"""

from __future__ import annotations

import json
import random
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from repro.core.config import LimoncelloConfig, RetryPolicy
from repro.errors import ConfigError
from repro.faults.metrics import ChaosMetrics, collect_chaos_metrics
from repro.faults.plan import FaultPlan
from repro.fleet.cluster import Fleet, FleetMetrics
from repro.fleet.parallel import resolve_workers
from repro.fleet.shard import DEFAULT_SHARD_SIZE, ShardPlan, plan_shards
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.profiling.profiler import FleetProfiler
from repro.profiling.profile_data import ProfileData
from repro.serialization import canonical_json

if TYPE_CHECKING:
    from repro.policy.metrics import PolicyMetrics

#: Experiment-arm configurations.
MODES = ("off", "hard", "hard+soft", "soft-only", "control")

#: Seed for the (per-shard) profilers' own random stream. Fixed rather
#: than derived so a one-shard study reproduces the historical engine
#: exactly; shards differ through their machine populations.
_PROFILER_SEED = 71


def _config_key_material(config: Optional[LimoncelloConfig]):
    """A config's contribution to a study cache key.

    The hardening knobs (retry policy, fail-safe deadline) are included
    only when they differ from the legacy defaults, so keys — and cached
    results — for pre-hardening configurations are unchanged.
    """
    if config is None:
        return None
    material = {
        "lower_threshold": config.lower_threshold,
        "upper_threshold": config.upper_threshold,
        "sustain_duration_ns": config.sustain_duration_ns,
        "sample_period_ns": config.sample_period_ns,
        "actuation_retries": config.actuation_retries,
    }
    policy = config.retry_policy
    if policy != RetryPolicy():
        material["retry_policy"] = {
            "max_attempts": policy.max_attempts,
            "initial_backoff_ns": policy.initial_backoff_ns,
            "backoff_multiplier": policy.backoff_multiplier,
            "max_backoff_ns": policy.max_backoff_ns,
        }
    if config.telemetry_failsafe_deadline_ns is not None:
        material["telemetry_failsafe_deadline_ns"] = \
            config.telemetry_failsafe_deadline_ns
    return material


@dataclass
class AblationResult:
    """Paired metrics and profiles for control vs. experiment arms."""

    mode: str
    control: FleetMetrics
    experiment: FleetMetrics
    control_profile: ProfileData
    experiment_profile: ProfileData
    #: Controller-robustness aggregate for the experiment arm; ``None``
    #: unless the study ran under a fault plan.
    chaos: Optional[ChaosMetrics] = None
    #: Per-policy decision aggregate for the experiment arm; ``None``
    #: unless the study ran with an injected control policy.
    policy_metrics: Optional["PolicyMetrics"] = None

    def merge(self, other: "AblationResult") -> "AblationResult":
        """Fold another shard's paired result into this one (in place).

        Both results must come from the same experiment mode; arms merge
        pairwise. Associative and order-independent in every summary
        view, like the underlying metric/profile merges.
        """
        if other.mode != self.mode:
            raise ConfigError(
                f"cannot merge mode {other.mode!r} into {self.mode!r}")
        self.control.merge(other.control)
        self.experiment.merge(other.experiment)
        self.control_profile.merge(other.control_profile)
        self.experiment_profile.merge(other.experiment_profile)
        if other.chaos is not None:
            if self.chaos is None:
                self.chaos = ChaosMetrics()
            self.chaos.merge(other.chaos)
        if other.policy_metrics is not None:
            if self.policy_metrics is None:
                from repro.policy.metrics import PolicyMetrics
                self.policy_metrics = PolicyMetrics()
            self.policy_metrics.merge(other.policy_metrics)
        return self

    def bandwidth_reduction(self) -> Dict[str, float]:
        """Fractional socket-bandwidth change, experiment vs control —
        negative values are reductions (Table 1 / Figure 18)."""
        return self.experiment.bandwidth_summary().relative_change(
            self.control.bandwidth_summary())

    def latency_reduction(self) -> Dict[str, float]:
        """Fractional memory-latency change (Figure 17)."""
        return self.experiment.latency_summary().relative_change(
            self.control.latency_summary())

    def throughput_change(self) -> float:
        """Fractional change in fleet normalized throughput."""
        base = self.control.normalized_throughput
        if base <= 0:
            return 0.0
        return self.experiment.normalized_throughput / base - 1.0

    def function_cycle_deltas(self) -> Dict[str, float]:
        """Per-function fractional cycle change at equal work — the
        Figure 11 green bars. Cycles are normalized per instruction so
        that fleet-level load differences between arms cancel."""
        deltas = {}
        for function, control_stats in self.control_profile:
            experiment_stats = self.experiment_profile.function(function)
            if (control_stats.instructions == 0
                    or experiment_stats.instructions == 0):
                continue
            control_cpi = control_stats.cycles / control_stats.instructions
            experiment_cpi = (experiment_stats.cycles
                              / experiment_stats.instructions)
            deltas[function] = experiment_cpi / control_cpi - 1.0
        return deltas

    def function_mpki_deltas(self) -> Dict[str, float]:
        """Per-function fractional MPKI change — the Figure 11 blue bars."""
        deltas = {}
        for function, control_stats in self.control_profile:
            experiment_stats = self.experiment_profile.function(function)
            if control_stats.llc_mpki <= 0:
                continue
            deltas[function] = (experiment_stats.llc_mpki
                                / control_stats.llc_mpki - 1.0)
        return deltas


@dataclass(frozen=True)
class AblationShardSpec:
    """One shard's worth of an ablation study — plain data, picklable,
    so it can cross a process boundary to a pool worker."""

    mode: str
    machines: int
    epochs: int
    warmup_epochs: int
    seed: int
    config: Optional[LimoncelloConfig]
    profile_sample_rate: float
    fault_plan: Optional[FaultPlan] = None
    #: Position in the shard plan; carried so a traced worker can stamp
    #: its events without the parent re-deriving the mapping.
    shard_index: int = 0
    #: Canonical JSON of the injected control policy, or ``None`` for
    #: the stock hysteresis deployment. A string (not a Policy object)
    #: so the spec stays hashable and picklable across pool workers.
    policy_json: Optional[str] = None


def run_ablation_shard(spec: AblationShardSpec) -> AblationResult:
    """Run one shard (both arms) to completion. Pure function of the
    spec — the process-pool worker entry point."""
    study = AblationStudy(
        mode=spec.mode, machines=spec.machines, epochs=spec.epochs,
        warmup_epochs=spec.warmup_epochs, seed=spec.seed,
        config=spec.config, profile_sample_rate=spec.profile_sample_rate,
        fault_plan=spec.fault_plan, policy=spec.policy_json)
    return study._run_single()


def _traced_single(study, tracer: Tracer, index: int, machines: int,
                   seed: int, epochs: int):
    """Run a study's single-fleet path under ``tracer``, bracketed by
    shard-start/shard-finish events. The finish timestamp is the latest
    simulated time any event observed — a pure function of the shard
    parameters, like every other ``t_ns`` in the log."""
    tracer.event("shard-start", 0.0, index=index, machines=machines,
                 seed=seed)
    result = study._run_single(tracer)
    t_end = max((event["t_ns"] for event in tracer.events), default=0.0)
    tracer.event("shard-finish", t_end, index=index, epochs=epochs)
    return result


def obs_shard_payload(output: Tuple) -> Dict:
    """Serialize one traced shard output — ``(result, events, wall)`` —
    for the checkpoint journal. Events are already plain dicts; the wall
    time rides along so a resumed run's manifest reports the original
    compute cost rather than the (near-zero) restore cost."""
    from repro.serialization import ablation_result_to_dict

    result, events, wall = output
    return {"result": ablation_result_to_dict(result),
            "events": list(events), "wall": wall}


def obs_shard_from_payload(payload: Dict) -> Tuple:
    """Inverse of :func:`obs_shard_payload`."""
    from repro.serialization import ablation_result_from_dict

    return (ablation_result_from_dict(payload["result"]),
            list(payload["events"]), float(payload["wall"]))


def run_ablation_shard_obs(
        spec: AblationShardSpec) -> Tuple[AblationResult, List[Dict], float]:
    """Traced worker twin of :func:`run_ablation_shard`.

    Builds the tracer *inside* the worker (tracers never cross process
    boundaries) and returns ``(result, events, wall_seconds)``; the
    parent splices the events into the merged log in plan order.
    """
    start = time.monotonic()
    study = AblationStudy(
        mode=spec.mode, machines=spec.machines, epochs=spec.epochs,
        warmup_epochs=spec.warmup_epochs, seed=spec.seed,
        config=spec.config, profile_sample_rate=spec.profile_sample_rate,
        fault_plan=spec.fault_plan, policy=spec.policy_json)
    tracer = Tracer()
    result = _traced_single(study, tracer, spec.shard_index, spec.machines,
                            spec.seed, spec.epochs)
    return result, tracer.events, time.monotonic() - start


class AblationStudy:
    """Builds and runs a paired control/experiment fleet comparison.

    Args:
        shard_size: Maximum machines per shard. Populations up to this
            size run as a single sub-fleet (the historical engine);
            larger studies split into balanced shards that can run on
            parallel workers. The shard plan — and therefore the result
            — is independent of the worker count.
        policy: Optional control policy for the experiment arm's
            daemons — a :class:`~repro.policy.Policy`, its serialized
            dict, or canonical JSON. Requires a daemon-running mode
            (``hard``/``hard+soft``). Enters cache and shard-task keys
            only when set, so policy-free study keys are unchanged.
    """

    def __init__(self, mode: str = "off", machines: int = 30,
                 epochs: int = 100, seed: int = 11,
                 warmup_epochs: int = 20,
                 config: Optional[LimoncelloConfig] = None,
                 fleet_factory: Optional[Callable[[int], Fleet]] = None,
                 profile_sample_rate: float = 0.25,
                 shard_size: int = DEFAULT_SHARD_SIZE,
                 fault_plan: Optional[FaultPlan] = None,
                 policy=None) -> None:
        if mode not in MODES:
            raise ConfigError(f"mode must be one of {MODES}, got {mode!r}")
        if epochs <= 0:
            raise ConfigError("epochs must be positive")
        if warmup_epochs < 0:
            raise ConfigError("warmup cannot be negative")
        if shard_size <= 0:
            raise ConfigError("shard size must be positive")
        self.policy_json: Optional[str] = None
        if policy is not None:
            if mode not in ("hard", "hard+soft"):
                raise ConfigError(
                    "a control policy needs a daemon-running mode "
                    f"('hard' or 'hard+soft'), got {mode!r}")
            from repro.policy import policy_from_spec
            self.policy_json = canonical_json(
                policy_from_spec(policy).to_dict())
        self.mode = mode
        self.machines = machines
        self.epochs = epochs
        self.warmup_epochs = warmup_epochs
        self.seed = seed
        self.config = config
        self.shard_size = shard_size
        self.fault_plan = fault_plan
        self._fleet_factory = fleet_factory
        self._sample_rate = profile_sample_rate
        #: Work-queue disposition of the last :meth:`run` (a
        #: :class:`~repro.fleet.queue.QueueStats`), or ``None``.
        self.queue_stats = None

    # --- sharding -----------------------------------------------------------

    def shard_plan(self) -> ShardPlan:
        """How this study's machines split across shards."""
        return plan_shards(self.machines, self.shard_size)

    def shard_specs(self) -> List[AblationShardSpec]:
        """Per-shard specs (plan order), ready for any worker."""
        plan = self.shard_plan()
        return [
            AblationShardSpec(
                mode=self.mode, machines=size, epochs=self.epochs,
                warmup_epochs=self.warmup_epochs, seed=seed,
                config=self.config,
                profile_sample_rate=self._sample_rate,
                fault_plan=self.fault_plan, shard_index=index,
                policy_json=self.policy_json)
            for index, (size, seed)
            in enumerate(zip(plan.sizes, plan.seeds(self.seed)))
        ]

    def cache_key_material(self) -> Dict:
        """Everything the study's result depends on, as plain data.

        Deliberately excludes the worker count (results are identical at
        any parallelism) and includes the shard size (the plan shapes the
        machine populations). Fault plans and the hardening knobs enter
        the key only when set, so fault-free study keys — and their
        cached results — are unchanged from earlier revisions.
        """
        config = self.config
        material = {
            "study": "ablation",
            "mode": self.mode,
            "machines": self.machines,
            "epochs": self.epochs,
            "warmup_epochs": self.warmup_epochs,
            "seed": self.seed,
            "shard_size": self.shard_size,
            "profile_sample_rate": self._sample_rate,
            "config": _config_key_material(self.config),
        }
        if self.fault_plan is not None:
            material["fault_plan"] = self.fault_plan.to_key_material()
        if self.policy_json is not None:
            material["policy"] = json.loads(self.policy_json)
        return material

    def shard_task_materials(self, traced: bool = False) -> List[Dict]:
        """Work-queue key material per shard (plan order).

        Each key covers the whole study identity (mode, epochs, config
        signature, fault plan — via :meth:`cache_key_material`) plus the
        shard's own population, seed, and plan position, so a shard
        journaled by one study can never be restored into a different
        one. ``traced`` keys traced (obs) payloads separately from plain
        ones — they journal different payload shapes.
        """
        from repro.fleet.queue import shard_task_material

        base = self.cache_key_material()
        return [
            shard_task_material("ablation", {
                **base,
                "shard_machines": spec.machines,
                "shard_seed": spec.seed,
                "shard_index": spec.shard_index,
                "traced": traced,
            })
            for spec in self.shard_specs()
        ]

    # --- the trace-driven companion ------------------------------------------

    def micro_sweep(self, scale: float = 1.0,
                    batch_size: Optional[int] = None):
        """The trace-driven companion sweep to this ablation.

        Builds a :class:`~repro.fleet.sweep.MicroFleetSweep` over the
        same machine population, seed, shard plan, and (machine-crash)
        chaos exposure: mode ``control`` maps to the sweep's control arm
        (prefetchers on), every ablated mode maps to ``off``
        (prefetchers disabled) — both shapes batch through the lockstep
        engine. The sweep replays real traces
        through full hierarchies where the ablation evolves its analytic
        fleet, so the pair brackets the same experiment from both
        modelling directions.
        """
        from repro.fleet.sweep import MicroFleetSweep

        return MicroFleetSweep(
            mode="control" if self.mode == "control" else "off",
            machines=self.machines, seed=self.seed, scale=scale,
            shard_size=self.shard_size, batch_size=batch_size,
            fault_plan=self.fault_plan)

    # --- execution -----------------------------------------------------------

    def _build_fleet(self, seed: int, tracer=None) -> Fleet:
        if self._fleet_factory is not None:
            fleet = self._fleet_factory(seed)
            if tracer:
                # Factory fleets still join the event stream: daemons are
                # deployed by _apply_mode, after this attribute lands.
                for machine in fleet.machines:
                    machine.tracer = tracer
            return fleet
        return Fleet(machines=self.machines, seed=seed,
                     fault_plan=self.fault_plan,
                     tracer=tracer if tracer else None)

    def _apply_mode(self, fleet: Fleet) -> None:
        if self.mode == "control":
            return
        if self.mode == "off":
            fleet.force_prefetchers(False)
        elif self.mode == "hard":
            self._deploy_controller(fleet)
        elif self.mode == "hard+soft":
            self._deploy_controller(fleet)
            fleet.deploy_soft_limoncello()
        elif self.mode == "soft-only":
            fleet.deploy_soft_limoncello()

    def _deploy_controller(self, fleet: Fleet) -> None:
        """The experiment arm's control plane: the injected policy when
        one is set, the stock hysteresis daemons otherwise."""
        if self.policy_json is not None:
            fleet.deploy_policy(self.policy_json, self.config)
        else:
            fleet.deploy_hard_limoncello(self.config)

    def _run_single(self, tracer=None) -> AblationResult:
        """Run the whole population as one fleet (no sharding)."""
        tracer = tracer or NULL_TRACER
        control_fleet = self._build_fleet(self.seed, tracer)
        experiment_fleet = self._build_fleet(self.seed, tracer)
        self._apply_mode(experiment_fleet)

        control_profiler = FleetProfiler(
            self._sample_rate, rng=random.Random(_PROFILER_SEED))
        experiment_profiler = FleetProfiler(
            self._sample_rate, rng=random.Random(_PROFILER_SEED))

        # Warm both arms past scheduler ramp-up and controller sustain
        # timers before measuring (the paper measures a steady-state
        # fleet; its rollout took weeks). The arm context tags each
        # fleet's daemon events without perturbing execution order.
        if self.warmup_epochs:
            with tracer.context(arm="control"):
                control_fleet.run(self.warmup_epochs)
            with tracer.context(arm="experiment"):
                experiment_fleet.run(self.warmup_epochs)
        with tracer.context(arm="control"):
            control = control_fleet.run(self.epochs,
                                        observers=[control_profiler])
        with tracer.context(arm="experiment"):
            experiment = experiment_fleet.run(
                self.epochs, observers=[experiment_profiler])
        # Chaos metrics describe the controller under fault, so they are
        # collected from the experiment arm (the one running daemons).
        chaos = (collect_chaos_metrics(experiment_fleet.machines)
                 if self.fault_plan is not None else None)
        if self.policy_json is not None:
            from repro.policy.metrics import collect_policy_metrics
            policy_metrics = collect_policy_metrics(experiment_fleet.machines)
        else:
            policy_metrics = None
        return AblationResult(
            mode=self.mode,
            control=control,
            experiment=experiment,
            control_profile=control_profiler.data,
            experiment_profile=experiment_profiler.data,
            chaos=chaos,
            policy_metrics=policy_metrics,
        )

    def run(self, workers: Optional[int] = None,
            cache_dir: Optional[str] = None,
            obs_dir: Optional[str] = None,
            checkpoint_dir: Optional[str] = None,
            resume: bool = True) -> AblationResult:
        """Run both arms and collect the paired result.

        Args:
            workers: Process-pool size for sharded execution. ``None``
                reads ``$REPRO_WORKERS`` (default 1, serial); ``0``
                means all CPUs. The result is identical at any value.
            cache_dir: Directory for the on-disk result cache. ``None``
                reads ``$REPRO_CACHE_DIR``; empty/unset disables
                caching. A hit skips the computation entirely.
            obs_dir: Run directory for the observability layer. ``None``
                reads ``$REPRO_OBS_DIR``; empty/unset disables it. When
                set, the study writes ``events.jsonl`` and
                ``manifest.json`` there; a cold run's event log is
                byte-identical at any worker count.
            checkpoint_dir: Shard-journal directory for the work queue.
                ``None`` reads ``$REPRO_CHECKPOINT``; empty/unset
                disables checkpointing. When set, every finished shard
                is journaled the moment it completes and a re-run
                restores finished shards instead of recomputing — the
                merged result stays bit-identical either way.
            resume: With a checkpoint directory, whether to restore
                journaled shards (``True``, the default) or recompute
                everything while still journaling (``False``).

        After the call, :attr:`queue_stats` holds the work-queue
        disposition (``None`` when the sharded path did not run).
        """
        from repro.fleet.queue import run_checkpointed, shard_checkpoint
        from repro.fleet.result_cache import study_cache
        from repro.obs.session import ObsSession, resolve_obs_dir
        from repro.serialization import (ablation_result_from_dict,
                                         ablation_result_to_dict)

        workers = resolve_workers(workers)
        obs_dir = resolve_obs_dir(obs_dir)
        session = (ObsSession(obs_dir, "ablation", workers=workers)
                   if obs_dir is not None else None)
        if session is not None:
            session.event("study-start", study="ablation")
        self.queue_stats = None

        cache = None
        checkpoint = None
        if self._fleet_factory is None:
            # A custom factory is opaque: it cannot be content-hashed
            # (no cache key) nor resized per shard, so those studies run
            # unsharded, uncached, and uncheckpointed.
            cache = study_cache(cache_dir)
            checkpoint = shard_checkpoint(checkpoint_dir)

        result = None
        hit = False
        if cache is not None:
            material = self.cache_key_material()
            result = cache.load_ablation(material)
            hit = result is not None
            if session is not None:
                session.cache_probe(hit, cache.key_for(material))

        if result is None:
            if self._fleet_factory is not None:
                if session is not None:
                    with session.phase("execute"):
                        tracer = session.shard_tracer()
                        result = _traced_single(
                            self, tracer, 0, self.machines, self.seed,
                            self.epochs)
                    session.add_shard(0, tracer.events)
                else:
                    result = self._run_single()
            else:
                specs = self.shard_specs()
                if session is not None:
                    materials = self.shard_task_materials(traced=True)
                    with session.phase("execute"):
                        outputs, stats = run_checkpointed(
                            run_ablation_shard_obs, specs, materials,
                            workers, checkpoint=checkpoint,
                            to_payload=obs_shard_payload,
                            from_payload=obs_shard_from_payload,
                            resume=resume)
                    self.queue_stats = stats
                    if checkpoint is not None:
                        session.queue_stats(stats)
                    results = []
                    for spec, (shard, events, wall) in zip(specs, outputs):
                        session.add_shard(spec.shard_index, events, wall)
                        results.append(shard)
                    if checkpoint is not None:
                        restored = set(stats.restored_indexes)
                        for spec in specs:
                            session.event(
                                "shard-restored"
                                if spec.shard_index in restored
                                else "shard-checkpoint",
                                index=spec.shard_index)
                    with session.phase("merge"):
                        result = results[0]
                        for index, shard in enumerate(results[1:], start=1):
                            session.event("merge-step", index=index)
                            result.merge(shard)
                else:
                    materials = self.shard_task_materials(traced=False)
                    shards, stats = run_checkpointed(
                        run_ablation_shard, specs, materials, workers,
                        checkpoint=checkpoint,
                        to_payload=ablation_result_to_dict,
                        from_payload=ablation_result_from_dict,
                        resume=resume)
                    self.queue_stats = stats
                    result = shards[0]
                    for shard in shards[1:]:
                        result.merge(shard)

            if cache is not None:
                material = self.cache_key_material()
                cache.store_ablation(material, result)
                if session is not None:
                    session.event("cache-store", key=cache.key_for(material))

        if session is not None:
            session.event("study-finish", study="ablation")
            plan = (self.shard_plan() if self._fleet_factory is None
                    else None)
            session.finalize(
                self.cache_key_material(),
                shard_seeds=(plan.seeds(self.seed) if plan is not None
                             else [self.seed]),
                fault_plan=(self.fault_plan.spec()
                            if self.fault_plan is not None else None))
        return result
