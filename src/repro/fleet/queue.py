"""Checkpointed shard work-queue under the fleet study classes.

The studies (:class:`~repro.fleet.ablation.AblationStudy`,
:class:`~repro.fleet.rollout.RolloutStudy`,
:class:`~repro.fleet.sweep.MicroFleetSweep`) were all-or-nothing: a
sweep killed at shard 412/500 restarted from zero, because the result
cache only keyed *whole studies*. This module drops the granularity to
the shard. Every shard becomes a content-addressed task — key material
is the full shard spec (which embeds the config signature, trace
fingerprint or generation seed, and fault plan) plus the study kind and
a queue schema version — and each completed shard's serialized result is
journaled atomically to a checkpoint directory the moment it finishes.
Re-running the same study against the same directory restores finished
shards from the journal and computes only the rest.

Bit-identity (the PR 1 invariant) is preserved by construction:

* The shard plan is a pure function of the study parameters, so the
  interrupted run and the resumed run enumerate identical task lists.
* A restored shard result round-trips through the same serialization
  the study result cache already trusts, and the journal verifies a
  SHA-256 digest on read — a torn or stale entry is recomputed, never
  trusted.
* Outputs are assembled positionally and folded in plan order, so the
  merge cannot observe whether a shard was computed, restored, or in
  which order workers finished.

Hence a study resumed after any interruption point, at any worker
count, produces byte-identical merged results to an uninterrupted
serial run.

The journal is a :class:`~repro.fleet.result_cache.StudyResultCache`
with eviction disabled (a journal must never drop a finished shard
mid-study) and key material embedded in each entry so ``repro queue``
can report per-study progress without re-deriving keys.

For CI and tests, ``REPRO_QUEUE_ABORT_AFTER=k`` interrupts the queue
deterministically: after the ``k``-th shard is computed *and journaled*,
:class:`~repro.errors.QueueInterrupted` is raised. Restored shards do
not count — so a resumed run with the same knob makes fresh progress
instead of dying at the same point forever.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import (Callable, Dict, List, Optional, Sequence, Tuple,
                    TypeVar, Union)

import pathlib

from repro.errors import ConfigError, QueueInterrupted, TraceError
from repro.fleet.parallel import run_sharded_incremental
from repro.fleet.result_cache import StudyResultCache

#: Environment override for the default checkpoint directory; unset or
#: empty disables shard checkpointing.
CHECKPOINT_ENV_VAR = "REPRO_CHECKPOINT"

#: Deterministic-interruption knob: abort the queue (with
#: :class:`~repro.errors.QueueInterrupted`) after this many shards have
#: been computed and journaled in the current run.
ABORT_ENV_VAR = "REPRO_QUEUE_ABORT_AFTER"

#: Part of every shard-task key; bumped whenever shard semantics or
#: payload layout change meaning, so journals written by older code
#: never resolve.
QUEUE_SCHEMA_VERSION = 1

_Spec = TypeVar("_Spec")
_Result = TypeVar("_Result")


def resolve_checkpoint_dir(
        checkpoint_dir: Optional[Union[str, pathlib.Path]] = None
) -> Optional[str]:
    """The checkpoint directory to use: explicit arg, else
    ``$REPRO_CHECKPOINT``, else ``None`` (checkpointing disabled).

    An explicit empty string disables checkpointing even when the
    environment variable is set (the CLI uses that to pin down
    comparison legs).
    """
    if checkpoint_dir is None:
        checkpoint_dir = os.environ.get(CHECKPOINT_ENV_VAR, "").strip() or None
    if not checkpoint_dir:
        return None
    return str(checkpoint_dir)


def resolve_abort_after(abort_after: Optional[int] = None) -> Optional[int]:
    """The abort-after threshold: explicit arg, else
    ``$REPRO_QUEUE_ABORT_AFTER``, else ``None`` (never abort).

    The environment value must be a positive integer; junk raises a
    :class:`ConfigError` naming the variable — a mistyped abort knob
    silently never firing would make a resume test vacuously pass.
    """
    if abort_after is not None:
        if abort_after <= 0:
            raise ConfigError(
                f"abort-after must be positive, got {abort_after}")
        return abort_after
    env = os.environ.get(ABORT_ENV_VAR, "").strip()
    if not env:
        return None
    try:
        value = int(env)
    except ValueError:
        raise ConfigError(
            f"{ABORT_ENV_VAR} must be a positive integer, "
            f"got {env!r}") from None
    if value <= 0:
        raise ConfigError(
            f"{ABORT_ENV_VAR} must be a positive integer, got {value}")
    return value


class ShardCheckpoint(StudyResultCache):
    """The shard journal: a result cache that never evicts.

    Entries embed their key material (``embed_material=True`` on every
    store) so :func:`queue_status` can group journal contents by study
    without recomputing keys, and eviction is disabled because dropping
    a finished shard mid-study would silently forfeit resume progress.
    """

    def __init__(self, root: Union[str, pathlib.Path]) -> None:
        super().__init__(root, max_entries=None)

    def journal(self, material: Dict, payload: Dict) -> pathlib.Path:
        """Atomically record one finished shard."""
        return self.store(material, payload, embed_material=True)

    def materials(self) -> List[Dict]:
        """Key material of every valid journaled shard (unordered)."""
        found: List[Dict] = []
        for path in self._entries():
            entry = self._read_entry(path)
            if entry is None:
                continue
            material = entry.get("material")
            if isinstance(material, dict):
                found.append(material)
        return found


def shard_checkpoint(
        checkpoint_dir: Optional[Union[str, pathlib.Path]] = None
) -> Optional[ShardCheckpoint]:
    """The journal for ``checkpoint_dir`` / ``$REPRO_CHECKPOINT``, or
    ``None`` when checkpointing is disabled."""
    resolved = resolve_checkpoint_dir(checkpoint_dir)
    if resolved is None:
        return None
    return ShardCheckpoint(resolved)


def shard_task_material(study: str, spec_material: Dict) -> Dict:
    """Key material for one shard task.

    ``spec_material`` must capture everything the shard result depends
    on — the shard spec itself (machines, seed, epochs, config
    signature, fault plan, shard index) and, for trace-driven studies,
    the trace fingerprint. The study kind and the queue schema version
    are mixed in here so an ablation shard and a sweep shard can never
    collide and journals from older code never resolve.
    """
    return {
        "kind": "shard-task",
        "queue_schema": QUEUE_SCHEMA_VERSION,
        "study": study,
        "spec": spec_material,
    }


@dataclass(frozen=True)
class QueueStats:
    """What one checkpointed run did.

    Attributes:
        total: Shards in the plan.
        restored: Shards loaded from the journal instead of computed.
        computed: Shards actually executed this run.
        journaled: Shards written to the journal this run (equals
            ``computed`` when a checkpoint directory is configured,
            zero otherwise).
        restored_indexes: Plan indexes of the restored shards (sorted) —
            what lets a study log ``shard-restored`` vs.
            ``shard-checkpoint`` events in plan order.
    """

    total: int
    restored: int
    computed: int
    journaled: int
    restored_indexes: Tuple[int, ...] = ()

    def to_dict(self) -> Dict:
        """Plain-data form for manifests and CLI reporting."""
        return {
            "total": self.total,
            "restored": self.restored,
            "computed": self.computed,
            "journaled": self.journaled,
        }


def run_checkpointed(
        worker: Callable[[_Spec], _Result],
        specs: Sequence[_Spec],
        materials: Sequence[Dict],
        workers: int = 1,
        checkpoint: Optional[ShardCheckpoint] = None,
        to_payload: Optional[Callable[[_Result], Dict]] = None,
        from_payload: Optional[Callable[[Dict], _Result]] = None,
        resume: bool = True,
        abort_after: Optional[int] = None,
) -> Tuple[List[_Result], QueueStats]:
    """Map ``worker`` over ``specs`` through the checkpoint journal.

    ``materials[i]`` is the shard-task key material for ``specs[i]``
    (build it with :func:`shard_task_material`). With a ``checkpoint``,
    every journaled shard whose key matches is restored via
    ``from_payload`` instead of computed (unless ``resume=False``, which
    still journals but never reads), and every computed shard is
    journaled via ``to_payload`` the moment it lands — in completion
    order, so an interrupted run keeps all finished work.

    Results come back in spec order regardless of restore/compute mix
    and worker completion order, which is what keeps the downstream
    plan-order fold bit-identical to a fresh serial run.

    ``abort_after`` (or ``$REPRO_QUEUE_ABORT_AFTER``) raises
    :class:`~repro.errors.QueueInterrupted` once that many shards have
    been computed and journaled this run; restored shards do not count.

    A journal entry that fails to deserialize is treated as missing and
    recomputed; journaling failures (disk full, permissions) propagate —
    silently not checkpointing would break the resume promise.
    """
    if len(specs) != len(materials):
        raise ConfigError(
            f"{len(specs)} specs but {len(materials)} key materials")
    abort_after = resolve_abort_after(abort_after)
    if checkpoint is None or to_payload is None or from_payload is None:
        if abort_after is not None and abort_after < len(specs):
            # No journal to preserve progress in, but the deterministic
            # interruption must still fire so tests can assert that an
            # un-checkpointed study loses its work.
            raise QueueInterrupted(
                f"aborting after {abort_after} of {len(specs)} shards "
                f"(no checkpoint directory configured)")
        outputs = run_sharded_incremental(worker, specs, workers)
        return outputs, QueueStats(
            total=len(specs), restored=0,
            computed=len(specs), journaled=0)

    results: List[Optional[_Result]] = [None] * len(specs)
    restored_indexes: List[int] = []
    if resume:
        for index, material in enumerate(materials):
            payload = checkpoint.load(material)
            if payload is None:
                continue
            try:
                results[index] = from_payload(payload)
            except (TraceError, KeyError, TypeError, ValueError):
                # Journaled under matching keys but no longer
                # deserializable (e.g. payload layout drift without a
                # schema bump): recompute rather than crash.
                continue
            restored_indexes.append(index)
    restored = len(restored_indexes)

    pending = [index for index in range(len(specs))
               if results[index] is None]
    computed = 0

    def journal_result(position: int, result: _Result) -> None:
        nonlocal computed
        index = pending[position]
        results[index] = result
        checkpoint.journal(materials[index], to_payload(result))
        computed += 1
        if abort_after is not None and computed >= abort_after:
            raise QueueInterrupted(
                f"aborting after {computed} computed shards "
                f"({restored} restored, {len(specs)} total); "
                f"journal: {checkpoint.root}")

    run_sharded_incremental(
        worker, [specs[index] for index in pending], workers,
        on_result=journal_result)
    outputs: List[_Result] = results  # type: ignore[assignment]
    return outputs, QueueStats(
        total=len(specs), restored=restored,
        computed=computed, journaled=computed,
        restored_indexes=tuple(restored_indexes))


def queue_status(checkpoint: ShardCheckpoint) -> Dict:
    """Per-study progress summary of a checkpoint directory.

    Groups valid journal entries by study kind; corrupt entries and
    entries without embedded material are counted but not grouped. The
    journal does not know a study's *total* shard count (that lives in
    the study parameters), so this reports what is journaled, not a
    completion percentage.
    """
    scan = checkpoint.scan()
    studies: Dict[str, Dict] = {}
    grouped = 0
    for material in checkpoint.materials():
        if material.get("kind") != "shard-task":
            continue
        study = str(material.get("study", "?"))
        bucket = studies.setdefault(
            study, {"shards": 0, "shard_indexes": [], "policies": set()})
        bucket["shards"] += 1
        spec = material.get("spec")
        if isinstance(spec, dict):
            if "shard_index" in spec:
                bucket["shard_indexes"].append(spec["shard_index"])
            # Policy-injected ablation shards carry the serialized
            # policy in their key material; surface the distinct kinds
            # so `repro queue` shows which controllers a directory's
            # journaled comparison legs belong to.
            policy = spec.get("policy")
            if isinstance(policy, dict) and "kind" in policy:
                bucket["policies"].add(str(policy["kind"]))
        grouped += 1
    for bucket in studies.values():
        bucket["shard_indexes"] = sorted(
            i for i in bucket["shard_indexes"] if isinstance(i, int))
        bucket["policies"] = sorted(bucket["policies"])
    return {
        "root": str(checkpoint.root),
        "entries": scan["entries"],
        "bytes": scan["bytes"],
        "valid": scan["valid"],
        "corrupt": scan["corrupt"],
        "shard_tasks": grouped,
        "studies": studies,
        "stats": checkpoint.stats(),
    }
