"""A machine: sockets plus optional per-socket Limoncello daemons."""

from __future__ import annotations

import hashlib
import inspect
import math
import random
from typing import List, Optional

from repro.core.actuator import MSRPrefetcherActuator
from repro.core.config import LimoncelloConfig
from repro.core.daemon import LimoncelloDaemon
from repro.errors import ConfigError
from repro.fleet.platform import PlatformSpec
from repro.fleet.socket import SimulatedSocket, SocketEpoch
from repro.fleet.task import Task
from repro.telemetry.sampler import PerfBandwidthSampler
from repro.units import SECOND


def machine_seed(name: str) -> int:
    """Stable 63-bit RNG seed for a machine, derived from its name.

    BLAKE2b over the name, in the same style as
    :func:`repro.fleet.shard.shard_seed` — independent of
    ``PYTHONHASHSEED``, process, and platform. The previous
    ``hash(name) & 0xFFFF`` fallback silently changed per interpreter
    invocation under salted string hashing, making directly-constructed
    machines non-reproducible across runs.
    """
    digest = hashlib.blake2b(
        f"limoncello-machine:{name}".encode(), digest_size=8).digest()
    return int.from_bytes(digest, "big") & 0x7FFF_FFFF_FFFF_FFFF


class Machine:
    """One fleet machine: N sockets of one platform.

    When Hard Limoncello is deployed, each socket gets its own daemon
    (telemetry, controller, MSR actuator) — the paper's controller is
    per-socket (Section 3).
    """

    def __init__(self, name: str, platform: PlatformSpec,
                 sockets: int = 2, telemetry_dropout: float = 0.0,
                 demand_noise_sigma: float = 0.12,
                 rng: Optional[random.Random] = None,
                 chaos=None, tracer=None) -> None:
        if sockets <= 0:
            raise ConfigError("machines need at least one socket")
        if demand_noise_sigma < 0:
            raise ConfigError("demand noise sigma cannot be negative")
        self.name = name
        self.platform = platform
        self.demand_noise_sigma = demand_noise_sigma
        #: AR(1) persistence of the machine's demand swings: bursts last
        #: several epochs (Figure 7), which is what gives the controller's
        #: sustain timer something real to filter.
        self.demand_noise_rho = 0.7
        self._log_demand_noise = 0.0
        self.sockets: List[SimulatedSocket] = [
            SimulatedSocket(platform, index=i) for i in range(sockets)]
        self._telemetry_dropout = telemetry_dropout
        self._rng = rng or random.Random(machine_seed(name))
        #: Optional :class:`~repro.faults.injectors.MachineChaos` fault
        #: environment; when set, deployed daemons see faulted telemetry
        #: and actuation and the machine follows its crash schedule.
        self.chaos = chaos
        #: Times this machine has come back from a chaos-injected crash.
        self.restarts = 0
        #: Optional :class:`repro.obs.Tracer` shared by this machine's
        #: daemons; events carry ``"<machine>/<socket>"`` idents.
        self.tracer = tracer
        self.daemons: List[LimoncelloDaemon] = []

    # --- Limoncello deployment -------------------------------------------------

    def deploy_hard_limoncello(self, config: Optional[LimoncelloConfig] = None,
                               controller_factory=None) -> None:
        """Install a per-socket control daemon (idempotent).

        ``controller_factory`` may take zero arguments (the historical
        contract) or one — the socket's ``"<machine>/<socket>"`` ident.
        Policy controllers need the ident at construction time so
        per-socket learning streams derive from it deterministically,
        whether or not a tracer later attaches the same ident.
        """
        if self.daemons:
            return
        factory_arity = 0
        if controller_factory is not None:
            try:
                factory_arity = len(
                    inspect.signature(controller_factory).parameters)
            except (TypeError, ValueError):
                factory_arity = 0
        for socket in self.sockets:
            sampler = PerfBandwidthSampler(
                socket, dropout_rate=self._telemetry_dropout, rng=self._rng)
            actuator = MSRPrefetcherActuator(socket.msrs, socket.msr_map)
            if self.chaos is not None:
                sampler = self.chaos.wrap_sampler(sampler, socket.index)
                actuator = self.chaos.wrap_actuator(actuator, socket)
            ident = f"{self.name}/{socket.index}"
            if controller_factory is None:
                controller = None
            elif factory_arity >= 1:
                controller = controller_factory(ident)
            else:
                controller = controller_factory()
            self.daemons.append(LimoncelloDaemon(
                sampler, actuator, config, controller=controller,
                tracer=self.tracer, ident=ident))

    def deploy_soft_limoncello(self) -> None:
        """Mark the tax-function prefetch insertions as rolled out."""
        for socket in self.sockets:
            socket.soft_deployed = True

    def force_prefetchers(self, enabled: bool) -> None:
        """Directly set prefetcher state on every socket."""
        for socket in self.sockets:
            socket.force_prefetchers(enabled)

    # --- capacity ------------------------------------------------------------------

    @property
    def total_cores(self) -> int:
        """Total CPU cores."""
        return sum(socket.cores for socket in self.sockets)

    @property
    def cores_used(self) -> float:
        """Cores occupied by placed tasks."""
        return sum(socket.cores_used for socket in self.sockets)

    @property
    def cpu_utilization(self) -> float:
        """Occupied cores / total cores — the x-axis of Figures 4 and 19."""
        return self.cores_used / self.total_cores

    @property
    def tasks(self) -> List[Task]:
        """All tasks across this machine's sockets."""
        return [task for socket in self.sockets for task in socket.tasks]

    # --- simulation ------------------------------------------------------------------

    def step(self, now_ns: float, duration_ns: float = SECOND,
             rng: Optional[random.Random] = None,
             demand_scale: float = 1.0) -> List[SocketEpoch]:
        """Advance one epoch: resample noise, run daemons, solve sockets.

        ``demand_scale`` is the fleet-level demand multiplier: at peak
        traffic every placed task serves more requests, and therefore
        pulls more bandwidth, than its placement-time estimate — which is
        how real machines end up past the saturation threshold the
        scheduler tried to respect.
        """
        rng = rng or self._rng
        if self.chaos is not None:
            status = self.chaos.advance()
            if status == "down":
                # The machine is dark: no scheduling noise, no daemons,
                # no demand — sockets idle at zero offered load. No RNG
                # draws are consumed, so the crash schedule (which has
                # its own stream) is the only thing that perturbs the
                # run's randomness.
                return [socket.step(now_ns, duration_ns, demand_factor=0.0)
                        for socket in self.sockets]
            if status == "restart":
                self._restart(now_ns)
        for socket in self.sockets:
            for task in socket.tasks:
                task.resample_noise(rng)
        # Machine-level volatility, shared by co-located tasks (bursts of
        # correlated traffic are what make Figure 7's trace swing). An
        # AR(1) process in log space: persistent bursts, stationary
        # variance equal to demand_noise_sigma**2.
        if self.demand_noise_sigma > 0:
            rho = self.demand_noise_rho
            innovation_sigma = self.demand_noise_sigma * (1 - rho * rho) ** 0.5
            self._log_demand_noise = (rho * self._log_demand_noise
                                      + rng.gauss(0.0, innovation_sigma))
            demand_factor = math.exp(self._log_demand_noise)
        else:
            demand_factor = 1.0
        demand_factor *= demand_scale
        # Daemons act on the *previous* epoch's telemetry, as real
        # controllers do — they cannot see the epoch being computed.
        for daemon in self.daemons:
            daemon.step(now_ns)
        return [socket.step(now_ns, duration_ns, demand_factor)
                for socket in self.sockets]

    def _restart(self, now_ns: float) -> None:
        """Bring the machine back after a chaos-injected crash.

        The chaos plan's restart policy decides the prefetcher state the
        machine boots with: ``"enabled"`` (the hardware default),
        ``"disabled"`` (a pathological BIOS), or ``"preserved"`` (a
        kexec-style reboot keeping MSR state). Daemons restart with
        fresh controller state either way.
        """
        self.restarts += 1
        policy = self.chaos.restart_policy
        restored: Optional[bool] = None
        if policy == "enabled":
            restored = True
        elif policy == "disabled":
            restored = False
        if restored is not None:
            self.force_prefetchers(restored)
        for daemon in self.daemons:
            daemon.restart(now_ns, restored_enabled=restored)
