"""Tasks: the unit of work the cluster scheduler places on sockets.

A task models one service instance: it occupies CPU cores, demands memory
bandwidth in proportion to the work it gets done, and divides its cycles
among roster functions. Its *speed* (throughput relative to an unloaded
machine) degrades with memory latency and — when hardware prefetchers are
off — with the tax-function miss penalty, moderated by Soft Limoncello.
"""

from __future__ import annotations

import itertools
import math
import random
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.errors import ConfigError
from repro.fleet.calibration import DEFAULT_RESPONSES, ResponseTable

_task_ids = itertools.count()


@dataclass
class Task:
    """One placed service instance.

    Attributes:
        name: Service instance name.
        cores: CPU cores the task occupies (held whether stalled or not —
            memory stalls burn CPU, which is why high memory latency shows
            up as wasted utilization).
        base_qps: Requests/second served at speed 1.0.
        bandwidth_demand: Memory bandwidth (bytes/ns) generated at speed
            1.0 *without* hardware prefetch overhead.
        memory_boundedness: Fraction of runtime exposed to DRAM latency;
            scales how much loaded-latency growth slows the task.
        function_shares: Cycle share per roster function (sums to ~1).
        noise_sigma: Log-normal volatility of the task's per-epoch demand
            (Figure 7's minute-scale variability).
    """

    name: str
    cores: float
    base_qps: float
    bandwidth_demand: float
    memory_boundedness: float
    function_shares: Dict[str, float]
    noise_sigma: float = 0.10
    responses: ResponseTable = field(default=DEFAULT_RESPONSES, repr=False)

    def __post_init__(self) -> None:
        if self.cores <= 0 or self.base_qps < 0 or self.bandwidth_demand < 0:
            raise ConfigError(f"task {self.name}: invalid resource demands")
        if not 0.0 <= self.memory_boundedness <= 1.0:
            raise ConfigError(
                f"task {self.name}: memory boundedness out of range")
        if not self.function_shares:
            raise ConfigError(f"task {self.name}: empty function shares")
        if self.noise_sigma < 0:
            raise ConfigError(f"task {self.name}: negative noise sigma")
        total = sum(self.function_shares.values())
        if total <= 0:
            raise ConfigError(f"task {self.name}: non-positive share total")
        self.function_shares = {
            fn: share / total for fn, share in self.function_shares.items()}
        #: Cached coefficients, derived once from the response table.
        self._penalty_plain = self.responses.weighted_penalty(
            self.function_shares, soft_deployed=False)
        self._penalty_soft = self.responses.weighted_penalty(
            self.function_shares, soft_deployed=True)
        self._overfetch = self.responses.weighted_overfetch(
            self.function_shares)
        self.noise = 1.0

    # --- per-epoch dynamics --------------------------------------------------

    def resample_noise(self, rng: random.Random) -> None:
        """Redraw this epoch's demand-volatility factor."""
        if self.noise_sigma > 0:
            self.noise = rng.lognormvariate(0.0, self.noise_sigma)
        else:
            self.noise = 1.0

    def penalty_off(self, soft_deployed: bool) -> float:
        """Cycle penalty of running with hardware prefetchers disabled."""
        return self._penalty_soft if soft_deployed else self._penalty_plain

    @property
    def overfetch(self) -> float:
        """Extra traffic fraction hardware prefetchers add for this task."""
        return self._overfetch

    def speed(self, latency_ratio: float, hw_prefetchers_on: bool,
              soft_deployed: bool) -> float:
        """Throughput relative to an unloaded socket (1.0 = full speed).

        ``latency_ratio`` is loaded/unloaded DRAM latency (>= 1).
        """
        slowdown = 1.0 + self.memory_boundedness * (latency_ratio - 1.0)
        if not hw_prefetchers_on:
            slowdown += self.penalty_off(soft_deployed)
        return 1.0 / max(slowdown, 1e-6)

    def offered_bandwidth(self, speed: float,
                          hw_prefetchers_on: bool) -> float:
        """Memory bandwidth generated this epoch, bytes/ns."""
        bandwidth = self.bandwidth_demand * self.noise * speed
        if hw_prefetchers_on:
            bandwidth *= 1.0 + self._overfetch
        return bandwidth

    def estimated_bandwidth(self, hw_prefetchers_on: bool = True) -> float:
        """The scheduler's placement-time estimate (full speed)."""
        if hw_prefetchers_on:
            return self.bandwidth_demand * (1.0 + self._overfetch)
        return self.bandwidth_demand


@dataclass(frozen=True)
class TaskTemplate:
    """A service archetype the traffic generator instantiates tasks from."""

    name: str
    function_shares: Dict[str, float]
    cores_range: tuple = (2.0, 8.0)
    #: Log-normal parameters for GB/s demanded per core at full speed:
    #: (median, sigma, low clamp, high clamp). Fleet tasks demand more
    #: per core on average than platforms provision (Section 2.1 /
    #: Figure 4), with a heavy-tailed spread — mixes of light and heavy
    #: tasks are what spread machines across the CPU-utilization buckets
    #: of Figures 4 and 16.
    bandwidth_per_core: tuple = (3.3, 0.75, 0.4, 12.0)
    memory_boundedness_range: tuple = (0.35, 0.65)
    qps_per_core: float = 100.0
    noise_sigma: float = 0.10


#: A generic fleet service, shares taken from the roster's fleet profile.
def _fleet_shares() -> Dict[str, float]:
    from repro.workloads.functions import FUNCTION_ROSTER
    return {name: profile.cycle_share
            for name, profile in FUNCTION_ROSTER.items()}


DEFAULT_TEMPLATE = TaskTemplate(name="fleet_service",
                                function_shares=None)  # filled lazily


def sample_task(rng: random.Random,
                template: Optional[TaskTemplate] = None,
                responses: ResponseTable = DEFAULT_RESPONSES) -> Task:
    """Draw one task from a template's parameter ranges."""
    template = template or DEFAULT_TEMPLATE
    shares = template.function_shares or _fleet_shares()
    cores = rng.uniform(*template.cores_range)
    median, sigma, low, high = template.bandwidth_per_core
    per_core = min(max(rng.lognormvariate(math.log(median), sigma), low),
                   high)
    return Task(
        name=f"{template.name}-{next(_task_ids)}",
        cores=cores,
        base_qps=template.qps_per_core * cores,
        bandwidth_demand=per_core * cores,
        memory_boundedness=rng.uniform(*template.memory_boundedness_range),
        function_shares=dict(shares),
        noise_sigma=template.noise_sigma,
        responses=responses,
    )
