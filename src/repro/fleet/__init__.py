"""The fleet simulator: platforms, machines, scheduler, traffic, studies.

This package plays the role of Google's production fleet in the paper's
evaluation. It is an *analytic* (per-epoch fixed-point) model layered on
coefficients calibrated against the cycle-accurate :mod:`repro.memsys`
simulator (see :mod:`repro.fleet.calibration`): each socket balances task
bandwidth demand against the DRAM latency curve every epoch, tasks slow
down with memory latency and with tax-function miss penalties, and a
bandwidth-aware scheduler decides how much work a machine can take —
which is what couples memory bandwidth headroom to achievable CPU
utilization (Figures 4 and 19).
"""

from repro.fleet.platform import (
    PLATFORM_1,
    PLATFORM_2,
    PLATFORM_CATALOG,
    PlatformSpec,
)
from repro.fleet.calibration import (
    DEFAULT_RESPONSES,
    FunctionResponse,
    ResponseTable,
    calibrate_from_simulator,
)
from repro.fleet.task import Task, TaskTemplate, sample_task
from repro.fleet.socket import SimulatedSocket, SocketEpoch
from repro.fleet.machine import Machine
from repro.fleet.scheduler import BandwidthAwareScheduler
from repro.fleet.traffic import DiurnalTraffic, VolatileTraffic
from repro.fleet.cluster import Fleet, FleetMetrics
from repro.fleet.shard import (
    DEFAULT_SHARD_SIZE,
    ShardPlan,
    plan_batches,
    plan_rounds,
    plan_shards,
    shard_seed,
)
from repro.fleet.parallel import (
    DEFAULT_BATCH_SIZE,
    ENGINE_CHOICES,
    resolve_batch_size,
    resolve_engine,
    resolve_workers,
    run_sharded,
    run_sharded_incremental,
)
from repro.fleet.result_cache import StudyResultCache, study_cache
from repro.fleet.queue import (
    QueueStats,
    ShardCheckpoint,
    queue_status,
    run_checkpointed,
    shard_checkpoint,
    shard_task_material,
)
from repro.fleet.adaptive import (
    AdaptiveAblation,
    AdaptiveResult,
    ArmState,
    arm_interval,
    arms_separated,
)
from repro.fleet.sweep import (
    MicroFleetSweep,
    MicroSweepResult,
    MicroSweepShardSpec,
    SWEEP_WORKLOADS,
    sweep_digest,
)
from repro.fleet.ablation import (
    AblationResult,
    AblationShardSpec,
    AblationStudy,
)
from repro.fleet.rollout import RolloutResult, RolloutShardSpec, RolloutStudy

__all__ = [
    "DEFAULT_SHARD_SIZE",
    "DEFAULT_BATCH_SIZE",
    "ShardPlan",
    "plan_batches",
    "plan_rounds",
    "plan_shards",
    "shard_seed",
    "ENGINE_CHOICES",
    "resolve_batch_size",
    "resolve_engine",
    "resolve_workers",
    "run_sharded",
    "run_sharded_incremental",
    "StudyResultCache",
    "study_cache",
    "QueueStats",
    "ShardCheckpoint",
    "queue_status",
    "run_checkpointed",
    "shard_checkpoint",
    "shard_task_material",
    "AdaptiveAblation",
    "AdaptiveResult",
    "ArmState",
    "arm_interval",
    "arms_separated",
    "MicroFleetSweep",
    "MicroSweepResult",
    "MicroSweepShardSpec",
    "SWEEP_WORKLOADS",
    "sweep_digest",
    "PlatformSpec",
    "PLATFORM_1",
    "PLATFORM_2",
    "PLATFORM_CATALOG",
    "FunctionResponse",
    "ResponseTable",
    "DEFAULT_RESPONSES",
    "calibrate_from_simulator",
    "Task",
    "TaskTemplate",
    "sample_task",
    "SimulatedSocket",
    "SocketEpoch",
    "Machine",
    "BandwidthAwareScheduler",
    "DiurnalTraffic",
    "VolatileTraffic",
    "Fleet",
    "FleetMetrics",
    "AblationStudy",
    "AblationResult",
    "AblationShardSpec",
    "RolloutStudy",
    "RolloutResult",
    "RolloutShardSpec",
]
