"""Worker-pool execution for sharded fleet studies.

Shards are mapped across processes with
:class:`concurrent.futures.ProcessPoolExecutor`. The contract that keeps
parallel output bit-identical to serial output:

* the task list (shard specs) is fixed before any worker starts, and
* results are collected *positionally*, so the merge downstream always
  folds shards in plan order no matter which worker finished first.

Anything that prevents a pool from working — a sandbox without process
semaphores, an interpreter without ``fork``/``spawn``, a worker dying —
degrades to the serial path rather than failing the study.
"""

from __future__ import annotations

import concurrent.futures
import concurrent.futures.process
import os
from typing import Callable, List, Optional, Sequence, TypeVar

from repro.errors import ConfigError

#: Environment override for the default worker count, honoured by every
#: study entry point when the caller does not pass ``workers`` explicitly.
WORKERS_ENV_VAR = "REPRO_WORKERS"

#: Environment override for the lockstep batch size. ``0`` (or ``off``)
#: disables batching so every arm runs the scalar compiled engine — the
#: oracle configuration CI diffs against.
BATCH_ENV_VAR = "REPRO_BATCH"

#: Arms per lockstep batch when nobody chooses. Matches
#: :data:`~repro.fleet.shard.DEFAULT_SHARD_SIZE` so one default shard
#: becomes exactly one default batch.
DEFAULT_BATCH_SIZE = 32

_Spec = TypeVar("_Spec")
_Result = TypeVar("_Result")


def resolve_workers(workers: Optional[int] = None) -> int:
    """The worker count to use: explicit arg, else ``$REPRO_WORKERS``,
    else 1 (serial).

    An explicit ``workers=0`` means "all available CPUs" (that is what
    ``--workers 0`` documents). The environment variable is stricter: it
    must be a positive integer, and ``0``, negatives, and non-integers
    are all rejected with a :class:`ConfigError` (a ``ValueError``)
    naming the variable — a mistyped ``REPRO_WORKERS`` silently running
    serial, or accidentally fanning out to every CPU, is exactly the
    kind of quiet misconfiguration that wastes a study run.
    """
    if workers is None:
        env = os.environ.get(WORKERS_ENV_VAR, "").strip()
        if not env:
            return 1
        try:
            workers = int(env)
        except ValueError:
            raise ConfigError(
                f"{WORKERS_ENV_VAR} must be a positive integer, "
                f"got {env!r}") from None
        if workers <= 0:
            raise ConfigError(
                f"{WORKERS_ENV_VAR} must be a positive integer, "
                f"got {workers}")
        return workers
    if workers < 0:
        raise ConfigError(f"workers cannot be negative, got {workers}")
    if workers == 0:
        return os.cpu_count() or 1
    return workers


def resolve_batch_size(batch_size: Optional[int] = None) -> int:
    """The lockstep batch size to use: explicit arg, else ``$REPRO_BATCH``,
    else :data:`DEFAULT_BATCH_SIZE`.

    ``0`` — explicit or via the environment (which also accepts ``off``)
    — disables batching: every arm runs the scalar compiled engine.
    Any other environment value must be a positive integer; junk raises
    a :class:`ConfigError` naming the variable, mirroring
    :func:`resolve_workers` — a mistyped ``REPRO_BATCH`` silently
    running scalar would quietly forfeit the engine an equivalence CI
    run is trying to exercise.
    """
    if batch_size is None:
        env = os.environ.get(BATCH_ENV_VAR, "").strip()
        if not env:
            return DEFAULT_BATCH_SIZE
        if env.lower() == "off":
            return 0
        try:
            batch_size = int(env)
        except ValueError:
            raise ConfigError(
                f"{BATCH_ENV_VAR} must be a non-negative integer or 'off', "
                f"got {env!r}") from None
        if batch_size < 0:
            raise ConfigError(
                f"{BATCH_ENV_VAR} must be a non-negative integer or 'off', "
                f"got {batch_size}")
        return batch_size
    if batch_size < 0:
        raise ConfigError(f"batch size cannot be negative, got {batch_size}")
    return batch_size


#: CLI values for ``--engine``: ``auto`` keeps the layered defaults
#: (explicit batch size, else ``$REPRO_BATCH``, else the default),
#: ``batched`` forces the lockstep engine on, ``scalar`` forces it off.
ENGINE_CHOICES = ("auto", "batched", "scalar")


def resolve_engine(engine: Optional[str],
                   batch_size: Optional[int] = None) -> Optional[int]:
    """Fold an ``--engine`` choice into the effective batch size.

    Returns the ``batch_size`` to hand to the study/``run_many`` chain:

    * ``auto`` (or ``None``): pass ``batch_size`` through untouched, so
      the existing precedence (explicit flag, else ``$REPRO_BATCH``,
      else :data:`DEFAULT_BATCH_SIZE`) applies unchanged.
    * ``scalar``: returns ``0`` — batching off. A contradictory explicit
      ``batch_size`` raises a :class:`ConfigError` rather than silently
      picking a side.
    * ``batched``: guarantees a positive batch size. An explicit
      positive ``batch_size`` wins; otherwise ``$REPRO_BATCH`` is
      consulted, with ``0``/``off`` overridden back to
      :data:`DEFAULT_BATCH_SIZE` (the flag outranks the environment);
      an explicit ``batch_size=0`` is contradictory and raises.
    """
    if engine is None or engine == "auto":
        return batch_size
    if engine == "scalar":
        if batch_size:
            raise ConfigError(
                f"--engine scalar contradicts --batch-size {batch_size}")
        return 0
    if engine == "batched":
        if batch_size is not None:
            if batch_size == 0:
                raise ConfigError(
                    "--engine batched contradicts --batch-size 0")
            return batch_size
        resolved = resolve_batch_size(None)
        return resolved if resolved > 0 else DEFAULT_BATCH_SIZE
    raise ConfigError(
        f"engine must be one of {ENGINE_CHOICES}, got {engine!r}")


def run_sharded(worker: Callable[[_Spec], _Result],
                specs: Sequence[_Spec],
                workers: int = 1) -> List[_Result]:
    """Map ``worker`` over ``specs``; results come back in spec order.

    With ``workers <= 1`` (or a single spec) this is a plain serial loop.
    Otherwise the specs are fanned out over a process pool — ``worker``
    and every spec must be picklable (module-level function, dataclass
    spec). If the pool cannot be created or dies mid-flight the whole
    map is recomputed serially; workers are pure functions of their spec,
    so recomputation cannot change the answer.
    """
    if workers <= 1 or len(specs) <= 1:
        return [worker(spec) for spec in specs]
    try:
        max_workers = min(workers, len(specs))
        with concurrent.futures.ProcessPoolExecutor(
                max_workers=max_workers) as pool:
            return list(pool.map(worker, specs))
    except (OSError, ImportError, PermissionError,
            concurrent.futures.process.BrokenProcessPool):
        # No usable process pool here (restricted sandbox, missing
        # semaphores, killed worker): fall back to the serial path.
        return [worker(spec) for spec in specs]


class _CallbackError(Exception):
    """Wraps an exception raised by an ``on_result`` callback.

    The incremental runner must tell *pool* failures (degrade to serial,
    results unaffected) apart from *callback* failures (the caller's
    journal raised, or deliberately interrupted the queue — propagate).
    Since both surface inside the same ``try``, callback exceptions are
    wrapped in this marker on the way out and unwrapped past the pool
    handler.
    """

    def __init__(self, cause: BaseException) -> None:
        super().__init__(str(cause))
        self.cause = cause


def run_sharded_incremental(
        worker: Callable[[_Spec], _Result],
        specs: Sequence[_Spec],
        workers: int = 1,
        on_result: Optional[Callable[[int, _Result], None]] = None,
) -> List[_Result]:
    """Like :func:`run_sharded`, but reports each result as it lands.

    ``on_result(index, result)`` fires exactly once per spec, in
    *completion* order (which under a pool differs from spec order), as
    soon as that shard's result exists — this is the hook the checkpoint
    journal writes through, so a study killed mid-run keeps every shard
    that finished. The returned list is still in spec order, so the
    downstream merge is unaffected.

    Failure contract:

    * Pool infrastructure failing (no semaphores, broken pool) degrades
      to serial — but only the positions whose callback has *not* fired
      are recomputed, so ``on_result`` still fires exactly once per spec
      and nothing already journaled is recomputed or re-reported.
    * An exception raised *by the callback* (including a deliberate
      :class:`~repro.errors.QueueInterrupted`) propagates to the caller
      unchanged; it is never mistaken for a pool failure.
    """
    if on_result is None:
        return run_sharded(worker, specs, workers)
    results: List[Optional[_Result]] = [None] * len(specs)
    done = [False] * len(specs)

    def finish(index: int, result: _Result) -> None:
        results[index] = result
        done[index] = True
        try:
            on_result(index, result)
        except BaseException as exc:
            raise _CallbackError(exc) from exc

    try:
        if workers <= 1 or len(specs) <= 1:
            for index, spec in enumerate(specs):
                finish(index, worker(spec))
        else:
            max_workers = min(workers, len(specs))
            with concurrent.futures.ProcessPoolExecutor(
                    max_workers=max_workers) as pool:
                futures = {pool.submit(worker, spec): index
                           for index, spec in enumerate(specs)}
                for future in concurrent.futures.as_completed(futures):
                    finish(futures[future], future.result())
    except _CallbackError as exc:
        raise exc.cause
    except (OSError, ImportError, PermissionError,
            concurrent.futures.process.BrokenProcessPool):
        # Pool infrastructure failed. Recompute only the shards whose
        # callback has not fired, so ``on_result`` still fires exactly
        # once per spec; callback exceptions from this serial pass are
        # unwrapped below.
        try:
            for index, spec in enumerate(specs):
                if not done[index]:
                    finish(index, worker(spec))
        except _CallbackError as exc:
            raise exc.cause
    return results  # type: ignore[return-value]
