"""Per-function response coefficients bridging micro and fleet levels.

The fleet model does not replay memory traces — at tens of thousands of
simulated machines that would be hopeless. Instead it consumes a small
table of *response coefficients* per roster function, measured once on the
cycle-level simulator (:mod:`repro.memsys`):

* ``cycle_penalty_off`` — fractional cycle increase when hardware
  prefetchers are disabled, at low memory-bandwidth utilization (so the
  fleet's own latency model is not double counted);
* ``soft_recovery`` — fraction of that penalty removed by Soft
  Limoncello's tuned prefetch insertions;
* ``mpki_on`` / ``mpki_off`` — LLC MPKI with prefetchers on/off;
* ``overfetch`` — fractional extra DRAM traffic hardware prefetching
  generates for this function.

:data:`DEFAULT_RESPONSES` holds the values measured from the simulator at
its default configuration (rounded); :func:`calibrate_from_simulator`
regenerates the table from scratch, and a regression test asserts the two
agree in sign and ordering.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable

from repro.errors import ConfigError
from repro.workloads.base import FunctionCategory, TAX_CATEGORIES


#: The trace simulator's in-order core pays full DRAM latency on every
#: miss, overstating miss penalties by roughly this inverse factor versus
#: the out-of-order parts the fleet runs on (which overlap misses with
#: independent work). Applied when micro-measured penalties are used at
#: fleet level; calibrated so the fleet-wide ablation throughput drop
#: matches the paper's ~5% and the per-category cycle increases match
#: Figure 12's 10-30%.
OOO_LATENCY_TOLERANCE = 0.35


@dataclass(frozen=True)
class FunctionResponse:
    """How one function responds to prefetcher state."""

    name: str
    category: FunctionCategory
    cycle_share: float
    cycle_penalty_off: float
    soft_recovery: float
    mpki_on: float
    mpki_off: float
    overfetch: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.cycle_share <= 1.0:
            raise ConfigError(f"{self.name}: cycle share out of range")
        if not 0.0 <= self.soft_recovery <= 1.05:
            raise ConfigError(f"{self.name}: soft recovery out of range")
        if self.mpki_on < 0 or self.mpki_off < 0:
            raise ConfigError(f"{self.name}: MPKI cannot be negative")
        if self.overfetch < 0:
            raise ConfigError(f"{self.name}: overfetch cannot be negative")

    @property
    def is_tax(self) -> bool:
        """True when the category is a data center tax category."""
        return self.category in TAX_CATEGORIES

    def effective_penalty(self, soft_deployed: bool) -> float:
        """Fleet-level cycle penalty of running with prefetchers off.

        The micro-measured penalty is de-rated by
        :data:`OOO_LATENCY_TOLERANCE` (see its docstring).
        """
        penalty = self.cycle_penalty_off * OOO_LATENCY_TOLERANCE
        if soft_deployed and self.soft_recovery > 0:
            return penalty * (1.0 - min(self.soft_recovery, 1.0))
        return penalty

    def mpki(self, hw_enabled: bool, soft_deployed: bool) -> float:
        """LLC MPKI under a prefetcher configuration."""
        if hw_enabled:
            return self.mpki_on
        if soft_deployed and self.soft_recovery > 0:
            recovery = min(self.soft_recovery, 1.0)
            return self.mpki_off - recovery * (self.mpki_off - self.mpki_on)
        return self.mpki_off


class ResponseTable:
    """The per-function response coefficients, keyed by function name."""

    def __init__(self, responses: Iterable[FunctionResponse]) -> None:
        self._responses: Dict[str, FunctionResponse] = {}
        for response in responses:
            if response.name in self._responses:
                raise ConfigError(f"duplicate response for {response.name!r}")
            self._responses[response.name] = response
        if not self._responses:
            raise ConfigError("response table cannot be empty")

    def __getitem__(self, name: str) -> FunctionResponse:
        try:
            return self._responses[name]
        except KeyError:
            raise ConfigError(f"no response entry for {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._responses

    def __iter__(self):
        return iter(self._responses.values())

    def names(self):
        """All known names, in insertion order."""
        return list(self._responses)

    def weighted_penalty(self, shares: Dict[str, float],
                         soft_deployed: bool) -> float:
        """Cycle-share-weighted prefetchers-off penalty for a share mix."""
        return sum(share * self[name].effective_penalty(soft_deployed)
                   for name, share in shares.items())

    def weighted_overfetch(self, shares: Dict[str, float]) -> float:
        """Cycle-share-weighted hardware-prefetch traffic overhead."""
        return sum(share * self[name].overfetch
                   for name, share in shares.items())


_C = FunctionCategory

#: Measured on repro.memsys at the default HierarchyConfig (seed 42); see
#: calibrate_from_simulator() and tests/test_fleet_calibration.py.
DEFAULT_RESPONSES = ResponseTable([
    FunctionResponse("memcpy", _C.DATA_MOVEMENT, 0.07, 0.41, 0.95, 19.0, 269.0, 0.18),
    FunctionResponse("memmove", _C.DATA_MOVEMENT, 0.02, 0.08, 0.50, 168.0, 385.0, 0.22),
    FunctionResponse("memset", _C.DATA_MOVEMENT, 0.02, 0.08, 0.80, 125.0, 500.0, 0.64),
    FunctionResponse("compress", _C.COMPRESSION, 0.05, 0.85, 0.95, 0.14, 81.0, 0.01),
    FunctionResponse("decompress", _C.COMPRESSION, 0.05, 0.46, 0.95, 0.31, 176.0, 0.01),
    FunctionResponse("hash", _C.HASHING, 0.03, 1.34, 0.98, 0.71, 91.0, 0.02),
    FunctionResponse("crc32", _C.HASHING, 0.02, 1.97, 0.97, 0.39, 200.0, 0.01),
    FunctionResponse("serialize", _C.DATA_TRANSMISSION, 0.05, 0.77, 0.95, 1.6, 105.0, 0.04),
    FunctionResponse("deserialize", _C.DATA_TRANSMISSION, 0.05, 0.38, 0.95, 2.8, 273.0, 0.03),
    FunctionResponse("pointer_chase", _C.NON_TAX, 0.18, -0.01, 0.0, 200.0, 200.0, 0.10),
    FunctionResponse("btree_lookup", _C.NON_TAX, 0.14, -0.01, 0.0, 103.0, 103.0, 0.22),
    FunctionResponse("hashmap_probe", _C.NON_TAX, 0.14, -0.01, 0.0, 200.0, 200.0, 0.08),
    FunctionResponse("random_access", _C.NON_TAX, 0.10, -0.01, 0.0, 333.0, 333.0, 0.08),
    # Prefetch-friendly but not hot enough per call site to target with
    # Soft Limoncello (soft_recovery = 0): the residual cost of running
    # with prefetchers off (Section 4.1).
    FunctionResponse("misc_streaming", _C.NON_TAX, 0.08, 0.53, 0.0, 7.8, 143.0, 0.36),
])


def calibrate_from_simulator(seed: int = 42, scale: float = 1.0,
                             soft_distance: int = 512,
                             soft_degree: int = 256,
                             soft_gate: int = 2048) -> ResponseTable:
    """Re-measure the response table by running the micro simulator.

    Runs every roster function through :class:`~repro.memsys.MemoryHierarchy`
    three times (prefetchers on; off; off + Soft Limoncello) and derives
    the coefficients. Slower than using :data:`DEFAULT_RESPONSES` but
    guaranteed consistent with the current simulator configuration.
    """
    # Imported here to keep fleet import-light for users who only need
    # the default table.
    from repro.core.soft.descriptor import PrefetchDescriptor
    from repro.core.soft.injector import SoftwarePrefetchInjector
    from repro.memsys.hierarchy import MemoryHierarchy
    from repro.workloads.functions import FUNCTION_ROSTER
    from repro.workloads.memo import memoized_function_trace

    tax_names = [name for name, profile in FUNCTION_ROSTER.items()
                 if profile.category in TAX_CATEGORIES]
    injector = SoftwarePrefetchInjector([
        PrefetchDescriptor(name, distance_bytes=soft_distance,
                           degree_bytes=soft_degree, min_size_bytes=soft_gate)
        for name in tax_names
    ])

    responses = []
    for name, profile in FUNCTION_ROSTER.items():
        # Memoized: all three arms replay the same deterministic trace
        # object, generated (and compiled) once per (name, seed, scale).
        trace = memoized_function_trace(name, seed, scale)

        hierarchy = MemoryHierarchy()
        on = hierarchy.run(trace)
        hierarchy = MemoryHierarchy()
        hierarchy.set_hardware_prefetchers(False)
        off = hierarchy.run(trace)
        hierarchy = MemoryHierarchy()
        hierarchy.set_hardware_prefetchers(False)
        soft = hierarchy.run(injector.inject(trace))

        penalty_off = off.total.cycles / on.total.cycles - 1.0
        penalty_soft = soft.total.cycles / on.total.cycles - 1.0
        if penalty_off > 0.0:
            recovery = max(0.0, min(1.0, (penalty_off - penalty_soft)
                                    / penalty_off))
        else:
            recovery = 0.0
        overfetch = max(0.0, on.dram_total_fills
                        / max(off.dram_total_fills, 1) - 1.0)
        responses.append(FunctionResponse(
            name=name,
            category=profile.category,
            cycle_share=profile.cycle_share,
            cycle_penalty_off=penalty_off,
            soft_recovery=recovery,
            mpki_on=on.total.llc_mpki,
            mpki_off=off.total.llc_mpki,
            overfetch=overfetch,
        ))
    return ResponseTable(responses)
