"""The fleet: machines + scheduler + traffic, stepped epoch by epoch."""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.config import LimoncelloConfig
from repro.errors import ConfigError
from repro.faults.injectors import MachineChaos
from repro.faults.plan import FaultPlan
from repro.fleet.machine import Machine
from repro.fleet.platform import PLATFORM_1, PlatformSpec
from repro.fleet.scheduler import BandwidthAwareScheduler
from repro.fleet.task import TaskTemplate, sample_task
from repro.fleet.traffic import DiurnalTraffic
from repro.fleet.calibration import DEFAULT_RESPONSES, ResponseTable
from repro.telemetry.percentile import PercentileSummary
from repro.units import SECOND


@dataclass
class FleetMetrics:
    """Everything the evaluation section reads off a fleet run."""

    #: Flat samples over (socket, epoch): offered bandwidth in GB/s.
    socket_bandwidth: List[float] = field(default_factory=list)
    #: Flat samples over (socket, epoch): bandwidth / saturation.
    socket_utilization: List[float] = field(default_factory=list)
    #: Flat samples over (socket, epoch): loaded DRAM latency, ns.
    socket_latency: List[float] = field(default_factory=list)
    #: Per (machine, epoch): (cpu utilization, bandwidth utilization,
    #: achieved qps, ideal qps).
    machine_points: List[Tuple[float, float, float, float]] = \
        field(default_factory=list)
    #: Total requests served.
    total_qps: float = 0.0
    #: Total requests an unloaded fleet would have served.
    ideal_qps: float = 0.0
    #: Placement failures (stranded demand).
    rejections: int = 0
    epochs: int = 0

    # --- combination ------------------------------------------------------------

    def merge(self, other: "FleetMetrics") -> "FleetMetrics":
        """Fold another fleet's metrics into this one (in place).

        Sample lists concatenate and scalar accumulators add, so merging
        is associative and every summary view (percentiles, bands,
        buckets) is independent of merge order. This is what lets a
        sharded study combine per-shard metrics into one fleet-level
        result identical to a serial run over the same shards.

        Returns ``self`` for chaining.
        """
        self.socket_bandwidth.extend(other.socket_bandwidth)
        self.socket_utilization.extend(other.socket_utilization)
        self.socket_latency.extend(other.socket_latency)
        self.machine_points.extend(other.machine_points)
        self.total_qps += other.total_qps
        self.ideal_qps += other.ideal_qps
        self.rejections += other.rejections
        self.epochs += other.epochs
        return self

    # --- evaluation views -------------------------------------------------------

    def bandwidth_summary(self) -> PercentileSummary:
        """Percentile summary of socket bandwidth (GB/s)."""
        return PercentileSummary.of(self.socket_bandwidth)

    def latency_summary(self) -> PercentileSummary:
        """Percentile summary of socket DRAM latency (ns)."""
        return PercentileSummary.of(self.socket_latency)

    def saturated_socket_fraction(self, threshold: float = 0.95) -> float:
        """Share of socket-epochs at or above the threshold utilization."""
        if not self.socket_utilization:
            return 0.0
        return (sum(1 for u in self.socket_utilization if u >= threshold)
                / len(self.socket_utilization))

    @property
    def normalized_throughput(self) -> float:
        """Fleet-wide achieved / ideal requests — the topline metric."""
        return self.total_qps / self.ideal_qps if self.ideal_qps else 0.0

    def throughput_by_cpu_band(
            self, bands: Sequence[Tuple[float, float]] = (
                (0.55, 0.65), (0.65, 0.75), (0.75, 0.85)),
    ) -> Dict[str, float]:
        """Normalized throughput per machine-CPU-utilization band — the
        y-axis ingredients of Figure 16 (bands labelled by midpoints)."""
        out: Dict[str, float] = {}
        for low, high in bands:
            achieved = sum(q for c, _, q, _ in self.machine_points
                           if low <= c < high)
            ideal = sum(i for c, _, _, i in self.machine_points
                        if low <= c < high)
            label = f"{round((low + high) / 2 * 100)}%"
            out[label] = achieved / ideal if ideal else 0.0
        return out

    def bandwidth_by_cpu_bucket(self, bucket_width: float = 0.10
                                ) -> Dict[str, float]:
        """Mean bandwidth utilization per CPU-utilization bucket — the
        Figure 4 / Figure 19 curve."""
        sums: Dict[int, float] = {}
        counts: Dict[int, int] = {}
        for cpu, bw_util, _, _ in self.machine_points:
            bucket = int(cpu / bucket_width)
            sums[bucket] = sums.get(bucket, 0.0) + bw_util
            counts[bucket] = counts.get(bucket, 0) + 1
        return {
            f"{round(b * bucket_width * 100)}-"
            f"{round((b + 1) * bucket_width * 100)}":
                sums[b] / counts[b]
            for b in sorted(sums)
        }

    def cpu_utilization_mean(self) -> float:
        """Mean machine CPU utilization over the run."""
        if not self.machine_points:
            return 0.0
        return (sum(c for c, _, _, _ in self.machine_points)
                / len(self.machine_points))


class Fleet:
    """A simulated fleet of identical-platform machines.

    Args:
        machines: Machine count.
        platform: Platform generation for every machine.
        sockets_per_machine: Sockets per machine.
        epoch_ns: Simulation epoch. Daemons tick once per epoch, so a
            Limoncello config used with the fleet should set its
            ``sample_period_ns`` to the epoch (handled by
            :meth:`deploy_hard_limoncello`).
        template: Task archetype for arriving work.
        responses: Calibration table for task behaviour.
        seed: Master seed; the fleet is fully deterministic given it.
        telemetry_dropout: Per-sample probability a daemon's telemetry
            read fails.
        fault_plan: Optional :class:`~repro.faults.plan.FaultPlan`; when
            set, every machine gets a :class:`MachineChaos` environment
            seeded from ``(plan seed, fleet seed, machine name)``, so the
            same plan over the same fleet replays identically — whether
            machines are simulated serially or across shard workers.
        tracer: Optional :class:`repro.obs.Tracer` shared by every
            machine's control daemons (events keyed to simulated time).
    """

    def __init__(self, machines: int = 40,
                 platform: PlatformSpec = PLATFORM_1,
                 sockets_per_machine: int = 2,
                 epoch_ns: float = 10 * SECOND,
                 traffic: Optional[DiurnalTraffic] = None,
                 template: Optional[TaskTemplate] = None,
                 responses: ResponseTable = DEFAULT_RESPONSES,
                 scheduler: Optional[BandwidthAwareScheduler] = None,
                 seed: int = 0,
                 telemetry_dropout: float = 0.0,
                 platform_mix: Optional[Dict[PlatformSpec, float]] = None,
                 fault_plan: Optional[FaultPlan] = None,
                 tracer=None) -> None:
        if machines <= 0:
            raise ConfigError("need at least one machine")
        if epoch_ns <= 0:
            raise ConfigError("epoch must be positive")
        self.rng = random.Random(seed)
        self.seed = seed
        self.platform = platform
        self.epoch_ns = epoch_ns
        self.fault_plan = fault_plan
        platforms = self._assign_platforms(machines, platform, platform_mix)
        self.machines: List[Machine] = [
            Machine(f"machine-{i}", spec, sockets=sockets_per_machine,
                    telemetry_dropout=telemetry_dropout,
                    rng=random.Random(seed * 100_003 + i),
                    chaos=(MachineChaos(fault_plan, seed, f"machine-{i}")
                           if fault_plan is not None else None),
                    tracer=tracer)
            for i, spec in enumerate(platforms)
        ]
        self.traffic = traffic or DiurnalTraffic(
            rng=random.Random(seed + 1))
        self.template = template
        self.responses = responses
        self.scheduler = scheduler or BandwidthAwareScheduler()
        self.now_ns = 0.0

    @staticmethod
    def _assign_platforms(count: int, default: PlatformSpec,
                          mix: Optional[Dict[PlatformSpec, float]]
                          ) -> List[PlatformSpec]:
        """Machine platforms, proportional to the requested mix.

        Real fleets run several generations side by side (the paper
        evaluates Platform 1 and Platform 2); pass ``platform_mix`` to
        build such a fleet.
        """
        if not mix:
            return [default] * count
        total = sum(mix.values())
        if total <= 0:
            raise ConfigError("platform mix weights must be positive")
        assigned: List[PlatformSpec] = []
        specs = list(mix)
        for spec in specs[:-1]:
            assigned.extend([spec] * int(round(count * mix[spec] / total)))
        assigned.extend([specs[-1]] * (count - len(assigned)))
        return assigned[:count]

    # --- deployment knobs ---------------------------------------------------------

    def deploy_hard_limoncello(
            self, config: Optional[LimoncelloConfig] = None,
            controller_factory=None) -> None:
        """Install per-socket control daemons fleet-wide."""
        config = config or LimoncelloConfig(
            sample_period_ns=self.epoch_ns,
            sustain_duration_ns=3 * self.epoch_ns)
        for machine in self.machines:
            machine.deploy_hard_limoncello(config, controller_factory)

    def deploy_policy(self, policy_spec,
                      config: Optional[LimoncelloConfig] = None) -> None:
        """Install per-socket daemons driven by a pluggable policy.

        ``policy_spec`` is anything :func:`repro.policy.policy_from_spec`
        accepts (a :class:`~repro.policy.Policy`, its serialized dict,
        or canonical JSON). Every socket gets its *own* policy instance
        wrapped in a :class:`~repro.policy.PolicyController`, bound to
        the socket ident at construction — so learning policies draw
        from per-socket seed streams that are independent of worker
        count, batch size, and whether a tracer is attached. The config
        defaults match :meth:`deploy_hard_limoncello` (epoch-period
        sampling, three-epoch sustain window).
        """
        from repro.policy import PolicyController, policy_from_spec

        config = config or LimoncelloConfig(
            sample_period_ns=self.epoch_ns,
            sustain_duration_ns=3 * self.epoch_ns)

        def factory(ident: str) -> PolicyController:
            return PolicyController(policy_from_spec(policy_spec),
                                    config=config, ident=ident)

        for machine in self.machines:
            machine.deploy_hard_limoncello(config, factory)

    def deploy_soft_limoncello(self) -> None:
        """Mark the software prefetch insertions as rolled out fleet-wide."""
        for machine in self.machines:
            machine.deploy_soft_limoncello()

    def force_prefetchers(self, enabled: bool) -> None:
        """Directly set prefetcher state on every socket."""
        for machine in self.machines:
            machine.force_prefetchers(enabled)

    # --- capacity ---------------------------------------------------------------------

    @property
    def total_cores(self) -> int:
        """Total CPU cores."""
        return sum(machine.total_cores for machine in self.machines)

    @property
    def cores_used(self) -> float:
        """Cores occupied by placed tasks."""
        return sum(machine.cores_used for machine in self.machines)

    # --- simulation --------------------------------------------------------------------

    def run(self, epochs: int, metrics: Optional[FleetMetrics] = None,
            observers: Sequence = ()) -> FleetMetrics:
        """Advance ``epochs`` epochs; returns accumulated metrics.

        ``observers`` are callables ``(now_ns, machines, rng)`` invoked
        after every epoch — the fleetwide profiler hooks in here.
        """
        if epochs <= 0:
            raise ConfigError("epochs must be positive")
        metrics = metrics or FleetMetrics()
        for _ in range(epochs):
            target = self._reconcile_load()
            # At peak traffic, placed tasks serve more requests and pull
            # more bandwidth than their placement-time estimate assumed.
            demand_scale = 0.75 + 0.5 * target
            for machine in self.machines:
                epochs_data = machine.step(self.now_ns, self.epoch_ns,
                                           rng=self.rng,
                                           demand_scale=demand_scale)
                self._record(metrics, machine, epochs_data,
                             self.epoch_ns / SECOND)
            for observer in observers:
                observer(self.now_ns, self.machines, self.rng)
            metrics.epochs += 1
            self.now_ns += self.epoch_ns
        metrics.rejections = self.scheduler.rejections
        return metrics

    # --- internals ------------------------------------------------------------------------

    def _reconcile_load(self) -> float:
        """Spawn or drain tasks to track the traffic target.

        Returns the target load fraction for this epoch.
        """
        target = self.traffic.target(self.now_ns)
        target_cores = target * self.total_cores
        deficit = target_cores - self.cores_used
        guard = 64  # placement attempts per epoch, so a full fleet can't spin
        consecutive_failures = 0
        while deficit > 0 and guard > 0 and consecutive_failures < 3:
            task = sample_task(self.rng, self.template,
                               responses=self.responses)
            if task.cores > deficit + 4.0:
                break
            if self.scheduler.try_place(task, self.machines) is None:
                # Fleet looks bandwidth-bound for this task; a smaller or
                # lighter draw may still fit, so don't give up on the
                # first rejection.
                consecutive_failures += 1
            else:
                consecutive_failures = 0
                deficit -= task.cores
            guard -= 1
        if deficit < 0:
            overshoot_tasks = int(-deficit
                                  / max(task_mean_cores(self.template), 1.0))
            if overshoot_tasks > 0:
                self.scheduler.drain(self.machines, overshoot_tasks, self.rng)
        return target

    @staticmethod
    def _record(metrics: FleetMetrics, machine: Machine,
                socket_epochs, duration_s: float) -> None:
        bw_utils = []
        qps = 0.0
        for epoch in socket_epochs:
            metrics.socket_bandwidth.append(epoch.bandwidth)
            metrics.socket_utilization.append(epoch.utilization)
            metrics.socket_latency.append(epoch.latency_ns)
            bw_utils.append(epoch.utilization)
            qps += epoch.qps
        ideal = sum(task.base_qps for task in machine.tasks) * duration_s
        metrics.machine_points.append((
            machine.cpu_utilization,
            sum(bw_utils) / len(bw_utils) if bw_utils else 0.0,
            qps,
            ideal,
        ))
        metrics.total_qps += qps
        metrics.ideal_qps += ideal


def task_mean_cores(template: Optional[TaskTemplate]) -> float:
    """Midpoint of a template's cores range (drain sizing heuristic)."""
    if template is None:
        return 5.0
    low, high = template.cores_range
    return (low + high) / 2.0
