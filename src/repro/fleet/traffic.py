"""Traffic models: diurnal fleet load and per-machine volatility.

The paper's Figure 7 shows per-machine bandwidth varying substantially
minute to minute — the volatility that motivates the controller's
hysteresis. :class:`DiurnalTraffic` drives the fleet-level task count
through a day/night cycle with noise; :class:`VolatileTraffic` adds the
short bursts that a naive single-threshold controller would chase.
"""

from __future__ import annotations

import math
import random
from typing import Optional

from repro.errors import ConfigError
from repro.units import SECOND


class DiurnalTraffic:
    """Target fleet load as a fraction of capacity, over a diurnal cycle.

    ``target(now)`` follows ``mean + amplitude * sin(2*pi*now/period)``
    plus Gaussian noise, clamped to [0, 1].

    The default period is a *simulation-scaled* day: fleet studies run a
    few hundred 10-second epochs, so the cycle is compressed to 600
    seconds to make every run traverse full peak/trough swings, exactly
    as the paper's two-week experiments covered many diurnal cycles.
    """

    def __init__(self, mean: float = 0.6, amplitude: float = 0.3,
                 period_ns: float = 600 * SECOND,
                 noise: float = 0.03,
                 rng: Optional[random.Random] = None) -> None:
        if not 0.0 <= mean <= 1.0:
            raise ConfigError(f"mean load must be in [0, 1], got {mean}")
        if amplitude < 0 or mean + amplitude > 1.0 + 1e-9:
            raise ConfigError("mean + amplitude must stay within capacity")
        if period_ns <= 0:
            raise ConfigError("period must be positive")
        if noise < 0:
            raise ConfigError("noise cannot be negative")
        self.mean = mean
        self.amplitude = amplitude
        self.period_ns = period_ns
        self.noise = noise
        self._rng = rng or random.Random(0)

    def target(self, now_ns: float) -> float:
        """Target load fraction at a simulation time."""
        base = self.mean + self.amplitude * math.sin(
            2.0 * math.pi * now_ns / self.period_ns)
        if self.noise:
            base += self._rng.gauss(0.0, self.noise)
        return min(max(base, 0.0), 1.0)


class VolatileTraffic:
    """A traffic shape with square bursts layered on a baseline.

    Used to generate the Figure 7-style bandwidth trace and to stress the
    controller: bursts shorter than the sustain duration must not flip
    prefetcher state.
    """

    def __init__(self, baseline: float = 0.55, burst_height: float = 0.35,
                 burst_probability: float = 0.15,
                 burst_duration_ns: float = 60 * SECOND,
                 noise: float = 0.05,
                 rng: Optional[random.Random] = None) -> None:
        if not 0.0 <= baseline <= 1.0:
            raise ConfigError("baseline must be in [0, 1]")
        if burst_height < 0 or not 0.0 <= burst_probability <= 1.0:
            raise ConfigError("invalid burst parameters")
        if burst_duration_ns <= 0:
            raise ConfigError("burst duration must be positive")
        self.baseline = baseline
        self.burst_height = burst_height
        self.burst_probability = burst_probability
        self.burst_duration_ns = burst_duration_ns
        self.noise = noise
        self._rng = rng or random.Random(0)
        self._burst_until = -1.0

    def target(self, now_ns: float) -> float:
        """Target load fraction at a simulation time."""
        if now_ns > self._burst_until \
                and self._rng.random() < self.burst_probability:
            self._burst_until = now_ns + self.burst_duration_ns
        level = self.baseline
        if now_ns <= self._burst_until:
            level += self.burst_height
        if self.noise:
            level += self._rng.gauss(0.0, self.noise)
        return min(max(level, 0.0), 1.2)
