"""Adaptive early stopping for multi-arm ablation studies.

An exhaustive ablation runs every arm (prefetcher mode) over its full
machine budget even when the arms' effects separated long before the
budget was spent. This module schedules the arms through the
checkpointed work queue in fixed *rounds* — each round computes the
same quantum of shards for every still-active arm — and after each
round computes a per-arm confidence interval over a per-shard scalar
metric (default: the shard's fleet throughput change). An arm stops
scheduling new shards once its interval has separated from *every*
other arm's by more than a configurable margin; the remaining budget is
simply never spent.

Determinism is the design constraint, not an afterthought:

* The round schedule is a pure function of the shard count and the
  quantum (:func:`~repro.fleet.shard.plan_rounds`) — never of timing,
  worker count, or completion order.
* Per-shard metrics come from shard results that are themselves pure
  functions of the study parameters, and every interval and stopping
  decision is arithmetic over those metrics in fixed arm order.

So two runs with the same seed and knobs stop the same arms at the same
rounds and produce identical verdicts — which is what lets a benchmark
assert "adaptive reproduces the exhaustive ranking with fewer
machine-runs" as a hard gate rather than a statistical hope.

Statistical caveat (documented in ``docs/USAGE.md``): the intervals are
normal-approximation CIs over per-shard means, so early stopping is
trustworthy only when arms are genuinely separable at shard
granularity and shard count is not tiny; the margin should be chosen
larger than the effect resolution you care about. Adaptive mode is
off by default everywhere.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.config import LimoncelloConfig
from repro.errors import ConfigError
from repro.faults.plan import FaultPlan
from repro.fleet.ablation import (
    MODES,
    AblationResult,
    AblationStudy,
    run_ablation_shard,
)
from repro.fleet.parallel import resolve_workers
from repro.fleet.shard import plan_rounds

#: Two-sided 95% normal quantile — the fixed confidence level for arm
#: intervals (configurability here would just be another way to p-hack
#: a study).
Z_95 = 1.959963984540054

#: Default separation margin on the per-shard metric (fractional
#: throughput change): arms whose means differ by less than this are
#: treated as "the same verdict" and never separate.
DEFAULT_MARGIN = 0.02

#: Default shards per arm per round.
DEFAULT_QUANTUM = 1

#: Rounds every arm must complete before any stopping decision — below
#: two rounds at quantum 1 an arm cannot even have a finite interval.
DEFAULT_MIN_ROUNDS = 2


def default_metric(result: AblationResult) -> float:
    """The per-shard scalar the intervals summarize: the shard's
    fractional fleet throughput change, experiment vs. control."""
    return result.throughput_change()


def arm_interval(values: Sequence[float],
                 z: float = Z_95) -> Tuple[float, float]:
    """``(mean, halfwidth)`` of a normal-approximation CI over
    ``values``.

    With fewer than two samples the halfwidth is infinite — an arm with
    one shard has no variance estimate and must never separate.
    """
    n = len(values)
    if n == 0:
        return 0.0, math.inf
    mean = sum(values) / n
    if n < 2:
        return mean, math.inf
    variance = sum((v - mean) ** 2 for v in values) / (n - 1)
    return mean, z * math.sqrt(variance / n)


def arms_separated(a: Tuple[float, float], b: Tuple[float, float],
                   margin: float) -> bool:
    """Whether two ``(mean, halfwidth)`` intervals are decisively apart:
    the means differ by more than the margin plus both halfwidths."""
    mean_a, hw_a = a
    mean_b, hw_b = b
    if math.isinf(hw_a) or math.isinf(hw_b):
        return False
    return abs(mean_a - mean_b) > margin + hw_a + hw_b


@dataclass
class ArmState:
    """One arm's progress through an adaptive study."""

    mode: str
    shards_total: int
    metrics: List[float] = field(default_factory=list)
    shards_run: int = 0
    machine_runs: int = 0
    #: Round index at which the arm stopped early, or ``None`` if it ran
    #: its full budget.
    stopped_round: Optional[int] = None

    def interval(self) -> Tuple[float, float]:
        """Current ``(mean, halfwidth)`` over the arm's shard metrics."""
        return arm_interval(self.metrics)


@dataclass
class AdaptiveResult:
    """Outcome of one adaptive multi-arm ablation.

    ``results`` holds each arm's merged :class:`AblationResult` over the
    shards it actually ran — *partial* for early-stopped arms, which is
    the whole point; use the exhaustive study when you need the full
    population.
    """

    modes: Tuple[str, ...]
    arms: Dict[str, ArmState]
    results: Dict[str, AblationResult]
    rounds_run: int
    rounds_total: int
    margin: float
    quantum: int
    min_rounds: int
    #: Machine population per arm (every arm covers the same
    #: population, so the exhaustive per-arm budget is this count).
    machines_per_arm: int = 0

    def machine_runs(self) -> int:
        """Machine-runs actually scheduled, all arms."""
        return sum(arm.machine_runs for arm in self.arms.values())

    def exhaustive_machine_runs(self) -> int:
        """Machine-runs the exhaustive study would have scheduled."""
        return len(self.modes) * self.machines_per_arm

    def savings(self) -> float:
        """Exhaustive machine-runs over actual: >= 1.0; 2.0 means the
        adaptive run cost half the exhaustive budget."""
        actual = self.machine_runs()
        if actual <= 0:
            return 1.0
        return self.exhaustive_machine_runs() / actual

    def ranking(self) -> List[str]:
        """Arms ordered best-to-worst by mean metric (ties keep the
        study's fixed arm order, so the ranking is deterministic)."""
        order = {mode: index for index, mode in enumerate(self.modes)}
        return sorted(
            self.modes,
            key=lambda mode: (-self.arms[mode].interval()[0], order[mode]))

    def verdicts(self) -> Dict[str, Dict]:
        """Per-arm summary: metric mean/halfwidth, shards run vs.
        budget, machine-runs, and the stopping round (if any)."""
        out: Dict[str, Dict] = {}
        for mode in self.modes:
            arm = self.arms[mode]
            mean, halfwidth = arm.interval()
            out[mode] = {
                "mean": mean,
                "halfwidth": halfwidth if math.isfinite(halfwidth) else None,
                "shards_run": arm.shards_run,
                "shards_total": arm.shards_total,
                "machine_runs": arm.machine_runs,
                "stopped_round": arm.stopped_round,
            }
        return out

    def to_dict(self) -> Dict:
        """Plain-data summary for the CLI and benchmarks."""
        return {
            "modes": list(self.modes),
            "ranking": self.ranking(),
            "verdicts": self.verdicts(),
            "rounds_run": self.rounds_run,
            "rounds_total": self.rounds_total,
            "machine_runs": self.machine_runs(),
            "exhaustive_machine_runs": self.exhaustive_machine_runs(),
            "savings": self.savings(),
            "margin": self.margin,
            "quantum": self.quantum,
            "min_rounds": self.min_rounds,
        }


class AdaptiveAblation:
    """Runs several ablation arms with CI-based early stopping.

    Args:
        modes: Experiment arms to compare (default: every mode in
            :data:`~repro.fleet.ablation.MODES`). Order is fixed and
            part of the determinism contract.
        margin: Separation margin on the per-shard metric; an arm stops
            once its CI is more than this far from every other arm's.
        quantum: Shards each active arm computes per round.
        min_rounds: Rounds every arm completes before any stopping
            decision is allowed.
        metric: Per-shard scalar the intervals summarize (default
            :func:`default_metric`). Must be a pure function of the
            shard result.

    The remaining arguments mirror :class:`AblationStudy`.
    """

    def __init__(self, modes: Optional[Sequence[str]] = None,
                 machines: int = 30, epochs: int = 100, seed: int = 11,
                 warmup_epochs: int = 20,
                 config: Optional[LimoncelloConfig] = None,
                 profile_sample_rate: float = 0.25,
                 shard_size: Optional[int] = None,
                 fault_plan: Optional[FaultPlan] = None,
                 margin: float = DEFAULT_MARGIN,
                 quantum: int = DEFAULT_QUANTUM,
                 min_rounds: int = DEFAULT_MIN_ROUNDS,
                 metric: Optional[Callable[[AblationResult], float]] = None
                 ) -> None:
        modes = tuple(modes) if modes is not None else MODES
        if len(modes) < 2:
            raise ConfigError(
                f"adaptive sampling needs at least two arms, got {modes!r}")
        if len(set(modes)) != len(modes):
            raise ConfigError(f"duplicate arms in {modes!r}")
        for mode in modes:
            if mode not in MODES:
                raise ConfigError(
                    f"mode must be one of {MODES}, got {mode!r}")
        if margin < 0:
            raise ConfigError(f"margin cannot be negative, got {margin}")
        if quantum <= 0:
            raise ConfigError(f"quantum must be positive, got {quantum}")
        if min_rounds < 2:
            raise ConfigError(
                f"min_rounds must be at least 2, got {min_rounds}")
        self.modes = modes
        self.margin = margin
        self.quantum = quantum
        self.min_rounds = min_rounds
        self.metric = metric or default_metric
        self.machines = machines
        self.seed = seed
        kwargs = dict(machines=machines, epochs=epochs, seed=seed,
                      warmup_epochs=warmup_epochs, config=config,
                      profile_sample_rate=profile_sample_rate,
                      fault_plan=fault_plan)
        if shard_size is not None:
            kwargs["shard_size"] = shard_size
        self.studies: Dict[str, AblationStudy] = {
            mode: AblationStudy(mode=mode, **kwargs) for mode in modes}
        #: Aggregate work-queue disposition of the last :meth:`run` (a
        #: plain dict), or ``None``.
        self.queue_stats = None

    def run_material(self) -> Dict:
        """Everything the adaptive run's decisions depend on (the obs
        manifest ``run`` block)."""
        first = self.studies[self.modes[0]]
        return {
            "study": "adaptive-ablation",
            "modes": list(self.modes),
            "margin": self.margin,
            "quantum": self.quantum,
            "min_rounds": self.min_rounds,
            "arm": first.cache_key_material(),
        }

    def run(self, workers: Optional[int] = None,
            checkpoint_dir: Optional[str] = None,
            obs_dir: Optional[str] = None,
            resume: bool = True) -> AdaptiveResult:
        """Run the arms round by round with early stopping.

        Shards execute through the checkpointed work queue when a
        ``checkpoint_dir`` (or ``$REPRO_CHECKPOINT``) is configured, so
        an interrupted adaptive study resumes like any other — and
        because stopping decisions are pure functions of the shard
        results, the resumed run stops the same arms at the same rounds.
        """
        from repro.fleet.queue import run_checkpointed, shard_checkpoint
        from repro.obs.session import ObsSession, resolve_obs_dir
        from repro.serialization import (ablation_result_from_dict,
                                         ablation_result_to_dict)

        workers = resolve_workers(workers)
        checkpoint = shard_checkpoint(checkpoint_dir)
        obs_dir = resolve_obs_dir(obs_dir)
        session = (ObsSession(obs_dir, "adaptive-ablation", workers=workers)
                   if obs_dir is not None else None)
        if session is not None:
            session.event("study-start", study="adaptive-ablation")

        specs = {mode: self.studies[mode].shard_specs()
                 for mode in self.modes}
        materials = {mode: self.studies[mode].shard_task_materials()
                     for mode in self.modes}
        shard_count = len(specs[self.modes[0]])
        rounds = plan_rounds(shard_count, self.quantum)
        arms = {mode: ArmState(mode=mode, shards_total=shard_count)
                for mode in self.modes}
        shard_results: Dict[str, List[AblationResult]] = {
            mode: [] for mode in self.modes}
        active = list(self.modes)
        totals = {"total": 0, "restored": 0, "computed": 0, "journaled": 0}
        rounds_run = 0

        for round_index, (start, stop) in enumerate(rounds):
            if not active:
                break
            rounds_run = round_index + 1
            for mode in active:
                outputs, stats = run_checkpointed(
                    run_ablation_shard, specs[mode][start:stop],
                    materials[mode][start:stop], workers,
                    checkpoint=checkpoint,
                    to_payload=ablation_result_to_dict,
                    from_payload=ablation_result_from_dict,
                    resume=resume)
                arm = arms[mode]
                for spec, result in zip(specs[mode][start:stop], outputs):
                    shard_results[mode].append(result)
                    arm.metrics.append(self.metric(result))
                    arm.shards_run += 1
                    arm.machine_runs += spec.machines
                for name in totals:
                    totals[name] += getattr(stats, name)
            if session is not None:
                session.event("adaptive-round", round=round_index,
                              active=list(active))
            if round_index + 1 < self.min_rounds:
                continue
            intervals = {mode: arms[mode].interval()
                         for mode in self.modes}
            still_active = []
            for mode in active:
                separated = all(
                    arms_separated(intervals[mode], intervals[other],
                                   self.margin)
                    for other in self.modes if other != mode)
                if separated:
                    arms[mode].stopped_round = round_index
                    if session is not None:
                        session.event("arm-early-stop", arm=mode,
                                      round=round_index)
                else:
                    still_active.append(mode)
            active = still_active

        merged = {}
        for mode in self.modes:
            parts = shard_results[mode]
            result = parts[0]
            for part in parts[1:]:
                result.merge(part)
            merged[mode] = result

        self.queue_stats = dict(totals)
        outcome = AdaptiveResult(
            modes=self.modes, arms=arms, results=merged,
            rounds_run=rounds_run, rounds_total=len(rounds),
            margin=self.margin, quantum=self.quantum,
            min_rounds=self.min_rounds, machines_per_arm=self.machines)
        if session is not None:
            session.event("study-finish", study="adaptive-ablation")
            plan = self.studies[self.modes[0]].shard_plan()
            session.finalize(self.run_material(),
                             shard_seeds=plan.seeds(self.seed))
        return outcome
