"""Fleet workload mixes — Fleetbench-style machine traces.

A fleet machine runs hundreds of services; its memory stream is a fine
interleaving of every roster function weighted by fleet cycle share. The
paper uses Fleetbench [16] as the microbenchmark that "reflects the memory
access patterns of our fleet"; :func:`fleetbench_trace` plays that role
here.
"""

from __future__ import annotations

import random
from typing import Dict, Optional

from repro.access import AddressSpace, Trace
from repro.access.trace import interleave
from repro.errors import ConfigError
from repro.workloads.functions import FUNCTION_ROSTER


def fleet_mix_trace(rng: random.Random, space: AddressSpace,
                    weights: Optional[Dict[str, float]] = None,
                    scale: float = 1.0, chunk: int = 64) -> Trace:
    """Interleave roster functions with the given (or fleet) weights.

    Args:
        rng: Seeded randomness for the per-function generators.
        space: Address allocator shared across functions.
        weights: function name -> cycle-share weight. Defaults to the
            roster's fleet cycle shares.
        scale: Volume multiplier applied per function.
        chunk: Interleave granularity in records.
    """
    if scale <= 0:
        raise ConfigError(f"scale must be positive, got {scale}")
    if weights is None:
        weights = {name: profile.cycle_share
                   for name, profile in FUNCTION_ROSTER.items()}
    traces = []
    total = sum(weights.values())
    if total <= 0:
        raise ConfigError("weights must have positive total")
    for name, weight in weights.items():
        if name not in FUNCTION_ROSTER:
            raise ConfigError(f"unknown function {name!r} in mix")
        if weight <= 0:
            continue
        profile = FUNCTION_ROSTER[name]
        traces.append(profile.trace(rng, space,
                                    scale=scale * weight / total * 10.0))
    return interleave(traces, chunk=chunk)


def fleetbench_trace(rng: random.Random, space: AddressSpace,
                     scale: float = 1.0) -> Trace:
    """The default fleet-representative mix (Fleetbench stand-in)."""
    return fleet_mix_trace(rng, space, scale=scale)
