"""Common vocabulary for workloads: categories and the Workload protocol."""

from __future__ import annotations

import enum
import random
from typing import Protocol

from repro.access import AddressSpace, Trace


class FunctionCategory(enum.Enum):
    """The paper's function taxonomy (Figures 11, 12, 20).

    The first four are the *data center tax* categories found to be
    prefetch-friendly; ``NON_TAX`` covers everything else.
    """

    COMPRESSION = "compression"
    DATA_TRANSMISSION = "data transmission"
    HASHING = "hashing"
    DATA_MOVEMENT = "data movement"
    NON_TAX = "non-DC tax"


#: The prefetch-friendly categories Soft Limoncello targets.
TAX_CATEGORIES = frozenset({
    FunctionCategory.COMPRESSION,
    FunctionCategory.DATA_TRANSMISSION,
    FunctionCategory.HASHING,
    FunctionCategory.DATA_MOVEMENT,
})

#: Function-name -> category map, extended by the function roster module.
_FUNCTION_CATEGORIES = {}


def register_function(name: str, category: FunctionCategory) -> None:
    """Associate a trace function name with its taxonomy category."""
    _FUNCTION_CATEGORIES[name] = category


def category_of_function(name: str) -> FunctionCategory:
    """Category for a function name; unknown names are non-tax."""
    return _FUNCTION_CATEGORIES.get(name, FunctionCategory.NON_TAX)


class Workload(Protocol):
    """Anything that can produce a memory trace."""

    name: str

    def generate(self, rng: random.Random, space: AddressSpace) -> Trace:
        """Produce a fresh trace using ``rng`` and regions from ``space``."""
