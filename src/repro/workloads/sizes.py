"""Call-size distributions, most importantly for memcpy (Figure 14).

The paper's profiling shows memcpy call sizes are dominated by small
copies with a long tail of large ones (Figure 14), and that regressing
workloads have ~26% larger average copies. We model this with a mixture of
log-normal components: a bulk of small copies around tens of bytes, a
medium mode around a few hundred bytes, and a sparse heavy tail into the
megabytes.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Sequence, Tuple


@dataclass(frozen=True)
class _Component:
    weight: float
    mu: float      # log-space mean
    sigma: float   # log-space stddev


class MemcpySizeDistribution:
    """A mixture-of-log-normals over copy sizes in bytes.

    The default parameters reproduce the qualitative shape of Figure 14:
    the PDF mass sits below a few hundred bytes, with a tail reaching
    beyond 100 KiB.

    Args:
        scale: Multiplies every sampled size. The paper observes that
            workloads which regress under prefetcher ablation have ~26%
            larger copies; model those with ``scale=1.26``.
        min_bytes / max_bytes: Clamp bounds for samples.
    """

    #: Mixture fitted to the qualitative Figure 14 shape.
    DEFAULT_COMPONENTS = (
        _Component(weight=0.55, mu=math.log(32.0), sigma=0.8),
        _Component(weight=0.35, mu=math.log(256.0), sigma=1.0),
        _Component(weight=0.10, mu=math.log(16_384.0), sigma=1.6),
    )

    def __init__(self, components: Sequence[_Component] = DEFAULT_COMPONENTS,
                 scale: float = 1.0, min_bytes: int = 1,
                 max_bytes: int = 8 * 1024 * 1024) -> None:
        if scale <= 0:
            raise ValueError(f"scale must be positive, got {scale}")
        if min_bytes < 1 or max_bytes < min_bytes:
            raise ValueError("need 1 <= min_bytes <= max_bytes")
        total_weight = sum(c.weight for c in components)
        if not components or total_weight <= 0:
            raise ValueError("components must have positive total weight")
        self._components = tuple(components)
        self._cumulative: List[float] = []
        acc = 0.0
        for component in self._components:
            acc += component.weight / total_weight
            self._cumulative.append(acc)
        self._scale = scale
        self._min = min_bytes
        self._max = max_bytes

    def sample(self, rng: random.Random) -> int:
        """Draw one call size in bytes."""
        pick = rng.random()
        component = self._components[-1]
        for cum, candidate in zip(self._cumulative, self._components):
            if pick <= cum:
                component = candidate
                break
        size = self._scale * rng.lognormvariate(component.mu, component.sigma)
        return max(self._min, min(self._max, int(round(size))))

    def sample_many(self, rng: random.Random, count: int) -> List[int]:
        """Draw ``count`` call sizes."""
        return [self.sample(rng) for _ in range(count)]

    def mean_of(self, rng: random.Random, count: int = 10_000) -> float:
        """Empirical mean of ``count`` samples (distribution has no cheap
        closed form once clamped)."""
        samples = self.sample_many(rng, count)
        return sum(samples) / len(samples)

    def scaled(self, factor: float) -> "MemcpySizeDistribution":
        """A copy with all sizes multiplied by ``factor``."""
        return MemcpySizeDistribution(
            self._components, scale=self._scale * factor,
            min_bytes=self._min, max_bytes=self._max)


def size_histogram(samples: Sequence[int],
                   bin_edges: Sequence[int]) -> List[Tuple[int, float]]:
    """Empirical PDF over log-spaced bins, as plotted in Figure 14.

    Returns ``(bin_upper_edge, fraction)`` pairs; fractions sum to 1 for
    samples within range.
    """
    if not samples:
        raise ValueError("need at least one sample")
    if list(bin_edges) != sorted(bin_edges):
        raise ValueError("bin edges must be sorted")
    counts = [0] * len(bin_edges)
    total = 0
    for sample in samples:
        for index, edge in enumerate(bin_edges):
            if sample <= edge:
                counts[index] += 1
                total += 1
                break
    if total == 0:
        return [(edge, 0.0) for edge in bin_edges]
    return [(edge, count / total) for edge, count in zip(bin_edges, counts)]
