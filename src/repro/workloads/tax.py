"""Trace generators for data center *tax* functions.

These are the paper's software-prefetch targets (Section 4.1): data
movement (memcpy/memmove/memset), compression, hashing, and RPC
serialization. Their common shape — the reason they are prefetch-friendly
— is that each "performs computations over a stream of sequential data and
reads data from a source, writes data to a destination, or both."

Every generator emits per-cache-line records with small compute gaps and a
stable per-site program counter, so hardware stride/stream prefetchers can
train on them exactly as they would on the real functions.

Generation is columnar-native: records go through
:func:`~repro.access.builder.trace_builder` straight into compiled-trace
columns (``REPRO_SLOW_BUILDER=1`` swaps in the record-path oracle), so a
generated trace is born pre-lowered for the fast engine.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.access import AccessKind, AddressSpace, Trace, trace_builder
from repro.units import CACHE_LINE_BYTES, cache_lines
from repro.workloads.base import FunctionCategory, register_function

# Stable synthetic PCs per logical instruction site.
_PC_MEMCPY_LOAD = 0x4000_0010
_PC_MEMCPY_STORE = 0x4000_0018
_PC_MEMSET_STORE = 0x4000_0110
_PC_COMPRESS_IN = 0x4000_0210
_PC_COMPRESS_DICT = 0x4000_0218
_PC_COMPRESS_OUT = 0x4000_0220
_PC_HASH_LOAD = 0x4000_0310
_PC_CRC_LOAD = 0x4000_0330
_PC_SERIALIZE_IN = 0x4000_0410
_PC_SERIALIZE_OUT = 0x4000_0418
_PC_DESERIALIZE_IN = 0x4000_0430
_PC_DESERIALIZE_OUT = 0x4000_0438

register_function("memcpy", FunctionCategory.DATA_MOVEMENT)
register_function("memmove", FunctionCategory.DATA_MOVEMENT)
register_function("memset", FunctionCategory.DATA_MOVEMENT)
register_function("compress", FunctionCategory.COMPRESSION)
register_function("decompress", FunctionCategory.COMPRESSION)
register_function("hash", FunctionCategory.HASHING)
register_function("crc32", FunctionCategory.HASHING)
register_function("serialize", FunctionCategory.DATA_TRANSMISSION)
register_function("deserialize", FunctionCategory.DATA_TRANSMISSION)


def _emit_memcpy(builder, src: int, dst: int, size: int, gap_cycles: int,
                 function: str, first_extra_gap: int = 0) -> None:
    """Emit one memcpy call into ``builder``: alternating per-line loads
    from ``src`` and stores to ``dst``. ``first_extra_gap`` adds caller
    compute cycles to the first record (batched call sequences)."""
    builder.append_copy(
        src, dst, cache_lines(size), load_pc=_PC_MEMCPY_LOAD,
        store_pc=_PC_MEMCPY_STORE, function=function,
        gap_cycles=gap_cycles,
        first_gap_cycles=gap_cycles + first_extra_gap)


def memcpy_trace(src: int, dst: int, size: int, gap_cycles: int = 2,
                 function: str = "memcpy") -> Trace:
    """One memcpy call: streaming loads from ``src``, stores to ``dst``."""
    if size <= 0:
        raise ValueError(f"size must be positive, got {size}")
    builder = trace_builder()
    _emit_memcpy(builder, src, dst, size, gap_cycles, function)
    return builder.build()


def memmove_trace(src: int, dst: int, size: int, gap_cycles: int = 2) -> Trace:
    """memmove behaves like memcpy for non-overlapping regions; for an
    overlapping forward copy it walks backwards, which is what breaks
    ascending-only stream detectors."""
    if size <= 0:
        raise ValueError(f"size must be positive, got {size}")
    overlapping = dst > src and dst < src + size
    if not overlapping:
        return memcpy_trace(src, dst, size, gap_cycles, function="memmove")
    builder = trace_builder()
    line = CACHE_LINE_BYTES
    top = (cache_lines(size) - 1) * line
    builder.append_copy(src + top, dst + top, cache_lines(size), step=-line,
                        load_pc=_PC_MEMCPY_LOAD, store_pc=_PC_MEMCPY_STORE,
                        function="memmove", gap_cycles=gap_cycles)
    return builder.build()


def memset_trace(dst: int, size: int, gap_cycles: int = 1) -> Trace:
    """Streaming stores over ``[dst, dst + size)``."""
    if size <= 0:
        raise ValueError(f"size must be positive, got {size}")
    builder = trace_builder()
    builder.append_stream(dst, cache_lines(size), kind=AccessKind.STORE,
                          pc=_PC_MEMSET_STORE, function="memset",
                          gap_cycles=gap_cycles)
    return builder.build()


def memcpy_call_trace(space: AddressSpace, sizes, gap_between_calls: int = 64,
                      function: str = "memcpy") -> Trace:
    """A sequence of memcpy calls with fresh (cold) buffers per call.

    Args:
        space: Allocator for the per-call source/destination buffers.
        sizes: Iterable of call sizes in bytes (e.g. sampled from
            :class:`~repro.workloads.sizes.MemcpySizeDistribution`).
        gap_between_calls: Compute cycles separating consecutive calls,
            representing the caller's own work.
    """
    builder = trace_builder()
    for size in sizes:
        src = space.allocate(size)
        dst = space.allocate(size)
        _emit_memcpy(builder, src, dst, size, gap_cycles=2,
                     function=function, first_extra_gap=gap_between_calls)
    return builder.build()


def compress_trace(space: AddressSpace, input_size: int,
                   rng: Optional[random.Random] = None,
                   ratio: float = 0.5, window_bytes: int = 32 * 1024,
                   gap_cycles: int = 14, function: str = "compress") -> Trace:
    """Block compression: stream the input, probe a recent-history window,
    stream out a smaller output.

    The window probes mostly hit cache (they target recently read data),
    so the dominant memory behaviour is the two sequential streams — the
    contiguous, block-structured pattern Section 4.1 describes.
    """
    if input_size <= 0:
        raise ValueError(f"input_size must be positive, got {input_size}")
    if not 0.0 < ratio <= 1.0:
        raise ValueError(f"ratio must be in (0, 1], got {ratio}")
    rng = rng or random.Random(0)
    src = space.allocate(input_size)
    dst = space.allocate(max(CACHE_LINE_BYTES, int(input_size * ratio)))
    builder = trace_builder()
    append = builder.append
    line = CACHE_LINE_BYTES
    out_offset = 0
    for i in range(cache_lines(input_size)):
        offset = i * line
        append(src + offset, size=line, pc=_PC_COMPRESS_IN,
               function=function, gap_cycles=gap_cycles)
        # Match-finding probe into the trailing window (usually warm).
        window_start = max(0, offset - window_bytes)
        probe = rng.randrange(window_start, offset + 1) if offset else 0
        append(src + probe, size=8, pc=_PC_COMPRESS_DICT,
               function=function, gap_cycles=2)
        # Emit compressed output every 1/ratio input lines.
        if int(i * ratio) != int((i + 1) * ratio) or i == 0:
            append(dst + out_offset, size=line, kind=AccessKind.STORE,
                   pc=_PC_COMPRESS_OUT, function=function)
            out_offset += line
    return builder.build()


def decompress_trace(space: AddressSpace, output_size: int,
                     rng: Optional[random.Random] = None,
                     ratio: float = 0.5, gap_cycles: int = 10) -> Trace:
    """Decompression: stream a small input, stream out a larger output."""
    if output_size <= 0:
        raise ValueError(f"output_size must be positive, got {output_size}")
    rng = rng or random.Random(0)
    input_size = max(CACHE_LINE_BYTES, int(output_size * ratio))
    src = space.allocate(input_size)
    dst = space.allocate(output_size)
    builder = trace_builder()
    append = builder.append
    line = CACHE_LINE_BYTES
    in_offset = 0
    for i in range(cache_lines(output_size)):
        if int(i * ratio) != int((i + 1) * ratio) or i == 0:
            append(src + in_offset, size=line, pc=_PC_COMPRESS_IN,
                   function="decompress", gap_cycles=gap_cycles)
            in_offset += line
        append(dst + i * line, size=line, kind=AccessKind.STORE,
               pc=_PC_COMPRESS_OUT, function="decompress", gap_cycles=2)
    return builder.build()


def hashing_trace(space: AddressSpace, size: int, gap_cycles: int = 10,
                  function: str = "hash") -> Trace:
    """Block hashing: a pure sequential read of the input.

    "Hashing algorithms manipulate data in predefined sequences," giving a
    predictable streaming pattern (Section 4.1). Compute gaps model the
    per-block mixing rounds.
    """
    if size <= 0:
        raise ValueError(f"size must be positive, got {size}")
    src = space.allocate(size)
    builder = trace_builder()
    builder.append_stream(src, cache_lines(size), pc=_PC_HASH_LOAD,
                          function=function, gap_cycles=gap_cycles)
    return builder.build()


def crc32_trace(space: AddressSpace, size: int, gap_cycles: int = 4) -> Trace:
    """CRC over a buffer: the fastest, most bandwidth-hungry hash shape."""
    if size <= 0:
        raise ValueError(f"size must be positive, got {size}")
    src = space.allocate(size)
    builder = trace_builder()
    builder.append_stream(src, cache_lines(size), pc=_PC_CRC_LOAD,
                          function="crc32", gap_cycles=gap_cycles)
    return builder.build()


def serialize_trace(space: AddressSpace, message_bytes: int,
                    field_stride: int = 32, gap_cycles: int = 8) -> Trace:
    """RPC serialization: walk message fields, append to a wire buffer.

    Field reads advance by ``field_stride`` (a regular small stride —
    "copying from or writing to addresses in a predictable manner",
    Section 4.1); the output buffer is written strictly sequentially.
    """
    if message_bytes <= 0:
        raise ValueError(f"message_bytes must be positive, got {message_bytes}")
    if field_stride <= 0:
        raise ValueError(f"field_stride must be positive, got {field_stride}")
    src = space.allocate(message_bytes)
    dst = space.allocate(message_bytes)
    builder = trace_builder()
    append = builder.append
    field_size = min(field_stride, 64)
    out_offset = 0
    for offset in range(0, message_bytes, field_stride):
        append(src + offset, size=field_size, pc=_PC_SERIALIZE_IN,
               function="serialize", gap_cycles=gap_cycles)
        if out_offset % CACHE_LINE_BYTES == 0:
            append(dst + out_offset, size=CACHE_LINE_BYTES,
                   kind=AccessKind.STORE, pc=_PC_SERIALIZE_OUT,
                   function="serialize")
        out_offset += field_stride
    return builder.build()


def deserialize_trace(space: AddressSpace, message_bytes: int,
                      field_stride: int = 32, gap_cycles: int = 8) -> Trace:
    """RPC deserialization: stream the wire buffer, scatter into fields."""
    if message_bytes <= 0:
        raise ValueError(f"message_bytes must be positive, got {message_bytes}")
    if field_stride <= 0:
        raise ValueError(f"field_stride must be positive, got {field_stride}")
    src = space.allocate(message_bytes)
    dst = space.allocate(message_bytes * 2)
    builder = trace_builder()
    append = builder.append
    field_size = min(field_stride, 64)
    for offset in range(0, message_bytes, field_stride):
        if offset % CACHE_LINE_BYTES == 0:
            append(src + offset, size=CACHE_LINE_BYTES,
                   pc=_PC_DESERIALIZE_IN, function="deserialize",
                   gap_cycles=gap_cycles)
        append(dst + offset * 2, size=field_size, kind=AccessKind.STORE,
               pc=_PC_DESERIALIZE_OUT, function="deserialize")
    return builder.build()
