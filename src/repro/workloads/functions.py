"""The fleet function roster used by ablation studies (Figures 11/12/20).

Each entry names one hot fleet function, its taxonomy category, its share
of fleet cycles, and a generator producing a representative trace. The
weights follow the paper's observation that data center tax operations
account for 30-40% of fleet cycles [Kanev et al., Sriraman et al.].
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict

from repro.access import AddressSpace, Trace
from repro.errors import ConfigError
from repro.units import KB
from repro.workloads import irregular, tax
from repro.workloads.base import FunctionCategory
from repro.workloads.sizes import MemcpySizeDistribution

TraceGenerator = Callable[[random.Random, AddressSpace, float], Trace]


@dataclass(frozen=True)
class FunctionProfile:
    """One hot function in the fleet profile."""

    name: str
    category: FunctionCategory
    #: Fraction of fleet CPU cycles attributed to this function.
    cycle_share: float
    generator: TraceGenerator

    def trace(self, rng: random.Random, space: AddressSpace,
              scale: float = 1.0) -> Trace:
        """Generate a representative trace; ``scale`` multiplies volume."""
        if scale <= 0:
            raise ConfigError(f"scale must be positive, got {scale}")
        return self.generator(rng, space, scale)


def _memcpy(rng: random.Random, space: AddressSpace, scale: float) -> Trace:
    sizes = MemcpySizeDistribution().sample_many(rng, max(1, int(40 * scale)))
    return tax.memcpy_call_trace(space, sizes)


def _memmove(rng: random.Random, space: AddressSpace, scale: float) -> Trace:
    trace = Trace()
    for _ in range(max(1, int(10 * scale))):
        size = MemcpySizeDistribution().sample(rng)
        src = space.allocate(size * 2)
        trace = trace + tax.memmove_trace(src, src + size // 2, size)
    return trace


def _memset(rng: random.Random, space: AddressSpace, scale: float) -> Trace:
    trace = Trace()
    for _ in range(max(1, int(15 * scale))):
        size = MemcpySizeDistribution().sample(rng)
        trace = trace + tax.memset_trace(space.allocate(size), size)
    return trace


def _compress(rng: random.Random, space: AddressSpace, scale: float) -> Trace:
    return tax.compress_trace(space, int(96 * KB * scale), rng=rng)


def _decompress(rng: random.Random, space: AddressSpace, scale: float) -> Trace:
    return tax.decompress_trace(space, int(96 * KB * scale), rng=rng)


def _hash(rng: random.Random, space: AddressSpace, scale: float) -> Trace:
    trace = Trace()
    for _ in range(max(1, int(6 * scale))):
        trace = trace + tax.hashing_trace(space, 16 * KB)
    return trace


def _crc32(rng: random.Random, space: AddressSpace, scale: float) -> Trace:
    return tax.crc32_trace(space, int(64 * KB * scale))


def _serialize(rng: random.Random, space: AddressSpace, scale: float) -> Trace:
    trace = Trace()
    for _ in range(max(1, int(8 * scale))):
        trace = trace + tax.serialize_trace(space, 8 * KB)
    return trace


def _deserialize(rng: random.Random, space: AddressSpace, scale: float) -> Trace:
    trace = Trace()
    for _ in range(max(1, int(8 * scale))):
        trace = trace + tax.deserialize_trace(space, 8 * KB)
    return trace


def _pointer_chase(rng: random.Random, space: AddressSpace,
                   scale: float) -> Trace:
    return irregular.pointer_chase_trace(
        space, 64 * 1024 * KB, max(1, int(1500 * scale)), rng=rng)


def _btree(rng: random.Random, space: AddressSpace, scale: float) -> Trace:
    return irregular.btree_lookup_trace(space, max(1, int(250 * scale)),
                                        rng=rng)


def _hashmap(rng: random.Random, space: AddressSpace, scale: float) -> Trace:
    return irregular.hashmap_probe_trace(space, max(1, int(700 * scale)),
                                         rng=rng)


def _random_access(rng: random.Random, space: AddressSpace,
                   scale: float) -> Trace:
    return irregular.random_access_trace(
        space, 64 * 1024 * KB, max(1, int(1200 * scale)), rng=rng)


def _misc_streaming(rng: random.Random, space: AddressSpace,
                    scale: float) -> Trace:
    return irregular.misc_streaming_trace(space, max(1, int(24 * scale)),
                                          rng=rng)


#: name -> profile, in the rough order Figure 11's x-axis lists functions.
FUNCTION_ROSTER: Dict[str, FunctionProfile] = {
    profile.name: profile
    for profile in (
        FunctionProfile("memcpy", FunctionCategory.DATA_MOVEMENT, 0.07, _memcpy),
        FunctionProfile("memmove", FunctionCategory.DATA_MOVEMENT, 0.02, _memmove),
        FunctionProfile("memset", FunctionCategory.DATA_MOVEMENT, 0.02, _memset),
        FunctionProfile("compress", FunctionCategory.COMPRESSION, 0.05, _compress),
        FunctionProfile("decompress", FunctionCategory.COMPRESSION, 0.05, _decompress),
        FunctionProfile("hash", FunctionCategory.HASHING, 0.03, _hash),
        FunctionProfile("crc32", FunctionCategory.HASHING, 0.02, _crc32),
        FunctionProfile("serialize", FunctionCategory.DATA_TRANSMISSION, 0.05, _serialize),
        FunctionProfile("deserialize", FunctionCategory.DATA_TRANSMISSION, 0.05, _deserialize),
        FunctionProfile("pointer_chase", FunctionCategory.NON_TAX, 0.18, _pointer_chase),
        FunctionProfile("btree_lookup", FunctionCategory.NON_TAX, 0.14, _btree),
        FunctionProfile("hashmap_probe", FunctionCategory.NON_TAX, 0.14, _hashmap),
        FunctionProfile("random_access", FunctionCategory.NON_TAX, 0.10, _random_access),
        # The long tail of prefetch-friendly loops scattered through cold
        # application code — regresses under ablation but is never a Soft
        # Limoncello target (Section 4.1).
        FunctionProfile("misc_streaming", FunctionCategory.NON_TAX, 0.08, _misc_streaming),
    )
}


def generate_function_trace(name: str, rng: random.Random,
                            space: AddressSpace, scale: float = 1.0) -> Trace:
    """Generate a trace for a roster function by name."""
    try:
        profile = FUNCTION_ROSTER[name]
    except KeyError:
        raise ConfigError(
            f"unknown function {name!r}; roster has {sorted(FUNCTION_ROSTER)}"
        ) from None
    return profile.trace(rng, space, scale)
