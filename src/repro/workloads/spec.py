"""A SPEC-like benchmark suite (for Figure 5).

The paper profiles SPEC over three server generations and finds hardware
prefetching adds 30-40% memory traffic. SPEC-class benchmarks are far more
regular than fleet code — long loops over arrays with some irregular
outliers — which is exactly why vendors tune prefetchers on them. The
suite below mirrors that composition: mostly streaming/strided kernels
(which stream prefetchers chase hard, overshooting at every stream end)
plus a couple of irregular members.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable

from repro.access import AddressSpace, Trace, trace_builder
from repro.errors import ConfigError
from repro.units import CACHE_LINE_BYTES, KB
from repro.workloads import irregular

_PC_STREAM = 0x6000_0010
_PC_STRIDED = 0x6000_0110


def _streaming_kernel(rng: random.Random, space: AddressSpace,
                      scale: float) -> Trace:
    """Long unit-stride array sweeps, libquantum/STREAM style, broken into
    medium-length runs so stream-end overshoot recurs."""
    builder = trace_builder()
    runs = max(1, int(24 * scale))
    for _ in range(runs):
        run_lines = rng.randrange(32, 96)
        base = space.allocate(run_lines * CACHE_LINE_BYTES)
        builder.append_stream(base, run_lines, pc=_PC_STREAM,
                              function="spec_stream", gap_cycles=2)
    return builder.build()


def _strided_kernel(rng: random.Random, space: AddressSpace,
                    scale: float) -> Trace:
    """Fixed non-unit strides (matrix columns): stride prefetcher food,
    adjacent-line prefetcher poison."""
    builder = trace_builder()
    sweeps = max(1, int(12 * scale))
    for _ in range(sweeps):
        stride = rng.choice((128, 256, 512))
        count = rng.randrange(48, 128)
        base = space.allocate(stride * count)
        builder.append_stream(base, count, step=stride, size=8,
                              pc=_PC_STRIDED, function="spec_strided",
                              gap_cycles=4)
    return builder.build()


def _irregular_kernel(rng: random.Random, space: AddressSpace,
                      scale: float) -> Trace:
    """mcf-style pointer chasing."""
    return irregular.pointer_chase_trace(
        space, 32 * 1024 * KB, max(1, int(600 * scale)), rng=rng,
        function="spec_irregular")


@dataclass(frozen=True)
class SpecBenchmark:
    """One member of the SPEC-like suite."""

    name: str
    generator: Callable[[random.Random, AddressSpace, float], Trace]

    def trace(self, rng: random.Random, space: AddressSpace,
              scale: float = 1.0) -> Trace:
        """Generate this benchmark's trace."""
        if scale <= 0:
            raise ConfigError(f"scale must be positive, got {scale}")
        return self.generator(rng, space, scale)


#: Suite composition: regular-dominated, like SPEC CPU's memory behaviour.
SPEC_SUITE = (
    SpecBenchmark("stream_like", _streaming_kernel),
    SpecBenchmark("strided_like", _strided_kernel),
    SpecBenchmark("stream_like_2", _streaming_kernel),
    SpecBenchmark("irregular_like", _irregular_kernel),
)


def suite_trace(rng: random.Random, space: AddressSpace,
                scale: float = 1.0) -> Trace:
    """The whole suite, run back to back."""
    trace = Trace()
    for benchmark in SPEC_SUITE:
        trace = trace + benchmark.trace(rng, space, scale)
    return trace
