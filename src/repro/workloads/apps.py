"""Application models: composite workloads mixing tax and app code.

Section 4.1 reports that, with prefetchers disabled, a memory-bound search
application gained >10% QPS, an ML model server >30% QPS, and a database
server >1% throughput, while other workloads regressed ~5% on average.
These models assemble per-request traces from the function roster with
app-specific mixes so those divergent responses can be reproduced: apps
dominated by irregular access gain from disabling prefetchers; apps heavy
in tax functions regress.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Tuple

from repro.access import AddressSpace, Trace
from repro.access.trace import interleave
from repro.errors import ConfigError
from repro.workloads.functions import FUNCTION_ROSTER


@dataclass(frozen=True)
class ApplicationModel:
    """A service modelled as a weighted mix of roster functions.

    Attributes:
        name: Service name.
        mix: function name -> weight; weights are normalized internally.
        interleave_chunk: Records per function per round when composing a
            request, modelling fine-grained interleaving of library calls
            with application code.
    """

    name: str
    mix: Tuple[Tuple[str, float], ...]
    interleave_chunk: int = 48

    def __post_init__(self) -> None:
        if not self.mix:
            raise ConfigError(f"app {self.name}: empty function mix")
        for function, weight in self.mix:
            if function not in FUNCTION_ROSTER:
                raise ConfigError(
                    f"app {self.name}: unknown function {function!r}")
            if weight <= 0:
                raise ConfigError(
                    f"app {self.name}: non-positive weight for {function!r}")

    @property
    def weights(self) -> Dict[str, float]:
        """Normalized function weights (sum to 1)."""
        total = sum(weight for _, weight in self.mix)
        return {function: weight / total for function, weight in self.mix}

    def tax_fraction(self) -> float:
        """Share of the mix attributable to data center tax functions."""
        from repro.workloads.base import TAX_CATEGORIES
        return sum(
            weight for function, weight in self.weights.items()
            if FUNCTION_ROSTER[function].category in TAX_CATEGORIES)

    def request_trace(self, rng: random.Random, space: AddressSpace,
                      scale: float = 1.0) -> Trace:
        """One request's memory trace: the mix, finely interleaved."""
        traces = []
        for function, weight in self.weights.items():
            profile = FUNCTION_ROSTER[function]
            traces.append(profile.trace(rng, space, scale=scale * weight))
        return interleave(traces, chunk=self.interleave_chunk)

    def workload_trace(self, rng: random.Random, space: AddressSpace,
                       requests: int, scale: float = 1.0) -> Trace:
        """A stream of ``requests`` back-to-back request traces."""
        if requests <= 0:
            raise ConfigError(f"requests must be positive, got {requests}")
        trace = Trace()
        for _ in range(requests):
            trace = trace + self.request_trace(rng, space, scale)
        return trace


def search_backend() -> ApplicationModel:
    """Memory-bound search: dominated by index probes (irregular), with a
    modest tax share. Gains when hardware prefetchers are disabled."""
    return ApplicationModel(
        name="search_backend",
        mix=(
            ("pointer_chase", 0.40),
            ("btree_lookup", 0.25),
            ("hashmap_probe", 0.15),
            ("memcpy", 0.08),
            ("serialize", 0.06),
            ("compress", 0.06),
        ),
    )


def ml_model_server() -> ApplicationModel:
    """Embedding-heavy ML serving: almost entirely random gathers — the
    >30% QPS winner from disabling prefetchers."""
    return ApplicationModel(
        name="ml_model_server",
        mix=(
            ("random_access", 0.58),
            ("hashmap_probe", 0.28),
            ("memcpy", 0.07),
            ("deserialize", 0.07),
        ),
    )


def database_server() -> ApplicationModel:
    """A storage/database server: B-tree heavy with a large tax share
    (copies, compression, checksums) — roughly break-even under ablation,
    the paper quotes >1% gain."""
    return ApplicationModel(
        name="database_server",
        mix=(
            ("btree_lookup", 0.35),
            ("pointer_chase", 0.10),
            ("memcpy", 0.15),
            ("compress", 0.13),
            ("decompress", 0.12),
            ("crc32", 0.08),
            ("serialize", 0.07),
        ),
    )
