"""Content-keyed memoization of generated workload traces.

Trace generation is deterministic: a workload generator, a seed, and a
scale fully determine the records produced. Ablation studies, threshold
sweeps, and calibration passes nonetheless regenerate the same trace for
every arm — the on/off arms of an ablation each rebuild an identical
multi-hundred-thousand-record trace, then the simulator re-lowers it.

This module caches generated traces under their generation parameters
(the content key: ``(workload, seed, scale, ...)``). Sharing the trace
*object* across arms is safe because traces are immutable by convention
(every transformation returns a new :class:`~repro.access.trace.Trace`),
and it means the arms also share the trace's
:class:`~repro.access.compiled.CompiledTrace` columns — which
builder-generated traces carry from birth, so a memo hit hands every arm
an already-lowered trace.

Set ``REPRO_TRACE_MEMO=0`` to disable memoization — e.g. when profiling
generation itself, or in long-lived processes that sweep many distinct
``(seed, scale)`` pairs and should not retain old traces (the cache is
bounded, but a trace can be tens of MB).
"""

from __future__ import annotations

import os
import random
from collections import OrderedDict
from typing import Callable, Tuple

from repro.access.trace import Trace

#: Set to "0" (or "false"/"no"/"off") to disable the trace memo.
MEMO_ENV = "REPRO_TRACE_MEMO"

#: Retained traces; least-recently-used entries are dropped past this bound.
MAX_MEMO_ENTRIES = 32

_memo: "OrderedDict[Tuple, Trace]" = OrderedDict()


def memo_enabled() -> bool:
    """Whether trace memoization is active (default: yes)."""
    return os.environ.get(MEMO_ENV, "").strip().lower() not in (
        "0", "false", "no", "off")


def clear_trace_memo() -> None:
    """Drop every memoized trace (tests, memory pressure)."""
    _memo.clear()


def memoized_trace(key: Tuple, build: Callable[[], Trace]) -> Trace:
    """Return the trace for ``key``, generating it at most once.

    ``key`` must capture every input that affects the generated records
    (workload name, seed, scale, and any other generation parameter);
    ``build`` is invoked only on a miss. With ``REPRO_TRACE_MEMO=0`` the
    memo is bypassed entirely and ``build`` runs every time.
    """
    if not memo_enabled():
        return build()
    trace = _memo.get(key)
    if trace is None:
        trace = build()
        _memo[key] = trace
        if len(_memo) > MAX_MEMO_ENTRIES:
            _memo.popitem(last=False)
    else:
        # Refresh recency so eviction is true LRU: a sweep that cycles
        # through more than MAX_MEMO_ENTRIES keys while re-touching a hot
        # base trace must not evict that base trace (FIFO would).
        _memo.move_to_end(key)
    return trace


def memoized_fleet_mix(seed: int, scale: float) -> Trace:
    """The fleetbench-style mixed workload for ``(seed, scale)``.

    The shared trace lets an ablation's on/off arms (and repeated load
    tests at the same operating point) skip both regeneration and
    re-lowering.
    """
    from repro.access.address import AddressSpace
    from repro.workloads.mixes import fleetbench_trace

    return memoized_trace(
        ("fleetbench_mix", seed, scale),
        lambda: fleetbench_trace(random.Random(seed), AddressSpace(),
                                 scale=scale))


def memoized_scenario_mix(seed: int, scale: float) -> Trace:
    """The scenario subsystem's default tenant co-location mix for
    ``(seed, scale)``.

    The sweep's ``--trace scenario`` bridge: every machine-arm replays
    the noisy-neighbor tenant interleave instead of the fleetbench mix.
    """
    from repro.scenarios.workload import scenario_mix_trace

    return memoized_trace(
        ("scenario_mix", seed, scale),
        lambda: scenario_mix_trace(seed, scale=scale))


def memoized_function_trace(name: str, seed: int, scale: float) -> Trace:
    """The roster function ``name``'s trace for ``(seed, scale)``.

    Used by fleet calibration, which runs each function's trace through
    three hierarchy arms (prefetchers on, off, and off-with-injection).
    """
    from repro.access.address import AddressSpace
    from repro.workloads.functions import FUNCTION_ROSTER

    profile = FUNCTION_ROSTER[name]
    return memoized_trace(
        ("roster_function", name, seed, scale),
        lambda: profile.trace(random.Random(seed), AddressSpace(),
                              scale=scale))
