"""Synthetic workload and trace generators.

The paper characterizes fleet software through a small vocabulary of
memory-access behaviours: *data center tax* functions (data movement,
compression, hashing, RPC serialization) that stream sequentially over
well-defined extents, and everything else — pointer chasing, hash-table
probing, irregular application code. This package generates traces for
each, plus composite application models (search, ML serving, database), a
SPEC-like suite, and Fleetbench-like machine mixes.

All generators are deterministic given a seeded ``random.Random``.
"""

from repro.workloads.base import (
    FunctionCategory,
    TAX_CATEGORIES,
    Workload,
    category_of_function,
)
from repro.workloads.sizes import MemcpySizeDistribution, size_histogram
from repro.workloads.tax import (
    compress_trace,
    crc32_trace,
    decompress_trace,
    deserialize_trace,
    hashing_trace,
    memcpy_call_trace,
    memcpy_trace,
    memmove_trace,
    memset_trace,
    serialize_trace,
)
from repro.workloads.irregular import (
    btree_lookup_trace,
    hashmap_probe_trace,
    pointer_chase_trace,
    random_access_trace,
)
from repro.workloads.functions import (
    FUNCTION_ROSTER,
    FunctionProfile,
    generate_function_trace,
)
from repro.workloads.apps import (
    ApplicationModel,
    database_server,
    ml_model_server,
    search_backend,
)
from repro.workloads.spec import SPEC_SUITE, SpecBenchmark, suite_trace
from repro.workloads.mixes import fleet_mix_trace, fleetbench_trace

__all__ = [
    "FunctionCategory",
    "TAX_CATEGORIES",
    "Workload",
    "category_of_function",
    "MemcpySizeDistribution",
    "size_histogram",
    "memcpy_trace",
    "memcpy_call_trace",
    "memmove_trace",
    "memset_trace",
    "compress_trace",
    "crc32_trace",
    "decompress_trace",
    "hashing_trace",
    "serialize_trace",
    "deserialize_trace",
    "pointer_chase_trace",
    "random_access_trace",
    "btree_lookup_trace",
    "hashmap_probe_trace",
    "FUNCTION_ROSTER",
    "FunctionProfile",
    "generate_function_trace",
    "ApplicationModel",
    "search_backend",
    "ml_model_server",
    "database_server",
    "SPEC_SUITE",
    "SpecBenchmark",
    "suite_trace",
    "fleet_mix_trace",
    "fleetbench_trace",
]
