"""Trace generators for prefetch-*unfriendly* code.

These model the "other functions" of Figures 11/12 — the ones that *gain*
performance when hardware prefetchers are disabled, because the prefetcher
cannot predict their accesses and only pollutes the cache and burns
bandwidth on their behalf.

Like the tax generators, these emit through
:func:`~repro.access.builder.trace_builder`, so traces are born columnar
(``REPRO_SLOW_BUILDER=1`` selects the record-path oracle).
"""

from __future__ import annotations

import hashlib
import random
from typing import List, Optional

from repro.access import AccessKind, AddressSpace, Trace, trace_builder
from repro.units import CACHE_LINE_BYTES


def workload_seed(name: str) -> int:
    """Stable 63-bit default-RNG seed for a workload generator.

    BLAKE2b over a namespaced generator name, in the same style as
    :func:`repro.fleet.machine.machine_seed`. Every generator in this
    module used to default to ``random.Random(0)``, so distinct
    workloads emitted *correlated* address streams whenever a caller
    omitted ``rng`` — a pointer chase and a hash-map probe would land on
    the same "random" lines. Namespacing by generator name keeps each
    default stream deterministic while decorrelating the generators.
    """
    digest = hashlib.blake2b(
        f"limoncello-workload:{name}".encode(), digest_size=8).digest()
    return int.from_bytes(digest, "big") & 0x7FFF_FFFF_FFFF_FFFF


def _default_rng(rng: Optional[random.Random],
                 generator: str) -> random.Random:
    """The caller's RNG, or a fresh per-generator namespaced default."""
    return rng if rng is not None else random.Random(workload_seed(generator))


_PC_CHASE = 0x5000_0010
_PC_RANDOM = 0x5000_0110
_PC_BTREE = 0x5000_0210
_PC_HASHMAP_BUCKET = 0x5000_0310
_PC_HASHMAP_ENTRY = 0x5000_0318
_PC_MISC_STREAM = 0x5000_0410


def pointer_chase_trace(space: AddressSpace, working_set_bytes: int,
                        hops: int, rng: Optional[random.Random] = None,
                        gap_cycles: int = 4,
                        function: str = "pointer_chase") -> Trace:
    """A dependent random walk over a working set: one load per hop.

    Each hop lands on a uniformly random line, so no prefetcher can help
    and a load-to-use latency probe built from this trace measures pure
    DRAM latency — this is also how we reproduce the MLC-style
    measurement in Figure 1.
    """
    if working_set_bytes < CACHE_LINE_BYTES:
        raise ValueError("working set must hold at least one line")
    if hops <= 0:
        raise ValueError(f"hops must be positive, got {hops}")
    rng = _default_rng(rng, "pointer_chase")
    base = space.allocate(working_set_bytes)
    num_lines = working_set_bytes // CACHE_LINE_BYTES
    builder = trace_builder()
    builder.append_addresses(
        [base + rng.randrange(num_lines) * CACHE_LINE_BYTES
         for _ in range(hops)],
        size=8, pc=_PC_CHASE, function=function, gap_cycles=gap_cycles)
    return builder.build()


def random_access_trace(space: AddressSpace, working_set_bytes: int,
                        accesses: int, rng: Optional[random.Random] = None,
                        gap_cycles: int = 2,
                        function: str = "random_access") -> Trace:
    """Independent uniform random loads (no dependence between them)."""
    # Resolve the default *here*, not in the delegate: an omitted rng
    # must follow this generator's own namespaced stream rather than
    # silently inheriting pointer_chase's.
    rng = _default_rng(rng, "random_access")
    return pointer_chase_trace(space, working_set_bytes, accesses, rng,
                               gap_cycles=gap_cycles, function=function)


def btree_lookup_trace(space: AddressSpace, keys: int,
                       rng: Optional[random.Random] = None,
                       depth: int = 5, node_bytes: int = 256,
                       fanout_region_bytes: int = 64 * 1024 * 1024,
                       gap_cycles: int = 8) -> Trace:
    """B-tree lookups: per key, ``depth`` dependent node reads.

    Upper levels live in a small (cacheable) region; leaves are scattered
    across a large one — the classic mostly-random tree pattern.
    """
    if keys <= 0 or depth <= 0:
        raise ValueError("keys and depth must be positive")
    rng = _default_rng(rng, "btree_lookup")
    level_regions: List[int] = []
    level_sizes: List[int] = []
    region = 4 * 1024
    for _ in range(depth):
        region = min(region * 16, fanout_region_bytes)
        level_regions.append(space.allocate(region))
        level_sizes.append(region)
    node_size = min(node_bytes, 64)
    per_level: List[List[int]] = [[] for _ in range(depth)]
    for _ in range(keys):
        for level, (base, size) in enumerate(zip(level_regions, level_sizes)):
            node = rng.randrange(size // node_bytes) * node_bytes
            per_level[level].append(base + node)
    builder = trace_builder()
    builder.append_round_robin(
        [(addresses, node_size, AccessKind.LOAD, _PC_BTREE + level * 8,
          gap_cycles)
         for level, addresses in enumerate(per_level)],
        function="btree_lookup")
    return builder.build()


def misc_streaming_trace(space: AddressSpace, bursts: int,
                         rng: Optional[random.Random] = None,
                         gap_cycles: int = 6) -> Trace:
    """Scattered short sequential bursts in miscellaneous application code.

    Section 4.1 notes that "some non-tax functions also regress with
    hardware prefetchers disabled, but many of these functions are not hot
    enough to warrant standalone optimizations." This generator models
    that long tail: streaming loops buried across thousands of call sites
    — prefetch-friendly, but *not* a Soft Limoncello target, so their
    regression is the residual cost of running with prefetchers off.
    """
    if bursts <= 0:
        raise ValueError(f"bursts must be positive, got {bursts}")
    rng = _default_rng(rng, "misc_streaming")
    builder = trace_builder()
    for burst in range(bursts):
        lines = rng.randrange(16, 64)
        base = space.allocate(lines * CACHE_LINE_BYTES)
        # Thousands of distinct call sites: vary the PC per burst so no
        # single site is hot enough to justify a hand insertion.
        pc = _PC_MISC_STREAM + (burst % 1024) * 8
        builder.append_stream(base, lines, pc=pc, function="misc_streaming",
                              gap_cycles=gap_cycles)
    return builder.build()


def hashmap_probe_trace(space: AddressSpace, probes: int,
                        table_bytes: int = 128 * 1024 * 1024,
                        rng: Optional[random.Random] = None,
                        gap_cycles: int = 6) -> Trace:
    """Open-addressing hash-map probes: a random bucket plus its entry.

    Two dependent loads per probe, both effectively random — the poster
    child of prefetch-unfriendly code.
    """
    if probes <= 0:
        raise ValueError(f"probes must be positive, got {probes}")
    rng = _default_rng(rng, "hashmap_probe")
    base = space.allocate(table_bytes)
    num_lines = table_bytes // CACHE_LINE_BYTES
    buckets: List[int] = []
    entries: List[int] = []
    for _ in range(probes):
        buckets.append(base + rng.randrange(num_lines) * CACHE_LINE_BYTES)
        entries.append(base + rng.randrange(num_lines) * CACHE_LINE_BYTES)
    load = AccessKind.LOAD
    builder = trace_builder()
    builder.append_round_robin(
        [(buckets, 8, load, _PC_HASHMAP_BUCKET, gap_cycles),
         (entries, 32, load, _PC_HASHMAP_ENTRY, 2)],
        function="hashmap_probe")
    return builder.build()
