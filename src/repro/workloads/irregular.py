"""Trace generators for prefetch-*unfriendly* code.

These model the "other functions" of Figures 11/12 — the ones that *gain*
performance when hardware prefetchers are disabled, because the prefetcher
cannot predict their accesses and only pollutes the cache and burns
bandwidth on their behalf.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.access import AddressSpace, MemoryAccess, Trace
from repro.units import CACHE_LINE_BYTES

_PC_CHASE = 0x5000_0010
_PC_RANDOM = 0x5000_0110
_PC_BTREE = 0x5000_0210
_PC_HASHMAP_BUCKET = 0x5000_0310
_PC_HASHMAP_ENTRY = 0x5000_0318
_PC_MISC_STREAM = 0x5000_0410


def pointer_chase_trace(space: AddressSpace, working_set_bytes: int,
                        hops: int, rng: Optional[random.Random] = None,
                        gap_cycles: int = 4,
                        function: str = "pointer_chase") -> Trace:
    """A dependent random walk over a working set: one load per hop.

    Each hop lands on a uniformly random line, so no prefetcher can help
    and a load-to-use latency probe built from this trace measures pure
    DRAM latency — this is also how we reproduce the MLC-style
    measurement in Figure 1.
    """
    if working_set_bytes < CACHE_LINE_BYTES:
        raise ValueError("working set must hold at least one line")
    if hops <= 0:
        raise ValueError(f"hops must be positive, got {hops}")
    rng = rng or random.Random(0)
    base = space.allocate(working_set_bytes)
    num_lines = working_set_bytes // CACHE_LINE_BYTES
    return Trace([
        MemoryAccess(
            address=base + rng.randrange(num_lines) * CACHE_LINE_BYTES,
            size=8, pc=_PC_CHASE, function=function, gap_cycles=gap_cycles)
        for _ in range(hops)
    ])


def random_access_trace(space: AddressSpace, working_set_bytes: int,
                        accesses: int, rng: Optional[random.Random] = None,
                        gap_cycles: int = 2,
                        function: str = "random_access") -> Trace:
    """Independent uniform random loads (no dependence between them)."""
    return pointer_chase_trace(space, working_set_bytes, accesses, rng,
                               gap_cycles=gap_cycles, function=function)


def btree_lookup_trace(space: AddressSpace, keys: int,
                       rng: Optional[random.Random] = None,
                       depth: int = 5, node_bytes: int = 256,
                       fanout_region_bytes: int = 64 * 1024 * 1024,
                       gap_cycles: int = 8) -> Trace:
    """B-tree lookups: per key, ``depth`` dependent node reads.

    Upper levels live in a small (cacheable) region; leaves are scattered
    across a large one — the classic mostly-random tree pattern.
    """
    if keys <= 0 or depth <= 0:
        raise ValueError("keys and depth must be positive")
    rng = rng or random.Random(0)
    level_regions: List[int] = []
    level_sizes: List[int] = []
    region = 4 * 1024
    for _ in range(depth):
        region = min(region * 16, fanout_region_bytes)
        level_regions.append(space.allocate(region))
        level_sizes.append(region)
    records: List[MemoryAccess] = []
    for _ in range(keys):
        for level, (base, size) in enumerate(zip(level_regions, level_sizes)):
            node = rng.randrange(size // node_bytes) * node_bytes
            records.append(MemoryAccess(
                address=base + node, size=min(node_bytes, 64),
                pc=_PC_BTREE + level * 8, function="btree_lookup",
                gap_cycles=gap_cycles))
    return Trace(records)


def misc_streaming_trace(space: AddressSpace, bursts: int,
                         rng: Optional[random.Random] = None,
                         gap_cycles: int = 6) -> Trace:
    """Scattered short sequential bursts in miscellaneous application code.

    Section 4.1 notes that "some non-tax functions also regress with
    hardware prefetchers disabled, but many of these functions are not hot
    enough to warrant standalone optimizations." This generator models
    that long tail: streaming loops buried across thousands of call sites
    — prefetch-friendly, but *not* a Soft Limoncello target, so their
    regression is the residual cost of running with prefetchers off.
    """
    if bursts <= 0:
        raise ValueError(f"bursts must be positive, got {bursts}")
    rng = rng or random.Random(0)
    records: List[MemoryAccess] = []
    for burst in range(bursts):
        lines = rng.randrange(16, 64)
        base = space.allocate(lines * CACHE_LINE_BYTES)
        # Thousands of distinct call sites: vary the PC per burst so no
        # single site is hot enough to justify a hand insertion.
        pc = _PC_MISC_STREAM + (burst % 1024) * 8
        for i in range(lines):
            records.append(MemoryAccess(
                address=base + i * CACHE_LINE_BYTES, size=CACHE_LINE_BYTES,
                pc=pc, function="misc_streaming", gap_cycles=gap_cycles))
    return Trace(records)


def hashmap_probe_trace(space: AddressSpace, probes: int,
                        table_bytes: int = 128 * 1024 * 1024,
                        rng: Optional[random.Random] = None,
                        gap_cycles: int = 6) -> Trace:
    """Open-addressing hash-map probes: a random bucket plus its entry.

    Two dependent loads per probe, both effectively random — the poster
    child of prefetch-unfriendly code.
    """
    if probes <= 0:
        raise ValueError(f"probes must be positive, got {probes}")
    rng = rng or random.Random(0)
    base = space.allocate(table_bytes)
    num_lines = table_bytes // CACHE_LINE_BYTES
    records: List[MemoryAccess] = []
    for _ in range(probes):
        bucket = rng.randrange(num_lines) * CACHE_LINE_BYTES
        records.append(MemoryAccess(
            address=base + bucket, size=8, pc=_PC_HASHMAP_BUCKET,
            function="hashmap_probe", gap_cycles=gap_cycles))
        entry = rng.randrange(num_lines) * CACHE_LINE_BYTES
        records.append(MemoryAccess(
            address=base + entry, size=32, pc=_PC_HASHMAP_ENTRY,
            function="hashmap_probe", gap_cycles=2))
    return Trace(records)
