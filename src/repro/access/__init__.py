"""Memory-access and trace abstractions.

A *trace* is the lingua franca between workload generators
(:mod:`repro.workloads`), the software-prefetch injector
(:mod:`repro.core.soft`), and the timing simulator (:mod:`repro.memsys`):
an ordered sequence of :class:`MemoryAccess` records, each optionally
separated from its predecessor by a number of pure-compute cycles.
"""

from repro.access.record import AccessKind, MemoryAccess
from repro.access.trace import Trace, interleave
from repro.access.compiled import CompiledTrace, concat_compiled
from repro.access.builder import (
    RecordTraceBuilder,
    SLOW_BUILDER_ENV,
    TraceBuilder,
    trace_builder,
)
from repro.access.address import AddressSpace

__all__ = [
    "AccessKind",
    "MemoryAccess",
    "Trace",
    "CompiledTrace",
    "concat_compiled",
    "TraceBuilder",
    "RecordTraceBuilder",
    "trace_builder",
    "SLOW_BUILDER_ENV",
    "interleave",
    "AddressSpace",
]
