"""Compiled traces: a :class:`Trace` lowered once into flat int columns.

The cycle-level simulator's inner loop is the hottest code in the
repository — every paper figure, ablation arm, and fleet calibration
funnels through it. Iterating :class:`~repro.access.record.MemoryAccess`
dataclasses there pays an attribute lookup per field, an enum identity
check per kind test, and a ``range`` allocation per ``lines_touched()``
call, for every record, on every run.

:class:`CompiledTrace` pays those costs once. A single pass lowers the
records into parallel columns of plain ints — line-aligned address,
extra-lines count (0 for the dominant single-line access), kind as a
small int (:data:`~repro.access.record.KIND_CODES`), pc, gap cycles, and
an interned function id — so the hot loop touches nothing but ints held
in lists and locals. The columns are also pre-zipped into one list of
tuples (:attr:`CompiledTrace.packed`) because a single ``UNPACK_SEQUENCE``
per record beats eight parallel subscripts.

Compilation is cached on the owning :class:`~repro.access.trace.Trace`
(traces are immutable by convention), so repeated runs of the same trace —
ablation on/off arms, threshold sweeps, calibration passes — compile once.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

from repro.access.record import KIND_CODES, MemoryAccess
from repro.units import CACHE_LINE_BYTES


class CompiledTrace:
    """Column-oriented lowering of a trace, ready for the fast engine.

    Attributes:
        length: Number of records.
        kinds: Kind code per record (see :data:`KIND_CODES`).
        lines: First line-aligned address touched per record.
        extras: Lines touched beyond the first (0 = single-line access).
        pcs: Synthetic program counter per record.
        gaps: Pure-compute gap cycles per record.
        fids: Interned function id per record (index into ``functions``).
        addrs: Raw byte address per record (stream hints need it exact).
        sizes: Byte size per record (stream hints carry the extent).
        functions: Interned function names, id order (first-seen order).
        packed: The columns zipped per record as
            ``(kind, line, extra, pc, gap, fid, addr, size)`` tuples —
            the structure the hot loop actually iterates.
    """

    __slots__ = ("length", "kinds", "lines", "extras", "pcs", "gaps",
                 "fids", "addrs", "sizes", "functions", "packed",
                 "_arrays")

    def __init__(self, records: Iterable[MemoryAccess]) -> None:
        kinds: List[int] = []
        lines: List[int] = []
        extras: List[int] = []
        pcs: List[int] = []
        gaps: List[int] = []
        fids: List[int] = []
        addrs: List[int] = []
        sizes: List[int] = []
        functions: List[str] = []
        fid_of = {}
        kind_codes = KIND_CODES
        line_mask = ~(CACHE_LINE_BYTES - 1)
        for record in records:
            address = record.address
            size = record.size
            first = address & line_mask
            last = (address + size - 1) & line_mask
            function = record.function
            fid = fid_of.get(function)
            if fid is None:
                fid = fid_of[function] = len(functions)
                functions.append(function)
            kinds.append(kind_codes[record.kind])
            lines.append(first)
            extras.append((last - first) // CACHE_LINE_BYTES)
            pcs.append(record.pc)
            gaps.append(record.gap_cycles)
            fids.append(fid)
            addrs.append(address)
            sizes.append(size)
        self.length = len(kinds)
        self.kinds = kinds
        self.lines = lines
        self.extras = extras
        self.pcs = pcs
        self.gaps = gaps
        self.fids = fids
        self.addrs = addrs
        self.sizes = sizes
        self.functions = functions
        self.packed: List[Tuple[int, int, int, int, int, int, int, int]] = \
            list(zip(kinds, lines, extras, pcs, gaps, fids, addrs, sizes))
        self._arrays = None

    def arrays(self):
        """NumPy views of the columns, built once and cached.

        Returns ``{"kinds", "lines", "extras", "pcs", "gaps", "fids",
        "addrs", "sizes"}`` mapped to int64 arrays. The batched lockstep
        path uses these for whole-trace column scans (e.g. bounding the
        software-prefetch volume before committing to a batch) without
        re-walking the packed tuples per call. Raises ``ImportError``
        when NumPy is unavailable — callers on the pure-Python path
        should stick to the list columns.
        """
        if self._arrays is None:
            import numpy as np
            self._arrays = {
                "kinds": np.asarray(self.kinds, np.int64),
                "lines": np.asarray(self.lines, np.int64),
                "extras": np.asarray(self.extras, np.int64),
                "pcs": np.asarray(self.pcs, np.int64),
                "gaps": np.asarray(self.gaps, np.int64),
                "fids": np.asarray(self.fids, np.int64),
                "addrs": np.asarray(self.addrs, np.int64),
                "sizes": np.asarray(self.sizes, np.int64),
            }
        return self._arrays

    @classmethod
    def from_columns(cls, kinds: List[int], lines: List[int],
                     extras: List[int], pcs: List[int], gaps: List[int],
                     fids: List[int], addrs: List[int], sizes: List[int],
                     functions: List[str],
                     packed: "List[Tuple[int, int, int, int, int, int, int, int]]" = None,
                     ) -> "CompiledTrace":
        """Adopt already-lowered columns without re-walking records.

        The caller hands over ownership: the lists are stored as-is (no
        copies) and must not be mutated afterwards. This is how
        :class:`~repro.access.builder.TraceBuilder` and the columnar
        injector/concat/interleave paths make ``Trace.compile()`` free.
        """
        compiled = cls.__new__(cls)
        compiled.length = len(kinds)
        compiled.kinds = kinds
        compiled.lines = lines
        compiled.extras = extras
        compiled.pcs = pcs
        compiled.gaps = gaps
        compiled.fids = fids
        compiled.addrs = addrs
        compiled.sizes = sizes
        compiled.functions = functions
        compiled.packed = packed if packed is not None else \
            list(zip(kinds, lines, extras, pcs, gaps, fids, addrs, sizes))
        compiled._arrays = None
        return compiled

    @classmethod
    def from_packed(cls, packed, functions: List[str]) -> "CompiledTrace":
        """Adopt pre-zipped per-record tuples (see :attr:`packed`)."""
        if packed:
            kinds, lines, extras, pcs, gaps, fids, addrs, sizes = \
                map(list, zip(*packed))
        else:
            kinds, lines, extras, pcs = [], [], [], []
            gaps, fids, addrs, sizes = [], [], [], []
        return cls.from_columns(kinds, lines, extras, pcs, gaps, fids,
                                addrs, sizes, functions, packed=packed)

    def __len__(self) -> int:
        return self.length

    def __repr__(self) -> str:
        return (f"CompiledTrace({self.length} records, "
                f"{len(self.functions)} functions)")


def concat_compiled(first: CompiledTrace,
                    second: CompiledTrace) -> CompiledTrace:
    """Concatenate two compiled traces without touching records.

    Function interning follows first-seen order across the combined
    sequence, exactly as compiling the concatenated records would.
    """
    if not first.length:
        return second
    if not second.length:
        return first
    functions = list(first.functions)
    fid_of = {name: fid for fid, name in enumerate(functions)}
    remap: List[int] = []
    identity = True
    for fid, name in enumerate(second.functions):
        out = fid_of.get(name)
        if out is None:
            out = fid_of[name] = len(functions)
            functions.append(name)
        identity = identity and out == fid
        remap.append(out)
    if identity:
        fids = first.fids + second.fids
        packed = first.packed + second.packed
    else:
        fids = first.fids + [remap[fid] for fid in second.fids]
        packed = first.packed + [
            (kind, line, extra, pc, gap, remap[fid], addr, size)
            for kind, line, extra, pc, gap, fid, addr, size in second.packed]
    return CompiledTrace.from_columns(
        first.kinds + second.kinds, first.lines + second.lines,
        first.extras + second.extras, first.pcs + second.pcs,
        first.gaps + second.gaps, fids, first.addrs + second.addrs,
        first.sizes + second.sizes, functions, packed=packed)
