"""Compiled traces: a :class:`Trace` lowered once into flat int columns.

The cycle-level simulator's inner loop is the hottest code in the
repository — every paper figure, ablation arm, and fleet calibration
funnels through it. Iterating :class:`~repro.access.record.MemoryAccess`
dataclasses there pays an attribute lookup per field, an enum identity
check per kind test, and a ``range`` allocation per ``lines_touched()``
call, for every record, on every run.

:class:`CompiledTrace` pays those costs once. A single pass lowers the
records into parallel columns of plain ints — line-aligned address,
extra-lines count (0 for the dominant single-line access), kind as a
small int (:data:`~repro.access.record.KIND_CODES`), pc, gap cycles, and
an interned function id — so the hot loop touches nothing but ints held
in lists and locals. The columns are also pre-zipped into one list of
tuples (:attr:`CompiledTrace.packed`) because a single ``UNPACK_SEQUENCE``
per record beats eight parallel subscripts.

Compilation is cached on the owning :class:`~repro.access.trace.Trace`
(traces are immutable by convention), so repeated runs of the same trace —
ablation on/off arms, threshold sweeps, calibration passes — compile once.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

from repro.access.record import KIND_CODES, MemoryAccess
from repro.units import CACHE_LINE_BYTES


class CompiledTrace:
    """Column-oriented lowering of a trace, ready for the fast engine.

    Attributes:
        length: Number of records.
        kinds: Kind code per record (see :data:`KIND_CODES`).
        lines: First line-aligned address touched per record.
        extras: Lines touched beyond the first (0 = single-line access).
        pcs: Synthetic program counter per record.
        gaps: Pure-compute gap cycles per record.
        fids: Interned function id per record (index into ``functions``).
        addrs: Raw byte address per record (stream hints need it exact).
        sizes: Byte size per record (stream hints carry the extent).
        functions: Interned function names, id order (first-seen order).
        packed: The columns zipped per record as
            ``(kind, line, extra, pc, gap, fid, addr, size)`` tuples —
            the structure the hot loop actually iterates.
    """

    __slots__ = ("length", "kinds", "lines", "extras", "pcs", "gaps",
                 "fids", "addrs", "sizes", "functions", "packed")

    def __init__(self, records: Iterable[MemoryAccess]) -> None:
        kinds: List[int] = []
        lines: List[int] = []
        extras: List[int] = []
        pcs: List[int] = []
        gaps: List[int] = []
        fids: List[int] = []
        addrs: List[int] = []
        sizes: List[int] = []
        functions: List[str] = []
        fid_of = {}
        kind_codes = KIND_CODES
        line_mask = ~(CACHE_LINE_BYTES - 1)
        for record in records:
            address = record.address
            size = record.size
            first = address & line_mask
            last = (address + size - 1) & line_mask
            function = record.function
            fid = fid_of.get(function)
            if fid is None:
                fid = fid_of[function] = len(functions)
                functions.append(function)
            kinds.append(kind_codes[record.kind])
            lines.append(first)
            extras.append((last - first) // CACHE_LINE_BYTES)
            pcs.append(record.pc)
            gaps.append(record.gap_cycles)
            fids.append(fid)
            addrs.append(address)
            sizes.append(size)
        self.length = len(kinds)
        self.kinds = kinds
        self.lines = lines
        self.extras = extras
        self.pcs = pcs
        self.gaps = gaps
        self.fids = fids
        self.addrs = addrs
        self.sizes = sizes
        self.functions = functions
        self.packed: List[Tuple[int, int, int, int, int, int, int, int]] = \
            list(zip(kinds, lines, extras, pcs, gaps, fids, addrs, sizes))

    def __len__(self) -> int:
        return self.length

    def __repr__(self) -> str:
        return (f"CompiledTrace({self.length} records, "
                f"{len(self.functions)} functions)")
