"""Traces: ordered sequences of memory accesses plus bulk helpers."""

from __future__ import annotations

import itertools
from typing import Callable, Iterable, Iterator, List, Optional, Sequence

from repro.access.record import (
    AccessKind,
    KIND_FROM_CODE,
    KIND_STORE,
    MemoryAccess,
)
from repro.errors import TraceError


class Trace:
    """An immutable-by-convention ordered list of :class:`MemoryAccess`.

    Traces support concatenation, per-record mapping, and summary
    statistics. Workload generators produce them, the software-prefetch
    injector rewrites them, and :class:`repro.memsys.MemoryHierarchy`
    consumes them.

    A trace is backed by records, by the flat int columns of a
    :class:`~repro.access.compiled.CompiledTrace`, or both. Builder-made
    traces (:class:`~repro.access.builder.TraceBuilder`) start column-only
    — ``compile()`` is then free — and materialize records lazily the
    first time something iterates or indexes them; the public record
    constructor works exactly as it always has.
    """

    __slots__ = ("_records", "_compiled")

    def __init__(self, records: Iterable[MemoryAccess] = ()) -> None:
        self._records: Optional[List[MemoryAccess]] = list(records)
        self._compiled = None
        for record in self._records:
            if not isinstance(record, MemoryAccess):
                raise TraceError(
                    f"trace records must be MemoryAccess, got {type(record).__name__}"
                )

    # --- alternate constructors (internal) -----------------------------------

    @classmethod
    def _trusted(cls, records: List[MemoryAccess]) -> "Trace":
        """Adopt an already-validated record list without re-checking it.

        For internal transformation paths only (slices, concat, the
        injector's rebuild): every record must already be a
        ``MemoryAccess``, and the caller hands over list ownership.
        """
        trace = cls.__new__(cls)
        trace._records = records
        trace._compiled = None
        return trace

    @classmethod
    def _from_compiled(cls, compiled) -> "Trace":
        """A column-backed trace adopting ``compiled`` (records lazy)."""
        trace = cls.__new__(cls)
        trace._records = None
        trace._compiled = compiled
        return trace

    def _materialize(self) -> List[MemoryAccess]:
        """Build (and cache) the record list from the compiled columns."""
        records = self._records
        if records is None:
            kind_of = KIND_FROM_CODE
            functions = self._compiled.functions
            records = self._records = [
                MemoryAccess(address=addr, size=size, kind=kind_of[kind],
                             pc=pc, function=functions[fid],
                             gap_cycles=gap)
                for kind, _line, _extra, pc, gap, fid, addr, size
                in self._compiled.packed
            ]
        return records

    # --- sequence protocol -------------------------------------------------

    def __len__(self) -> int:
        if self._records is None:
            return self._compiled.length
        return len(self._records)

    def __iter__(self) -> Iterator[MemoryAccess]:
        return iter(self._materialize())

    def __getitem__(self, index):
        if isinstance(index, slice):
            return Trace._trusted(self._materialize()[index])
        return self._materialize()[index]

    def __add__(self, other: "Trace") -> "Trace":
        if not isinstance(other, Trace):
            return NotImplemented
        if self._records is None or other._records is None:
            # At least one side is column-backed: concatenate columns so
            # neither side has to materialize records.
            from repro.access.compiled import concat_compiled
            return Trace._from_compiled(
                concat_compiled(self.compile(), other.compile()))
        return Trace._trusted(self._records + other._records)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Trace):
            return NotImplemented
        if self._records is None and other._records is None:
            # Column comparison: equal records imply identical first-seen
            # function interning, so (functions, packed) is a faithful key.
            mine, theirs = self._compiled, other._compiled
            if mine is theirs:
                return True
            return (mine.functions == theirs.functions
                    and mine.packed == theirs.packed)
        return self._materialize() == other._materialize()

    def __repr__(self) -> str:
        return f"Trace({len(self)} records)"

    # --- compilation ---------------------------------------------------------

    def compile(self):
        """Lower this trace into flat int columns for the fast engine.

        The result (a :class:`~repro.access.compiled.CompiledTrace`) is
        cached on the trace — safe because traces are immutable by
        convention and every transformation returns a new trace — so
        repeated simulator runs of the same trace compile exactly once.
        For builder-made (column-backed) traces this is free: the columns
        were populated during generation.
        """
        compiled = self._compiled
        if compiled is None:
            from repro.access.compiled import CompiledTrace
            compiled = self._compiled = CompiledTrace(self._records)
        return compiled

    # --- transformations -----------------------------------------------------

    def map(self, fn: Callable[[MemoryAccess], MemoryAccess]) -> "Trace":
        """A new trace with ``fn`` applied to every record."""
        return Trace(fn(record) for record in self._materialize())

    def attributed(self, function: str) -> "Trace":
        """A copy with every record attributed to ``function``."""
        return self.map(lambda record: record.with_function(function))

    def shifted(self, offset: int) -> "Trace":
        """A copy with every address shifted by ``offset``."""
        return self.map(lambda record: record.shifted(offset))

    def repeated(self, times: int) -> "Trace":
        """This trace concatenated with itself ``times`` times."""
        if times < 0:
            raise ValueError(f"times must be non-negative, got {times}")
        records = self._materialize()
        return Trace._trusted(list(itertools.chain.from_iterable(
            records for _ in range(times))))

    def demand_only(self) -> "Trace":
        """A copy with software-prefetch records removed."""
        return Trace._trusted([record for record in self._materialize()
                               if record.is_demand])

    # --- statistics -----------------------------------------------------------

    @property
    def demand_count(self) -> int:
        """Number of demand (load/store) records."""
        if self._records is None:
            return sum(1 for kind in self._compiled.kinds
                       if kind <= KIND_STORE)
        return sum(1 for record in self._records if record.is_demand)

    @property
    def prefetch_count(self) -> int:
        """Number of software-prefetch records."""
        return len(self) - self.demand_count

    @property
    def compute_cycles(self) -> int:
        """Total pure-compute cycles encoded in the trace gaps."""
        if self._records is None:
            return sum(self._compiled.gaps)
        return sum(record.gap_cycles for record in self._records)

    @property
    def instruction_count(self) -> int:
        """Approximate instruction count: one per record plus one per gap
        cycle (the simulator's cycle model assumes IPC 1 for compute)."""
        return len(self) + self.compute_cycles

    def unique_lines(self) -> int:
        """Number of distinct cache lines touched by demand accesses."""
        if self._records is None:
            compiled = self._compiled
            return len({line for kind, line in zip(compiled.kinds,
                                                   compiled.lines)
                        if kind <= KIND_STORE})
        return len({record.line for record in self._records
                    if record.is_demand})

    def footprint_bytes(self) -> int:
        """Total bytes spanned by the trace's demand address range."""
        if self._records is None:
            compiled = self._compiled
            demand = [(addr, size) for kind, addr, size
                      in zip(compiled.kinds, compiled.addrs, compiled.sizes)
                      if kind <= KIND_STORE]
            if not demand:
                return 0
            low = min(addr for addr, _size in demand)
            high = max(addr + size for addr, size in demand)
            return high - low
        demand = [record for record in self._records if record.is_demand]
        if not demand:
            return 0
        low = min(record.address for record in demand)
        high = max(record.address + record.size for record in demand)
        return high - low

    def functions(self) -> Sequence[str]:
        """Distinct function names appearing in the trace, in first-seen order."""
        if self._records is None:
            return [name for name in self._compiled.functions if name]
        seen: List[str] = []
        for record in self._records:
            if record.function and record.function not in seen:
                seen.append(record.function)
        return seen


def interleave(traces: Sequence[Trace], chunk: int = 64,
               limit: Optional[int] = None) -> Trace:
    """Round-robin interleave several traces, ``chunk`` records at a time.

    This approximates the co-located, context-switching execution the paper
    describes: a machine runs hundreds of services whose memory streams mix
    at fine granularity, which is exactly what confuses hardware stream
    prefetchers on short streams.

    When every input is column-backed (the builder pipeline), the merge
    happens on compiled columns — chunk-sized slices of ``packed`` plus a
    function-id remap — and the result is column-backed too, so the whole
    generate → interleave path never touches a record object. Otherwise
    the original record path runs.

    Args:
        traces: The traces to interleave. Exhausted traces drop out.
        chunk: Records taken from each trace per turn.
        limit: Optional cap on total output records.
    """
    if chunk <= 0:
        raise ValueError(f"chunk must be positive, got {chunk}")
    if traces and all(trace._records is None for trace in traces):
        return _interleave_columns(traces, chunk, limit)
    iterators = [iter(trace) for trace in traces]
    merged: List[MemoryAccess] = []
    while iterators:
        still_live = []
        for iterator in iterators:
            taken = list(itertools.islice(iterator, chunk))
            merged.extend(taken)
            if limit is not None and len(merged) >= limit:
                return Trace._trusted(merged[:limit])
            if len(taken) == chunk:
                still_live.append(iterator)
        iterators = still_live
    return Trace._trusted(merged)


class _ColumnMerge:
    """One input trace's cursor in a columnar merge (interleave).

    Function ids are re-interned *as rows are emitted*, so the output
    functions list lands in first-seen output order — the exact list
    compiling the merged records would produce. Once every input fid is
    resolved, chunks are emitted with C-level ``extend``/genexprs.
    """

    __slots__ = ("compiled", "position", "remap", "unresolved", "identity")

    def __init__(self, compiled) -> None:
        self.compiled = compiled
        self.position = 0
        self.remap: List[Optional[int]] = [None] * len(compiled.functions)
        self.unresolved = len(self.remap)
        self.identity = True

    def emit(self, chunk: int, packed: list, functions: List[str],
             fid_of: dict) -> int:
        """Append up to ``chunk`` rows to ``packed``; returns rows taken."""
        rows = self.compiled.packed[self.position:self.position + chunk]
        self.position += len(rows)
        if not self.unresolved:
            if self.identity:
                packed.extend(rows)
            else:
                remap = self.remap
                packed.extend(
                    (kind, line, extra, pc, gap, remap[fid], addr, size)
                    for kind, line, extra, pc, gap, fid, addr, size in rows)
            return len(rows)
        remap = self.remap
        names = self.compiled.functions
        for row in rows:
            fid = row[5]
            out = remap[fid]
            if out is None:
                name = names[fid]
                out = fid_of.get(name)
                if out is None:
                    out = fid_of[name] = len(functions)
                    functions.append(name)
                remap[fid] = out
                self.unresolved -= 1
                if out != fid:
                    self.identity = False
            packed.append(row if out == row[5] else
                          row[:5] + (out,) + row[6:])
        return len(rows)


def _interleave_columns(traces: Sequence[Trace], chunk: int,
                        limit: Optional[int]) -> Trace:
    """Columnar interleave: bit-identical output to the record path."""
    from repro.access.compiled import CompiledTrace

    functions: List[str] = []
    fid_of: dict = {}
    packed: list = []
    states = [_ColumnMerge(trace.compile()) for trace in traces]

    def truncated() -> Trace:
        del packed[limit:]
        # First-seen interning means the kept prefix uses a contiguous
        # fid range; drop names whose first use was truncated away.
        used = max((row[5] for row in packed), default=-1)
        del functions[used + 1:]
        return Trace._from_compiled(CompiledTrace.from_packed(
            packed, functions))

    while states:
        still_live = []
        for state in states:
            taken = state.emit(chunk, packed, functions, fid_of)
            if limit is not None and len(packed) >= limit:
                return truncated()
            if taken == chunk:
                still_live.append(state)
        states = still_live
    return Trace._from_compiled(CompiledTrace.from_packed(packed, functions))


def software_prefetch(address: int, size: int = 64, pc: int = 0,
                      function: str = "") -> MemoryAccess:
    """Convenience constructor for a software-prefetch trace record."""
    return MemoryAccess(address=address, size=size,
                        kind=AccessKind.SOFTWARE_PREFETCH,
                        pc=pc, function=function)
