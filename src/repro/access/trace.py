"""Traces: ordered sequences of memory accesses plus bulk helpers."""

from __future__ import annotations

import itertools
from typing import Callable, Iterable, Iterator, List, Optional, Sequence

from repro.access.record import AccessKind, MemoryAccess
from repro.errors import TraceError


class Trace:
    """An immutable-by-convention ordered list of :class:`MemoryAccess`.

    Traces support concatenation, per-record mapping, and summary
    statistics. Workload generators produce them, the software-prefetch
    injector rewrites them, and :class:`repro.memsys.MemoryHierarchy`
    consumes them.
    """

    __slots__ = ("_records", "_compiled")

    def __init__(self, records: Iterable[MemoryAccess] = ()) -> None:
        self._records: List[MemoryAccess] = list(records)
        self._compiled = None
        for record in self._records:
            if not isinstance(record, MemoryAccess):
                raise TraceError(
                    f"trace records must be MemoryAccess, got {type(record).__name__}"
                )

    # --- sequence protocol -------------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[MemoryAccess]:
        return iter(self._records)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return Trace(self._records[index])
        return self._records[index]

    def __add__(self, other: "Trace") -> "Trace":
        if not isinstance(other, Trace):
            return NotImplemented
        return Trace(itertools.chain(self._records, other._records))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Trace):
            return NotImplemented
        return self._records == other._records

    def __repr__(self) -> str:
        return f"Trace({len(self._records)} records)"

    # --- compilation ---------------------------------------------------------

    def compile(self):
        """Lower this trace into flat int columns for the fast engine.

        The result (a :class:`~repro.access.compiled.CompiledTrace`) is
        cached on the trace — safe because traces are immutable by
        convention and every transformation returns a new trace — so
        repeated simulator runs of the same trace compile exactly once.
        """
        compiled = self._compiled
        if compiled is None:
            from repro.access.compiled import CompiledTrace
            compiled = self._compiled = CompiledTrace(self._records)
        return compiled

    # --- transformations -----------------------------------------------------

    def map(self, fn: Callable[[MemoryAccess], MemoryAccess]) -> "Trace":
        """A new trace with ``fn`` applied to every record."""
        return Trace(fn(record) for record in self._records)

    def attributed(self, function: str) -> "Trace":
        """A copy with every record attributed to ``function``."""
        return self.map(lambda record: record.with_function(function))

    def shifted(self, offset: int) -> "Trace":
        """A copy with every address shifted by ``offset``."""
        return self.map(lambda record: record.shifted(offset))

    def repeated(self, times: int) -> "Trace":
        """This trace concatenated with itself ``times`` times."""
        if times < 0:
            raise ValueError(f"times must be non-negative, got {times}")
        return Trace(itertools.chain.from_iterable(
            self._records for _ in range(times)))

    def demand_only(self) -> "Trace":
        """A copy with software-prefetch records removed."""
        return Trace(record for record in self._records if record.is_demand)

    # --- statistics -----------------------------------------------------------

    @property
    def demand_count(self) -> int:
        """Number of demand (load/store) records."""
        return sum(1 for record in self._records if record.is_demand)

    @property
    def prefetch_count(self) -> int:
        """Number of software-prefetch records."""
        return len(self._records) - self.demand_count

    @property
    def compute_cycles(self) -> int:
        """Total pure-compute cycles encoded in the trace gaps."""
        return sum(record.gap_cycles for record in self._records)

    @property
    def instruction_count(self) -> int:
        """Approximate instruction count: one per record plus one per gap
        cycle (the simulator's cycle model assumes IPC 1 for compute)."""
        return len(self._records) + self.compute_cycles

    def unique_lines(self) -> int:
        """Number of distinct cache lines touched by demand accesses."""
        return len({record.line for record in self._records if record.is_demand})

    def footprint_bytes(self) -> int:
        """Total bytes spanned by the trace's demand address range."""
        demand = [record for record in self._records if record.is_demand]
        if not demand:
            return 0
        low = min(record.address for record in demand)
        high = max(record.address + record.size for record in demand)
        return high - low

    def functions(self) -> Sequence[str]:
        """Distinct function names appearing in the trace, in first-seen order."""
        seen: List[str] = []
        for record in self._records:
            if record.function and record.function not in seen:
                seen.append(record.function)
        return seen


def interleave(traces: Sequence[Trace], chunk: int = 64,
               limit: Optional[int] = None) -> Trace:
    """Round-robin interleave several traces, ``chunk`` records at a time.

    This approximates the co-located, context-switching execution the paper
    describes: a machine runs hundreds of services whose memory streams mix
    at fine granularity, which is exactly what confuses hardware stream
    prefetchers on short streams.

    Args:
        traces: The traces to interleave. Exhausted traces drop out.
        chunk: Records taken from each trace per turn.
        limit: Optional cap on total output records.
    """
    if chunk <= 0:
        raise ValueError(f"chunk must be positive, got {chunk}")
    iterators = [iter(trace) for trace in traces]
    merged: List[MemoryAccess] = []
    while iterators:
        still_live = []
        for iterator in iterators:
            taken = list(itertools.islice(iterator, chunk))
            merged.extend(taken)
            if limit is not None and len(merged) >= limit:
                return Trace(merged[:limit])
            if len(taken) == chunk:
                still_live.append(iterator)
        iterators = still_live
    return Trace(merged)


def software_prefetch(address: int, size: int = 64, pc: int = 0,
                      function: str = "") -> MemoryAccess:
    """Convenience constructor for a software-prefetch trace record."""
    return MemoryAccess(address=address, size=size,
                        kind=AccessKind.SOFTWARE_PREFETCH,
                        pc=pc, function=function)
