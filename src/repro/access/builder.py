"""Trace builders: columnar-native trace generation.

Workload generators used to build one frozen :class:`MemoryAccess`
dataclass per cache line, hand the list to ``Trace`` (which re-validates
every record), and later pay a full :class:`CompiledTrace` lowering pass
— three walks over every record before the simulator sees a single one.

:class:`TraceBuilder` collapses all of that into the generation loop
itself: ``append`` writes straight into the flat int columns
:class:`~repro.access.compiled.CompiledTrace` defines (kind code,
line-aligned address, extra-lines count, pc, gap, interned function id,
raw address, size), and :meth:`TraceBuilder.build` hands the finished
columns to a column-backed :class:`~repro.access.trace.Trace` whose
``compile()`` is a zero-cost adoption. Records are materialized lazily,
only if someone actually iterates them.

:class:`RecordTraceBuilder` is the oracle twin: the same API, but it
constructs a real ``MemoryAccess`` per ``append`` and builds a validated,
record-backed ``Trace`` — exactly the old pipeline's cost and behaviour.
``REPRO_SLOW_BUILDER=1`` makes :func:`trace_builder` return it, so every
generator can be driven down the record path for equivalence testing
(``tests/test_trace_builder.py``), the same escape-hatch pattern as
``REPRO_SLOW_ENGINE`` for the simulator engines.
"""

from __future__ import annotations

import os
from typing import List, Union

from repro.access.compiled import CompiledTrace
from repro.access.record import AccessKind, KIND_CODES, MemoryAccess
from repro.access.trace import Trace
from repro.errors import TraceError
from repro.units import CACHE_LINE_BYTES

#: Set to "1" (or "true"/"yes"/"on") to force the record-path builder.
SLOW_BUILDER_ENV = "REPRO_SLOW_BUILDER"

_LINE_MASK = ~(CACHE_LINE_BYTES - 1)
_LINE_SHIFT = CACHE_LINE_BYTES.bit_length() - 1
_KIND_LOAD = KIND_CODES[AccessKind.LOAD]
_KIND_STORE = KIND_CODES[AccessKind.STORE]


def slow_builder_requested() -> bool:
    """Whether ``REPRO_SLOW_BUILDER`` forces the record-path builder."""
    return os.environ.get(SLOW_BUILDER_ENV, "").strip().lower() in (
        "1", "true", "yes", "on")


def trace_builder() -> "Union[TraceBuilder, RecordTraceBuilder]":
    """The builder generators should use: columnar unless the oracle
    escape hatch (``REPRO_SLOW_BUILDER=1``) is set."""
    if slow_builder_requested():
        return RecordTraceBuilder()
    return TraceBuilder()


class TraceBuilder:
    """Appends trace records directly into compiled-trace columns.

    Single-use: :meth:`build` hands column ownership to the returned
    trace, after which further appends raise :class:`TraceError`.

    Argument validation matches ``MemoryAccess.__post_init__`` exactly
    (non-negative address and gap, positive size), so a generator bug
    raises the same ``ValueError`` on either builder backend.
    """

    __slots__ = ("_kinds", "_lines", "_extras", "_pcs", "_gaps", "_fids",
                 "_addrs", "_sizes", "_functions", "_fid_of")

    def __init__(self) -> None:
        self._kinds: List[int] = []
        self._lines: List[int] = []
        self._extras: List[int] = []
        self._pcs: List[int] = []
        self._gaps: List[int] = []
        self._fids: List[int] = []
        self._addrs: List[int] = []
        self._sizes: List[int] = []
        self._functions: List[str] = []
        self._fid_of = {}

    def __len__(self) -> int:
        return len(self._kinds)

    def _intern(self, function: str) -> int:
        fid_of = self._fid_of
        if fid_of is None:
            raise TraceError("builder already built; create a new one")
        fid = fid_of.get(function)
        if fid is None:
            fid = fid_of[function] = len(self._functions)
            self._functions.append(function)
        return fid

    # --- appends ------------------------------------------------------------

    def append(self, address: int, size: int = 8,
               kind: AccessKind = AccessKind.LOAD, pc: int = 0,
               function: str = "", gap_cycles: int = 0) -> None:
        """Append one record (same signature as ``MemoryAccess``)."""
        if address < 0:
            raise ValueError(f"address must be non-negative, got {address}")
        if size <= 0:
            raise ValueError(f"size must be positive, got {size}")
        if gap_cycles < 0:
            raise ValueError(
                f"gap_cycles must be non-negative, got {gap_cycles}")
        fid = self._intern(function)
        first = address & _LINE_MASK
        self._kinds.append(KIND_CODES[kind])
        self._lines.append(first)
        self._extras.append(
            (((address + size - 1) & _LINE_MASK) - first) >> _LINE_SHIFT)
        self._pcs.append(pc)
        self._gaps.append(gap_cycles)
        self._fids.append(fid)
        self._addrs.append(address)
        self._sizes.append(size)

    def append_stream(self, base: int, count: int,
                      step: int = CACHE_LINE_BYTES,
                      size: int = CACHE_LINE_BYTES,
                      kind: AccessKind = AccessKind.LOAD, pc: int = 0,
                      function: str = "", gap_cycles: int = 0) -> None:
        """Append ``count`` records at ``base, base+step, ...`` in bulk.

        The hot generator shape (memset/hash/stream sweeps): every
        column extends from a range or a constant-list, so the per-record
        Python work of :meth:`append` disappears.
        """
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        if count == 0:
            return
        if size <= 0:
            raise ValueError(f"size must be positive, got {size}")
        if gap_cycles < 0:
            raise ValueError(
                f"gap_cycles must be non-negative, got {gap_cycles}")
        last_address = base + (count - 1) * step
        if base < 0 or last_address < 0:
            raise ValueError(
                f"address must be non-negative, got {min(base, last_address)}")
        code = KIND_CODES[kind]
        fid = self._intern(function)
        addresses = (range(base, base + count * step, step) if step
                     else [base] * count)
        self._kinds += [code] * count
        if base & ~_LINE_MASK == 0 and step & ~_LINE_MASK == 0:
            # Aligned stream: addresses are their own line addresses and
            # the extra-lines count is the same for every record.
            self._lines += addresses
            self._extras += [(size - 1) >> _LINE_SHIFT] * count
        else:
            self._lines += [a & _LINE_MASK for a in addresses]
            self._extras += [
                (((a + size - 1) & _LINE_MASK) - (a & _LINE_MASK))
                >> _LINE_SHIFT for a in addresses]
        self._pcs += [pc] * count
        self._gaps += [gap_cycles] * count
        self._fids += [fid] * count
        self._addrs += addresses
        self._sizes += [size] * count

    def append_copy(self, src: int, dst: int, count: int,
                    step: int = CACHE_LINE_BYTES,
                    size: int = CACHE_LINE_BYTES,
                    load_pc: int = 0, store_pc: int = 0,
                    function: str = "", gap_cycles: int = 0,
                    first_gap_cycles: int = -1) -> None:
        """Append ``count`` load/store pairs: the copy-loop shape.

        Emits ``LOAD src, STORE dst, LOAD src+step, STORE dst+step, ...``
        — the memcpy/memmove/data-movement pattern that dominates tax
        traces. Loads carry ``gap_cycles`` (the per-line compute),
        stores carry none; ``first_gap_cycles`` (when >= 0) replaces the
        first load's gap, which batched call sequences use to charge the
        caller's inter-call compute to the call's first record.

        Both interleaved streams extend the columns through C-level
        slice assignment, so per-record Python work disappears exactly
        as in :meth:`append_stream`.
        """
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        if count == 0:
            return
        if size <= 0:
            raise ValueError(f"size must be positive, got {size}")
        if gap_cycles < 0:
            raise ValueError(
                f"gap_cycles must be non-negative, got {gap_cycles}")
        span = (count - 1) * step
        lowest = min(src, src + span, dst, dst + span)
        if lowest < 0:
            raise ValueError(f"address must be non-negative, got {lowest}")
        fid = self._intern(function)
        total = 2 * count
        loads = (range(src, src + count * step, step) if step
                 else [src] * count)
        stores = (range(dst, dst + count * step, step) if step
                  else [dst] * count)
        addresses = [0] * total
        addresses[0::2] = loads
        addresses[1::2] = stores
        self._kinds += [_KIND_LOAD, _KIND_STORE] * count
        if (src | dst | step) & ~_LINE_MASK == 0:
            self._lines += addresses
            self._extras += [(size - 1) >> _LINE_SHIFT] * total
        else:
            lines = [a & _LINE_MASK for a in addresses]
            self._lines += lines
            offset = size - 1
            self._extras += [(((a + offset) & _LINE_MASK) - line)
                             >> _LINE_SHIFT
                             for a, line in zip(addresses, lines)]
        self._pcs += [load_pc, store_pc] * count
        gaps = [gap_cycles, 0] * count
        if first_gap_cycles >= 0:
            gaps[0] = first_gap_cycles
        self._gaps += gaps
        self._fids += [fid] * total
        self._addrs += addresses
        self._sizes += [size] * total

    def append_round_robin(self, streams, function: str = "") -> None:
        """Append N equal-length address streams in rotation.

        ``streams`` is a sequence of ``(addresses, size, kind, pc,
        gap_cycles)`` tuples; records are emitted round-robin —
        ``streams[0][0][0], streams[1][0][0], ..., streams[0][0][1], ...``
        — the dependent-chain shape (hash bucket + entry, per-level tree
        node reads). Each stream's fixed fields tile via list repetition
        and its addresses land through C-level slice assignment.
        """
        streams = [(list(addresses), size, kind, pc, gap)
                   for addresses, size, kind, pc, gap in streams]
        if not streams:
            return
        width = len(streams)
        length = len(streams[0][0])
        if any(len(addresses) != length for addresses, *_ in streams):
            raise ValueError("round-robin streams must share one length")
        if length == 0:
            return
        for addresses, size, _kind, _pc, gap in streams:
            smallest = min(addresses)
            if smallest < 0:
                raise ValueError(
                    f"address must be non-negative, got {smallest}")
            if size <= 0:
                raise ValueError(f"size must be positive, got {size}")
            if gap < 0:
                raise ValueError(
                    f"gap_cycles must be non-negative, got {gap}")
        fid = self._intern(function)
        total = width * length
        addrs = [0] * total
        sizes = [0] * total
        for position, (addresses, size, kind, pc, gap) in enumerate(streams):
            addrs[position::width] = addresses
            sizes[position::width] = [size] * length
        self._kinds += [KIND_CODES[kind] for _, _, kind, _, _ in streams] \
            * length
        lines = [a & _LINE_MASK for a in addrs]
        self._lines += lines
        self._extras += [(((a + size - 1) & _LINE_MASK) - line) >> _LINE_SHIFT
                         for a, line, size in zip(addrs, lines, sizes)]
        self._pcs += [pc for _, _, _, pc, _ in streams] * length
        self._gaps += [gap for *_, gap in streams] * length
        self._fids += [fid] * total
        self._addrs += addrs
        self._sizes += sizes

    def append_addresses(self, addresses, size: int = 8,
                         kind: AccessKind = AccessKind.LOAD, pc: int = 0,
                         function: str = "", gap_cycles: int = 0) -> None:
        """Append one record per address with shared other fields (the
        random-access generator shape)."""
        addresses = list(addresses)
        if not addresses:
            return
        if size <= 0:
            raise ValueError(f"size must be positive, got {size}")
        if gap_cycles < 0:
            raise ValueError(
                f"gap_cycles must be non-negative, got {gap_cycles}")
        smallest = min(addresses)
        if smallest < 0:
            raise ValueError(
                f"address must be non-negative, got {smallest}")
        count = len(addresses)
        code = KIND_CODES[kind]
        fid = self._intern(function)
        mask = _LINE_MASK
        shift = _LINE_SHIFT
        lines = [a & mask for a in addresses]
        self._kinds += [code] * count
        self._lines += lines
        if size <= 1:
            self._extras += [0] * count
        else:
            offset = size - 1
            self._extras += [(((a + offset) & mask) - line) >> shift
                             for a, line in zip(addresses, lines)]
        self._pcs += [pc] * count
        self._gaps += [gap_cycles] * count
        self._fids += [fid] * count
        self._addrs += addresses
        self._sizes += [size] * count

    # --- finishing ----------------------------------------------------------

    def build(self) -> Trace:
        """Finish: a column-backed trace adopting the builder's columns."""
        if self._fid_of is None:
            raise TraceError("builder already built; create a new one")
        compiled = CompiledTrace.from_columns(
            self._kinds, self._lines, self._extras, self._pcs, self._gaps,
            self._fids, self._addrs, self._sizes, self._functions)
        self._fid_of = None
        return Trace._from_compiled(compiled)


class RecordTraceBuilder:
    """The oracle backend: same API, old record-path costs and behaviour.

    Each ``append`` constructs a frozen ``MemoryAccess`` (with its
    ``__post_init__`` validation) and ``build()`` returns a record-backed
    ``Trace`` via the public validating constructor, which will pay the
    full ``CompiledTrace`` lowering on first ``compile()`` — exactly what
    generators did before the columnar pipeline.
    """

    __slots__ = ("_records",)

    def __init__(self) -> None:
        self._records: List[MemoryAccess] = []

    def __len__(self) -> int:
        return len(self._records)

    def append(self, address: int, size: int = 8,
               kind: AccessKind = AccessKind.LOAD, pc: int = 0,
               function: str = "", gap_cycles: int = 0) -> None:
        if self._records is None:
            raise TraceError("builder already built; create a new one")
        self._records.append(MemoryAccess(
            address=address, size=size, kind=kind, pc=pc,
            function=function, gap_cycles=gap_cycles))

    def append_stream(self, base: int, count: int,
                      step: int = CACHE_LINE_BYTES,
                      size: int = CACHE_LINE_BYTES,
                      kind: AccessKind = AccessKind.LOAD, pc: int = 0,
                      function: str = "", gap_cycles: int = 0) -> None:
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        for i in range(count):
            self.append(base + i * step, size=size, kind=kind, pc=pc,
                        function=function, gap_cycles=gap_cycles)

    def append_copy(self, src: int, dst: int, count: int,
                    step: int = CACHE_LINE_BYTES,
                    size: int = CACHE_LINE_BYTES,
                    load_pc: int = 0, store_pc: int = 0,
                    function: str = "", gap_cycles: int = 0,
                    first_gap_cycles: int = -1) -> None:
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        for i in range(count):
            gap = gap_cycles
            if i == 0 and first_gap_cycles >= 0:
                gap = first_gap_cycles
            self.append(src + i * step, size=size, pc=load_pc,
                        function=function, gap_cycles=gap)
            self.append(dst + i * step, size=size, kind=AccessKind.STORE,
                        pc=store_pc, function=function)

    def append_round_robin(self, streams, function: str = "") -> None:
        streams = [(list(addresses), size, kind, pc, gap)
                   for addresses, size, kind, pc, gap in streams]
        if not streams:
            return
        length = len(streams[0][0])
        if any(len(addresses) != length for addresses, *_ in streams):
            raise ValueError("round-robin streams must share one length")
        for index in range(length):
            for addresses, size, kind, pc, gap in streams:
                self.append(addresses[index], size=size, kind=kind, pc=pc,
                            function=function, gap_cycles=gap)

    def append_addresses(self, addresses, size: int = 8,
                         kind: AccessKind = AccessKind.LOAD, pc: int = 0,
                         function: str = "", gap_cycles: int = 0) -> None:
        for address in addresses:
            self.append(address, size=size, kind=kind, pc=pc,
                        function=function, gap_cycles=gap_cycles)

    def build(self) -> Trace:
        if self._records is None:
            raise TraceError("builder already built; create a new one")
        trace = Trace(self._records)
        self._records = None
        return trace
