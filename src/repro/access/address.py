"""Address-space management for synthetic workloads.

Workload generators need non-overlapping memory regions so that, for
example, a memcpy source does not alias a hash table. :class:`AddressSpace`
is a trivial bump allocator over a synthetic 48-bit address space that hands
out aligned regions.
"""

from __future__ import annotations

from repro.units import CACHE_LINE_BYTES


class AddressSpace:
    """A bump allocator handing out disjoint, aligned address regions."""

    #: Synthetic address spaces start above zero so that a zero address in a
    #: trace is always a bug, never a valid allocation.
    BASE = 0x1000_0000

    #: Guard gap inserted between consecutive regions, in bytes. The gap is
    #: large enough that a stream prefetcher running past the end of one
    #: region cannot produce useful hits in the next one.
    GUARD = 64 * 1024

    def __init__(self, base: int = BASE, alignment: int = 4096) -> None:
        if base < 0:
            raise ValueError(f"base must be non-negative, got {base}")
        if alignment <= 0 or alignment % CACHE_LINE_BYTES != 0:
            raise ValueError(
                f"alignment must be a positive multiple of {CACHE_LINE_BYTES}, "
                f"got {alignment}")
        self._alignment = alignment
        self._next = self._align(base)

    def _align(self, address: int) -> int:
        mask = self._alignment - 1
        return (address + mask) & ~mask

    def allocate(self, size: int) -> int:
        """Reserve ``size`` bytes; returns the region's base address."""
        if size <= 0:
            raise ValueError(f"size must be positive, got {size}")
        base = self._next
        self._next = self._align(base + size + self.GUARD)
        return base

    @property
    def high_water_mark(self) -> int:
        """First address beyond everything allocated so far."""
        return self._next
