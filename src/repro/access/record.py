"""The :class:`MemoryAccess` record — one event in a memory trace."""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace

from repro.units import CACHE_LINE_BYTES, line_address


class AccessKind(enum.Enum):
    """What kind of memory operation a trace record represents."""

    #: A demand load: the core stalls until the data arrives.
    LOAD = "load"
    #: A demand store: modelled as non-blocking but it still allocates.
    STORE = "store"
    #: A software prefetch instruction (``prefetcht0``-style): never stalls,
    #: occupies one issue slot, and brings the line toward the core.
    SOFTWARE_PREFETCH = "software_prefetch"
    #: A stream hint (the Section 8.3 hardware/software-interface
    #: prototype): one instruction telling the hardware prefetcher the
    #: exact extent of an upcoming stream (``address`` = start,
    #: ``size`` = length). The hardware paces the fetching.
    STREAM_HINT = "stream_hint"


#: Dense int code per kind, used by the compiled-trace fast engine so the
#: simulator's hot loop compares small ints instead of enum identities.
#: Demand kinds come first: ``code <= KIND_STORE`` tests "is demand".
KIND_CODES = {
    AccessKind.LOAD: 0,
    AccessKind.STORE: 1,
    AccessKind.SOFTWARE_PREFETCH: 2,
    AccessKind.STREAM_HINT: 3,
}

KIND_LOAD = KIND_CODES[AccessKind.LOAD]
KIND_STORE = KIND_CODES[AccessKind.STORE]
KIND_SOFTWARE_PREFETCH = KIND_CODES[AccessKind.SOFTWARE_PREFETCH]
KIND_STREAM_HINT = KIND_CODES[AccessKind.STREAM_HINT]

#: Inverse of :data:`KIND_CODES`: kind code -> :class:`AccessKind`. Used
#: when a column-backed trace materializes records back out of its
#: compiled columns.
KIND_FROM_CODE = sorted(KIND_CODES, key=KIND_CODES.get)


@dataclass(frozen=True)
class MemoryAccess:
    """A single memory operation within a trace.

    Attributes:
        address: Byte address touched by the operation.
        size: Number of bytes touched (loads/stores rarely exceed a line;
            generators emit one record per line for larger objects).
        kind: Load, store, or software prefetch.
        pc: Synthetic program counter identifying the instruction site.
            Hardware stride prefetchers train per-PC, and the profiler
            attributes samples by PC, so generators should give each logical
            instruction a stable ``pc``.
        function: Name of the function this access is attributed to; used by
            the fleetwide profiler and the ablation analysis.
        gap_cycles: Pure-compute cycles executed since the previous trace
            record. This is how traces encode instruction mix: a trace with
            large gaps is compute-bound, one with zero gaps is a pure
            memory stream.
    """

    address: int
    size: int = 8
    kind: AccessKind = AccessKind.LOAD
    pc: int = 0
    function: str = ""
    gap_cycles: int = 0

    def __post_init__(self) -> None:
        if self.address < 0:
            raise ValueError(f"address must be non-negative, got {self.address}")
        if self.size <= 0:
            raise ValueError(f"size must be positive, got {self.size}")
        if self.gap_cycles < 0:
            raise ValueError(f"gap_cycles must be non-negative, got {self.gap_cycles}")

    @property
    def line(self) -> int:
        """Cache-line-aligned address of the access."""
        return line_address(self.address)

    @property
    def is_demand(self) -> bool:
        """True for loads and stores (anything that is not a prefetch
        or a hint)."""
        return self.kind in (AccessKind.LOAD, AccessKind.STORE)

    @property
    def is_load(self) -> bool:
        """True only for demand loads."""
        return self.kind is AccessKind.LOAD

    def lines_touched(self) -> range:
        """Cache-line addresses covered by ``[address, address + size)``."""
        first = line_address(self.address)
        last = line_address(self.address + self.size - 1)
        return range(first, last + CACHE_LINE_BYTES, CACHE_LINE_BYTES)

    def with_function(self, function: str) -> "MemoryAccess":
        """A copy of this record attributed to ``function``."""
        return replace(self, function=function)

    def shifted(self, offset: int) -> "MemoryAccess":
        """A copy of this record with its address shifted by ``offset``."""
        return replace(self, address=self.address + offset)
