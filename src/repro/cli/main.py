"""Argument parsing and dispatch for the ``repro`` CLI."""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.cli import commands


def _add_execution_flags(subparser: argparse.ArgumentParser) -> None:
    """Shared sharded-execution flags for the fleet-study subcommands."""
    subparser.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="process-pool size for sharded studies (default: "
             "$REPRO_WORKERS or 1; 0 = all CPUs); results are identical "
             "at any worker count")
    subparser.add_argument(
        "--cache-dir", type=str, default=None, metavar="DIR",
        help="reuse study results from this on-disk cache (default: "
             "$REPRO_CACHE_DIR; unset disables caching)")


def _add_checkpoint_flags(subparser: argparse.ArgumentParser) -> None:
    """Shared work-queue flags for the fleet-study subcommands."""
    subparser.add_argument(
        "--checkpoint-dir", type=str, default=None, metavar="DIR",
        help="journal each finished shard to this directory and restore "
             "finished shards on re-run (default: $REPRO_CHECKPOINT; "
             "unset disables checkpointing); results are bit-identical "
             "with or without resume")
    subparser.add_argument(
        "--resume", action="store_true",
        help="assert that a checkpoint directory is configured (fail "
             "fast if not) and report how many shards were restored")


def _add_obs_flag(subparser: argparse.ArgumentParser) -> None:
    """Shared observability flag for the fleet-study subcommands."""
    subparser.add_argument(
        "--obs-dir", type=str, default=None, metavar="DIR",
        help="write a run manifest and merged event log under this "
             "directory (default: $REPRO_OBS_DIR; unset disables "
             "observability); inspect with 'repro report <run-dir>'")


def _add_engine_flag(subparser: argparse.ArgumentParser) -> None:
    """The shared engine-selection flag for trace-driven subcommands."""
    from repro.fleet.parallel import ENGINE_CHOICES

    subparser.add_argument(
        "--engine", choices=ENGINE_CHOICES, default=None,
        help="memsys engine: 'auto' (default) follows --batch-size / "
             "$REPRO_BATCH, 'batched' forces the lockstep engine on, "
             "'scalar' forces it off; contradicting an explicit "
             "--batch-size is an error, and results are identical "
             "either way")


def _add_fault_plan_flag(subparser: argparse.ArgumentParser) -> None:
    """The shared fault-injection flag for the fleet-study subcommands."""
    subparser.add_argument(
        "--fault-plan", type=str, default=None, metavar="SPEC",
        help="inject faults per this plan, e.g. "
             "'seed=3;telemetry-drop:rate=0.1;machine-crash:rate=0.02' "
             "(default: $REPRO_FAULT_PLAN; unset runs fault-free)")


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Limoncello (ASPLOS 2024) reproduction toolkit")
    subparsers = parser.add_subparsers(dest="command", required=True)

    daemon = subparsers.add_parser(
        "daemon", help="run the control loop on a scripted profile")
    daemon.add_argument("--lower", type=float, default=60.0,
                        help="lower threshold, %% of saturation")
    daemon.add_argument("--upper", type=float, default=80.0,
                        help="upper threshold, %% of saturation")
    daemon.add_argument("--sustain", type=float, default=3.0,
                        help="sustain duration, seconds")
    daemon.add_argument("--duration", type=float, default=40.0,
                        help="run length, seconds")
    daemon.add_argument(
        "--profile", type=str,
        default="0:85,8:75,12:55,22:70,28:90",
        help="bandwidth profile as t_s:GBps comma pairs "
             "(saturation is 100 GB/s)")
    daemon.set_defaults(run=commands.run_daemon)

    curve = subparsers.add_parser(
        "latency-curve", help="loaded-latency measurement (Figure 1)")
    curve.add_argument("--points", type=int, default=11,
                       help="utilization points from 0 to 1")
    curve.add_argument("--hops", type=int, default=300,
                       help="pointer-chase probe hops per point")
    curve.add_argument("--chart", action="store_true",
                       help="also render an ASCII chart of the curves")
    curve.set_defaults(run=commands.run_latency_curve)

    ablation = subparsers.add_parser(
        "ablation", help="paired fleet ablation study")
    ablation.add_argument("--mode", choices=("off", "hard", "hard+soft",
                                             "soft-only"),
                          default="off")
    ablation.add_argument("--machines", type=int, default=16)
    ablation.add_argument("--epochs", type=int, default=60)
    ablation.add_argument("--warmup", type=int, default=20)
    ablation.add_argument("--seed", type=int, default=9)
    ablation.add_argument("--shard-size", type=int, default=None,
                          help="max machines per shard (default 32)")
    ablation.add_argument(
        "--compare-serial", action="store_true",
        help="also run serially and fail unless the sharded result is "
             "bit-identical (determinism check; CI runs it with "
             "REPRO_BATCH set to pin the batched engine too)")
    ablation.add_argument(
        "--adaptive", action="store_true",
        help="compare several arms with CI-based early stopping instead "
             "of running one arm exhaustively (deterministic decisions; "
             "pick a --shard-size smaller than --machines so arms have "
             "several shards to stop between)")
    ablation.add_argument(
        "--arms", type=str, default="off,control", metavar="MODES",
        help="with --adaptive: comma-separated arms to compare "
             "(default: off,control)")
    ablation.add_argument(
        "--margin", type=float, default=None, metavar="X",
        help="with --adaptive: CI separation margin on the per-shard "
             "throughput change (default 0.02)")
    ablation.add_argument(
        "--quantum", type=int, default=None, metavar="N",
        help="with --adaptive: shards per arm per round (default 1)")
    ablation.add_argument(
        "--min-rounds", type=int, default=None, metavar="N",
        help="with --adaptive: rounds before any arm may stop "
             "(default 2)")
    _add_engine_flag(ablation)
    _add_execution_flags(ablation)
    _add_checkpoint_flags(ablation)
    _add_fault_plan_flag(ablation)
    _add_obs_flag(ablation)
    ablation.set_defaults(run=commands.run_ablation)

    sweep = subparsers.add_parser(
        "sweep", help="trace-driven micro-fleet sweep through the "
                      "batched lockstep engine")
    sweep.add_argument("--mode", choices=("off", "control"), default="off",
                       help="'off' ablates every hardware prefetcher; "
                            "'control' keeps the default bank (both "
                            "lockstep-batch)")
    sweep.add_argument("--machines", type=int, default=64)
    sweep.add_argument("--seed", type=int, default=17)
    sweep.add_argument("--scale", type=float, default=1.0,
                       help="workload scale factor for the shared trace")
    sweep.add_argument("--crash-rate", type=float, default=0.0,
                       help="chaos: fraction of arms marked down for the "
                            "whole replay (deterministic per-arm draw)")
    sweep.add_argument("--shard-size", type=int, default=None,
                       help="max machines per shard (default 32)")
    sweep.add_argument(
        "--trace", choices=("fleetbench", "scenario"),
        default="fleetbench",
        help="shared trace every arm replays: the fleetbench-style mix "
             "(default) or the scenario subsystem's two-tenant "
             "noisy-neighbor interleave")
    sweep.add_argument(
        "--batch-size", type=int, default=None, metavar="N",
        help="arms per lockstep batch (default: $REPRO_BATCH or 32; "
             "0 runs every arm on the scalar engine); results are "
             "identical at any value")
    sweep.add_argument(
        "--compare-serial", action="store_true",
        help="also run serially with batching off and fail unless the "
             "result is bit-identical (engine + sharding determinism "
             "check)")
    _add_engine_flag(sweep)
    _add_execution_flags(sweep)
    _add_checkpoint_flags(sweep)
    _add_fault_plan_flag(sweep)
    sweep.set_defaults(run=commands.run_sweep)

    rollout = subparsers.add_parser(
        "rollout", help="before/after rollout study (Figures 16-20)")
    rollout.add_argument("--machines", type=int, default=20)
    rollout.add_argument("--epochs", type=int, default=70)
    rollout.add_argument("--warmup", type=int, default=25)
    rollout.add_argument("--seed", type=int, default=5)
    _add_execution_flags(rollout)
    _add_checkpoint_flags(rollout)
    _add_fault_plan_flag(rollout)
    _add_obs_flag(rollout)
    rollout.set_defaults(run=commands.run_rollout)

    queue = subparsers.add_parser(
        "queue", help="status of a checkpointed work-queue journal")
    queue.add_argument(
        "--checkpoint-dir", type=str, default=None, metavar="DIR",
        help="journal directory to inspect (default: $REPRO_CHECKPOINT)")
    queue.set_defaults(run=commands.run_queue)

    cache = subparsers.add_parser(
        "cache", help="inspect or prune an on-disk result cache / "
                      "checkpoint journal")
    cache.add_argument(
        "--cache-dir", type=str, default=None, metavar="DIR",
        help="cache directory to inspect (default: $REPRO_CACHE_DIR)")
    cache.add_argument(
        "--prune", nargs="?", type=int, const=-1, default=None,
        metavar="N",
        help="evict the oldest entries beyond N (bare --prune uses the "
             "library's default cap)")
    cache.set_defaults(run=commands.run_cache)

    chaos = subparsers.add_parser(
        "chaos", help="fault-injection study: the control loop under "
                      "telemetry, MSR, and machine faults")
    chaos.add_argument("--mode", choices=("hard", "hard+soft"),
                       default="hard",
                       help="experiment-arm deployment (must run daemons)")
    chaos.add_argument("--machines", type=int, default=12)
    chaos.add_argument("--epochs", type=int, default=60)
    chaos.add_argument("--warmup", type=int, default=15)
    chaos.add_argument("--seed", type=int, default=11)
    chaos.add_argument("--shard-size", type=int, default=None,
                       help="max machines per shard (default 32)")
    chaos.add_argument(
        "--compare-serial", action="store_true",
        help="also run serially and fail unless the sharded result is "
             "bit-identical (determinism check)")
    _add_execution_flags(chaos)
    _add_fault_plan_flag(chaos)
    _add_obs_flag(chaos)
    chaos.set_defaults(run=commands.run_chaos)

    thresholds = subparsers.add_parser(
        "thresholds", help="threshold configuration sweep (Figure 10)")
    thresholds.add_argument("--machines", type=int, default=16)
    thresholds.add_argument("--epochs", type=int, default=60)
    thresholds.add_argument("--warmup", type=int, default=20)
    thresholds.add_argument("--seed", type=int, default=9)
    thresholds.add_argument("--hard-only", action="store_true",
                            help="sweep without Soft Limoncello")
    _add_execution_flags(thresholds)
    thresholds.set_defaults(run=commands.run_thresholds)

    microbench = subparsers.add_parser(
        "microbench", help="memcpy prefetch sweep (Figure 15)")
    microbench.add_argument("--distances", type=str, default="128,256,512")
    microbench.add_argument("--degrees", type=str, default="128,256,512")
    microbench.add_argument("--background", type=float, default=0.6,
                            help="background load, fraction of saturation")
    microbench.set_defaults(run=commands.run_microbench)

    calibrate = subparsers.add_parser(
        "calibrate", help="re-derive the fleet calibration table")
    calibrate.add_argument("--seed", type=int, default=42)
    calibrate.set_defaults(run=commands.run_calibrate)

    policy = subparsers.add_parser(
        "policy", help="pluggable controller policies: offline training "
                       "and head-to-head comparison")
    policy_sub = policy.add_subparsers(dest="policy_command", required=True)

    train = policy_sub.add_parser(
        "train", help="fit the per-prefetcher decision-tree policy from "
                      "cached ablation sweeps (deterministic: same "
                      "inputs, same digest)")
    train.add_argument("--machines", type=int, default=24,
                       help="fleet size of the labelling ablation study")
    train.add_argument("--epochs", type=int, default=40)
    train.add_argument("--warmup", type=int, default=10)
    train.add_argument("--seed", type=int, default=11)
    train.add_argument("--probe-machines", type=int, default=8,
                       help="arms per per-prefetcher accuracy/coverage "
                            "probe sweep")
    train.add_argument("--probe-scale", type=float, default=0.5,
                       help="trace scale for the probe sweeps")
    train.add_argument("--kappa", type=float, default=0.05,
                       help="in-band labelling slack: keep a prefetcher "
                            "enabled when throughput cost <= kappa * "
                            "accuracy * coverage")
    train.add_argument("--max-depth", type=int, default=4)
    train.add_argument("--min-samples-leaf", type=int, default=8)
    train.add_argument("--out", type=str, default="", metavar="FILE",
                       help="write the trained policy as canonical JSON")
    _add_execution_flags(train)
    _add_checkpoint_flags(train)
    train.set_defaults(run=commands.run_policy_train)

    compare = policy_sub.add_parser(
        "compare", help="run N policies over the same fleet, trace, and "
                        "fault plan; report duty-cycle error, throughput, "
                        "and robustness")
    compare.add_argument(
        "--policies", type=str,
        default="hysteresis,single-threshold,decision-tree,bandit",
        metavar="NAMES",
        help="comma-separated policies to compare (hysteresis, "
             "single-threshold, decision-tree, bandit)")
    compare.add_argument(
        "--policy-file", type=str, default="", metavar="FILE",
        help="load the decision-tree entry from this trained-policy "
             "JSON instead of training inline")
    compare.add_argument("--machines", type=int, default=12)
    compare.add_argument("--epochs", type=int, default=40)
    compare.add_argument("--warmup", type=int, default=10)
    compare.add_argument("--seed", type=int, default=11)
    compare.add_argument("--shard-size", type=int, default=None,
                         help="max machines per shard (default 32)")
    compare.add_argument("--threshold", type=float, default=0.8,
                         help="the single-threshold policy's cutoff")
    compare.add_argument("--bandit-seed", type=int, default=3,
                         help="the bandit policy's exploration seed")
    compare.add_argument("--epsilon", type=float, default=0.1,
                         help="the bandit policy's exploration rate")
    compare.add_argument("--train-machines", type=int, default=24,
                         help="fleet size for inline decision-tree "
                              "training (no --policy-file)")
    compare.add_argument("--probe-machines", type=int, default=8)
    compare.add_argument("--probe-scale", type=float, default=0.5)
    compare.add_argument("--out", type=str, default="", metavar="FILE",
                         help="also write the report as canonical JSON")
    compare.add_argument(
        "--compare-serial", action="store_true",
        help="also run serially and fail unless the report digest is "
             "bit-identical (determinism check)")
    _add_execution_flags(compare)
    _add_checkpoint_flags(compare)
    _add_fault_plan_flag(compare)
    _add_obs_flag(compare)
    compare.set_defaults(run=commands.run_policy_compare)

    scenario = subparsers.add_parser(
        "scenario", help="microservice call-graph and noisy-neighbor "
                         "scenario studies with P50/P90/P99 SLO metrics")
    scenario_sub = scenario.add_subparsers(dest="scenario_command",
                                           required=True)

    callgraph = scenario_sub.add_parser(
        "callgraph", help="SLOFetch-style RPC call graph: per-service "
                          "and end-to-end request-latency percentiles")
    callgraph.add_argument(
        "--services", type=str, default=None, metavar="SPEC",
        help="semicolon-separated services, each "
             "name:kind:replicas:lines[>child*calls+...] (root first; "
             "kinds: stream, random, chase, mixed); default: a "
             "five-service frontend/auth/cache/storage topology")
    callgraph.add_argument("--requests", type=int, default=32,
                           help="arrival-stream length (every service "
                                "handles each request)")
    callgraph.add_argument("--seed", type=int, default=21)
    callgraph.add_argument("--mode", choices=("off", "control"),
                           default="off",
                           help="'off' ablates every hardware prefetcher; "
                                "'control' keeps the default bank "
                                "(replicas lockstep-batch in both)")
    callgraph.add_argument("--rpc-overhead-ns", type=float, default=500.0,
                           help="fixed per-call network/serialization "
                                "cost on every fan-out edge")
    callgraph.add_argument("--crash-rate", type=float, default=0.0,
                           help="chaos: fraction of replicas marked down "
                                "for the whole replay")
    callgraph.add_argument(
        "--batch-size", type=int, default=None, metavar="N",
        help="arms per lockstep batch (default: $REPRO_BATCH or 32; "
             "0 forces the scalar engine); results are identical at "
             "any value")
    callgraph.add_argument(
        "--compare-serial", action="store_true",
        help="also run serially with batching off and fail unless the "
             "result is bit-identical (engine + sharding determinism "
             "check)")
    _add_engine_flag(callgraph)
    _add_execution_flags(callgraph)
    _add_checkpoint_flags(callgraph)
    _add_fault_plan_flag(callgraph)
    _add_obs_flag(callgraph)
    callgraph.set_defaults(run=commands.run_scenario_callgraph)

    noisy = scenario_sub.add_parser(
        "noisy", help="multi-tenant noisy-neighbor interference with "
                      "per-tenant attribution and QoS throttles")
    noisy.add_argument(
        "--tenants", type=str, default=None, metavar="SPEC",
        help="comma-separated tenants, each name:kind:lines[:throttle] "
             "(kinds: stream, random, chase, mixed; throttle in (0,1] "
             "scales offered volume); default: "
             "latency:stream:24,batch:random:96")
    noisy.add_argument("--machines", type=int, default=8)
    noisy.add_argument("--epochs", type=int, default=24,
                       help="control epochs per machine (one telemetry "
                            "sample and actuation each)")
    noisy.add_argument("--seed", type=int, default=23)
    noisy.add_argument("--mode",
                       choices=("enabled", "disabled", "hard", "policy"),
                       default="hard",
                       help="fixed prefetcher state, the stock "
                            "hysteresis controller, or a pluggable "
                            "policy (--policy / --policy-file)")
    noisy.add_argument(
        "--policy", type=str, default="", metavar="NAME",
        choices=("", "hysteresis", "single-threshold", "bandit"),
        help="with --mode policy: build this policy with the scenario's "
             "thresholds (hysteresis, single-threshold, bandit)")
    noisy.add_argument(
        "--policy-file", type=str, default="", metavar="FILE",
        help="with --mode policy: load a trained policy JSON (e.g. from "
             "'repro policy train --out')")
    noisy.add_argument("--upper", type=float, default=0.8,
                       help="controller upper threshold, fraction of "
                            "DRAM saturation")
    noisy.add_argument("--lower", type=float, default=0.6,
                       help="controller lower threshold")
    noisy.add_argument("--sustain-ns", type=float, default=30_000.0,
                       help="controller sustain duration, ns (trace "
                            "scale — the paper's seconds-scale sustain "
                            "never expires inside a microsecond replay)")
    noisy.add_argument("--crash-rate", type=float, default=0.0,
                       help="chaos: fraction of machines marked down")
    noisy.add_argument("--shard-size", type=int, default=None,
                       help="max machines per shard (default 32); never "
                            "affects results")
    noisy.add_argument(
        "--batch-size", type=int, default=None, metavar="N",
        help="machines per lockstep batch within each epoch (default: "
             "$REPRO_BATCH or 32; 0 forces the scalar engine); results "
             "are identical at any value")
    noisy.add_argument(
        "--baseline", action="store_true",
        help="also run the paired always-enabled twin over identical "
             "traffic and report per-tenant relative changes")
    noisy.add_argument(
        "--compare-serial", action="store_true",
        help="also run serially with batching off and fail unless the "
             "result is bit-identical (engine + sharding determinism "
             "check)")
    _add_engine_flag(noisy)
    _add_execution_flags(noisy)
    _add_checkpoint_flags(noisy)
    _add_fault_plan_flag(noisy)
    _add_obs_flag(noisy)
    noisy.set_defaults(run=commands.run_scenario_noisy)

    report = subparsers.add_parser(
        "report", help="run the headline experiments, emit a markdown "
                       "report; or, given a run directory, render its "
                       "observability timeline")
    report.add_argument(
        "run_dir", nargs="?", default=None, metavar="RUN_DIR",
        help="an observability run directory (from --obs-dir); renders "
             "its manifest and event log instead of re-running studies")
    report.add_argument("--json", action="store_true",
                        help="with RUN_DIR: emit the report as JSON")
    report.add_argument("--out", type=str, default="",
                        help="write to this file (default: stdout)")
    report.add_argument("--quick", action="store_true",
                        help="smaller fleets / fewer epochs")
    _add_execution_flags(report)
    report.set_defaults(run=commands.run_report)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.run(args)


if __name__ == "__main__":
    sys.exit(main())
