"""Implementations of the CLI subcommands (print-oriented wrappers)."""

from __future__ import annotations

from repro.errors import ReproError
from repro.telemetry import format_relative_change as _pct
from repro.units import KB, SECOND


def _table(header, rows) -> None:
    widths = [max(len(str(cell)) for cell in column)
              for column in zip(header, *rows)]
    def fmt(row):
        """Render one table row with column alignment."""
        return "  ".join(str(cell).rjust(width)
                         for cell, width in zip(row, widths))
    print(fmt(header))
    print(fmt(["-" * width for width in widths]))
    for row in rows:
        print(fmt(row))


def _parse_profile(text: str):
    points = []
    for chunk in text.split(","):
        time_s, _, bandwidth = chunk.partition(":")
        points.append((float(time_s) * SECOND, float(bandwidth)))
    if not points:
        raise ReproError("empty bandwidth profile")
    return points


def _resolve_checkpoint(args) -> tuple:
    """``(checkpoint_dir_arg, resolved_dir)`` for a study subcommand.

    Enforces the ``--resume`` contract: resuming demands a configured
    checkpoint directory, because silently running from scratch is
    exactly the failure mode the flag exists to catch.
    """
    from repro.fleet.queue import CHECKPOINT_ENV_VAR, resolve_checkpoint_dir

    checkpoint_dir = getattr(args, "checkpoint_dir", None)
    resolved = resolve_checkpoint_dir(checkpoint_dir)
    if getattr(args, "resume", False) and resolved is None:
        raise ReproError(
            "--resume needs a checkpoint directory: pass "
            f"--checkpoint-dir or set ${CHECKPOINT_ENV_VAR}")
    return checkpoint_dir, resolved


def _print_queue_stats(stats, resolved_dir) -> None:
    """One-line work-queue disposition after a checkpointed study."""
    if stats is None or resolved_dir is None:
        return
    print(f"\nqueue: {stats.restored}/{stats.total} shards restored, "
          f"{stats.computed} computed (journal: {resolved_dir})")


def _print_engine_occupancy(result) -> None:
    """One-line batched-engine disposition after a trace-driven study.

    Silent on results restored from a cache or checkpoint payload (no
    engine ran, so there is nothing to report).
    """
    occupancy = getattr(result, "occupancy", None)
    if occupancy is None:
        return
    stats = occupancy.to_dict()
    total = stats["batched_arms"] + stats["scalar_arms"]
    if total == 0:
        return
    line = (f"engine: {stats['batched_arms']}/{total} arm-runs batched "
            f"({stats['groups']} lockstep groups)")
    if stats["scalar_arms"]:
        reasons = ", ".join(f"{reason}={count}" for reason, count
                            in stats["fallback_reasons"].items())
        line += f"; {stats['scalar_arms']} scalar: {reasons}"
    print(line)


def _resolve_engine_batch(args):
    """The effective lockstep batch size from ``--engine``/``--batch-size``."""
    from repro.fleet.parallel import resolve_engine

    return resolve_engine(getattr(args, "engine", None),
                          getattr(args, "batch_size", None))


def _resolve_fault_plan(args):
    """The study's fault plan: ``--fault-plan``, else $REPRO_FAULT_PLAN,
    else None (fault-free)."""
    import os

    from repro.faults import FAULT_PLAN_ENV_VAR, FaultPlan

    spec = getattr(args, "fault_plan", None)
    if spec is None:
        spec = os.environ.get(FAULT_PLAN_ENV_VAR) or None
    if spec is None:
        return None
    return FaultPlan.parse(spec)


def _print_chaos_summary(chaos) -> None:
    """The chaos-metrics block shared by every faulted study printout."""
    mttr = chaos.mean_time_to_recovery_ns()
    detect = chaos.mean_detection_latency_ns()
    _table(("chaos metric", "value"), [
        ("controller availability", f"{chaos.availability():.2%}"),
        ("duty cycle disabled", f"{chaos.duty_cycle_disabled():.2%}"),
        ("incidents", str(chaos.incidents)),
        ("  recovered", str(chaos.recovered_incidents)),
        ("mean detection latency",
         "n/a" if detect is None else f"{detect / SECOND:.1f} s"),
        ("mean time to recovery",
         "n/a" if mttr is None else f"{mttr / SECOND:.1f} s"),
        ("fail-safe engagements", str(chaos.failsafe_engagements)),
        ("machine crashes", str(chaos.machine_crashes)),
        ("machine restarts", str(chaos.machine_restarts)),
    ])
    if chaos.incident_kinds:
        print("\nincidents by kind:")
        _table(("kind", "count"),
               sorted(chaos.incident_kinds.items()))


def run_daemon(args) -> int:
    """``repro daemon``: control loop on a scripted profile."""
    from repro.core import (LimoncelloConfig, LimoncelloDaemon,
                            MSRPrefetcherActuator)
    from repro.msr import INTEL_LIKE_MAP, MSRFile
    from repro.telemetry import PerfBandwidthSampler, ScriptedBandwidthSource

    source = ScriptedBandwidthSource(_parse_profile(args.profile),
                                     saturation_bandwidth=100.0)
    msrs = MSRFile()
    config = LimoncelloConfig.from_percent(
        args.lower, args.upper,
        sustain_duration_ns=args.sustain * SECOND)
    daemon = LimoncelloDaemon(
        PerfBandwidthSampler(source),
        MSRPrefetcherActuator(msrs, INTEL_LIKE_MAP), config)

    rows = []
    for tick in range(int(args.duration)):
        state = daemon.step(tick * SECOND)
        rows.append((tick,
                     f"{source.memory_bandwidth(tick * SECOND):.0f}",
                     state.value if state else "(sample dropped)",
                     "on" if daemon.actuator.is_enabled() else "OFF"))
    _table(("t(s)", "GB/s", "state", "prefetchers"), rows)
    report = daemon.report
    print(f"\ntransitions={report.transitions}  "
          f"time disabled={report.duty_cycle_disabled():.0%}")
    return 0


def run_latency_curve(args) -> int:
    """``repro latency-curve``: the Figure 1 measurement."""
    from repro.analysis import measure_latency_curve

    points = [i / (args.points - 1) for i in range(args.points)]
    on = measure_latency_curve(True, points, probe_hops=args.hops)
    off = measure_latency_curve(False, points, probe_hops=args.hops)
    rows = [(f"{p_on.utilization:.2f}", f"{p_on.latency_ns:.1f}",
             f"{p_off.latency_ns:.1f}")
            for p_on, p_off in zip(on.points, off.points)]
    _table(("util", "HW on (ns)", "HW off (ns)"), rows)
    if getattr(args, "chart", False):
        from repro.telemetry.ascii_chart import line_chart
        print()
        print(line_chart(
            {"HW on": [(p.utilization, p.latency_ns) for p in on.points],
             "HW off": [(p.utilization, p.latency_ns) for p in off.points]},
            x_label="bandwidth utilization", y_label="load-to-use ns"))
    print(f"\nreduction at 90% utilization: "
          f"{off.reduction_versus(on, 0.9):+.1%}")
    return 0


def _run_adaptive_ablation(args, shard_size, fault_plan,
                           resolved_ckpt) -> int:
    """``repro ablation --adaptive``: multi-arm CI early stopping."""
    from repro.fleet import AdaptiveAblation

    modes = tuple(m.strip() for m in args.arms.split(",") if m.strip())
    kwargs = dict(shard_size=shard_size)
    if args.margin is not None:
        kwargs["margin"] = args.margin
    if args.quantum is not None:
        kwargs["quantum"] = args.quantum
    if args.min_rounds is not None:
        kwargs["min_rounds"] = args.min_rounds
    study = AdaptiveAblation(
        modes=modes, machines=args.machines, epochs=args.epochs,
        warmup_epochs=args.warmup, seed=args.seed, fault_plan=fault_plan,
        **kwargs)
    result = study.run(workers=args.workers,
                       checkpoint_dir=getattr(args, "checkpoint_dir", None),
                       obs_dir=getattr(args, "obs_dir", None))
    print("adaptive ablation over arms: " + ", ".join(result.modes))
    rows = []
    for mode in result.modes:
        verdict = result.verdicts()[mode]
        halfwidth = verdict["halfwidth"]
        rows.append((
            mode, f"{verdict['mean']:+.3%}",
            "inf" if halfwidth is None else f"±{halfwidth:.3%}",
            f"{verdict['shards_run']}/{verdict['shards_total']}",
            verdict["machine_runs"],
            "-" if verdict["stopped_round"] is None
            else verdict["stopped_round"]))
    _table(("arm", "Δthroughput", "CI95", "shards", "machine-runs",
            "stopped@round"), rows)
    print(f"\nranking: {' > '.join(result.ranking())}")
    print(f"machine-runs: {result.machine_runs()} adaptive vs "
          f"{result.exhaustive_machine_runs()} exhaustive "
          f"({result.savings():.1f}x savings)")
    if resolved_ckpt is not None:
        print(f"journal: {resolved_ckpt}")
    return 0


def run_ablation(args) -> int:
    """``repro ablation``: a paired fleet ablation study."""
    from repro.fleet import DEFAULT_SHARD_SIZE, AblationStudy

    engine = getattr(args, "engine", None)
    if engine and engine != "auto":
        # The ablation study itself is analytic; the engine choice maps
        # onto $REPRO_BATCH so every trace-driven companion this process
        # runs (calibration, micro-sweep bridges) honours it.
        import os

        from repro.fleet.parallel import BATCH_ENV_VAR, resolve_engine

        os.environ[BATCH_ENV_VAR] = str(resolve_engine(engine, None))
    shard_size = getattr(args, "shard_size", None)
    if shard_size is None:
        shard_size = DEFAULT_SHARD_SIZE
    fault_plan = _resolve_fault_plan(args)
    checkpoint_dir, resolved_ckpt = _resolve_checkpoint(args)
    if getattr(args, "adaptive", False):
        return _run_adaptive_ablation(args, shard_size, fault_plan,
                                      resolved_ckpt)
    study = AblationStudy(mode=args.mode, machines=args.machines,
                          epochs=args.epochs, warmup_epochs=args.warmup,
                          seed=args.seed, shard_size=shard_size,
                          fault_plan=fault_plan)
    result = study.run(workers=args.workers,
                       cache_dir=args.cache_dir,
                       obs_dir=getattr(args, "obs_dir", None),
                       checkpoint_dir=checkpoint_dir)
    bandwidth = result.bandwidth_reduction()
    latency = result.latency_reduction()
    print(f"experiment arm: {args.mode}")
    _table(("metric", "change"), [
        ("socket bandwidth (mean)", _pct(bandwidth['mean'])),
        ("socket bandwidth (P99)", _pct(bandwidth['p99'])),
        ("memory latency (P50)", _pct(latency['p50'])),
        ("memory latency (P99)", _pct(latency['p99'])),
        ("fleet throughput", f"{result.throughput_change():+.2%}"),
    ])
    print("\nper-function cycle deltas (top regressions first):")
    deltas = result.function_cycle_deltas()
    rows = [(name, f"{delta:+.1%}")
            for name, delta in sorted(deltas.items(), key=lambda kv: -kv[1])]
    _table(("function", "Δcycles"), rows)
    if result.chaos is not None:
        print(f"\nfault plan: {fault_plan.spec()}")
        _print_chaos_summary(result.chaos)
    _print_queue_stats(study.queue_stats, resolved_ckpt)
    if getattr(args, "compare_serial", False):
        from repro.analysis import result_digest

        serial = AblationStudy(
            mode=args.mode, machines=args.machines, epochs=args.epochs,
            warmup_epochs=args.warmup, seed=args.seed,
            shard_size=shard_size, fault_plan=fault_plan).run(
                workers=1, cache_dir="", checkpoint_dir="")
        # "" disables both stores: the serial leg must recompute, not
        # replay the sharded entry or the shard journal.
        sharded_digest = result_digest(result)
        serial_digest = result_digest(serial)
        match = sharded_digest == serial_digest
        print(f"\nserial-equivalence check: "
              f"{'OK' if match else 'MISMATCH'} "
              f"(digest {sharded_digest[:16]}…)")
        if not match:
            raise ReproError(
                f"sharded result diverged from serial run: "
                f"{sharded_digest} != {serial_digest}")
    return 0


def run_sweep(args) -> int:
    """``repro sweep``: the trace-driven micro-fleet sweep."""
    from repro.fleet import DEFAULT_SHARD_SIZE, MicroFleetSweep, sweep_digest

    shard_size = getattr(args, "shard_size", None)
    if shard_size is None:
        shard_size = DEFAULT_SHARD_SIZE
    fault_plan = _resolve_fault_plan(args)
    checkpoint_dir, resolved_ckpt = _resolve_checkpoint(args)
    kwargs = dict(mode=args.mode, machines=args.machines, seed=args.seed,
                  scale=args.scale, crash_rate=args.crash_rate,
                  shard_size=shard_size, fault_plan=fault_plan,
                  workload=getattr(args, "trace", None))
    sweep = MicroFleetSweep(batch_size=_resolve_engine_batch(args),
                            **kwargs)
    result = sweep.run(workers=args.workers, cache_dir=args.cache_dir,
                       checkpoint_dir=checkpoint_dir)

    live = result.machines - result.down
    print(f"sweep arm: {args.mode}  "
          f"(machines={result.machines}, down={result.down})")
    rows = [
        ("mean elapsed", f"{result.mean_elapsed_ns() / 1e6:.3f} ms"),
        ("total stall cycles", f"{result.total('stall_cycles'):.0f}"),
        ("total LLC misses", f"{int(result.total('llc_misses'))}"),
        ("total DRAM demand fills",
         f"{int(result.total('dram_demand_fills'))}"),
        ("total DRAM wait", f"{result.total('dram_wait_ns') / 1e6:.3f} ms"),
    ]
    if live:
        _table(("sweep metric", "value"), rows)
    _print_engine_occupancy(result)
    digest = sweep_digest(result)
    print(f"\nresult digest: {digest}")
    _print_queue_stats(sweep.queue_stats, resolved_ckpt)

    if args.compare_serial:
        # Batching off, one worker, cache and journal disabled: the
        # oracle leg.
        serial = MicroFleetSweep(batch_size=0, **kwargs).run(
            workers=1, cache_dir="", checkpoint_dir="")
        serial_digest = sweep_digest(serial)
        match = digest == serial_digest
        print(f"serial-equivalence check: "
              f"{'OK' if match else 'MISMATCH'} (digest {digest[:16]}…)")
        if not match:
            raise ReproError(
                f"batched result diverged from serial scalar run: "
                f"{digest} != {serial_digest}")
    return 0


def run_rollout(args) -> int:
    """``repro rollout``: the Figures 16-20 study."""
    from repro.fleet import RolloutStudy

    fault_plan = _resolve_fault_plan(args)
    checkpoint_dir, resolved_ckpt = _resolve_checkpoint(args)
    study = RolloutStudy(machines=args.machines, epochs=args.epochs,
                         warmup_epochs=args.warmup, seed=args.seed,
                         fault_plan=fault_plan)
    result = study.run(workers=args.workers,
                       obs_dir=getattr(args, "obs_dir", None),
                       cache_dir=args.cache_dir,
                       checkpoint_dir=checkpoint_dir)
    print("Figure 16 — throughput gain by CPU band")
    _table(("band", "gain"), [(band, f"{gain:+.1%}") for band, gain
                              in result.throughput_gain_by_band().items()])
    latency = result.latency_reduction()
    bandwidth = result.bandwidth_reduction()
    print("\nFigures 17/18 — latency / bandwidth")
    _table(("metric", "change"), [
        ("latency P50", _pct(latency['p50'])),
        ("latency P99", _pct(latency['p99'])),
        ("bandwidth mean", _pct(bandwidth['mean'])),
    ])
    print(f"\nFigure 19 — CPU utilization gain: "
          f"{result.cpu_utilization_gain():+.1%}")
    print("\nFigure 20 — targeted tax cycle share")
    shares = result.tax_cycle_shares()
    _table(("arm", "tax share"), [
        (arm, f"{data['all targeted DC tax']:.1%}")
        for arm, data in shares.items()])
    if result.chaos is not None:
        print(f"\nfault plan: {fault_plan.spec()}")
        _print_chaos_summary(result.chaos)
    _print_queue_stats(study.queue_stats, resolved_ckpt)
    return 0


def _human_bytes(count: int) -> str:
    """Bytes as a compact human-readable figure."""
    value = float(count)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024 or unit == "GiB":
            return (f"{int(value)} {unit}" if unit == "B"
                    else f"{value:.1f} {unit}")
        value /= 1024
    return f"{int(count)} B"


def run_queue(args) -> int:
    """``repro queue``: status of a checkpoint journal."""
    from repro.fleet.queue import (CHECKPOINT_ENV_VAR, ShardCheckpoint,
                                   queue_status, resolve_checkpoint_dir)

    resolved = resolve_checkpoint_dir(getattr(args, "checkpoint_dir", None))
    if resolved is None:
        raise ReproError(
            "no checkpoint directory: pass --checkpoint-dir or set "
            f"${CHECKPOINT_ENV_VAR}")
    status = queue_status(ShardCheckpoint(resolved))
    print(f"journal: {status['root']}")
    _table(("journal metric", "value"), [
        ("entries", str(status["entries"])),
        ("valid", str(status["valid"])),
        ("corrupt", str(status["corrupt"])),
        ("size", _human_bytes(status["bytes"])),
        ("shard tasks", str(status["shard_tasks"])),
        ("restores (hits)", str(status["stats"]["hits"])),
        ("journal writes", str(status["stats"]["stores"])),
    ])
    if status["studies"]:
        print("\njournaled shards by study:")
        _table(("study", "shards", "policies", "indexes"), [
            (study, str(info["shards"]),
             ",".join(info.get("policies", [])) or "-",
             ",".join(str(i) for i in info["shard_indexes"][:12])
             + ("…" if len(info["shard_indexes"]) > 12 else ""))
            for study, info in sorted(status["studies"].items())])
    return 0


def run_cache(args) -> int:
    """``repro cache``: inspect or prune a result cache."""
    import os

    from repro.fleet.result_cache import (CACHE_ENV_VAR,
                                          StudyResultCache)

    cache_dir = getattr(args, "cache_dir", None)
    if cache_dir is None:
        cache_dir = os.environ.get(CACHE_ENV_VAR, "").strip() or None
    if not cache_dir:
        raise ReproError(
            f"no cache directory: pass --cache-dir or set ${CACHE_ENV_VAR}")
    cache = StudyResultCache(cache_dir)
    scan = cache.scan()
    stats = cache.stats()
    total = stats["hits"] + stats["misses"]
    hit_rate = f"{stats['hits'] / total:.1%}" if total else "n/a"
    print(f"cache: {cache.root}")
    _table(("cache metric", "value"), [
        ("entries", str(scan["entries"])),
        ("valid", str(scan["valid"])),
        ("corrupt", str(scan["corrupt"])),
        ("size", _human_bytes(scan["bytes"])),
        ("hits", str(stats["hits"])),
        ("misses", str(stats["misses"])),
        ("stores", str(stats["stores"])),
        ("hit rate", hit_rate),
    ])
    prune = getattr(args, "prune", None)
    if prune is not None:
        removed = cache.prune() if prune < 0 else cache.prune(prune)
        print(f"\npruned {removed} "
              f"entr{'y' if removed == 1 else 'ies'} "
              f"({cache.scan()['entries']} remain)")
    return 0


def run_chaos(args) -> int:
    """``repro chaos``: the control loop under an injected fault plan."""
    from repro.analysis import ChaosStudy, result_digest

    fault_plan = _resolve_fault_plan(args)
    if fault_plan is None:
        raise ReproError(
            "chaos needs a fault plan: pass --fault-plan or set "
            "$REPRO_FAULT_PLAN")
    shard_size = getattr(args, "shard_size", None)
    kwargs = dict(machines=args.machines, epochs=args.epochs,
                  seed=args.seed, warmup_epochs=args.warmup,
                  mode=args.mode, shard_size=shard_size)
    outcome = ChaosStudy(fault_plan, **kwargs).run(
        workers=args.workers, cache_dir=args.cache_dir,
        obs_dir=getattr(args, "obs_dir", None))

    print(f"fault plan: {fault_plan.spec()}")
    print(f"experiment arm: {args.mode}\n")
    _print_chaos_summary(outcome.chaos)
    print()
    _table(("study metric", "value"), [
        ("duty-cycle error vs fault-free",
         f"{outcome.duty_cycle_error():.2%}"),
        ("throughput change vs control",
         f"{outcome.throughput_change():+.2%}"),
    ])

    if args.compare_serial:
        serial = ChaosStudy(fault_plan, **kwargs).run(workers=1)
        sharded_digest = result_digest(outcome.faulted)
        serial_digest = result_digest(serial.faulted)
        match = sharded_digest == serial_digest
        print(f"\nserial-equivalence check: "
              f"{'OK' if match else 'MISMATCH'} "
              f"(digest {sharded_digest[:16]}…)")
        if not match:
            raise ReproError(
                f"sharded result diverged from serial run: "
                f"{sharded_digest} != {serial_digest}")
    return 0


def run_thresholds(args) -> int:
    """``repro thresholds``: the Figure 10 sweep."""
    from repro.analysis import ThresholdStudy

    outcomes = ThresholdStudy(machines=args.machines, epochs=args.epochs,
                              warmup_epochs=args.warmup, seed=args.seed,
                              soft=not args.hard_only,
                              ).run(workers=args.workers,
                                    cache_dir=args.cache_dir)
    _table(("config", "Δthroughput", "Δlatency p50", "Δbandwidth"), [
        (o.label, f"{o.throughput_change:+.2%}",
         _pct(o.latency_change_p50, precision=2),
         _pct(o.bandwidth_change_mean, precision=2))
        for o in outcomes])
    best = ThresholdStudy.best(outcomes)
    print(f"\nbest configuration: {best.label} (paper deployed 60/80)")
    return 0


def run_microbench(args) -> int:
    """``repro microbench``: the Figure 15 memcpy sweep."""
    from repro.core import PrefetchDescriptor
    from repro.microbench import MemcpyMicrobenchmark

    distances = [int(x) for x in args.distances.split(",")]
    degrees = [int(x) for x in args.degrees.split(",")]
    bench = MemcpyMicrobenchmark(
        sizes=(1 * KB, 4 * KB, 16 * KB, 64 * KB, 256 * KB),
        bytes_per_point=128 * KB,
        background_utilization=args.background)
    rows = []
    for distance in distances:
        for degree in degrees:
            descriptor = PrefetchDescriptor(
                "memcpy", distance_bytes=distance, degree_bytes=degree,
                min_size_bytes=2 * KB)
            rows.append((distance, degree,
                         f"{bench.mean_speedup(descriptor):+.1%}"))
    rows.sort(key=lambda row: row[2], reverse=True)
    _table(("distance", "degree", "mean speedup"), rows)
    return 0


def _run_obs_report(args, run_dir: str) -> int:
    """``repro report <run-dir>``: render an observability run directory."""
    from repro.obs import build_report, render_report

    if getattr(args, "json", False):
        import json

        print(json.dumps(build_report(run_dir), indent=2, sort_keys=True))
    else:
        print(render_report(run_dir))
    return 0


def run_report(args) -> int:
    """``repro report``: one-shot markdown report of the headline results."""
    run_dir = getattr(args, "run_dir", None)
    if run_dir:
        return _run_obs_report(args, run_dir)

    from repro.analysis import ThresholdStudy, measure_latency_curve
    from repro.fleet import AblationStudy, RolloutStudy

    if args.quick:
        machines, epochs, warmup, hops = 8, 30, 10, 120
    else:
        machines, epochs, warmup, hops = 20, 70, 25, 300
    workers = getattr(args, "workers", None)
    cache_dir = getattr(args, "cache_dir", None)

    sections = ["# Limoncello reproduction report", ""]

    utilizations = [x / 10 for x in range(11)]
    on = measure_latency_curve(True, utilizations, probe_hops=hops)
    off = measure_latency_curve(False, utilizations, probe_hops=hops)
    sections += [
        "## Loaded latency (Figure 1)", "",
        f"- unloaded: {on.latency_at(0.0):.0f} ns; "
        f"full load: {on.latency_at(1.0):.0f} ns (prefetchers on)",
        f"- disabling prefetchers at 90% utilization: "
        f"{off.reduction_versus(on, 0.9):+.1%} load-to-use "
        f"(paper: about -15%)", "",
    ]

    ablation = AblationStudy(mode="off", machines=machines, epochs=epochs,
                             warmup_epochs=warmup, seed=11,
                             ).run(workers=workers, cache_dir=cache_dir)
    bandwidth = ablation.bandwidth_reduction()
    sections += [
        "## Prefetcher ablation (Table 1)", "",
        f"- socket bandwidth: {_pct(bandwidth['mean'])} mean, "
        f"{_pct(bandwidth['p99'])} P99 (paper: -11% to -16% mean)",
        f"- fleet throughput: {ablation.throughput_change():+.1%} "
        f"(paper: about -5%)", "",
    ]

    outcomes = ThresholdStudy(machines=machines, epochs=epochs,
                              warmup_epochs=warmup, seed=9,
                              soft=True).run(workers=workers,
                                             cache_dir=cache_dir)
    sections += ["## Threshold sweep (Figure 10)", ""]
    sections += [f"- {o.label}: {o.throughput_change:+.2%} throughput"
                 for o in outcomes]
    sections.append("")

    rollout = RolloutStudy(machines=machines, epochs=epochs,
                           warmup_epochs=warmup,
                           seed=5).run(workers=workers)
    latency = rollout.latency_reduction()
    shares = rollout.tax_cycle_shares()
    sections += [
        "## Rollout (Figures 16-20)", "",
        "- throughput gain by CPU band: " + ", ".join(
            f"{band} {gain:+.1%}"
            for band, gain in rollout.throughput_gain_by_band().items()),
        f"- memory latency: {_pct(latency['p50'])} P50, "
        f"{_pct(latency['p99'])} P99 (paper: -13% / -10%)",
        f"- socket bandwidth: "
        f"{_pct(rollout.bandwidth_reduction()['mean'])} mean "
        f"(paper: -15%)",
        f"- CPU utilization gain with scheduler integration: "
        f"{rollout.cpu_utilization_gain():+.1%}",
        "- tax cycle share: " + " -> ".join(
            f"{arm} {data['all targeted DC tax']:.1%}"
            for arm, data in shares.items()),
        "",
        "See EXPERIMENTS.md for the full paper-vs-measured table.",
    ]

    text = "\n".join(sections) + "\n"
    if args.out:
        from repro.serialization import atomic_write_text
        atomic_write_text(args.out, text)
        print(f"wrote {args.out}")
    else:
        print(text)
    return 0


def run_calibrate(args) -> int:
    """``repro calibrate``: re-derive the response table."""
    from repro.fleet import calibrate_from_simulator

    table = calibrate_from_simulator(seed=args.seed)
    rows = [(r.name, r.category.value, f"{r.cycle_penalty_off:+.2f}",
             f"{r.soft_recovery:.2f}", f"{r.mpki_on:.1f}",
             f"{r.mpki_off:.1f}", f"{r.overfetch:+.2f}")
            for r in table]
    _table(("function", "category", "pen_off", "recovery", "mpki_on",
            "mpki_off", "overfetch"), rows)
    return 0


def _policy_specs(args):
    """Build the named policy specs a ``repro policy compare`` runs.

    The decision-tree entry comes from ``--policy-file`` when given;
    otherwise it is trained inline from the same study seed (hitting
    the result cache when the training sweeps already ran).
    """
    from repro.policy import (EpsilonGreedyBanditPolicy, HysteresisPolicy,
                              SingleThresholdPolicy, load_policy,
                              train_decision_tree_policy)

    names = [name.strip() for name in args.policies.split(",")
             if name.strip()]
    if not names:
        raise ReproError("--policies cannot be empty")
    specs = {}
    for name in names:
        if name == "hysteresis":
            specs[name] = HysteresisPolicy()
        elif name == "single-threshold":
            specs[name] = SingleThresholdPolicy(threshold=args.threshold)
        elif name == "bandit":
            specs[name] = EpsilonGreedyBanditPolicy(
                seed=args.bandit_seed, epsilon=args.epsilon)
        elif name == "decision-tree":
            if getattr(args, "policy_file", None):
                specs[name] = load_policy(args.policy_file)
            else:
                specs[name] = train_decision_tree_policy(
                    machines=args.train_machines, epochs=args.epochs,
                    warmup_epochs=args.warmup, seed=args.seed,
                    probe_machines=args.probe_machines,
                    probe_scale=args.probe_scale,
                    workers=args.workers, cache_dir=args.cache_dir,
                    checkpoint_dir=getattr(args, "checkpoint_dir", None))
        else:
            raise ReproError(
                f"unknown policy {name!r}; known: hysteresis, "
                "single-threshold, decision-tree, bandit")
    return specs


def run_policy_train(args) -> int:
    """``repro policy train``: fit the decision-tree policy offline."""
    from repro.policy import (policy_digest, save_policy,
                              train_decision_tree_policy, tree_depth,
                              tree_leaves)

    checkpoint_dir, resolved_ckpt = _resolve_checkpoint(args)
    policy = train_decision_tree_policy(
        machines=args.machines, epochs=args.epochs,
        warmup_epochs=args.warmup, seed=args.seed,
        probe_machines=args.probe_machines, probe_scale=args.probe_scale,
        kappa=args.kappa, max_depth=args.max_depth,
        min_samples_leaf=args.min_samples_leaf,
        workers=args.workers, cache_dir=args.cache_dir,
        checkpoint_dir=checkpoint_dir)
    digest = policy_digest(policy)
    rows = [(name, str(tree_depth(tree)), str(tree_leaves(tree)))
            for name, tree in sorted(policy.trees.items())]
    _table(("prefetcher", "depth", "leaves"), rows)
    print(f"\npolicy digest: {digest}")
    if args.out:
        save_policy(policy, args.out)
        print(f"wrote {args.out}")
    return 0


def run_policy_compare(args) -> int:
    """``repro policy compare``: N policies, one fleet, one report."""
    from repro.policy import PolicyComparison, comparison_digest

    fault_plan = _resolve_fault_plan(args)
    checkpoint_dir, resolved_ckpt = _resolve_checkpoint(args)
    specs = _policy_specs(args)
    comparison = PolicyComparison(
        specs, machines=args.machines, epochs=args.epochs,
        warmup_epochs=args.warmup, seed=args.seed,
        shard_size=args.shard_size, fault_plan=fault_plan)
    report = comparison.run(workers=args.workers, cache_dir=args.cache_dir,
                            obs_dir=getattr(args, "obs_dir", None),
                            checkpoint_dir=checkpoint_dir)
    digest = comparison_digest(report)

    rows = []
    for name in report["ranking"]:
        entry = report["policies"][name]
        rows.append((
            name,
            f"{entry['duty_cycle_error']:.4f}",
            f"{entry['duty_cycle_disabled']:.3f}",
            str(entry["transitions"]),
            f"{entry['throughput_gain']:+.2%}",
            _pct(entry["latency_p99_change"]),
        ))
    _table(("policy", "duty err", "off frac", "flips", "throughput",
            "p99 latency"), rows)
    if fault_plan is not None:
        print(f"\nfault plan: {fault_plan.spec()}")
        frows = []
        for name in report["ranking"]:
            faulted = report["policies"][name].get("faulted")
            if faulted is None:
                continue
            frows.append((name, f"{faulted['availability']:.4f}",
                          f"{faulted['duty_cycle_error']:.4f}",
                          f"{faulted['duty_cycle_drift']:+.4f}"))
        if frows:
            _table(("policy", "availability", "faulted duty err",
                    "drift"), frows)
    print(f"\nreport digest: {digest}")
    if args.out:
        from repro.serialization import atomic_write_text, canonical_json
        atomic_write_text(args.out, canonical_json(report) + "\n")
        print(f"wrote {args.out}")

    if getattr(args, "compare_serial", False):
        serial = PolicyComparison(
            specs, machines=args.machines, epochs=args.epochs,
            warmup_epochs=args.warmup, seed=args.seed,
            shard_size=args.shard_size, fault_plan=fault_plan).run(
                workers=1, cache_dir="", checkpoint_dir="")
        # "" disables both stores: the serial leg must recompute, not
        # replay the sharded legs or the shard journal.
        serial_digest = comparison_digest(serial)
        match = digest == serial_digest
        print(f"serial-equivalence check: "
              f"{'OK' if match else 'MISMATCH'} (digest {digest[:16]}…)")
        if not match:
            raise ReproError(
                f"sharded comparison diverged from serial run: "
                f"{digest} != {serial_digest}")
    return 0


def run_scenario_callgraph(args) -> int:
    """``repro scenario callgraph``: the RPC call-graph SLO study."""
    from repro.scenarios import (CallGraphScenario, DEFAULT_SERVICES,
                                 callgraph_digest)

    fault_plan = _resolve_fault_plan(args)
    checkpoint_dir, resolved_ckpt = _resolve_checkpoint(args)
    kwargs = dict(services=args.services or DEFAULT_SERVICES,
                  requests=args.requests, seed=args.seed, mode=args.mode,
                  rpc_overhead_ns=args.rpc_overhead_ns,
                  crash_rate=args.crash_rate, fault_plan=fault_plan)
    scenario = CallGraphScenario(batch_size=_resolve_engine_batch(args),
                                 **kwargs)
    result = scenario.run(workers=args.workers, cache_dir=args.cache_dir,
                          checkpoint_dir=checkpoint_dir,
                          obs_dir=getattr(args, "obs_dir", None))

    print(f"call graph: {len(scenario.services)} services, "
          f"{scenario.machines} replicas ({result.down} down), "
          f"{scenario.requests} requests, mode={scenario.mode}")
    rows = []
    for service in scenario.services:
        summary = result.service_summary(service.name)
        fanout = "+".join(f"{child}*{calls}"
                          for child, calls in service.calls) or "-"
        if summary is None:
            rows.append((service.name, service.kind,
                         str(service.replicas), fanout, "down", "down",
                         "down"))
        else:
            rows.append((service.name, service.kind,
                         str(service.replicas), fanout,
                         f"{summary.p50:.0f}", f"{summary.p90:.0f}",
                         f"{summary.p99:.0f}"))
    _table(("service", "kind", "replicas", "fan-out", "p50 ns", "p90 ns",
            "p99 ns"), rows)
    slo = scenario.slo_summary(result)
    print(f"\nend-to-end SLO at {scenario.root!r}: "
          f"p50={slo.p50:.0f} ns  p90={slo.p90:.0f} ns  "
          f"p99={slo.p99:.0f} ns  (peak {slo.peak:.0f} ns over "
          f"{slo.count} requests)")
    if fault_plan is not None:
        print(f"\nfault plan: {fault_plan.spec()}")
    _print_engine_occupancy(result)
    digest = callgraph_digest(result)
    print(f"\nresult digest: {digest}")
    _print_queue_stats(scenario.queue_stats, resolved_ckpt)

    if args.compare_serial:
        # Batching off, one worker, cache and journal disabled: the
        # oracle leg.
        serial = CallGraphScenario(batch_size=0, **kwargs).run(
            workers=1, cache_dir="", checkpoint_dir="")
        serial_digest = callgraph_digest(serial)
        match = digest == serial_digest
        print(f"serial-equivalence check: "
              f"{'OK' if match else 'MISMATCH'} (digest {digest[:16]}…)")
        if not match:
            raise ReproError(
                f"batched result diverged from serial scalar run: "
                f"{digest} != {serial_digest}")
    return 0


def _noisy_policy(args):
    """The ``repro scenario noisy`` policy from its CLI flags."""
    if args.policy_file:
        from repro.policy import load_policy
        return load_policy(args.policy_file)
    if args.policy == "hysteresis":
        from repro.core import LimoncelloConfig
        from repro.policy import HysteresisPolicy
        return HysteresisPolicy(config=LimoncelloConfig(
            lower_threshold=args.lower, upper_threshold=args.upper,
            sustain_duration_ns=args.sustain_ns,
            sample_period_ns=args.sustain_ns))
    if args.policy == "single-threshold":
        from repro.policy import SingleThresholdPolicy
        return SingleThresholdPolicy(threshold=args.upper)
    if args.policy == "bandit":
        from repro.policy import EpsilonGreedyBanditPolicy
        return EpsilonGreedyBanditPolicy(seed=args.seed)
    raise ReproError(
        "--mode policy needs --policy NAME or --policy-file FILE")


def run_scenario_noisy(args) -> int:
    """``repro scenario noisy``: the multi-tenant interference study."""
    from repro.fleet import DEFAULT_SHARD_SIZE
    from repro.scenarios import (DEFAULT_TENANTS, NoisyNeighborScenario,
                                 noisy_digest)

    shard_size = getattr(args, "shard_size", None)
    if shard_size is None:
        shard_size = DEFAULT_SHARD_SIZE
    fault_plan = _resolve_fault_plan(args)
    checkpoint_dir, resolved_ckpt = _resolve_checkpoint(args)
    policy = _noisy_policy(args) if args.mode == "policy" else None
    if policy is None and (args.policy or args.policy_file):
        raise ReproError("--policy/--policy-file need --mode policy")
    kwargs = dict(tenants=args.tenants or DEFAULT_TENANTS,
                  machines=args.machines, epochs=args.epochs,
                  seed=args.seed, mode=args.mode, policy=policy,
                  upper=args.upper, lower=args.lower,
                  sustain_ns=args.sustain_ns, crash_rate=args.crash_rate,
                  shard_size=shard_size, fault_plan=fault_plan)
    scenario = NoisyNeighborScenario(batch_size=_resolve_engine_batch(args),
                                     **kwargs)
    result = scenario.run(workers=args.workers, cache_dir=args.cache_dir,
                          checkpoint_dir=checkpoint_dir,
                          obs_dir=getattr(args, "obs_dir", None))

    print(f"noisy neighbors: {len(scenario.tenants)} tenants on "
          f"{result.machines} machines ({result.down} down), "
          f"{scenario.epochs} epochs, mode={scenario.mode}")
    shares = result.bandwidth_shares()
    rows = []
    for tenant in scenario.tenants:
        summary = result.tenant_summary(tenant.name)
        throttle = (f"{tenant.throttle:.2f}"
                    if tenant.throttle != 1.0 else "-")
        if summary is None:
            rows.append((tenant.name, tenant.kind, throttle,
                         f"{shares[tenant.name]:.1%}", "down", "down",
                         "down"))
        else:
            rows.append((tenant.name, tenant.kind, throttle,
                         f"{shares[tenant.name]:.1%}",
                         f"{summary.p50:.2f}", f"{summary.p90:.2f}",
                         f"{summary.p99:.2f}"))
    _table(("tenant", "kind", "throttle", "bw share", "p50 ns/acc",
            "p90 ns/acc", "p99 ns/acc"), rows)
    print(f"\nprefetchers-disabled duty cycle: "
          f"{result.duty_cycle_disabled():.2%}  "
          f"(controller flips: {result.transitions()})")
    if fault_plan is not None:
        print(f"\nfault plan: {fault_plan.spec()}")
    _print_engine_occupancy(result)
    digest = noisy_digest(result)
    print(f"\nresult digest: {digest}")
    _print_queue_stats(scenario.queue_stats, resolved_ckpt)

    if args.baseline:
        baseline = scenario.baseline_twin().run(
            workers=args.workers, cache_dir=args.cache_dir)
        comparison = scenario.compare_to_baseline(result, baseline)
        print("\nversus always-enabled twin (negative = faster):")
        _table(("tenant", "p50", "p90", "p99", "mean"), [
            (name, _pct(change["p50"]), _pct(change["p90"]),
             _pct(change["p99"]), _pct(change["mean"]))
            for name, change in comparison.items()])

    if args.compare_serial:
        # Batching off, one worker, cache and journal disabled: the
        # oracle leg.
        serial = NoisyNeighborScenario(batch_size=0, **kwargs).run(
            workers=1, cache_dir="", checkpoint_dir="")
        serial_digest = noisy_digest(serial)
        match = digest == serial_digest
        print(f"serial-equivalence check: "
              f"{'OK' if match else 'MISMATCH'} (digest {digest[:16]}…)")
        if not match:
            raise ReproError(
                f"batched result diverged from serial scalar run: "
                f"{digest} != {serial_digest}")
    return 0
