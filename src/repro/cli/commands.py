"""Implementations of the CLI subcommands (print-oriented wrappers)."""

from __future__ import annotations

from repro.errors import ReproError
from repro.telemetry import format_relative_change as _pct
from repro.units import KB, SECOND


def _table(header, rows) -> None:
    widths = [max(len(str(cell)) for cell in column)
              for column in zip(header, *rows)]
    def fmt(row):
        """Render one table row with column alignment."""
        return "  ".join(str(cell).rjust(width)
                         for cell, width in zip(row, widths))
    print(fmt(header))
    print(fmt(["-" * width for width in widths]))
    for row in rows:
        print(fmt(row))


def _parse_profile(text: str):
    points = []
    for chunk in text.split(","):
        time_s, _, bandwidth = chunk.partition(":")
        points.append((float(time_s) * SECOND, float(bandwidth)))
    if not points:
        raise ReproError("empty bandwidth profile")
    return points


def _resolve_fault_plan(args):
    """The study's fault plan: ``--fault-plan``, else $REPRO_FAULT_PLAN,
    else None (fault-free)."""
    import os

    from repro.faults import FAULT_PLAN_ENV_VAR, FaultPlan

    spec = getattr(args, "fault_plan", None)
    if spec is None:
        spec = os.environ.get(FAULT_PLAN_ENV_VAR) or None
    if spec is None:
        return None
    return FaultPlan.parse(spec)


def _print_chaos_summary(chaos) -> None:
    """The chaos-metrics block shared by every faulted study printout."""
    mttr = chaos.mean_time_to_recovery_ns()
    detect = chaos.mean_detection_latency_ns()
    _table(("chaos metric", "value"), [
        ("controller availability", f"{chaos.availability():.2%}"),
        ("duty cycle disabled", f"{chaos.duty_cycle_disabled():.2%}"),
        ("incidents", str(chaos.incidents)),
        ("  recovered", str(chaos.recovered_incidents)),
        ("mean detection latency",
         "n/a" if detect is None else f"{detect / SECOND:.1f} s"),
        ("mean time to recovery",
         "n/a" if mttr is None else f"{mttr / SECOND:.1f} s"),
        ("fail-safe engagements", str(chaos.failsafe_engagements)),
        ("machine crashes", str(chaos.machine_crashes)),
        ("machine restarts", str(chaos.machine_restarts)),
    ])
    if chaos.incident_kinds:
        print("\nincidents by kind:")
        _table(("kind", "count"),
               sorted(chaos.incident_kinds.items()))


def run_daemon(args) -> int:
    """``repro daemon``: control loop on a scripted profile."""
    from repro.core import (LimoncelloConfig, LimoncelloDaemon,
                            MSRPrefetcherActuator)
    from repro.msr import INTEL_LIKE_MAP, MSRFile
    from repro.telemetry import PerfBandwidthSampler, ScriptedBandwidthSource

    source = ScriptedBandwidthSource(_parse_profile(args.profile),
                                     saturation_bandwidth=100.0)
    msrs = MSRFile()
    config = LimoncelloConfig.from_percent(
        args.lower, args.upper,
        sustain_duration_ns=args.sustain * SECOND)
    daemon = LimoncelloDaemon(
        PerfBandwidthSampler(source),
        MSRPrefetcherActuator(msrs, INTEL_LIKE_MAP), config)

    rows = []
    for tick in range(int(args.duration)):
        state = daemon.step(tick * SECOND)
        rows.append((tick,
                     f"{source.memory_bandwidth(tick * SECOND):.0f}",
                     state.value if state else "(sample dropped)",
                     "on" if daemon.actuator.is_enabled() else "OFF"))
    _table(("t(s)", "GB/s", "state", "prefetchers"), rows)
    report = daemon.report
    print(f"\ntransitions={report.transitions}  "
          f"time disabled={report.duty_cycle_disabled():.0%}")
    return 0


def run_latency_curve(args) -> int:
    """``repro latency-curve``: the Figure 1 measurement."""
    from repro.analysis import measure_latency_curve

    points = [i / (args.points - 1) for i in range(args.points)]
    on = measure_latency_curve(True, points, probe_hops=args.hops)
    off = measure_latency_curve(False, points, probe_hops=args.hops)
    rows = [(f"{p_on.utilization:.2f}", f"{p_on.latency_ns:.1f}",
             f"{p_off.latency_ns:.1f}")
            for p_on, p_off in zip(on.points, off.points)]
    _table(("util", "HW on (ns)", "HW off (ns)"), rows)
    if getattr(args, "chart", False):
        from repro.telemetry.ascii_chart import line_chart
        print()
        print(line_chart(
            {"HW on": [(p.utilization, p.latency_ns) for p in on.points],
             "HW off": [(p.utilization, p.latency_ns) for p in off.points]},
            x_label="bandwidth utilization", y_label="load-to-use ns"))
    print(f"\nreduction at 90% utilization: "
          f"{off.reduction_versus(on, 0.9):+.1%}")
    return 0


def run_ablation(args) -> int:
    """``repro ablation``: a paired fleet ablation study."""
    from repro.fleet import DEFAULT_SHARD_SIZE, AblationStudy

    shard_size = getattr(args, "shard_size", None)
    if shard_size is None:
        shard_size = DEFAULT_SHARD_SIZE
    fault_plan = _resolve_fault_plan(args)
    result = AblationStudy(mode=args.mode, machines=args.machines,
                           epochs=args.epochs, warmup_epochs=args.warmup,
                           seed=args.seed, shard_size=shard_size,
                           fault_plan=fault_plan,
                           ).run(workers=args.workers,
                                 cache_dir=args.cache_dir,
                                 obs_dir=getattr(args, "obs_dir", None))
    bandwidth = result.bandwidth_reduction()
    latency = result.latency_reduction()
    print(f"experiment arm: {args.mode}")
    _table(("metric", "change"), [
        ("socket bandwidth (mean)", _pct(bandwidth['mean'])),
        ("socket bandwidth (P99)", _pct(bandwidth['p99'])),
        ("memory latency (P50)", _pct(latency['p50'])),
        ("memory latency (P99)", _pct(latency['p99'])),
        ("fleet throughput", f"{result.throughput_change():+.2%}"),
    ])
    print("\nper-function cycle deltas (top regressions first):")
    deltas = result.function_cycle_deltas()
    rows = [(name, f"{delta:+.1%}")
            for name, delta in sorted(deltas.items(), key=lambda kv: -kv[1])]
    _table(("function", "Δcycles"), rows)
    if result.chaos is not None:
        print(f"\nfault plan: {fault_plan.spec()}")
        _print_chaos_summary(result.chaos)
    if getattr(args, "compare_serial", False):
        from repro.analysis import result_digest

        serial = AblationStudy(
            mode=args.mode, machines=args.machines, epochs=args.epochs,
            warmup_epochs=args.warmup, seed=args.seed,
            shard_size=shard_size, fault_plan=fault_plan).run(
                workers=1, cache_dir="")  # "" disables the cache: the
        # serial leg must recompute, not replay the sharded entry.
        sharded_digest = result_digest(result)
        serial_digest = result_digest(serial)
        match = sharded_digest == serial_digest
        print(f"\nserial-equivalence check: "
              f"{'OK' if match else 'MISMATCH'} "
              f"(digest {sharded_digest[:16]}…)")
        if not match:
            raise ReproError(
                f"sharded result diverged from serial run: "
                f"{sharded_digest} != {serial_digest}")
    return 0


def run_sweep(args) -> int:
    """``repro sweep``: the trace-driven micro-fleet sweep."""
    from repro.fleet import DEFAULT_SHARD_SIZE, MicroFleetSweep, sweep_digest

    shard_size = getattr(args, "shard_size", None)
    if shard_size is None:
        shard_size = DEFAULT_SHARD_SIZE
    fault_plan = _resolve_fault_plan(args)
    kwargs = dict(mode=args.mode, machines=args.machines, seed=args.seed,
                  scale=args.scale, crash_rate=args.crash_rate,
                  shard_size=shard_size, fault_plan=fault_plan)
    result = MicroFleetSweep(batch_size=args.batch_size, **kwargs).run(
        workers=args.workers, cache_dir=args.cache_dir)

    live = result.machines - result.down
    print(f"sweep arm: {args.mode}  "
          f"(machines={result.machines}, down={result.down})")
    rows = [
        ("mean elapsed", f"{result.mean_elapsed_ns() / 1e6:.3f} ms"),
        ("total stall cycles", f"{result.total('stall_cycles'):.0f}"),
        ("total LLC misses", f"{int(result.total('llc_misses'))}"),
        ("total DRAM demand fills",
         f"{int(result.total('dram_demand_fills'))}"),
        ("total DRAM wait", f"{result.total('dram_wait_ns') / 1e6:.3f} ms"),
    ]
    if live:
        _table(("sweep metric", "value"), rows)
    digest = sweep_digest(result)
    print(f"\nresult digest: {digest}")

    if args.compare_serial:
        # Batching off, one worker, cache disabled: the oracle leg.
        serial = MicroFleetSweep(batch_size=0, **kwargs).run(
            workers=1, cache_dir="")
        serial_digest = sweep_digest(serial)
        match = digest == serial_digest
        print(f"serial-equivalence check: "
              f"{'OK' if match else 'MISMATCH'} (digest {digest[:16]}…)")
        if not match:
            raise ReproError(
                f"batched result diverged from serial scalar run: "
                f"{digest} != {serial_digest}")
    return 0


def run_rollout(args) -> int:
    """``repro rollout``: the Figures 16-20 study."""
    from repro.fleet import RolloutStudy

    fault_plan = _resolve_fault_plan(args)
    result = RolloutStudy(machines=args.machines, epochs=args.epochs,
                          warmup_epochs=args.warmup, seed=args.seed,
                          fault_plan=fault_plan).run(
                              workers=args.workers,
                              obs_dir=getattr(args, "obs_dir", None))
    print("Figure 16 — throughput gain by CPU band")
    _table(("band", "gain"), [(band, f"{gain:+.1%}") for band, gain
                              in result.throughput_gain_by_band().items()])
    latency = result.latency_reduction()
    bandwidth = result.bandwidth_reduction()
    print("\nFigures 17/18 — latency / bandwidth")
    _table(("metric", "change"), [
        ("latency P50", _pct(latency['p50'])),
        ("latency P99", _pct(latency['p99'])),
        ("bandwidth mean", _pct(bandwidth['mean'])),
    ])
    print(f"\nFigure 19 — CPU utilization gain: "
          f"{result.cpu_utilization_gain():+.1%}")
    print("\nFigure 20 — targeted tax cycle share")
    shares = result.tax_cycle_shares()
    _table(("arm", "tax share"), [
        (arm, f"{data['all targeted DC tax']:.1%}")
        for arm, data in shares.items()])
    if result.chaos is not None:
        print(f"\nfault plan: {fault_plan.spec()}")
        _print_chaos_summary(result.chaos)
    return 0


def run_chaos(args) -> int:
    """``repro chaos``: the control loop under an injected fault plan."""
    from repro.analysis import ChaosStudy, result_digest

    fault_plan = _resolve_fault_plan(args)
    if fault_plan is None:
        raise ReproError(
            "chaos needs a fault plan: pass --fault-plan or set "
            "$REPRO_FAULT_PLAN")
    shard_size = getattr(args, "shard_size", None)
    kwargs = dict(machines=args.machines, epochs=args.epochs,
                  seed=args.seed, warmup_epochs=args.warmup,
                  mode=args.mode, shard_size=shard_size)
    outcome = ChaosStudy(fault_plan, **kwargs).run(
        workers=args.workers, cache_dir=args.cache_dir,
        obs_dir=getattr(args, "obs_dir", None))

    print(f"fault plan: {fault_plan.spec()}")
    print(f"experiment arm: {args.mode}\n")
    _print_chaos_summary(outcome.chaos)
    print()
    _table(("study metric", "value"), [
        ("duty-cycle error vs fault-free",
         f"{outcome.duty_cycle_error():.2%}"),
        ("throughput change vs control",
         f"{outcome.throughput_change():+.2%}"),
    ])

    if args.compare_serial:
        serial = ChaosStudy(fault_plan, **kwargs).run(workers=1)
        sharded_digest = result_digest(outcome.faulted)
        serial_digest = result_digest(serial.faulted)
        match = sharded_digest == serial_digest
        print(f"\nserial-equivalence check: "
              f"{'OK' if match else 'MISMATCH'} "
              f"(digest {sharded_digest[:16]}…)")
        if not match:
            raise ReproError(
                f"sharded result diverged from serial run: "
                f"{sharded_digest} != {serial_digest}")
    return 0


def run_thresholds(args) -> int:
    """``repro thresholds``: the Figure 10 sweep."""
    from repro.analysis import ThresholdStudy

    outcomes = ThresholdStudy(machines=args.machines, epochs=args.epochs,
                              warmup_epochs=args.warmup, seed=args.seed,
                              soft=not args.hard_only,
                              ).run(workers=args.workers,
                                    cache_dir=args.cache_dir)
    _table(("config", "Δthroughput", "Δlatency p50", "Δbandwidth"), [
        (o.label, f"{o.throughput_change:+.2%}",
         _pct(o.latency_change_p50, precision=2),
         _pct(o.bandwidth_change_mean, precision=2))
        for o in outcomes])
    best = ThresholdStudy.best(outcomes)
    print(f"\nbest configuration: {best.label} (paper deployed 60/80)")
    return 0


def run_microbench(args) -> int:
    """``repro microbench``: the Figure 15 memcpy sweep."""
    from repro.core import PrefetchDescriptor
    from repro.microbench import MemcpyMicrobenchmark

    distances = [int(x) for x in args.distances.split(",")]
    degrees = [int(x) for x in args.degrees.split(",")]
    bench = MemcpyMicrobenchmark(
        sizes=(1 * KB, 4 * KB, 16 * KB, 64 * KB, 256 * KB),
        bytes_per_point=128 * KB,
        background_utilization=args.background)
    rows = []
    for distance in distances:
        for degree in degrees:
            descriptor = PrefetchDescriptor(
                "memcpy", distance_bytes=distance, degree_bytes=degree,
                min_size_bytes=2 * KB)
            rows.append((distance, degree,
                         f"{bench.mean_speedup(descriptor):+.1%}"))
    rows.sort(key=lambda row: row[2], reverse=True)
    _table(("distance", "degree", "mean speedup"), rows)
    return 0


def _run_obs_report(args, run_dir: str) -> int:
    """``repro report <run-dir>``: render an observability run directory."""
    from repro.obs import build_report, render_report

    if getattr(args, "json", False):
        import json

        print(json.dumps(build_report(run_dir), indent=2, sort_keys=True))
    else:
        print(render_report(run_dir))
    return 0


def run_report(args) -> int:
    """``repro report``: one-shot markdown report of the headline results."""
    run_dir = getattr(args, "run_dir", None)
    if run_dir:
        return _run_obs_report(args, run_dir)

    from repro.analysis import ThresholdStudy, measure_latency_curve
    from repro.fleet import AblationStudy, RolloutStudy

    if args.quick:
        machines, epochs, warmup, hops = 8, 30, 10, 120
    else:
        machines, epochs, warmup, hops = 20, 70, 25, 300
    workers = getattr(args, "workers", None)
    cache_dir = getattr(args, "cache_dir", None)

    sections = ["# Limoncello reproduction report", ""]

    utilizations = [x / 10 for x in range(11)]
    on = measure_latency_curve(True, utilizations, probe_hops=hops)
    off = measure_latency_curve(False, utilizations, probe_hops=hops)
    sections += [
        "## Loaded latency (Figure 1)", "",
        f"- unloaded: {on.latency_at(0.0):.0f} ns; "
        f"full load: {on.latency_at(1.0):.0f} ns (prefetchers on)",
        f"- disabling prefetchers at 90% utilization: "
        f"{off.reduction_versus(on, 0.9):+.1%} load-to-use "
        f"(paper: about -15%)", "",
    ]

    ablation = AblationStudy(mode="off", machines=machines, epochs=epochs,
                             warmup_epochs=warmup, seed=11,
                             ).run(workers=workers, cache_dir=cache_dir)
    bandwidth = ablation.bandwidth_reduction()
    sections += [
        "## Prefetcher ablation (Table 1)", "",
        f"- socket bandwidth: {_pct(bandwidth['mean'])} mean, "
        f"{_pct(bandwidth['p99'])} P99 (paper: -11% to -16% mean)",
        f"- fleet throughput: {ablation.throughput_change():+.1%} "
        f"(paper: about -5%)", "",
    ]

    outcomes = ThresholdStudy(machines=machines, epochs=epochs,
                              warmup_epochs=warmup, seed=9,
                              soft=True).run(workers=workers,
                                             cache_dir=cache_dir)
    sections += ["## Threshold sweep (Figure 10)", ""]
    sections += [f"- {o.label}: {o.throughput_change:+.2%} throughput"
                 for o in outcomes]
    sections.append("")

    rollout = RolloutStudy(machines=machines, epochs=epochs,
                           warmup_epochs=warmup,
                           seed=5).run(workers=workers)
    latency = rollout.latency_reduction()
    shares = rollout.tax_cycle_shares()
    sections += [
        "## Rollout (Figures 16-20)", "",
        "- throughput gain by CPU band: " + ", ".join(
            f"{band} {gain:+.1%}"
            for band, gain in rollout.throughput_gain_by_band().items()),
        f"- memory latency: {_pct(latency['p50'])} P50, "
        f"{_pct(latency['p99'])} P99 (paper: -13% / -10%)",
        f"- socket bandwidth: "
        f"{_pct(rollout.bandwidth_reduction()['mean'])} mean "
        f"(paper: -15%)",
        f"- CPU utilization gain with scheduler integration: "
        f"{rollout.cpu_utilization_gain():+.1%}",
        "- tax cycle share: " + " -> ".join(
            f"{arm} {data['all targeted DC tax']:.1%}"
            for arm, data in shares.items()),
        "",
        "See EXPERIMENTS.md for the full paper-vs-measured table.",
    ]

    text = "\n".join(sections) + "\n"
    if args.out:
        import pathlib
        pathlib.Path(args.out).write_text(text)
        print(f"wrote {args.out}")
    else:
        print(text)
    return 0


def run_calibrate(args) -> int:
    """``repro calibrate``: re-derive the response table."""
    from repro.fleet import calibrate_from_simulator

    table = calibrate_from_simulator(seed=args.seed)
    rows = [(r.name, r.category.value, f"{r.cycle_penalty_off:+.2f}",
             f"{r.soft_recovery:.2f}", f"{r.mpki_on:.1f}",
             f"{r.mpki_off:.1f}", f"{r.overfetch:+.2f}")
            for r in table]
    _table(("function", "category", "pen_off", "recovery", "mpki_on",
            "mpki_off", "overfetch"), rows)
    return 0
