"""Command-line interface: ``python -m repro <command>``.

Exposes the main harnesses without writing any code:

* ``daemon``        — run the control loop on a scripted bandwidth profile
* ``latency-curve`` — the MLC-style loaded-latency measurement (Figure 1)
* ``ablation``      — a paired fleet ablation study (Table 1, Figs 11/12)
* ``rollout``       — the before/after rollout study (Figures 16-20)
* ``thresholds``    — the Figure 10 threshold-configuration sweep
* ``microbench``    — the memcpy distance/degree sweep (Figure 15)
* ``calibrate``     — re-derive the fleet calibration table from the
  cycle-level simulator
"""

from repro.cli.main import main

__all__ = ["main"]
