"""Trace-driven memory-system timing simulator.

This package is the stand-in for the real hardware the paper runs on: a
three-level set-associative cache hierarchy with hardware prefetchers at
L1 and L2, backed by a DRAM model whose load-to-use latency grows with
bandwidth utilization (the queuing behaviour behind the paper's Figure 1).

The public entry point is :class:`MemoryHierarchy`: feed it a
:class:`repro.access.Trace` and it returns a :class:`RunResult` with
per-function cycles, MPKI, and DRAM traffic — the quantities every
experiment in the paper is expressed in.
"""

from repro.memsys.config import CacheConfig, DRAMConfig, HierarchyConfig
from repro.memsys.cache import SetAssociativeCache
from repro.memsys.dram import ConstantExternalLoad, DRAMModel
from repro.memsys.stats import FunctionStats, RunResult
from repro.memsys.hierarchy import MemoryHierarchy, run_many
from repro.memsys.prefetchers import (
    HardwarePrefetcher,
    NextLinePrefetcher,
    StridePrefetcher,
    StreamPrefetcher,
    PrefetcherBank,
    default_prefetcher_bank,
)

__all__ = [
    "CacheConfig",
    "DRAMConfig",
    "HierarchyConfig",
    "SetAssociativeCache",
    "ConstantExternalLoad",
    "DRAMModel",
    "FunctionStats",
    "RunResult",
    "MemoryHierarchy",
    "run_many",
    "HardwarePrefetcher",
    "NextLinePrefetcher",
    "StridePrefetcher",
    "StreamPrefetcher",
    "PrefetcherBank",
    "default_prefetcher_bank",
]
