"""Result containers for simulator runs: per-function and whole-run stats."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class FunctionStats:
    """Execution statistics attributed to one function (or to a whole run).

    These are exactly the quantities the paper's fleetwide profiler
    collects per function — instructions, CPU cycles, LLC misses — plus
    the prefetch-accounting detail the ablation analysis needs.
    """

    instructions: int = 0
    compute_cycles: int = 0
    stall_cycles: float = 0.0
    loads: int = 0
    stores: int = 0
    software_prefetches: int = 0
    l1_misses: int = 0
    l2_misses: int = 0
    #: Demand accesses that had to go all the way to DRAM.
    llc_misses: int = 0
    #: Demand accesses covered by a prefetched line (resident or in flight).
    prefetch_covered: int = 0
    #: Covered accesses that still stalled because the prefetch was late.
    late_prefetch_hits: int = 0
    #: Nanoseconds spent waiting on true demand DRAM fills.
    dram_wait_ns: float = 0.0
    #: Nanoseconds spent waiting for late (in-flight) prefetches to land.
    late_prefetch_wait_ns: float = 0.0

    @property
    def cycles(self) -> float:
        """Total CPU cycles: compute plus memory stalls."""
        return self.compute_cycles + self.stall_cycles

    @property
    def accesses(self) -> int:
        """Total demand lookups (hits + misses)."""
        return self.loads + self.stores

    @property
    def llc_mpki(self) -> float:
        """LLC misses per kilo-instruction — the paper's MPKI metric."""
        if self.instructions == 0:
            return 0.0
        return 1000.0 * self.llc_misses / self.instructions

    @property
    def average_load_to_use_ns(self) -> float:
        """Mean load-to-use latency per DRAM demand request (Figure 1)."""
        if self.llc_misses == 0:
            return 0.0
        return self.dram_wait_ns / self.llc_misses

    @property
    def memory_wait_ns(self) -> float:
        """All nanoseconds lost to DRAM: demand fills plus late prefetches."""
        return self.dram_wait_ns + self.late_prefetch_wait_ns

    @property
    def ipc(self) -> float:
        """Instructions per cycle (0 when no cycles)."""
        total = self.cycles
        return self.instructions / total if total else 0.0

    def merge(self, other: "FunctionStats") -> None:
        """Accumulate ``other`` into this record."""
        self.instructions += other.instructions
        self.compute_cycles += other.compute_cycles
        self.stall_cycles += other.stall_cycles
        self.loads += other.loads
        self.stores += other.stores
        self.software_prefetches += other.software_prefetches
        self.l1_misses += other.l1_misses
        self.l2_misses += other.l2_misses
        self.llc_misses += other.llc_misses
        self.prefetch_covered += other.prefetch_covered
        self.late_prefetch_hits += other.late_prefetch_hits
        self.dram_wait_ns += other.dram_wait_ns
        self.late_prefetch_wait_ns += other.late_prefetch_wait_ns


@dataclass
class RunResult:
    """The outcome of running one trace through a memory hierarchy."""

    #: Aggregate over the whole trace.
    total: FunctionStats = field(default_factory=FunctionStats)
    #: Per-function breakdown keyed by ``MemoryAccess.function``.
    functions: Dict[str, FunctionStats] = field(default_factory=dict)
    #: Wall-clock duration of the simulated execution, ns.
    elapsed_ns: float = 0.0
    #: DRAM traffic: line fills triggered by demand misses.
    dram_demand_fills: int = 0
    #: DRAM traffic: line fills triggered by hardware or software prefetch.
    dram_prefetch_fills: int = 0
    dram_demand_bytes: int = 0
    dram_prefetch_bytes: int = 0
    #: Prefetch lines proposed by hardware prefetchers (pre-dedup).
    hw_prefetches_issued: int = 0
    #: Prefetch lines that were fetched and later demanded.
    useful_prefetches: int = 0
    #: Prefetched lines evicted without any demand touch.
    wasted_prefetches: int = 0

    def function(self, name: str) -> FunctionStats:
        """Stats for ``name``, defaulting to an empty record."""
        return self.functions.get(name, FunctionStats())

    @property
    def dram_total_fills(self) -> int:
        """All DRAM line fills (demand + prefetch)."""
        return self.dram_demand_fills + self.dram_prefetch_fills

    @property
    def dram_total_bytes(self) -> int:
        """All DRAM bytes (demand + prefetch)."""
        return self.dram_demand_bytes + self.dram_prefetch_bytes

    @property
    def average_bandwidth(self) -> float:
        """Mean DRAM bandwidth over the run, bytes/ns (== GB/s)."""
        if self.elapsed_ns <= 0:
            return 0.0
        return self.dram_total_bytes / self.elapsed_ns

    @property
    def prefetch_traffic_fraction(self) -> float:
        """Share of DRAM fills that were prefetches."""
        total = self.dram_total_fills
        return self.dram_prefetch_fills / total if total else 0.0

    @property
    def prefetch_accuracy(self) -> float:
        """Useful / fetched prefetch lines (resolved ones only)."""
        resolved = self.useful_prefetches + self.wasted_prefetches
        return self.useful_prefetches / resolved if resolved else 0.0

    def speedup_over(self, baseline: "RunResult") -> float:
        """This run's speedup versus ``baseline`` (elapsed-time ratio).

        Greater than 1.0 means this run was faster.
        """
        if self.elapsed_ns <= 0:
            return 0.0
        return baseline.elapsed_ns / self.elapsed_ns
