"""The trace-driven timing simulator tying caches, prefetchers, and DRAM.

Timing model (documented in DESIGN.md §5): an in-order core retires one
instruction per cycle; memory stalls add the hit latency of the level that
serves each demand access, with DRAM latency coming from the
utilization-dependent queuing model. Prefetches — hardware proposals from
the :class:`~repro.memsys.prefetchers.PrefetcherBank` and software-prefetch
trace records — are issued non-blocking: the line is installed immediately
(so it can pollute) and tagged with an arrival time (so a demand access that
arrives too early stalls for the residual; this is what makes prefetch
*distance* a real tradeoff, Figure 15a).

Two engines execute that model:

* the **compiled engine** (default): the trace is lowered once into flat
  int columns (:meth:`~repro.access.trace.Trace.compile`) and replayed by
  a hot loop that binds every hot attribute to a local, probes the L1
  inline, skips the prefetcher bank entirely when every prefetcher is
  disabled (the most common ablation arm), and accumulates per-function
  statistics in locals that flush at function boundaries;
* the **reference interpreter**: the original record-at-a-time loop, kept
  verbatim as the correctness oracle. Set ``REPRO_SLOW_ENGINE=1`` to force
  it.

The two are **bit-identical** — same :class:`RunResult` down to the last
float, same cache/DRAM counters — because the compiled loop performs the
exact same arithmetic in the exact same order; the golden-equivalence
suite (``tests/test_engine_equivalence.py``) enforces this on random
traces.
"""

from __future__ import annotations

import os
from collections import OrderedDict, deque
from typing import Callable, Dict, List, Optional, Sequence

from repro.access.record import AccessKind
from repro.access.trace import Trace
from repro.memsys.cache import SetAssociativeCache, _LineState
from repro.memsys.config import HierarchyConfig
from repro.memsys.dram import DRAMModel
from repro.memsys.prefetchers.bank import PrefetcherBank, default_prefetcher_bank
from repro.memsys.stats import FunctionStats, RunResult
from repro.units import CACHE_LINE_BYTES

#: Set to "1" (or "true"/"yes"/"on") to force the reference interpreter.
SLOW_ENGINE_ENV = "REPRO_SLOW_ENGINE"


def _slow_engine_requested() -> bool:
    return os.environ.get(SLOW_ENGINE_ENV, "").strip().lower() in (
        "1", "true", "yes", "on")


class MemoryHierarchy:
    """One simulated core: L1/L2/LLC + prefetcher bank + DRAM.

    Args:
        config: Geometry, latencies, and the DRAM curve.
        prefetchers: The hardware prefetcher complement; defaults to the
            aggressive four-prefetcher bank of the modelled platforms.
        external_load: Optional ``now_ns -> bytes_per_ns`` callable adding
            co-tenant bandwidth pressure to the DRAM model.
    """

    def __init__(self, config: Optional[HierarchyConfig] = None,
                 prefetchers: Optional[PrefetcherBank] = None,
                 external_load: Optional[Callable[[float], float]] = None) -> None:
        self.config = config or HierarchyConfig()
        self.prefetchers = prefetchers if prefetchers is not None \
            else default_prefetcher_bank()
        self.l1 = SetAssociativeCache(self.config.l1)
        self.l2 = SetAssociativeCache(self.config.l2)
        self.llc = SetAssociativeCache(self.config.llc)
        self.dram = DRAMModel(self.config.dram, external_load=external_load)
        #: line -> arrival time of an issued, not-yet-demanded prefetch.
        self._in_flight: Dict[int, float] = {}
        #: Recent demand-miss lines, for the sequential-MLP discount. A
        #: short history (rather than just the previous miss) lets the
        #: discount recognise multiple interleaved streams, e.g. memcpy's
        #: alternating source/destination misses.
        self._recent_miss_lines: deque = deque(maxlen=8)
        self.now_ns = 0.0
        self._sw_issued = 0
        self._useful = 0
        #: Optional :class:`repro.obs.Tracer`; checked once per
        #: :meth:`run` call (never inside the hot loops), so attaching
        #: one costs a single ``sim-run`` event per trace replay and
        #: leaving it ``None`` costs one attribute test.
        self.obs = None
        #: Lockstep grouping caches (:mod:`repro.memsys.batched`). The
        #: config signature is immutable for the hierarchy's lifetime;
        #: the state fingerprint is invalidated by scalar runs, resets,
        #: and enabled-mask flips (via the prefetchers' enabled-watcher
        #: hooks, which MSR writes also fire) and re-stamped wholesale
        #: by batch export.
        self._config_sig_cache = None
        self._state_fp_cache = None
        for prefetcher in self.prefetchers:
            prefetcher._enabled_watchers.append(
                self._invalidate_state_fingerprint)

    # --- public controls -------------------------------------------------------

    def set_hardware_prefetchers(self, enabled: bool) -> None:
        """Direct (non-MSR) enable/disable of every hardware prefetcher."""
        self.prefetchers.set_all(enabled)

    def reset(self) -> None:
        """Flush all state: caches, prefetcher training, bandwidth window."""
        self.l1.flush()
        self.l2.flush()
        self.llc.flush()
        self.prefetchers.reset()
        self.dram.reset_window()
        self._in_flight.clear()
        self._recent_miss_lines.clear()
        self._state_fp_cache = None

    def _invalidate_state_fingerprint(self) -> None:
        self._state_fp_cache = None

    # --- execution ---------------------------------------------------------------

    def run(self, trace: Trace, start_ns: Optional[float] = None) -> RunResult:
        """Execute ``trace``; returns timing and per-function statistics.

        State (cache contents, prefetcher training, clock) persists across
        calls so multi-phase experiments can share warmed state; call
        :meth:`reset` between independent runs.

        Dispatches to the compiled fast engine unless ``REPRO_SLOW_ENGINE``
        requests the reference interpreter (or ``trace`` is a plain record
        iterable rather than a :class:`Trace`). Both engines produce
        bit-identical results.
        """
        if start_ns is not None:
            if start_ns < self.now_ns:
                raise ValueError(
                    f"cannot start at {start_ns}ns; clock is at {self.now_ns}ns")
            self.now_ns = start_ns

        # A scalar run mutates cache/prefetcher/in-flight state directly;
        # the lockstep grouping fingerprint must be recomputed after it.
        self._state_fp_cache = None
        result = RunResult()
        begin_ns = self.now_ns
        dram_demand0 = self.dram.demand_fills
        dram_prefetch0 = self.dram.prefetch_fills
        dram_demand_bytes0 = self.dram.demand_bytes
        dram_prefetch_bytes0 = self.dram.prefetch_bytes
        hw_issued0 = self.prefetchers.total_issued
        useful0 = self._useful
        wasted0 = (self.l1.wasted_prefetches + self.l2.wasted_prefetches
                   + self.llc.wasted_prefetches)

        if not isinstance(trace, Trace) or _slow_engine_requested():
            self._run_interpreted(trace, result)
        else:
            self._run_compiled(trace.compile(), result)

        result.elapsed_ns = self.now_ns - begin_ns
        result.dram_demand_fills = self.dram.demand_fills - dram_demand0
        result.dram_prefetch_fills = self.dram.prefetch_fills - dram_prefetch0
        result.dram_demand_bytes = self.dram.demand_bytes - dram_demand_bytes0
        result.dram_prefetch_bytes = self.dram.prefetch_bytes - dram_prefetch_bytes0
        result.hw_prefetches_issued = self.prefetchers.total_issued - hw_issued0
        result.useful_prefetches = self._useful - useful0
        result.wasted_prefetches = (
            self.l1.wasted_prefetches + self.l2.wasted_prefetches
            + self.llc.wasted_prefetches - wasted0)
        for stats in result.functions.values():
            result.total.merge(stats)
        if self.obs is not None and self.obs:
            self.obs.event("sim-run", self.now_ns,
                           accesses=result.total.instructions)
        return result

    # --- the reference interpreter ---------------------------------------------

    def _run_interpreted(self, trace, result: RunResult) -> None:
        """The original record-at-a-time loop — the correctness oracle.

        Kept verbatim from the pre-compiled-engine simulator; the fast
        engine must match it bit for bit.
        """
        cycle_ns = self.config.cycle_ns
        sw_cost_cycles = self.config.software_prefetch_cost_cycles

        for record in trace:
            stats = self._function_stats(result, record.function)
            if record.gap_cycles:
                self.now_ns += record.gap_cycles * cycle_ns
                stats.instructions += record.gap_cycles
                stats.compute_cycles += record.gap_cycles

            if record.kind is AccessKind.SOFTWARE_PREFETCH:
                stats.instructions += 1
                stats.compute_cycles += sw_cost_cycles
                stats.software_prefetches += 1
                self.now_ns += sw_cost_cycles * cycle_ns
                for line in record.lines_touched():
                    self._issue_prefetch(line, software=True)
                continue

            if record.kind is AccessKind.STREAM_HINT:
                # One instruction handing the stream extent to hardware
                # (the Section 8.3 interface prototype).
                stats.instructions += 1
                stats.compute_cycles += sw_cost_cycles
                stats.software_prefetches += 1
                self.now_ns += sw_cost_cycles * cycle_ns
                self.prefetchers.accept_hint(record.address, record.size)
                continue

            stats.instructions += 1
            stats.compute_cycles += 1
            self.now_ns += cycle_ns
            is_store = record.kind is AccessKind.STORE
            if is_store:
                stats.stores += 1
            else:
                stats.loads += 1
            for line in record.lines_touched():
                self._demand_access(line, record.pc, stats, is_store)

    # --- the compiled fast engine -----------------------------------------------

    def _run_compiled(self, compiled, result: RunResult) -> None:
        """One pass over pre-lowered int columns; see the module docstring.

        Bit-identity with :meth:`_run_interpreted` rests on performing the
        same float operations in the same order: per-function float stats
        are loaded into locals at a function boundary and flushed at the
        next, so each accumulation sequence is unchanged; adding a zero
        stall (the L1-hit case) is skipped because ``x + 0.0 == x`` for
        the non-negative values these accumulators hold.
        """
        config = self.config
        cycle_ns = config.cycle_ns
        sw_cost_cycles = config.software_prefetch_cost_cycles
        sw_cost_ns = sw_cost_cycles * cycle_ns
        store_scale = config.store_stall_fraction
        seq_mlp = config.sequential_mlp
        l2_hit_ns = config.l2.hit_latency_cycles * cycle_ns
        llc_hit_ns = config.llc.hit_latency_cycles * cycle_ns
        line_bytes = CACHE_LINE_BYTES

        # Per-cache hot state: sets dict, geometry, and local delta counters
        # flushed to the cache objects at the end of the loop. ``_sets`` is
        # never rebound (only cleared), so binding it here is safe.
        l1 = self.l1
        l1_shift = l1._line_shift
        l1_mask = l1._set_mask
        l1_nsets = l1.config.num_sets
        l1_assoc = l1.config.associativity
        l1_sets = l1._sets
        l1_sets_get = l1_sets.get
        l1_hits = l1_misses = l1_pref_hits = 0
        l1_wasted = l1_sized = 0
        l2 = self.l2
        l2_shift = l2._line_shift
        l2_mask = l2._set_mask
        l2_nsets = l2.config.num_sets
        l2_assoc = l2.config.associativity
        l2_sets = l2._sets
        l2_sets_get = l2_sets.get
        l2_hits = l2_misses = l2_pref_hits = 0
        l2_wasted = l2_sized = 0
        llc = self.llc
        llc_shift = llc._line_shift
        llc_mask = llc._set_mask
        llc_nsets = llc.config.num_sets
        llc_assoc = llc.config.associativity
        llc_sets = llc._sets
        llc_sets_get = llc_sets.get
        llc_hits = llc_misses = llc_pref_hits = 0
        llc_wasted = llc_sized = 0
        line_state = _LineState
        # DRAM demand-fill state, inlined from DRAMModel.request: the
        # latency curve and sliding-window parameters are immutable for
        # the life of the model, so they can live in locals; the window's
        # running sum is read-modify-written per fill (never cached across
        # records) because prefetch issues mutate it through the normal
        # method path in between.
        dram = self.dram
        dram_cfg = dram.config
        sat_bw = dram_cfg.saturation_bandwidth
        max_util = dram_cfg.max_utilization
        queue_gain = dram_cfg.queue_gain
        queue_exp = dram_cfg.queue_exponent
        unloaded_ns = dram_cfg.unloaded_latency_ns
        overload_gain = dram_cfg.overload_gain
        external_load = dram._external_load
        window = dram._window
        win_span = window.span_ns
        win_points = window._points
        win_append = win_points.append
        win_popleft = win_points.popleft
        line_bytes_f = float(line_bytes)
        d_fills = 0
        p_fills = 0
        sw_issued = 0
        prune_threshold = self._IN_FLIGHT_PRUNE_THRESHOLD
        bank = self.prefetchers
        bank_snapshot = bank.enabled_prefetchers
        accept_hint = bank.accept_hint
        issue_prefetch = self._issue_prefetch_at
        in_flight = self._in_flight
        # Shadow the recent-miss deque in a plain list for the duration of
        # the loop (nothing else reads it mid-run); two C-level ``in``
        # scans replace the per-miss Python loop over the deque. The
        # adjacency test ``any(abs(line - r) == CACHE_LINE_BYTES)`` is
        # exactly ``line - 64 in recent or line + 64 in recent``.
        recent = self._recent_miss_lines
        recent_cap = recent.maxlen
        recent_list = list(recent)
        recent_append = recent_list.append
        useful = 0

        functions = result.functions
        fnames = compiled.functions
        now = self.now_ns

        stats: Optional[FunctionStats] = None
        cur_fid = -1
        s_instr = s_comp = s_loads = s_stores = s_swpf = 0
        s_l1m = s_l2m = s_llcm = s_cov = s_late = 0
        s_stall = s_dram_w = s_late_w = 0.0

        for kind, line, extra, pc, gap, fid, addr, size in compiled.packed:
            if fid != cur_fid:
                if stats is not None:
                    stats.instructions = s_instr
                    stats.compute_cycles = s_comp
                    stats.stall_cycles = s_stall
                    stats.loads = s_loads
                    stats.stores = s_stores
                    stats.software_prefetches = s_swpf
                    stats.l1_misses = s_l1m
                    stats.l2_misses = s_l2m
                    stats.llc_misses = s_llcm
                    stats.prefetch_covered = s_cov
                    stats.late_prefetch_hits = s_late
                    stats.dram_wait_ns = s_dram_w
                    stats.late_prefetch_wait_ns = s_late_w
                fname = fnames[fid]
                stats = functions.get(fname)
                if stats is None:
                    stats = functions[fname] = FunctionStats()
                s_instr = stats.instructions
                s_comp = stats.compute_cycles
                s_stall = stats.stall_cycles
                s_loads = stats.loads
                s_stores = stats.stores
                s_swpf = stats.software_prefetches
                s_l1m = stats.l1_misses
                s_l2m = stats.l2_misses
                s_llcm = stats.llc_misses
                s_cov = stats.prefetch_covered
                s_late = stats.late_prefetch_hits
                s_dram_w = stats.dram_wait_ns
                s_late_w = stats.late_prefetch_wait_ns
                cur_fid = fid

            if gap:
                now += gap * cycle_ns
                s_instr += gap
                s_comp += gap

            if kind <= 1:  # LOAD (0) / STORE (1): the demand fast path
                s_instr += 1
                s_comp += 1
                now += cycle_ns
                if kind:
                    s_stores += 1
                    scale = store_scale
                else:
                    s_loads += 1
                    scale = 1.0
                while True:
                    tag = line >> l1_shift
                    if l1_mask is None:
                        cache_set = l1_sets_get(tag % l1_nsets)
                    else:
                        cache_set = l1_sets_get(tag & l1_mask)
                    if cache_set is not None and line in cache_set:
                        state = cache_set[line]
                        cache_set.move_to_end(line)
                        l1_hits += 1
                        if state.prefetched and not state.referenced:
                            l1_pref_hits += 1
                        state.referenced = True
                        hit = True
                    else:
                        l1_misses += 1
                        hit = False
                    snapshot = bank._snapshot
                    if snapshot is None:
                        snapshot = bank_snapshot()
                    if snapshot:
                        hw_lines = []
                        for prefetcher in snapshot:
                            hw_lines.extend(prefetcher.observe(line, pc, hit))
                    else:
                        hw_lines = None
                    if not hit:
                        s_l1m += 1
                        tag = line >> l2_shift
                        cache_set = l2_sets_get(
                            tag & l2_mask if l2_mask is not None
                            else tag % l2_nsets)
                        if cache_set is not None and line in cache_set:
                            # L2 hit (inlined demand lookup).
                            state = cache_set[line]
                            cache_set.move_to_end(line)
                            l2_hits += 1
                            if state.prefetched and not state.referenced:
                                l2_pref_hits += 1
                            state.referenced = True
                            stall = l2_hit_ns
                            arrival = in_flight.pop(line, None)
                            if arrival is not None:
                                s_cov += 1
                                useful += 1
                                residual = (arrival - now) * scale
                                if residual > 0.0:
                                    s_late += 1
                                    s_late_w += residual
                                    stall += residual
                            # Install into L1 (line just missed there).
                            tag = line >> l1_shift
                            index = tag & l1_mask if l1_mask is not None \
                                else tag % l1_nsets
                            cache_set = l1_sets_get(index)
                            if cache_set is None:
                                cache_set = l1_sets[index] = OrderedDict()
                            if len(cache_set) >= l1_assoc:
                                _, victim = cache_set.popitem(False)
                                l1_sized -= 1
                                if victim.prefetched and not victim.referenced:
                                    l1_wasted += 1
                            cache_set[line] = line_state(False)
                            l1_sized += 1
                        else:
                            l2_misses += 1
                            s_l2m += 1
                            tag = line >> llc_shift
                            cache_set = llc_sets_get(
                                tag & llc_mask if llc_mask is not None
                                else tag % llc_nsets)
                            if cache_set is not None and line in cache_set:
                                # LLC hit (inlined demand lookup).
                                state = cache_set[line]
                                cache_set.move_to_end(line)
                                llc_hits += 1
                                if state.prefetched and not state.referenced:
                                    llc_pref_hits += 1
                                state.referenced = True
                                stall = llc_hit_ns
                                arrival = in_flight.pop(line, None)
                                if arrival is not None:
                                    s_cov += 1
                                    useful += 1
                                    residual = (arrival - now) * scale
                                    if residual > 0.0:
                                        s_late += 1
                                        s_late_w += residual
                                        stall += residual
                            else:
                                # Full miss: DRAM fill (inlined
                                # DRAMModel.request, demand path). The
                                # fill's latency uses the utilization
                                # *before* its own bytes join the window.
                                llc_misses += 1
                                in_flight.pop(line, None)
                                horizon = now - win_span
                                win_sum = window._sum
                                while win_points \
                                        and win_points[0][0] <= horizon:
                                    win_sum -= win_popleft()[1]
                                if external_load is not None:
                                    raw = (win_sum / win_span
                                           + external_load(now)) / sat_bw
                                else:
                                    raw = (win_sum / win_span) / sat_bw
                                u = raw if raw > 0.0 else 0.0
                                clamped = u if u < max_util else max_util
                                queue = (queue_gain
                                         * (clamped ** queue_exp)
                                         / (1.0 - clamped))
                                latency = unloaded_ns * (1.0 + queue)
                                if u > max_util:
                                    latency *= 1.0 + overload_gain \
                                        * (u - max_util)
                                win_append((now, line_bytes_f))
                                window._sum = win_sum + line_bytes_f
                                d_fills += 1
                                completion = now + latency
                                wait = (completion - now) * scale
                                if line - line_bytes in recent_list \
                                        or line + line_bytes in recent_list:
                                    wait /= seq_mlp
                                if len(recent_list) >= recent_cap:
                                    del recent_list[0]
                                recent_append(line)
                                s_llcm += 1
                                s_dram_w += wait
                                stall = llc_hit_ns * scale + wait
                                # Install into LLC.
                                index = tag & llc_mask if llc_mask is not None \
                                    else tag % llc_nsets
                                cache_set = llc_sets_get(index)
                                if cache_set is None:
                                    cache_set = llc_sets[index] = OrderedDict()
                                if len(cache_set) >= llc_assoc:
                                    _, victim = cache_set.popitem(False)
                                    llc_sized -= 1
                                    if victim.prefetched \
                                            and not victim.referenced:
                                        llc_wasted += 1
                                cache_set[line] = line_state(False)
                                llc_sized += 1
                            # Install into L2 (line just missed there).
                            tag = line >> l2_shift
                            index = tag & l2_mask if l2_mask is not None \
                                else tag % l2_nsets
                            cache_set = l2_sets_get(index)
                            if cache_set is None:
                                cache_set = l2_sets[index] = OrderedDict()
                            if len(cache_set) >= l2_assoc:
                                _, victim = cache_set.popitem(False)
                                l2_sized -= 1
                                if victim.prefetched and not victim.referenced:
                                    l2_wasted += 1
                            cache_set[line] = line_state(False)
                            l2_sized += 1
                            # Install into L1.
                            tag = line >> l1_shift
                            index = tag & l1_mask if l1_mask is not None \
                                else tag % l1_nsets
                            cache_set = l1_sets_get(index)
                            if cache_set is None:
                                cache_set = l1_sets[index] = OrderedDict()
                            if len(cache_set) >= l1_assoc:
                                _, victim = cache_set.popitem(False)
                                l1_sized -= 1
                                if victim.prefetched and not victim.referenced:
                                    l1_wasted += 1
                            cache_set[line] = line_state(False)
                            l1_sized += 1
                        now += stall
                        s_stall += stall / cycle_ns
                    if hw_lines:
                        for hw_line in hw_lines:
                            if hw_line >= 0 and hw_line not in in_flight:
                                issue_prefetch(hw_line, False, now)
                                in_flight = self._in_flight
                    if not extra:
                        break
                    extra -= 1
                    line += line_bytes

            elif kind == 2:  # SOFTWARE_PREFETCH
                s_instr += 1
                s_comp += sw_cost_cycles
                s_swpf += 1
                now += sw_cost_ns
                # Inlined _issue_prefetch_at (software path): same checks
                # in the same order — in-flight dedup, prune, presence in
                # any level, then a DRAM prefetch fill and a prefetched
                # install into LLC and L2.
                while True:
                    if line not in in_flight:
                        if len(in_flight) > prune_threshold:
                            in_flight = self._in_flight = {
                                pending: arrival
                                for pending, arrival in in_flight.items()
                                if arrival > now
                            }
                        tag = line >> l1_shift
                        cache_set = l1_sets_get(
                            tag & l1_mask if l1_mask is not None
                            else tag % l1_nsets)
                        present = cache_set is not None and line in cache_set
                        if not present:
                            tag = line >> l2_shift
                            l2_index = tag & l2_mask if l2_mask is not None \
                                else tag % l2_nsets
                            cache_set = l2_sets_get(l2_index)
                            present = cache_set is not None \
                                and line in cache_set
                        if not present:
                            tag = line >> llc_shift
                            llc_index = tag & llc_mask \
                                if llc_mask is not None else tag % llc_nsets
                            cache_set = llc_sets_get(llc_index)
                            present = cache_set is not None \
                                and line in cache_set
                        if not present:
                            # DRAM prefetch fill (inlined DRAMModel.request).
                            horizon = now - win_span
                            win_sum = window._sum
                            while win_points \
                                    and win_points[0][0] <= horizon:
                                win_sum -= win_popleft()[1]
                            if external_load is not None:
                                raw = (win_sum / win_span
                                       + external_load(now)) / sat_bw
                            else:
                                raw = (win_sum / win_span) / sat_bw
                            u = raw if raw > 0.0 else 0.0
                            clamped = u if u < max_util else max_util
                            queue = (queue_gain
                                     * (clamped ** queue_exp)
                                     / (1.0 - clamped))
                            latency = unloaded_ns * (1.0 + queue)
                            if u > max_util:
                                latency *= 1.0 + overload_gain \
                                    * (u - max_util)
                            win_append((now, line_bytes_f))
                            window._sum = win_sum + line_bytes_f
                            p_fills += 1
                            in_flight[line] = now + latency
                            # Install into LLC, tagged prefetched.
                            cache_set = llc_sets_get(llc_index)
                            if cache_set is None:
                                cache_set = llc_sets[llc_index] = OrderedDict()
                            if len(cache_set) >= llc_assoc:
                                _, victim = cache_set.popitem(False)
                                llc_sized -= 1
                                if victim.prefetched \
                                        and not victim.referenced:
                                    llc_wasted += 1
                            cache_set[line] = line_state(True)
                            llc_sized += 1
                            # Install into L2, tagged prefetched.
                            cache_set = l2_sets_get(l2_index)
                            if cache_set is None:
                                cache_set = l2_sets[l2_index] = OrderedDict()
                            if len(cache_set) >= l2_assoc:
                                _, victim = cache_set.popitem(False)
                                l2_sized -= 1
                                if victim.prefetched \
                                        and not victim.referenced:
                                    l2_wasted += 1
                            cache_set[line] = line_state(True)
                            l2_sized += 1
                            sw_issued += 1
                    if not extra:
                        break
                    extra -= 1
                    line += line_bytes

            else:  # STREAM_HINT
                s_instr += 1
                s_comp += sw_cost_cycles
                s_swpf += 1
                now += sw_cost_ns
                accept_hint(addr, size)

        if stats is not None:
            stats.instructions = s_instr
            stats.compute_cycles = s_comp
            stats.stall_cycles = s_stall
            stats.loads = s_loads
            stats.stores = s_stores
            stats.software_prefetches = s_swpf
            stats.l1_misses = s_l1m
            stats.l2_misses = s_l2m
            stats.llc_misses = s_llcm
            stats.prefetch_covered = s_cov
            stats.late_prefetch_hits = s_late
            stats.dram_wait_ns = s_dram_w
            stats.late_prefetch_wait_ns = s_late_w
        l1.hits += l1_hits
        l1.misses += l1_misses
        l1.prefetch_hits += l1_pref_hits
        l1.wasted_prefetches += l1_wasted
        l1._size += l1_sized
        l2.hits += l2_hits
        l2.misses += l2_misses
        l2.prefetch_hits += l2_pref_hits
        l2.wasted_prefetches += l2_wasted
        l2._size += l2_sized
        llc.hits += llc_hits
        llc.misses += llc_misses
        llc.prefetch_hits += llc_pref_hits
        llc.wasted_prefetches += llc_wasted
        llc._size += llc_sized
        dram.demand_fills += d_fills
        dram.demand_bytes += d_fills * line_bytes
        dram.prefetch_fills += p_fills
        dram.prefetch_bytes += p_fills * line_bytes
        self._sw_issued += sw_issued
        recent.clear()
        recent.extend(recent_list)
        self._useful += useful
        self.now_ns = now

    # --- internals -------------------------------------------------------------------

    @staticmethod
    def _function_stats(result: RunResult, function: str) -> FunctionStats:
        stats = result.functions.get(function)
        if stats is None:
            stats = result.functions[function] = FunctionStats()
        return stats

    def _demand_access(self, line: int, pc: int, stats: FunctionStats,
                       is_store: bool = False) -> None:
        cycle_ns = self.config.cycle_ns
        # Stores drain through the write buffer; the core feels only a
        # fraction of their miss latency as back-pressure.
        scale = self.config.store_stall_fraction if is_store else 1.0
        l1_hit = self.l1.lookup(line)
        hw_lines = self.prefetchers.observe(line, pc, l1_hit)

        if l1_hit:
            stall_ns = 0.0
        elif self.l2.lookup(line):
            stats.l1_misses += 1
            stall_ns = self.config.l2.hit_latency_cycles * cycle_ns
            stall_ns += self._residual_wait(line, stats, scale)
            self.l1.install(line)
        elif self.llc.lookup(line):
            stats.l1_misses += 1
            stats.l2_misses += 1
            stall_ns = self.config.llc.hit_latency_cycles * cycle_ns
            stall_ns += self._residual_wait(line, stats, scale)
            self.l2.install(line)
            self.l1.install(line)
        else:
            stats.l1_misses += 1
            stats.l2_misses += 1
            # If a prefetch was issued for this line but it has already been
            # evicted from every cache, the prefetch was wasted: drop the
            # stale in-flight entry and pay for a fresh demand fill.
            self._in_flight.pop(line, None)
            completion = self.dram.request(self.now_ns, is_prefetch=False)
            wait_ns = (completion - self.now_ns) * scale
            # Sequential misses overlap in an OoO core: a miss adjacent to
            # any recent miss exposes only a fraction of the latency.
            if any(abs(line - recent) == CACHE_LINE_BYTES
                   for recent in self._recent_miss_lines):
                wait_ns /= self.config.sequential_mlp
            self._recent_miss_lines.append(line)
            stats.llc_misses += 1
            stats.dram_wait_ns += wait_ns
            stall_ns = self.config.llc.hit_latency_cycles * cycle_ns * scale \
                + wait_ns
            self.llc.install(line)
            self.l2.install(line)
            self.l1.install(line)

        self.now_ns += stall_ns
        stats.stall_cycles += stall_ns / cycle_ns

        for hw_line in hw_lines:
            self._issue_prefetch(hw_line, software=False)

    def _residual_wait(self, line: int, stats: FunctionStats,
                       scale: float = 1.0) -> float:
        """Extra wait if ``line`` was prefetched but hasn't arrived yet.

        ``scale`` discounts the wait for stores (write-buffer drain).
        """
        arrival = self._in_flight.pop(line, None)
        if arrival is None:
            return 0.0
        stats.prefetch_covered += 1
        self._useful += 1
        residual = (arrival - self.now_ns) * scale
        if residual <= 0.0:
            return 0.0
        stats.late_prefetch_hits += 1
        stats.late_prefetch_wait_ns += residual
        return residual

    #: In-flight entries are pruned once the table grows past this size;
    #: only already-arrived entries are dropped, which can at worst
    #: under-count ``prefetch_covered`` slightly on very long runs.
    _IN_FLIGHT_PRUNE_THRESHOLD = 1 << 18

    def _issue_prefetch(self, line: int, software: bool) -> None:
        self._issue_prefetch_at(line, software, self.now_ns)

    def _issue_prefetch_at(self, line: int, software: bool,
                           now_ns: float) -> None:
        """Issue one prefetch line at time ``now_ns``.

        Shared by both engines (the compiled loop keeps the clock in a
        local and passes it explicitly).
        """
        if line < 0:
            return
        if line in self._in_flight:
            return
        if len(self._in_flight) > self._IN_FLIGHT_PRUNE_THRESHOLD:
            self._in_flight = {
                pending: arrival
                for pending, arrival in self._in_flight.items()
                if arrival > now_ns
            }
        if self.l1.contains(line) or self.l2.contains(line) \
                or self.llc.contains(line):
            return
        completion = self.dram.request(now_ns, is_prefetch=True)
        self._in_flight[line] = completion
        # Install immediately (tagged prefetched) so pollution is modelled;
        # the in-flight entry makes early demand hits pay the residual.
        self.llc.install(line, prefetched=True)
        self.l2.install(line, prefetched=True)
        if software:
            self._sw_issued += 1

    # --- introspection ------------------------------------------------------------

    @property
    def software_prefetches_issued(self) -> int:
        """Software-prefetch lines actually fetched (post-dedup)."""
        return self._sw_issued

    @property
    def in_flight_prefetches(self) -> int:
        """Prefetched lines whose data has not been demanded yet."""
        return len(self._in_flight)


def run_many(hierarchies: Sequence[MemoryHierarchy], trace: Trace,
             batch_size: Optional[int] = None,
             export_state: bool = True,
             occupancy=None) -> List[RunResult]:
    """Run ``trace`` through many independent hierarchies, batching where
    it is provably safe.

    The fleet's dominant shape — hundreds of machine-arms replaying one
    shared trace — goes through the NumPy lockstep engine
    (:mod:`repro.memsys.batched`): arms that qualify (every *enabled*
    hardware prefetcher lockstep-safe, constant or absent external load,
    no tracer) are grouped by config signature *and* state fingerprint,
    chunked into batches of ``batch_size``, and executed simultaneously.
    Grouping happens afresh on every call, which is what lets
    control-mode fleets — daemons toggling MSRs between trace slices —
    regroup into smaller lockstep sub-batches as their enabled masks and
    training diverge, instead of falling all the way to scalar. Arms
    that do not qualify — or everything, when batching is off — run
    through :meth:`MemoryHierarchy.run` unchanged. Either way, every
    arm's result and post-run state is bit-identical to a scalar
    ``run(trace)``; results come back in input order.

    Args:
        hierarchies: The arms; mutated in place exactly as ``run`` would.
        trace: One trace shared by every arm.
        batch_size: Arms per lockstep batch. ``None`` defers to the
            ``REPRO_BATCH`` environment variable (default
            :data:`~repro.fleet.parallel.DEFAULT_BATCH_SIZE`); ``0``
            disables batching entirely. ``REPRO_SLOW_ENGINE`` also
            disables batching (the reference interpreter *is* the
            oracle chain's far end).
        export_state: When False, skip rebuilding batched arms' cache
            contents and prefetcher training after the run — the arms
            come back with counters, clock, and window intact but caches
            flushed and training reset. Use only when the arms are
            discarded afterwards.
        occupancy: Optional :class:`~repro.memsys.batched.BatchOccupancy`
            accumulating where each arm ran (lockstep vs scalar) and the
            per-reason scalar-fallback counts for this call.
    """
    from repro.fleet.parallel import resolve_batch_size
    from repro.fleet.shard import plan_batches
    from repro.memsys import batched

    hierarchies = list(hierarchies)
    resolved = resolve_batch_size(batch_size)

    def note_scalar(count: int, reason: str) -> None:
        if occupancy is not None and count:
            occupancy.record_scalar(count, reason)

    results: List[Optional[RunResult]] = [None] * len(hierarchies)
    scalar_arms: List[int] = []
    if resolved <= 0:
        scalar_arms = list(range(len(hierarchies)))
        note_scalar(len(scalar_arms), "batching-off")
    elif _slow_engine_requested():
        scalar_arms = list(range(len(hierarchies)))
        note_scalar(len(scalar_arms), "slow-engine")
    elif not isinstance(trace, Trace):
        scalar_arms = list(range(len(hierarchies)))
        note_scalar(len(scalar_arms), "uncompiled-trace")
    elif not batched.HAVE_NUMPY:
        scalar_arms = list(range(len(hierarchies)))
        note_scalar(len(scalar_arms), "no-numpy")
    else:
        compiled = trace.compile()
        sw_lines = batched.software_prefetch_lines(compiled)
        groups: Dict[tuple, List[int]] = {}
        for arm, hierarchy in enumerate(hierarchies):
            reason = batched.lockstep_fallback_reason(hierarchy)
            if reason is None:
                # Arms batch together only when both the config and the
                # starting cache/in-flight/recent/prefetcher state match
                # — state uniformity is what makes lockstep evolution
                # exact. The fingerprints are cached on the arm: a batch
                # stamps the shared post-run value, so epoch-loop
                # callers regroup without re-walking every cache.
                key = (batched.cached_config_signature(hierarchy),
                       batched.cached_state_fingerprint(hierarchy))
                groups.setdefault(key, []).append(arm)
            else:
                scalar_arms.append(arm)
                note_scalar(1, reason)
        for arms in groups.values():
            # Static half of the prune guard: a trace whose software
            # prefetches alone could cross the scalar engine's in-flight
            # threshold (the prune compares per-arm clocks, so firing it
            # would let cache behavior diverge inside a batch) never
            # enters lockstep. Hardware issue volume has no static
            # bound; the batch itself bails out dynamically instead.
            in_flight = len(hierarchies[arms[0]]._in_flight)
            if (in_flight + sw_lines
                    > MemoryHierarchy._IN_FLIGHT_PRUNE_THRESHOLD):
                scalar_arms.extend(arms)
                note_scalar(len(arms), "prune-bound")
                continue
            for start, stop in plan_batches(len(arms), resolved):
                chunk = arms[start:stop]
                try:
                    batch_results = batched.run_lockstep(
                        [hierarchies[arm] for arm in chunk], compiled,
                        export_state=export_state)
                except batched.LockstepBailout:
                    # The batch touched no arm state before export, so
                    # the chunk reruns scalar, bit-identically.
                    scalar_arms.extend(chunk)
                    note_scalar(len(chunk), "prune-bailout")
                    continue
                if occupancy is not None:
                    occupancy.record_batched(len(chunk), 1)
                for arm, result in zip(chunk, batch_results):
                    results[arm] = result

    for arm in scalar_arms:
        results[arm] = hierarchies[arm].run(trace)
    return results  # type: ignore[return-value]
