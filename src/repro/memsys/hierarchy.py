"""The trace-driven timing simulator tying caches, prefetchers, and DRAM.

Timing model (documented in DESIGN.md §5): an in-order core retires one
instruction per cycle; memory stalls add the hit latency of the level that
serves each demand access, with DRAM latency coming from the
utilization-dependent queuing model. Prefetches — hardware proposals from
the :class:`~repro.memsys.prefetchers.PrefetcherBank` and software-prefetch
trace records — are issued non-blocking: the line is installed immediately
(so it can pollute) and tagged with an arrival time (so a demand access that
arrives too early stalls for the residual; this is what makes prefetch
*distance* a real tradeoff, Figure 15a).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, Optional

from repro.access.record import AccessKind
from repro.access.trace import Trace
from repro.memsys.cache import SetAssociativeCache
from repro.memsys.config import HierarchyConfig
from repro.memsys.dram import DRAMModel
from repro.memsys.prefetchers.bank import PrefetcherBank, default_prefetcher_bank
from repro.memsys.stats import FunctionStats, RunResult
from repro.units import CACHE_LINE_BYTES


class MemoryHierarchy:
    """One simulated core: L1/L2/LLC + prefetcher bank + DRAM.

    Args:
        config: Geometry, latencies, and the DRAM curve.
        prefetchers: The hardware prefetcher complement; defaults to the
            aggressive four-prefetcher bank of the modelled platforms.
        external_load: Optional ``now_ns -> bytes_per_ns`` callable adding
            co-tenant bandwidth pressure to the DRAM model.
    """

    def __init__(self, config: Optional[HierarchyConfig] = None,
                 prefetchers: Optional[PrefetcherBank] = None,
                 external_load: Optional[Callable[[float], float]] = None) -> None:
        self.config = config or HierarchyConfig()
        self.prefetchers = prefetchers if prefetchers is not None \
            else default_prefetcher_bank()
        self.l1 = SetAssociativeCache(self.config.l1)
        self.l2 = SetAssociativeCache(self.config.l2)
        self.llc = SetAssociativeCache(self.config.llc)
        self.dram = DRAMModel(self.config.dram, external_load=external_load)
        #: line -> arrival time of an issued, not-yet-demanded prefetch.
        self._in_flight: Dict[int, float] = {}
        #: Recent demand-miss lines, for the sequential-MLP discount. A
        #: short history (rather than just the previous miss) lets the
        #: discount recognise multiple interleaved streams, e.g. memcpy's
        #: alternating source/destination misses.
        self._recent_miss_lines: deque = deque(maxlen=8)
        self.now_ns = 0.0
        self._sw_issued = 0
        self._useful = 0

    # --- public controls -------------------------------------------------------

    def set_hardware_prefetchers(self, enabled: bool) -> None:
        """Direct (non-MSR) enable/disable of every hardware prefetcher."""
        self.prefetchers.set_all(enabled)

    def reset(self) -> None:
        """Flush all state: caches, prefetcher training, bandwidth window."""
        self.l1.flush()
        self.l2.flush()
        self.llc.flush()
        self.prefetchers.reset()
        self.dram.reset_window()
        self._in_flight.clear()
        self._recent_miss_lines.clear()

    # --- execution ---------------------------------------------------------------

    def run(self, trace: Trace, start_ns: Optional[float] = None) -> RunResult:
        """Execute ``trace``; returns timing and per-function statistics.

        State (cache contents, prefetcher training, clock) persists across
        calls so multi-phase experiments can share warmed state; call
        :meth:`reset` between independent runs.
        """
        if start_ns is not None:
            if start_ns < self.now_ns:
                raise ValueError(
                    f"cannot start at {start_ns}ns; clock is at {self.now_ns}ns")
            self.now_ns = start_ns

        cycle_ns = self.config.cycle_ns
        sw_cost_cycles = self.config.software_prefetch_cost_cycles
        result = RunResult()
        begin_ns = self.now_ns
        dram_demand0 = self.dram.demand_fills
        dram_prefetch0 = self.dram.prefetch_fills
        dram_demand_bytes0 = self.dram.demand_bytes
        dram_prefetch_bytes0 = self.dram.prefetch_bytes
        hw_issued0 = self.prefetchers.total_issued
        useful0 = self._useful
        wasted0 = (self.l1.wasted_prefetches + self.l2.wasted_prefetches
                   + self.llc.wasted_prefetches)

        for record in trace:
            stats = self._function_stats(result, record.function)
            if record.gap_cycles:
                self.now_ns += record.gap_cycles * cycle_ns
                stats.instructions += record.gap_cycles
                stats.compute_cycles += record.gap_cycles

            if record.kind is AccessKind.SOFTWARE_PREFETCH:
                stats.instructions += 1
                stats.compute_cycles += sw_cost_cycles
                stats.software_prefetches += 1
                self.now_ns += sw_cost_cycles * cycle_ns
                for line in record.lines_touched():
                    self._issue_prefetch(line, software=True)
                continue

            if record.kind is AccessKind.STREAM_HINT:
                # One instruction handing the stream extent to hardware
                # (the Section 8.3 interface prototype).
                stats.instructions += 1
                stats.compute_cycles += sw_cost_cycles
                stats.software_prefetches += 1
                self.now_ns += sw_cost_cycles * cycle_ns
                self.prefetchers.accept_hint(record.address, record.size)
                continue

            stats.instructions += 1
            stats.compute_cycles += 1
            self.now_ns += cycle_ns
            is_store = record.kind is AccessKind.STORE
            if is_store:
                stats.stores += 1
            else:
                stats.loads += 1
            for line in record.lines_touched():
                self._demand_access(line, record.pc, stats, is_store)

        result.elapsed_ns = self.now_ns - begin_ns
        result.dram_demand_fills = self.dram.demand_fills - dram_demand0
        result.dram_prefetch_fills = self.dram.prefetch_fills - dram_prefetch0
        result.dram_demand_bytes = self.dram.demand_bytes - dram_demand_bytes0
        result.dram_prefetch_bytes = self.dram.prefetch_bytes - dram_prefetch_bytes0
        result.hw_prefetches_issued = self.prefetchers.total_issued - hw_issued0
        result.useful_prefetches = self._useful - useful0
        result.wasted_prefetches = (
            self.l1.wasted_prefetches + self.l2.wasted_prefetches
            + self.llc.wasted_prefetches - wasted0)
        for stats in result.functions.values():
            result.total.merge(stats)
        return result

    # --- internals -------------------------------------------------------------------

    @staticmethod
    def _function_stats(result: RunResult, function: str) -> FunctionStats:
        stats = result.functions.get(function)
        if stats is None:
            stats = result.functions[function] = FunctionStats()
        return stats

    def _demand_access(self, line: int, pc: int, stats: FunctionStats,
                       is_store: bool = False) -> None:
        cycle_ns = self.config.cycle_ns
        # Stores drain through the write buffer; the core feels only a
        # fraction of their miss latency as back-pressure.
        scale = self.config.store_stall_fraction if is_store else 1.0
        l1_hit = self.l1.lookup(line)
        hw_lines = self.prefetchers.observe(line, pc, l1_hit)

        if l1_hit:
            stall_ns = 0.0
        elif self.l2.lookup(line):
            stats.l1_misses += 1
            stall_ns = self.config.l2.hit_latency_cycles * cycle_ns
            stall_ns += self._residual_wait(line, stats, scale)
            self.l1.install(line)
        elif self.llc.lookup(line):
            stats.l1_misses += 1
            stats.l2_misses += 1
            stall_ns = self.config.llc.hit_latency_cycles * cycle_ns
            stall_ns += self._residual_wait(line, stats, scale)
            self.l2.install(line)
            self.l1.install(line)
        else:
            stats.l1_misses += 1
            stats.l2_misses += 1
            # If a prefetch was issued for this line but it has already been
            # evicted from every cache, the prefetch was wasted: drop the
            # stale in-flight entry and pay for a fresh demand fill.
            self._in_flight.pop(line, None)
            completion = self.dram.request(self.now_ns, is_prefetch=False)
            wait_ns = (completion - self.now_ns) * scale
            # Sequential misses overlap in an OoO core: a miss adjacent to
            # any recent miss exposes only a fraction of the latency.
            if any(abs(line - recent) == CACHE_LINE_BYTES
                   for recent in self._recent_miss_lines):
                wait_ns /= self.config.sequential_mlp
            self._recent_miss_lines.append(line)
            stats.llc_misses += 1
            stats.dram_wait_ns += wait_ns
            stall_ns = self.config.llc.hit_latency_cycles * cycle_ns * scale \
                + wait_ns
            self.llc.install(line)
            self.l2.install(line)
            self.l1.install(line)

        self.now_ns += stall_ns
        stats.stall_cycles += stall_ns / cycle_ns

        for hw_line in hw_lines:
            self._issue_prefetch(hw_line, software=False)

    def _residual_wait(self, line: int, stats: FunctionStats,
                       scale: float = 1.0) -> float:
        """Extra wait if ``line`` was prefetched but hasn't arrived yet.

        ``scale`` discounts the wait for stores (write-buffer drain).
        """
        arrival = self._in_flight.pop(line, None)
        if arrival is None:
            return 0.0
        stats.prefetch_covered += 1
        self._useful += 1
        residual = (arrival - self.now_ns) * scale
        if residual <= 0.0:
            return 0.0
        stats.late_prefetch_hits += 1
        stats.late_prefetch_wait_ns += residual
        return residual

    #: In-flight entries are pruned once the table grows past this size;
    #: only already-arrived entries are dropped, which can at worst
    #: under-count ``prefetch_covered`` slightly on very long runs.
    _IN_FLIGHT_PRUNE_THRESHOLD = 1 << 18

    def _issue_prefetch(self, line: int, software: bool) -> None:
        if line < 0:
            return
        if line in self._in_flight:
            return
        if len(self._in_flight) > self._IN_FLIGHT_PRUNE_THRESHOLD:
            now = self.now_ns
            self._in_flight = {
                pending: arrival
                for pending, arrival in self._in_flight.items()
                if arrival > now
            }
        if self.l1.contains(line) or self.l2.contains(line) \
                or self.llc.contains(line):
            return
        completion = self.dram.request(self.now_ns, is_prefetch=True)
        self._in_flight[line] = completion
        # Install immediately (tagged prefetched) so pollution is modelled;
        # the in-flight entry makes early demand hits pay the residual.
        self.llc.install(line, prefetched=True)
        self.l2.install(line, prefetched=True)
        if software:
            self._sw_issued += 1

    # --- introspection ------------------------------------------------------------

    @property
    def software_prefetches_issued(self) -> int:
        """Software-prefetch lines actually fetched (post-dedup)."""
        return self._sw_issued

    @property
    def in_flight_prefetches(self) -> int:
        """Prefetched lines whose data has not been demanded yet."""
        return len(self._in_flight)
