"""A set-associative cache with true-LRU replacement.

Each line carries a ``prefetched`` flag so the simulator can account
prefetch usefulness: a prefetched line that is evicted before any demand
touch was a wasted fetch (the bandwidth cost the paper blames for the
latency penalty of aggressive prefetching), while a demand hit on a
prefetched line is a covered miss.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional

from repro.memsys.config import CacheConfig


@dataclass
class EvictedLine:
    """What fell out of the cache on an installation."""

    line: int
    prefetched: bool
    referenced: bool

    @property
    def wasted_prefetch(self) -> bool:
        """True when a prefetched line dies without a single demand touch."""
        return self.prefetched and not self.referenced


class _LineState:
    __slots__ = ("prefetched", "referenced")

    def __init__(self, prefetched: bool) -> None:
        self.prefetched = prefetched
        self.referenced = not prefetched


class SetAssociativeCache:
    """A classic set-associative LRU cache over line addresses."""

    __slots__ = ("config", "_sets", "_set_mask", "_line_shift", "_size",
                 "hits", "misses", "prefetch_hits", "wasted_prefetches")

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        num_sets = config.num_sets
        if num_sets & (num_sets - 1):
            # Non-power-of-two set counts use modulo indexing instead.
            self._set_mask = None
        else:
            self._set_mask = num_sets - 1
        self._line_shift = config.line_bytes.bit_length() - 1
        self._sets: Dict[int, OrderedDict] = {}
        self._size = 0
        self.hits = 0
        self.misses = 0
        self.prefetch_hits = 0
        self.wasted_prefetches = 0

    def _index(self, line: int) -> int:
        tag = line >> self._line_shift
        if self._set_mask is not None:
            return tag & self._set_mask
        return tag % self.config.num_sets

    def lookup(self, line: int, demand: bool = True) -> bool:
        """Probe for ``line``; updates LRU and hit/miss counters.

        Args:
            line: Line-aligned address.
            demand: True for demand accesses (counted, marks the line
                referenced); False for probes by the prefetch path
                (not counted as hits/misses).
        """
        cache_set = self._sets.get(self._index(line))
        if cache_set is not None and line in cache_set:
            state = cache_set[line]
            cache_set.move_to_end(line)
            if demand:
                self.hits += 1
                if state.prefetched and not state.referenced:
                    self.prefetch_hits += 1
                state.referenced = True
            return True
        if demand:
            self.misses += 1
        return False

    def contains(self, line: int) -> bool:
        """Probe without touching LRU state or counters."""
        cache_set = self._sets.get(self._index(line))
        return cache_set is not None and line in cache_set

    def install(self, line: int, prefetched: bool = False) -> Optional[EvictedLine]:
        """Insert ``line``; returns the evicted victim, if any.

        Installing a line that is already present refreshes its LRU
        position (and clears nothing); a demand install of a prefetched
        line keeps its ``prefetched`` provenance.
        """
        index = self._index(line)
        cache_set = self._sets.get(index)
        if cache_set is None:
            cache_set = self._sets[index] = OrderedDict()
        if line in cache_set:
            cache_set.move_to_end(line)
            if not prefetched:
                cache_set[line].referenced = True
            return None
        victim: Optional[EvictedLine] = None
        if len(cache_set) >= self.config.associativity:
            victim_line, victim_state = cache_set.popitem(last=False)
            self._size -= 1
            victim = EvictedLine(victim_line, victim_state.prefetched,
                                 victim_state.referenced)
            if victim.wasted_prefetch:
                self.wasted_prefetches += 1
        cache_set[line] = _LineState(prefetched)
        self._size += 1
        return victim

    def invalidate(self, line: int) -> bool:
        """Drop ``line`` if present; returns whether it was present."""
        cache_set = self._sets.get(self._index(line))
        if cache_set is not None and line in cache_set:
            del cache_set[line]
            self._size -= 1
            return True
        return False

    def flush(self) -> None:
        """Empty the cache (counters are preserved)."""
        self._sets.clear()
        self._size = 0

    @property
    def occupancy(self) -> int:
        """Number of valid lines currently resident.

        Maintained incrementally (installs, evictions, invalidations, and
        flushes adjust a counter) because telemetry sampling paths read it
        per epoch; the old O(num_sets) sum walked every set.
        """
        return self._size

    @property
    def accesses(self) -> int:
        """Total demand lookups (hits + misses)."""
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        """Demand misses / demand lookups (0 when idle)."""
        total = self.accesses
        return self.misses / total if total else 0.0
