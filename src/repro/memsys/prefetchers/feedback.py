"""Accuracy-first prefetching — the Section 8.1 prototype.

"Designs that make accuracy a first-class concern would be more efficient
and well-suited for data center environments." (Section 8.1.)

:class:`FeedbackThrottledPrefetcher` wraps any hardware prefetcher with
feedback-directed gating (in the spirit of Srinath et al., HPCA'07, the
paper's [19]): it tracks what fraction of the inner prefetcher's recent
issues were later demanded and *gates* the prefetcher when accuracy drops
below a floor. While gated it keeps evaluating the inner prefetcher in
shadow mode — proposals are tracked but not fetched — so a workload phase
change that restores accuracy automatically un-gates it.

On blindly-aggressive prefetchers (next-line, adjacent-line) this removes
most of the wasted traffic on irregular code while preserving coverage on
streams — the direction the paper suggests hardware should move so that
systems like Limoncello have less to clean up.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Tuple

from repro.memsys.prefetchers.base import HardwarePrefetcher


class FeedbackThrottledPrefetcher(HardwarePrefetcher):
    """Gates an inner prefetcher by its measured accuracy.

    Args:
        inner: The prefetcher being supervised.
        name: Bank name (defaults to the inner prefetcher's, so the
            wrapper can stand in for it under the same MSR control).
        window: Tracked issues per accuracy evaluation.
        gate_below: Gate when windowed accuracy falls below this.
        ungate_above: Un-gate when shadow accuracy rises above this.
        tracker_entries: LRU capacity of the usefulness tracker.
    """

    def __init__(self, inner: HardwarePrefetcher, name: str = "",
                 window: int = 64, gate_below: float = 0.35,
                 ungate_above: float = 0.65,
                 tracker_entries: int = 4096) -> None:
        super().__init__(name or inner.name)
        if window <= 0 or tracker_entries <= 0:
            raise ValueError("window and tracker size must be positive")
        if not 0.0 <= gate_below < ungate_above <= 1.0:
            raise ValueError("need 0 <= gate_below < ungate_above <= 1")
        self.inner = inner
        self.window = window
        self.gate_below = gate_below
        self.ungate_above = ungate_above
        self._tracker_entries = tracker_entries
        self.gated = False
        #: Recently proposed lines (issued or shadow), awaiting a touch.
        self._tracked: "OrderedDict[int, None]" = OrderedDict()
        self._window_proposed = 0
        self._window_useful = 0
        self.gate_events = 0
        self.ungate_events = 0
        self.suppressed = 0

    @property
    def window_accuracy(self) -> float:
        """Useful / proposed fraction in the current window."""
        if self._window_proposed == 0:
            return 1.0
        return self._window_useful / self._window_proposed

    def _observe(self, line: int, pc: int, was_hit: bool) -> List[int]:
        if line in self._tracked:
            del self._tracked[line]
            self._window_useful += 1

        # The inner prefetcher must keep training even while gated, so
        # its own enable flag stays on; the wrapper's flag (checked by
        # the bank via HardwarePrefetcher.observe) governs everything.
        proposals = self.inner.observe(line, pc, was_hit)
        for proposed in proposals:
            if proposed not in self._tracked:
                if len(self._tracked) >= self._tracker_entries:
                    self._tracked.popitem(last=False)
                self._tracked[proposed] = None
        self._window_proposed += len(proposals)
        if self._window_proposed >= self.window:
            self._rebalance()

        if self.gated:
            self.suppressed += len(proposals)
            return []
        return proposals

    def _rebalance(self) -> None:
        accuracy = self.window_accuracy
        if not self.gated and accuracy < self.gate_below:
            self.gated = True
            self.gate_events += 1
        elif self.gated and accuracy > self.ungate_above:
            self.gated = False
            self.ungate_events += 1
        self._window_proposed = 0
        self._window_useful = 0

    def reset(self) -> None:
        """Drop all training/tracking state (counters survive)."""
        self.inner.reset()
        self._tracked.clear()
        self._window_proposed = 0
        self._window_useful = 0
        self.gated = False

    # --- lockstep protocol ----------------------------------------------------
    # Every hook recurses into ``inner``: the supervised prefetcher lives
    # outside any bank, so the wrapper is its only lockstep conduit. The
    # wrapper is only lockstep-safe when its inner model is.

    @property
    def lockstep_safe(self) -> bool:  # type: ignore[override]
        return self.inner.lockstep_safe

    def lockstep_params(self) -> Tuple:
        if not self.inner.lockstep_safe:
            raise NotImplementedError(
                f"inner prefetcher {self.inner.name!r} is not lockstep-safe")
        return (type(self).__name__, self.name, self.window,
                self.gate_below, self.ungate_above, self._tracker_entries,
                self.inner.lockstep_params())

    def training_fingerprint(self) -> Tuple:
        return (self.gated, self._window_proposed, self._window_useful,
                tuple(self._tracked), self.inner.training_fingerprint())

    def clone_for_lockstep(self) -> "FeedbackThrottledPrefetcher":
        if not self.inner.lockstep_safe:
            raise NotImplementedError(
                f"inner prefetcher {self.inner.name!r} is not lockstep-safe")
        clone = type(self)(
            inner=self.inner.clone_for_lockstep(), name=self.name,
            window=self.window, gate_below=self.gate_below,
            ungate_above=self.ungate_above,
            tracker_entries=self._tracker_entries)
        clone.gated = self.gated
        clone._tracked = OrderedDict(self._tracked)
        clone._window_proposed = self._window_proposed
        clone._window_useful = self._window_useful
        return clone

    def adopt_training(self, source: "FeedbackThrottledPrefetcher") -> None:
        self.gated = source.gated
        self._tracked = OrderedDict(source._tracked)
        self._window_proposed = source._window_proposed
        self._window_useful = source._window_useful
        self.inner.adopt_training(source.inner)

    def counter_signature(self) -> Tuple[int, ...]:
        return ((self.issued, self.gate_events, self.ungate_events,
                 self.suppressed) + self.inner.counter_signature())

    def apply_counter_delta(self, delta: Tuple[int, ...]) -> None:
        self.issued += delta[0]
        self.gate_events += delta[1]
        self.ungate_events += delta[2]
        self.suppressed += delta[3]
        self.inner.apply_counter_delta(delta[4:])
