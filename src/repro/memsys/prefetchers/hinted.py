"""Software-hinted hardware prefetching — the Section 8.3 prototype.

"Research into better hardware-software interfaces that allow for ease of
collaboration between the two will undoubtedly lead to much more powerful
and efficient prefetching systems." (Section 8.3.)

The prototype interface is one instruction: a *stream hint* carrying the
exact extent of an upcoming stream (start, length). The hardware engine
then does what it is uniquely good at — issuing fetches quickly and
timely — while software contributes what it uniquely knows — exactly how
much data will be touched. Compared to Soft Limoncello's per-`degree`
prefetch instructions, a hinted stream costs a single instruction, never
overshoots the object, and paces itself against the demand stream.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.memsys.prefetchers.base import HardwarePrefetcher
from repro.units import CACHE_LINE_BYTES, line_address


class _HintedRegion:
    __slots__ = ("start", "end", "issued_until")

    def __init__(self, start: int, end: int) -> None:
        self.start = start
        self.end = end
        self.issued_until = start

    @property
    def exhausted(self) -> bool:
        """Whether the region has been fully issued."""
        return self.issued_until >= self.end


class HintedRegionPrefetcher(HardwarePrefetcher):
    """Streams exactly the regions software hinted, paced by demand.

    Pacing: on every demand observation, each active region issues up to
    ``degree`` lines, keeping its fetch frontier at most ``lead_lines``
    ahead of the last demand touch inside the region (or of the region
    start, before the demand stream arrives). A region retires when fully
    issued; there is no training, no overshoot, and no guessing.

    Args:
        degree: Max lines issued per observation per region.
        lead_lines: How far the frontier may run ahead of demand.
        max_regions: Concurrent hinted regions (hardware table size);
            the oldest region is dropped on overflow.
    """

    lockstep_safe = True

    def __init__(self, name: str = "hinted_stream", degree: int = 4,
                 lead_lines: int = 16, max_regions: int = 16) -> None:
        super().__init__(name)
        if degree < 1 or lead_lines < 1 or max_regions < 1:
            raise ValueError("degree, lead_lines, max_regions must be >= 1")
        self.degree = degree
        self.lead_lines = lead_lines
        self.max_regions = max_regions
        self._regions: Dict[int, _HintedRegion] = {}
        self.hints_accepted = 0
        self.hints_dropped = 0

    # --- the new interface -------------------------------------------------

    def accept_hint(self, start: int, length: int) -> None:
        """Register a stream extent supplied by software."""
        if length <= 0:
            return
        first = line_address(start)
        end = line_address(start + length - 1) + CACHE_LINE_BYTES
        if len(self._regions) >= self.max_regions:
            oldest = next(iter(self._regions))
            del self._regions[oldest]
            self.hints_dropped += 1
        self._regions[first] = _HintedRegion(first, end)
        self.hints_accepted += 1

    # --- observation ----------------------------------------------------------

    def _observe(self, line: int, pc: int, was_hit: bool) -> List[int]:
        if not self._regions:
            return []
        issued: List[int] = []
        retired: List[int] = []
        for key, region in self._regions.items():
            if region.start <= line < region.end:
                demand_frontier = line
            else:
                demand_frontier = region.start
            limit = min(region.end,
                        demand_frontier
                        + self.lead_lines * CACHE_LINE_BYTES)
            budget = self.degree
            while budget > 0 and region.issued_until < limit:
                issued.append(region.issued_until)
                region.issued_until += CACHE_LINE_BYTES
                budget -= 1
            if region.exhausted:
                retired.append(key)
        for key in retired:
            del self._regions[key]
        return issued

    @property
    def active_regions(self) -> int:
        """Hinted regions still being streamed."""
        return len(self._regions)

    def reset(self) -> None:
        """Drop all training/tracking state (counters survive)."""
        self._regions.clear()

    # --- lockstep protocol ----------------------------------------------------

    def lockstep_params(self) -> Tuple:
        return (type(self).__name__, self.name, self.degree,
                self.lead_lines, self.max_regions)

    def training_fingerprint(self) -> Tuple:
        # Insertion order included: overflow drops the oldest region.
        return tuple((key, r.start, r.end, r.issued_until)
                     for key, r in self._regions.items())

    def clone_for_lockstep(self) -> "HintedRegionPrefetcher":
        clone = type(self)(name=self.name, degree=self.degree,
                           lead_lines=self.lead_lines,
                           max_regions=self.max_regions)
        clone.adopt_training(self)
        return clone

    def adopt_training(self, source: "HintedRegionPrefetcher") -> None:
        regions: Dict[int, _HintedRegion] = {}
        for key, region in source._regions.items():
            fresh = _HintedRegion.__new__(_HintedRegion)
            fresh.start = region.start
            fresh.end = region.end
            fresh.issued_until = region.issued_until
            regions[key] = fresh
        self._regions = regions

    def counter_signature(self) -> Tuple[int, ...]:
        return (self.issued, self.hints_accepted, self.hints_dropped)

    def apply_counter_delta(self, delta: Tuple[int, ...]) -> None:
        self.issued += delta[0]
        self.hints_accepted += delta[1]
        self.hints_dropped += delta[2]
