"""Common interface for hardware prefetcher models."""

from __future__ import annotations

from typing import Callable, List


class HardwarePrefetcher:
    """Base class: observe demand accesses, propose line addresses to fetch.

    Subclasses implement :meth:`_observe`; this base class handles the
    enable switch (driven, ultimately, by the simulated MSR bits) and the
    issue counter. A disabled prefetcher neither trains nor issues, which
    matches how the MSR disable bits behave on real parts.

    ``enabled`` is a property: flipping it notifies any registered
    watchers (``_enabled_watchers``), which is how a
    :class:`~repro.memsys.prefetchers.bank.PrefetcherBank` keeps its
    enabled-prefetcher snapshot coherent without re-scanning the bank on
    every simulated access.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._enabled = True
        #: Zero-argument callbacks invoked whenever ``enabled`` flips.
        self._enabled_watchers: List[Callable[[], None]] = []
        self.issued = 0

    @property
    def enabled(self) -> bool:
        """Whether the prefetcher trains and issues."""
        return self._enabled

    @enabled.setter
    def enabled(self, value: bool) -> None:
        value = bool(value)
        if value == self._enabled:
            return
        self._enabled = value
        for watcher in self._enabled_watchers:
            watcher()

    def observe(self, line: int, pc: int, was_hit: bool) -> List[int]:
        """Feed one demand access; returns line addresses to prefetch.

        Args:
            line: Line-aligned address of the demand access.
            pc: Program counter of the access (stride tables key on it).
            was_hit: Whether the access hit in the cache the prefetcher
                observes (some policies only train on misses).
        """
        if not self._enabled:
            return []
        lines = self._observe(line, pc, was_hit)
        self.issued += len(lines)
        return lines

    def _observe(self, line: int, pc: int, was_hit: bool) -> List[int]:
        raise NotImplementedError

    def reset(self) -> None:
        """Drop all training state (counters are preserved)."""
