"""Common interface for hardware prefetcher models."""

from __future__ import annotations

from typing import Callable, List, Tuple


class HardwarePrefetcher:
    """Base class: observe demand accesses, propose line addresses to fetch.

    Subclasses implement :meth:`_observe`; this base class handles the
    enable switch (driven, ultimately, by the simulated MSR bits) and the
    issue counter. A disabled prefetcher neither trains nor issues, which
    matches how the MSR disable bits behave on real parts.

    ``enabled`` is a property: flipping it notifies any registered
    watchers (``_enabled_watchers``), which is how a
    :class:`~repro.memsys.prefetchers.bank.PrefetcherBank` keeps its
    enabled-prefetcher snapshot coherent without re-scanning the bank on
    every simulated access.

    **Lockstep protocol.** The batched lockstep engine
    (:mod:`repro.memsys.batched`) evolves one prefetcher *clone* for a
    whole batch of machine-arms, exploiting the fact that ``observe`` is
    a pure function of arm-uniform inputs. A model that opts in sets
    :attr:`lockstep_safe` and implements the four state hooks
    (:meth:`lockstep_params`, :meth:`training_fingerprint`,
    :meth:`clone_for_lockstep`, :meth:`adopt_training`) plus — when it
    carries counters beyond ``issued`` — the counter pair
    (:meth:`counter_signature` / :meth:`apply_counter_delta`). The
    contract: the fingerprint must cover *every* bit of mutable training
    state that can steer future proposals, and a clone must evolve
    exactly as the original would. Subclasses that add training state
    without extending the hooks must leave ``lockstep_safe`` False.
    """

    #: Whether the batched lockstep engine may clone this prefetcher and
    #: evolve the clone once per batch. Built-in models opt in; custom
    #: subclasses default to scalar execution until they implement the
    #: lockstep protocol themselves.
    lockstep_safe = False

    def __init__(self, name: str) -> None:
        self.name = name
        self._enabled = True
        #: Zero-argument callbacks invoked whenever ``enabled`` flips.
        self._enabled_watchers: List[Callable[[], None]] = []
        self.issued = 0

    @property
    def enabled(self) -> bool:
        """Whether the prefetcher trains and issues."""
        return self._enabled

    @enabled.setter
    def enabled(self, value: bool) -> None:
        value = bool(value)
        if value == self._enabled:
            return
        self._enabled = value
        for watcher in self._enabled_watchers:
            watcher()

    def observe(self, line: int, pc: int, was_hit: bool) -> List[int]:
        """Feed one demand access; returns line addresses to prefetch.

        Args:
            line: Line-aligned address of the demand access.
            pc: Program counter of the access (stride tables key on it).
            was_hit: Whether the access hit in the cache the prefetcher
                observes (some policies only train on misses).
        """
        if not self._enabled:
            return []
        lines = self._observe(line, pc, was_hit)
        self.issued += len(lines)
        return lines

    def _observe(self, line: int, pc: int, was_hit: bool) -> List[int]:
        raise NotImplementedError

    def reset(self) -> None:
        """Drop all training state (counters are preserved)."""

    # --- lockstep protocol ----------------------------------------------------

    def lockstep_params(self) -> Tuple:
        """Immutable configuration, for the batch grouping key.

        Two prefetchers whose params match propose identical lines from
        identical training state; the class and bank name are included so
        differently-shaped banks can never alias.
        """
        raise NotImplementedError

    def training_fingerprint(self) -> Tuple:
        """Hashable summary of all mutable training state, order included.

        Arms group into one lockstep batch only when their fingerprints
        match — table iteration order matters (LRU victim selection reads
        it), so implementations must preserve it, and counters are
        excluded (they never steer proposals).
        """
        raise NotImplementedError

    def clone_for_lockstep(self) -> "HardwarePrefetcher":
        """A fresh instance carrying a copy of the training state.

        The clone starts with zeroed counters (so its post-run counter
        signature *is* the batch delta) and no enabled-watchers (it must
        never alias a bank or a hierarchy). ``copy.deepcopy`` is wrong
        here — ``_enabled_watchers`` holds bound methods of the owning
        bank — hence the explicit constructor-plus-copy shape.
        """
        raise NotImplementedError

    def adopt_training(self, source: "HardwarePrefetcher") -> None:
        """Copy the evolved training state from a lockstep clone.

        Called once per arm at batch export; must deep-copy (each arm
        needs its own mutable tables) and must not touch counters.
        """
        raise NotImplementedError

    def counter_signature(self) -> Tuple[int, ...]:
        """The counters a run may advance, in a fixed per-class order."""
        return (self.issued,)

    def apply_counter_delta(self, delta: Tuple[int, ...]) -> None:
        """Add a lockstep clone's counter signature onto this instance."""
        self.issued += delta[0]
