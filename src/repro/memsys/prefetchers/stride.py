"""A per-PC stride prefetcher (IP-stride) with confidence counters."""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Tuple

from repro.memsys.prefetchers.base import HardwarePrefetcher
from repro.units import line_address


class _StrideEntry:
    __slots__ = ("last_line", "stride", "confidence")

    def __init__(self, last_line: int) -> None:
        self.last_line = last_line
        self.stride = 0
        self.confidence = 0


class StridePrefetcher(HardwarePrefetcher):
    """Trains a (last address, stride, confidence) tuple per load PC.

    After ``confidence_threshold`` consecutive accesses with the same line
    stride, it fetches ``degree`` lines ahead along the stride starting
    ``distance`` strides out. The warm-up requirement is the behaviour
    Soft Limoncello exploits: short streams finish before the table is
    confident, so hardware gets no coverage there while software — which
    knows the length up front — can prefetch from the first iteration.
    """

    lockstep_safe = True

    def __init__(self, name: str = "l1_stride", table_size: int = 256,
                 confidence_threshold: int = 2, distance: int = 4,
                 degree: int = 2) -> None:
        super().__init__(name)
        if table_size <= 0:
            raise ValueError(f"table_size must be positive, got {table_size}")
        if confidence_threshold < 1:
            raise ValueError("confidence threshold must be at least 1")
        if distance < 1 or degree < 1:
            raise ValueError("distance and degree must be at least 1")
        self.table_size = table_size
        self.confidence_threshold = confidence_threshold
        self.distance = distance
        self.degree = degree
        self._table: "OrderedDict[int, _StrideEntry]" = OrderedDict()

    def _observe(self, line: int, pc: int, was_hit: bool) -> List[int]:
        entry = self._table.get(pc)
        if entry is None:
            if len(self._table) >= self.table_size:
                self._table.popitem(last=False)
            self._table[pc] = _StrideEntry(line)
            return []
        self._table.move_to_end(pc)
        observed = line - entry.last_line
        entry.last_line = line
        if observed == 0:
            return []
        if observed == entry.stride:
            entry.confidence = min(entry.confidence + 1, 2 * self.confidence_threshold)
        else:
            entry.stride = observed
            entry.confidence = 1
            return []
        if entry.confidence < self.confidence_threshold:
            return []
        base = line + entry.stride * self.distance
        return [line_address(base + entry.stride * k) for k in range(self.degree)]

    def reset(self) -> None:
        """Drop all training/tracking state (counters survive)."""
        self._table.clear()

    @property
    def tracked_pcs(self) -> int:
        """Load PCs currently being tracked."""
        return len(self._table)

    # --- lockstep protocol ----------------------------------------------------

    def lockstep_params(self) -> Tuple:
        return (type(self).__name__, self.name, self.table_size,
                self.confidence_threshold, self.distance, self.degree)

    def training_fingerprint(self) -> Tuple:
        # LRU order included: victim selection reads it.
        return tuple((pc, e.last_line, e.stride, e.confidence)
                     for pc, e in self._table.items())

    def clone_for_lockstep(self) -> "StridePrefetcher":
        clone = type(self)(
            name=self.name, table_size=self.table_size,
            confidence_threshold=self.confidence_threshold,
            distance=self.distance, degree=self.degree)
        clone.adopt_training(self)
        return clone

    def adopt_training(self, source: "StridePrefetcher") -> None:
        table: "OrderedDict[int, _StrideEntry]" = OrderedDict()
        for pc, entry in source._table.items():
            fresh = _StrideEntry.__new__(_StrideEntry)
            fresh.last_line = entry.last_line
            fresh.stride = entry.stride
            fresh.confidence = entry.confidence
            table[pc] = fresh
        self._table = table
