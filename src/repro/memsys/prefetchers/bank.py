"""A bank of hardware prefetchers wired to simulated MSR controls."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import ConfigError
from repro.msr.platform_defs import PlatformMSRMap
from repro.msr.registers import MSRFile
from repro.memsys.prefetchers.base import HardwarePrefetcher
from repro.memsys.prefetchers.nextline import AdjacentLinePrefetcher, NextLinePrefetcher
from repro.memsys.prefetchers.stride import StridePrefetcher
from repro.memsys.prefetchers.stream import StreamPrefetcher


class PrefetcherBank:
    """All hardware prefetchers of one core, with MSR-driven enables.

    When bound to an :class:`~repro.msr.MSRFile` via
    :meth:`bind_msr`, each prefetcher's ``enabled`` flag tracks its disable
    bit in the platform's register map — i.e., the Limoncello actuator's
    ``wrmsr`` calls take effect here, just as they do on real hardware.
    """

    def __init__(self, prefetchers: Iterable[HardwarePrefetcher]) -> None:
        self._prefetchers: Dict[str, HardwarePrefetcher] = {}
        for prefetcher in prefetchers:
            if prefetcher.name in self._prefetchers:
                raise ConfigError(f"duplicate prefetcher name {prefetcher.name!r}")
            self._prefetchers[prefetcher.name] = prefetcher
        self._msr_map: Optional[PlatformMSRMap] = None
        self._msr_file: Optional[MSRFile] = None
        #: Cached list of currently enabled prefetchers, bank order.
        #: ``None`` means stale; every ``enabled`` flip (direct, via
        #: set_all, or via an MSR write) invalidates it through the
        #: prefetchers' enabled-watcher hooks. The fast engine reads this
        #: so a fully disabled bank costs one truthiness check per access.
        self._snapshot: Optional[List[HardwarePrefetcher]] = None
        for prefetcher in self._prefetchers.values():
            prefetcher._enabled_watchers.append(self._invalidate_snapshot)

    # --- direct control ------------------------------------------------------

    def __iter__(self):
        return iter(self._prefetchers.values())

    def __getitem__(self, name: str) -> HardwarePrefetcher:
        try:
            return self._prefetchers[name]
        except KeyError:
            raise ConfigError(f"no prefetcher named {name!r}") from None

    def names(self) -> List[str]:
        """All known names, in insertion order."""
        return list(self._prefetchers)

    def set_all(self, enabled: bool) -> None:
        """Enable or disable every prefetcher in the bank."""
        for prefetcher in self._prefetchers.values():
            prefetcher.enabled = enabled

    @property
    def any_enabled(self) -> bool:
        """Whether at least one prefetcher is enabled."""
        return any(p.enabled for p in self._prefetchers.values())

    def _invalidate_snapshot(self) -> None:
        self._snapshot = None

    def enabled_prefetchers(self) -> List[HardwarePrefetcher]:
        """Currently enabled prefetchers, bank order (cached snapshot).

        The returned list is owned by the bank and must not be mutated;
        it stays valid until any prefetcher's ``enabled`` flag flips.
        """
        snapshot = self._snapshot
        if snapshot is None:
            snapshot = self._snapshot = [
                p for p in self._prefetchers.values() if p.enabled]
        return snapshot

    @property
    def total_issued(self) -> int:
        """Prefetch lines proposed across the bank's lifetime."""
        return sum(p.issued for p in self._prefetchers.values())

    # --- lockstep protocol -----------------------------------------------------

    def lockstep_safe(self) -> bool:
        """Whether every *enabled* prefetcher supports lockstep cloning.

        Disabled prefetchers are inert during a run (no training, no
        proposals), so they never gate batching; an empty or fully
        disabled bank is vacuously safe.
        """
        return all(p.lockstep_safe for p in self.enabled_prefetchers())

    def config_signature(self) -> Tuple:
        """Immutable bank configuration, bank order — grouping key input.

        Covers *every* member (the composition is fixed at construction,
        so this is cacheable for the hierarchy's lifetime); which members
        are enabled is runtime state and lives in
        :meth:`state_fingerprint` instead.
        """
        return tuple(p.lockstep_params() if p.lockstep_safe else
                     (type(p).__name__, p.name)
                     for p in self._prefetchers.values())

    def state_fingerprint(self) -> Tuple:
        """Hashable summary of the bank state that steers proposals.

        The enabled mask (bank order) plus each *enabled* prefetcher's
        training fingerprint. Disabled prefetchers' stale training is
        excluded: it cannot influence the run, and each arm keeps its
        own copy untouched at export.
        """
        return (tuple(p.enabled for p in self._prefetchers.values()),
                tuple(p.training_fingerprint()
                      for p in self.enabled_prefetchers()))

    def clone_enabled_for_lockstep(self) -> List[HardwarePrefetcher]:
        """Fresh clones of the enabled prefetchers, bank order.

        Clones carry copied training state, zeroed counters, and no
        watchers — the batch evolves them once and every arm adopts the
        result.
        """
        return [p.clone_for_lockstep() for p in self.enabled_prefetchers()]

    def reset(self) -> None:
        """Drop all training/tracking state (counters survive)."""
        for prefetcher in self._prefetchers.values():
            prefetcher.reset()

    # --- observation ----------------------------------------------------------

    def observe(self, line: int, pc: int, was_hit: bool) -> List[int]:
        """Feed a demand access to every enabled prefetcher."""
        lines: List[int] = []
        for prefetcher in self._prefetchers.values():
            lines.extend(prefetcher.observe(line, pc, was_hit))
        return lines

    def accept_hint(self, start: int, length: int) -> bool:
        """Deliver a software stream hint (Section 8.3 interface) to every
        enabled prefetcher that understands hints. Returns whether any
        prefetcher accepted it (hints are ignored by legacy engines,
        exactly as an unsupported ISA hint would be)."""
        accepted = False
        for prefetcher in self._prefetchers.values():
            handler = getattr(prefetcher, "accept_hint", None)
            if handler is not None and prefetcher.enabled:
                handler(start, length)
                accepted = True
        return accepted

    # --- MSR wiring -------------------------------------------------------------

    def bind_msr(self, msr_file: MSRFile, msr_map: PlatformMSRMap) -> None:
        """Slave the enable flags to the platform's MSR disable bits.

        Every prefetcher in the bank must have a control in the map (the
        paper disables *all* platform prefetchers, so an uncontrolled one
        would silently undermine Hard Limoncello).
        """
        control_names = {control.name for control in msr_map.controls}
        missing = set(self._prefetchers) - control_names
        if missing:
            raise ConfigError(
                f"prefetchers lack MSR controls on this platform: {sorted(missing)}")
        msr_map.declare_registers(msr_file)
        self._msr_map = msr_map
        self._msr_file = msr_file
        msr_file.subscribe(self._on_msr_write)
        self._sync_from_msr()

    def _on_msr_write(self, address: int, value: int) -> None:
        if self._msr_map is None:
            return
        if address in self._msr_map.registers:
            self._sync_from_msr()

    def _sync_from_msr(self) -> None:
        assert self._msr_map is not None and self._msr_file is not None
        state = self._msr_map.enabled_prefetchers(self._msr_file)
        for name, prefetcher in self._prefetchers.items():
            prefetcher.enabled = state[name]


def default_prefetcher_bank(aggressive: bool = True) -> PrefetcherBank:
    """The standard four-prefetcher complement of the modelled platforms.

    Names match :data:`repro.msr.INTEL_LIKE_MAP` so the bank can be bound
    to that register map directly.

    Args:
        aggressive: When True (the default, matching current server parts),
            the streamer uses a long distance and high degree — the
            coverage-over-traffic tuning the paper's Section 2.1 describes.
    """
    if aggressive:
        stream = StreamPrefetcher(distance=16, degree=4)
    else:
        stream = StreamPrefetcher(distance=8, degree=2)
    return PrefetcherBank([
        NextLinePrefetcher(name="l1_next_line", degree=1),
        StridePrefetcher(name="l1_stride"),
        stream,
        AdjacentLinePrefetcher(name="l2_adjacent_line"),
    ])
