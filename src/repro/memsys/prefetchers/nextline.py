"""Next-line and adjacent-line prefetchers — the simplest, most aggressive.

Both carry a light *page-confirmation filter*, as real implementations
throttle on evidently-random streams: a miss only triggers a fetch when
its 4 KiB page has been touched recently, so the first touch of a cold
page (the common case in uniformly random access over a large footprint)
stays silent while any spatially local pattern activates immediately.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Optional

from repro.memsys.prefetchers.base import HardwarePrefetcher
from repro.units import CACHE_LINE_BYTES

_PAGE_SHIFT = 12


class _PageFilter:
    """An LRU set of recently touched pages."""

    __slots__ = ("_capacity", "_pages")

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError(f"filter capacity must be positive, got {capacity}")
        self._capacity = capacity
        self._pages: "OrderedDict[int, None]" = OrderedDict()

    def check_and_touch(self, line: int) -> bool:
        """True if the line's page was already present; records the touch."""
        page = line >> _PAGE_SHIFT
        present = page in self._pages
        if present:
            self._pages.move_to_end(page)
        else:
            if len(self._pages) >= self._capacity:
                self._pages.popitem(last=False)
            self._pages[page] = None
        return present

    def clear(self) -> None:
        """Forget all remembered pages."""
        self._pages.clear()


class NextLinePrefetcher(HardwarePrefetcher):
    """On a demand miss to a warm page, fetch the following ``degree`` lines.

    This is the archetype of the coverage-over-traffic design philosophy
    the paper criticises: zero accuracy feedback once the page filter is
    warm, so any revisited region pays ``degree`` lines of traffic per miss
    whether or not the data is ever used.
    """

    def __init__(self, name: str = "l1_next_line", degree: int = 1,
                 on_miss_only: bool = True,
                 page_filter_entries: Optional[int] = 8192) -> None:
        super().__init__(name)
        if degree <= 0:
            raise ValueError(f"degree must be positive, got {degree}")
        self.degree = degree
        self.on_miss_only = on_miss_only
        self._filter = (_PageFilter(page_filter_entries)
                        if page_filter_entries else None)

    def _observe(self, line: int, pc: int, was_hit: bool) -> List[int]:
        if self._filter is not None:
            warm = self._filter.check_and_touch(line)
            if not warm:
                return []
        if self.on_miss_only and was_hit:
            return []
        return [line + k * CACHE_LINE_BYTES for k in range(1, self.degree + 1)]

    def reset(self) -> None:
        """Drop all training/tracking state (counters survive)."""
        if self._filter is not None:
            self._filter.clear()


class AdjacentLinePrefetcher(HardwarePrefetcher):
    """Fetch the buddy line of the 128-byte pair on a miss to a warm page.

    Models the "adjacent cache line prefetch" feature of the modelled
    platforms: useful on sequential data, a 2x traffic amplifier on
    revisited-but-random regions.
    """

    def __init__(self, name: str = "l2_adjacent_line",
                 page_filter_entries: Optional[int] = 8192) -> None:
        super().__init__(name)
        self._filter = (_PageFilter(page_filter_entries)
                        if page_filter_entries else None)

    def _observe(self, line: int, pc: int, was_hit: bool) -> List[int]:
        if self._filter is not None:
            warm = self._filter.check_and_touch(line)
            if not warm:
                return []
        if was_hit:
            return []
        return [line ^ CACHE_LINE_BYTES]

    def reset(self) -> None:
        """Drop all training/tracking state (counters survive)."""
        if self._filter is not None:
            self._filter.clear()
