"""Next-line and adjacent-line prefetchers — the simplest, most aggressive.

Both carry a light *page-confirmation filter*, as real implementations
throttle on evidently-random streams: a miss only triggers a fetch when
its 4 KiB page has been touched recently, so the first touch of a cold
page (the common case in uniformly random access over a large footprint)
stays silent while any spatially local pattern activates immediately.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Optional, Tuple

from repro.memsys.prefetchers.base import HardwarePrefetcher
from repro.units import CACHE_LINE_BYTES

_PAGE_SHIFT = 12


class _PageFilter:
    """An LRU set of recently touched pages."""

    __slots__ = ("_capacity", "_pages")

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError(f"filter capacity must be positive, got {capacity}")
        self._capacity = capacity
        self._pages: "OrderedDict[int, None]" = OrderedDict()

    def check_and_touch(self, line: int) -> bool:
        """True if the line's page was already present; records the touch."""
        page = line >> _PAGE_SHIFT
        present = page in self._pages
        if present:
            self._pages.move_to_end(page)
        else:
            if len(self._pages) >= self._capacity:
                self._pages.popitem(last=False)
            self._pages[page] = None
        return present

    def clear(self) -> None:
        """Forget all remembered pages."""
        self._pages.clear()

    def fingerprint(self) -> Tuple[int, ...]:
        """The remembered pages in LRU order (eviction reads it)."""
        return tuple(self._pages)

    def copy_from(self, source: "_PageFilter") -> None:
        """Replace contents with a copy of ``source``'s, order included."""
        self._pages = OrderedDict(source._pages)


class NextLinePrefetcher(HardwarePrefetcher):
    """On a demand miss to a warm page, fetch the following ``degree`` lines.

    This is the archetype of the coverage-over-traffic design philosophy
    the paper criticises: zero accuracy feedback once the page filter is
    warm, so any revisited region pays ``degree`` lines of traffic per miss
    whether or not the data is ever used.
    """

    lockstep_safe = True

    def __init__(self, name: str = "l1_next_line", degree: int = 1,
                 on_miss_only: bool = True,
                 page_filter_entries: Optional[int] = 8192) -> None:
        super().__init__(name)
        if degree <= 0:
            raise ValueError(f"degree must be positive, got {degree}")
        self.degree = degree
        self.on_miss_only = on_miss_only
        self._filter = (_PageFilter(page_filter_entries)
                        if page_filter_entries else None)

    def _observe(self, line: int, pc: int, was_hit: bool) -> List[int]:
        if self._filter is not None:
            warm = self._filter.check_and_touch(line)
            if not warm:
                return []
        if self.on_miss_only and was_hit:
            return []
        return [line + k * CACHE_LINE_BYTES for k in range(1, self.degree + 1)]

    def reset(self) -> None:
        """Drop all training/tracking state (counters survive)."""
        if self._filter is not None:
            self._filter.clear()

    # --- lockstep protocol ----------------------------------------------------

    def lockstep_params(self) -> Tuple:
        capacity = self._filter._capacity if self._filter is not None else None
        return (type(self).__name__, self.name, self.degree,
                self.on_miss_only, capacity)

    def training_fingerprint(self) -> Tuple:
        if self._filter is None:
            return ()
        return self._filter.fingerprint()

    def clone_for_lockstep(self) -> "NextLinePrefetcher":
        capacity = self._filter._capacity if self._filter is not None else None
        clone = type(self)(name=self.name, degree=self.degree,
                           on_miss_only=self.on_miss_only,
                           page_filter_entries=capacity)
        clone.adopt_training(self)
        return clone

    def adopt_training(self, source: "NextLinePrefetcher") -> None:
        if self._filter is not None and source._filter is not None:
            self._filter.copy_from(source._filter)


class AdjacentLinePrefetcher(HardwarePrefetcher):
    """Fetch the buddy line of the 128-byte pair on a miss to a warm page.

    Models the "adjacent cache line prefetch" feature of the modelled
    platforms: useful on sequential data, a 2x traffic amplifier on
    revisited-but-random regions.
    """

    lockstep_safe = True

    def __init__(self, name: str = "l2_adjacent_line",
                 page_filter_entries: Optional[int] = 8192) -> None:
        super().__init__(name)
        self._filter = (_PageFilter(page_filter_entries)
                        if page_filter_entries else None)

    def _observe(self, line: int, pc: int, was_hit: bool) -> List[int]:
        if self._filter is not None:
            warm = self._filter.check_and_touch(line)
            if not warm:
                return []
        if was_hit:
            return []
        return [line ^ CACHE_LINE_BYTES]

    def reset(self) -> None:
        """Drop all training/tracking state (counters survive)."""
        if self._filter is not None:
            self._filter.clear()

    # --- lockstep protocol ----------------------------------------------------

    def lockstep_params(self) -> Tuple:
        capacity = self._filter._capacity if self._filter is not None else None
        return (type(self).__name__, self.name, capacity)

    def training_fingerprint(self) -> Tuple:
        if self._filter is None:
            return ()
        return self._filter.fingerprint()

    def clone_for_lockstep(self) -> "AdjacentLinePrefetcher":
        capacity = self._filter._capacity if self._filter is not None else None
        clone = type(self)(name=self.name, page_filter_entries=capacity)
        clone.adopt_training(self)
        return clone

    def adopt_training(self, source: "AdjacentLinePrefetcher") -> None:
        if self._filter is not None and source._filter is not None:
            self._filter.copy_from(source._filter)
