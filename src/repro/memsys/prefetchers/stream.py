"""A page-bounded stream prefetcher — the main traffic source.

This models the aggressive L2 streamer on modern server parts: it detects
ascending (or descending) access runs within a 4 KiB page and, once
trained, races ahead of the demand stream by ``distance`` lines, issuing up
to ``degree`` fetches per observation. Two properties matter for the
paper's story and are faithfully reproduced:

* **warm-up**: nothing is fetched until ``train_threshold`` accesses in a
  page have been seen, so short streams get little coverage;
* **overshoot**: when a stream ends, everything already issued beyond the
  last demand access is wasted — for a stream of ``n`` lines the streamer
  fetches up to ``n + distance`` lines, a built-in ~``distance/n``
  traffic overhead that is huge for short streams.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Tuple

from repro.memsys.prefetchers.base import HardwarePrefetcher
from repro.units import CACHE_LINE_BYTES

_PAGE_SHIFT = 12
_PAGE_BYTES = 1 << _PAGE_SHIFT


class _StreamEntry:
    __slots__ = ("last_line", "direction", "count", "issued_until")

    def __init__(self, line: int) -> None:
        self.last_line = line
        self.direction = 0
        self.count = 1
        #: Exclusive frontier of already-issued prefetches (forward runs)
        #: or inclusive frontier for backward runs; None until trained.
        self.issued_until = None


class StreamPrefetcher(HardwarePrefetcher):
    """Detects sequential runs per page and streams ahead of them."""

    lockstep_safe = True

    def __init__(self, name: str = "l2_stream", table_size: int = 32,
                 train_threshold: int = 3, distance: int = 16,
                 degree: int = 4, max_jump_lines: int = 2) -> None:
        super().__init__(name)
        if table_size <= 0:
            raise ValueError(f"table_size must be positive, got {table_size}")
        if train_threshold < 2:
            raise ValueError("train_threshold must be at least 2")
        if distance < 1 or degree < 1:
            raise ValueError("distance and degree must be at least 1")
        if max_jump_lines < 1:
            raise ValueError("max_jump_lines must be at least 1")
        self.table_size = table_size
        self.train_threshold = train_threshold
        self.distance = distance
        self.degree = degree
        self.max_jump_lines = max_jump_lines
        self._table: "OrderedDict[int, _StreamEntry]" = OrderedDict()

    def _observe(self, line: int, pc: int, was_hit: bool) -> List[int]:
        page = line >> _PAGE_SHIFT
        entry = self._table.get(page)
        if entry is None:
            if len(self._table) >= self.table_size:
                self._table.popitem(last=False)
            self._table[page] = _StreamEntry(line)
            return []
        self._table.move_to_end(page)

        delta_lines = (line - entry.last_line) // CACHE_LINE_BYTES
        if delta_lines == 0:
            return []
        direction = 1 if delta_lines > 0 else -1
        if abs(delta_lines) > self.max_jump_lines or (
                entry.direction and direction != entry.direction):
            # The run broke; start re-training from here.
            entry.last_line = line
            entry.direction = direction
            entry.count = 1
            entry.issued_until = None
            return []

        entry.direction = direction
        entry.count += 1
        entry.last_line = line
        if entry.count < self.train_threshold:
            return []

        page_base = page << _PAGE_SHIFT
        page_end = page_base + _PAGE_BYTES
        target = line + direction * self.distance * CACHE_LINE_BYTES
        if entry.issued_until is None:
            entry.issued_until = line + direction * CACHE_LINE_BYTES
        lines: List[int] = []
        cursor = entry.issued_until
        while len(lines) < self.degree:
            if direction > 0:
                if cursor > target or cursor >= page_end:
                    break
                lines.append(cursor)
                cursor += CACHE_LINE_BYTES
            else:
                if cursor < target or cursor < page_base:
                    break
                lines.append(cursor)
                cursor -= CACHE_LINE_BYTES
        entry.issued_until = cursor
        return lines

    def reset(self) -> None:
        """Drop all training/tracking state (counters survive)."""
        self._table.clear()

    @property
    def tracked_streams(self) -> int:
        """Streams currently being tracked."""
        return len(self._table)

    # --- lockstep protocol ----------------------------------------------------

    def lockstep_params(self) -> Tuple:
        return (type(self).__name__, self.name, self.table_size,
                self.train_threshold, self.distance, self.degree,
                self.max_jump_lines)

    def training_fingerprint(self) -> Tuple:
        # Iteration order is the table's LRU order — victim selection
        # reads it, so it is part of the state.
        return tuple(
            (page, e.last_line, e.direction, e.count, e.issued_until)
            for page, e in self._table.items())

    def clone_for_lockstep(self) -> "StreamPrefetcher":
        clone = type(self)(
            name=self.name, table_size=self.table_size,
            train_threshold=self.train_threshold, distance=self.distance,
            degree=self.degree, max_jump_lines=self.max_jump_lines)
        clone.adopt_training(self)
        return clone

    def adopt_training(self, source: "StreamPrefetcher") -> None:
        table: "OrderedDict[int, _StreamEntry]" = OrderedDict()
        for page, entry in source._table.items():
            fresh = _StreamEntry.__new__(_StreamEntry)
            fresh.last_line = entry.last_line
            fresh.direction = entry.direction
            fresh.count = entry.count
            fresh.issued_until = entry.issued_until
            table[page] = fresh
        self._table = table
