"""Hardware prefetcher models.

These reproduce the behavioural essentials the paper leans on:

* stream/next-line prefetchers cover sequential code extremely well but
  over-fetch at stream ends and need a warm-up window, so short streams
  (small memcpys, Figure 14) get poor coverage and high waste;
* stride prefetchers train per-PC and handle regular strides;
* on irregular (pointer-chasing) code, all of them either stay quiet or
  fetch garbage, and the garbage costs bandwidth that inflates everyone's
  DRAM latency.

Each prefetcher is a pure observer: it watches the demand access stream and
returns line addresses to fetch. The hierarchy issues those fetches and
charges them to DRAM bandwidth.
"""

from repro.memsys.prefetchers.base import HardwarePrefetcher
from repro.memsys.prefetchers.nextline import AdjacentLinePrefetcher, NextLinePrefetcher
from repro.memsys.prefetchers.stride import StridePrefetcher
from repro.memsys.prefetchers.stream import StreamPrefetcher
from repro.memsys.prefetchers.bank import PrefetcherBank, default_prefetcher_bank

__all__ = [
    "HardwarePrefetcher",
    "NextLinePrefetcher",
    "AdjacentLinePrefetcher",
    "StridePrefetcher",
    "StreamPrefetcher",
    "PrefetcherBank",
    "default_prefetcher_bank",
]
