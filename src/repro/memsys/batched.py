"""The batched lockstep engine: many machine-arms, one trace, NumPy timing.

Fleet sweeps run the *same* compiled trace through hundreds of
independent :class:`~repro.memsys.hierarchy.MemoryHierarchy` arms — the
ablation's prefetchers-off fleet, a rollout stage's disabled cohort, a
policy sweep's candidate population. The scalar compiled engine pays the
full per-record cost once per arm. This engine pays it once per *batch*,
by exploiting the structural fact that makes fleet arms cheap to batch:

**cache behavior is arm-invariant inside a batch.** Arms share the
trace, the cache geometry, the prefetcher configuration and training
state, and the enabled mask, so every probe's hit level, every LRU
update, every eviction, every prefetcher proposal, and every
in-flight-table membership change is identical across arms — timing
never feeds back into cache state. Only the *float* state diverges:
each arm has its own clock, its own bandwidth window (points land at
per-arm times), its own external DRAM load, and therefore its own fill
latencies and stalls. So the lockstep engine evolves one shared cache
state with plain dicts (the scalar compiled engine's own structures and
op order), and vectorizes just the float timing across arms — a couple
of NumPy ops per hit record, a few dozen per miss record, at any arm
count. Per-arm integer statistics collapse to shared Python ints;
per-arm floats (stall cycles, DRAM waits, late-prefetch residuals) live
in small per-function arrays.

Bit-identity contract (DESIGN.md §11): for every arm the produced
:class:`~repro.memsys.stats.RunResult` — and the arm's post-run state:
cache contents in LRU order, counters, clock, bandwidth window,
in-flight table, recent-miss history — is identical, down to the last
float, to what ``hierarchy.run(trace)`` computes. The discipline that
makes this hold:

* dict-side work *is* the scalar compiled engine's, verbatim;
* every float accumulation happens per-arm in the same order as the
  scalar loop (NumPy elementwise add/sub/mul/div on float64 match
  CPython float arithmetic bit-for-bit; the equivalence suites verify
  this continuously);
* the one operation where NumPy does *not* match CPython —
  ``clamped ** queue_exponent`` (``np.power`` and even ``x * x`` differ
  from ``float.__pow__`` in the last ulp) — is computed with Python's
  ``**`` in a short per-arm loop;
* arms that stall identically receive identical scalar broadcasts
  (e.g. an L2 hit adds the same ``l2_hit_ns`` everywhere), and
  conditional additions use ``x + 0.0 == x`` masks, exactly the
  identities the scalar engine already relies on.

**Enabled prefetchers batch too.** ``observe(line, pc, was_hit)`` and
``accept_hint(start, length)`` are pure deterministic functions of
arm-uniform inputs, so a bank whose (enabled, lockstep-safe)
prefetchers start from identical training state evolves identically on
every arm. The batch clones the reference arm's enabled prefetchers
(:meth:`~repro.memsys.prefetchers.bank.PrefetcherBank.clone_enabled_for_lockstep`),
trains the clones once, issues their proposals through the same
vectorized DRAM path as software prefetches, and at export every arm
adopts the clones' training plus a shared counter delta. The only
uniformity breaker on this path is the scalar engine's in-flight prune
(it compares per-arm clocks): crossing the threshold mid-batch raises
:class:`LockstepBailout`, and — because a batch touches no arm state
before export — :func:`~repro.memsys.hierarchy.run_many` just reruns
that chunk on the scalar engine.

Batching eligibility has two layers. :func:`lockstep_eligible` is
per-arm: every *enabled* hardware prefetcher must be lockstep-safe
(:attr:`~repro.memsys.prefetchers.base.HardwarePrefetcher.lockstep_safe`),
the external DRAM load absent or a
:class:`~repro.memsys.dram.ConstantExternalLoad`, and no tracer
attached. :func:`state_fingerprint` then groups eligible arms by
starting cache/in-flight/recent-miss state *and* bank state (enabled
mask + per-prefetcher training fingerprints; cold arms all share one
fingerprint), because uniformity is an invariant only when it holds at
entry. Control-mode arms whose daemons toggled MSRs between trace
slices regroup dynamically: each :func:`~repro.memsys.hierarchy.run_many`
call re-fingerprints, so arms that diverged fall into smaller lockstep
sub-batches instead of all the way to scalar. Arms that fail either
test — a custom prefetcher without the lockstep protocol, a callable
load profile, a divergent warm state — simply run the scalar engine
inside the same call, and :class:`BatchOccupancy` reports who ran
where and why.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Dict, List, Optional, Tuple

try:
    import numpy as _np
except ImportError:  # pragma: no cover - the toolchain ships numpy
    _np = None

from repro.memsys.cache import _LineState
from repro.memsys.dram import ConstantExternalLoad
from repro.memsys.stats import FunctionStats, RunResult
from repro.units import CACHE_LINE_BYTES

HAVE_NUMPY = _np is not None

#: Initial per-arm bandwidth-window ring capacity (grows on demand).
_WINDOW_CAP = 1024


class LockstepBailout(Exception):
    """A batch hit the one operation lockstep cannot vectorize.

    The scalar engine's in-flight prune compares per-arm clocks, so it
    would let cache behavior diverge inside a batch. A
    :class:`_LockstepBatch` mutates no arm state before export, so the
    caller (:func:`~repro.memsys.hierarchy.run_many`) simply reruns the
    chunk through the scalar engine — bit-identity preserved, only
    throughput lost.
    """


class BatchOccupancy:
    """Where a :func:`~repro.memsys.hierarchy.run_many` call ran its arms.

    Silent scalar fallback used to be invisible; this summary counts
    arms that lockstep-batched, arms that ran scalar, how many lockstep
    groups formed, and — per fallback reason — why scalar arms fell
    back. Merging is additive, so shard summaries fold into a study
    total in any order.
    """

    __slots__ = ("batched_arms", "scalar_arms", "groups", "reasons")

    def __init__(self) -> None:
        self.batched_arms = 0
        self.scalar_arms = 0
        self.groups = 0
        self.reasons: Dict[str, int] = {}

    def record_batched(self, arms: int, groups: int = 0) -> None:
        self.batched_arms += arms
        self.groups += groups

    def record_scalar(self, arms: int, reason: str) -> None:
        self.scalar_arms += arms
        self.reasons[reason] = self.reasons.get(reason, 0) + arms

    def merge(self, other: "BatchOccupancy") -> "BatchOccupancy":
        self.batched_arms += other.batched_arms
        self.scalar_arms += other.scalar_arms
        self.groups += other.groups
        for reason, arms in other.reasons.items():
            self.reasons[reason] = self.reasons.get(reason, 0) + arms
        return self

    def to_dict(self) -> Dict:
        return {
            "batched_arms": self.batched_arms,
            "scalar_arms": self.scalar_arms,
            "groups": self.groups,
            "fallback_reasons": {reason: self.reasons[reason]
                                 for reason in sorted(self.reasons)},
        }


def lockstep_fallback_reason(hierarchy) -> Optional[str]:
    """Why ``hierarchy`` cannot join a lockstep batch (``None`` = it can).

    Checks: NumPy present, no tracer attached, every *enabled* hardware
    prefetcher lockstep-safe (the enabled snapshot is kept fresh through
    MSR-write watchers), and external DRAM load absent or constant.
    """
    if not HAVE_NUMPY:
        return "no-numpy"
    if hierarchy.obs is not None and hierarchy.obs:
        return "tracer"
    if not hierarchy.prefetchers.lockstep_safe():
        return "unsafe-prefetcher"
    external = hierarchy.dram._external_load
    if external is not None and not isinstance(external, ConstantExternalLoad):
        return "external-load"
    return None


def lockstep_eligible(hierarchy) -> bool:
    """Whether ``hierarchy`` can run in a lockstep batch."""
    return lockstep_fallback_reason(hierarchy) is None


def config_signature(hierarchy) -> Tuple:
    """Grouping key: arms batch together only when every timing- and
    geometry-relevant config value — including the prefetcher bank's
    composition and parameters — matches."""
    config = hierarchy.config
    dram = config.dram

    def cache_sig(c):
        return (c.line_bytes, c.num_sets, c.associativity,
                c.hit_latency_cycles)

    return (
        config.cycle_ns, config.software_prefetch_cost_cycles,
        config.store_stall_fraction, config.sequential_mlp,
        cache_sig(config.l1), cache_sig(config.l2), cache_sig(config.llc),
        (dram.saturation_bandwidth, dram.unloaded_latency_ns,
         dram.queue_gain, dram.queue_exponent, dram.max_utilization,
         dram.overload_gain, dram.window_ns),
        hierarchy.prefetchers.config_signature(),
    )


def state_fingerprint(hierarchy) -> Tuple:
    """Hashable summary of the arm state that steers cache evolution.

    Arms whose fingerprints match start from identical cache contents
    (lines, LRU order, prefetch provenance), in-flight line sets,
    recent-miss histories, and prefetcher-bank state (enabled mask plus
    per-prefetcher training) — so, being timing-independent, their
    cache evolution stays identical for the whole run. Cold arms all
    fingerprint to the same (cheap, empty) value. Clocks, windows,
    counters, and in-flight *arrival times* are deliberately excluded:
    they are per-arm floats/deltas that never influence a probe's
    outcome — which is also what lets a batch stamp one shared
    post-run fingerprint onto every arm.
    """

    def level_fp(cache):
        return tuple(sorted(
            (index,
             tuple((line, state.prefetched, state.referenced)
                   for line, state in cache_set.items()))
            for index, cache_set in cache._sets.items() if cache_set))

    return (level_fp(hierarchy.l1), level_fp(hierarchy.l2),
            level_fp(hierarchy.llc),
            tuple(sorted(hierarchy._in_flight)),
            tuple(hierarchy._recent_miss_lines),
            hierarchy.prefetchers.state_fingerprint())


def cached_config_signature(hierarchy) -> Tuple:
    """The arm's :func:`config_signature`, cached for its lifetime.

    Geometry, DRAM curve, and bank composition are immutable after
    construction, so the cache never invalidates.
    """
    signature = hierarchy._config_sig_cache
    if signature is None:
        signature = hierarchy._config_sig_cache = config_signature(hierarchy)
    return signature


def cached_state_fingerprint(hierarchy) -> Tuple:
    """The arm's :func:`state_fingerprint`, cached between state changes.

    The hierarchy invalidates on every scalar ``run()``/``reset()`` and
    — through the prefetchers' enabled-watcher hooks, which MSR writes
    and ``set_hardware_prefetchers`` both fire — on every enabled-mask
    flip; a lockstep batch stamps the shared post-run fingerprint
    instead of invalidating. Repeated ``run_many`` grouping (the
    control-mode scenario loop calls it every epoch) therefore stops
    recomputing fingerprints for arms whose state a batch just wrote.
    """
    fingerprint = hierarchy._state_fp_cache
    if fingerprint is None:
        fingerprint = hierarchy._state_fp_cache = state_fingerprint(hierarchy)
    return fingerprint


def software_prefetch_lines(compiled) -> int:
    """Line-iterations the trace's software prefetches can add to the
    in-flight table — the bound that decides whether the scalar engine's
    prune (which compares per-arm clocks, breaking uniformity) could
    ever fire."""
    columns = compiled.arrays()
    swpf = columns["kinds"] == 2
    if not swpf.any():
        return 0
    return int(swpf.sum() + columns["extras"][swpf].sum())


class _FunctionSlot:
    """Per-function statistics: cache-behavior counts shared across the
    batch as Python ints, timing-divergent accumulators as per-arm
    arrays."""

    __slots__ = ("name", "instr", "comp", "loads", "stores", "swpf",
                 "l1m", "l2m", "llcm", "cov", "stall", "late", "dram_w",
                 "late_w")

    def __init__(self, name: str, arms: int) -> None:
        self.name = name
        self.instr = 0
        self.comp = 0
        self.loads = 0
        self.stores = 0
        self.swpf = 0
        self.l1m = 0
        self.l2m = 0
        self.llcm = 0
        self.cov = 0
        self.stall = _np.zeros(arms)
        self.late = _np.zeros(arms, _np.int64)
        self.dram_w = _np.zeros(arms)
        self.late_w = _np.zeros(arms)

    def stats_for(self, arm: int) -> FunctionStats:
        return FunctionStats(
            instructions=self.instr, compute_cycles=self.comp,
            stall_cycles=float(self.stall[arm]), loads=self.loads,
            stores=self.stores, software_prefetches=self.swpf,
            l1_misses=self.l1m, l2_misses=self.l2m, llc_misses=self.llcm,
            prefetch_covered=self.cov,
            late_prefetch_hits=int(self.late[arm]),
            dram_wait_ns=float(self.dram_w[arm]),
            late_prefetch_wait_ns=float(self.late_w[arm]))


def _copy_sets(cache_sets) -> Dict[int, OrderedDict]:
    """Deep-copy a cache's sets (shared working state must not alias any
    arm's own ``_LineState`` objects, and vice versa).

    Hot at high arm counts — export copies every resident line once per
    arm — so line states are cloned with ``__new__`` plus two slot
    stores rather than the constructor.
    """
    new = _LineState.__new__
    cls = _LineState
    copied: Dict[int, OrderedDict] = {}
    for index, cache_set in cache_sets.items():
        if not cache_set:
            continue
        fresh_set = copied[index] = OrderedDict()
        for line, state in cache_set.items():
            fresh = new(cls)
            fresh.prefetched = state.prefetched
            fresh.referenced = state.referenced
            fresh_set[line] = fresh
    return copied


class _LockstepBatch:
    """One lockstep execution: shared dict cache state + per-arm timing."""

    def __init__(self, hierarchies) -> None:
        self.hierarchies = hierarchies
        arms = self.arms = len(hierarchies)
        self.ar = _np.arange(arms)
        reference = hierarchies[0]
        config = reference.config

        self.cycle_ns = config.cycle_ns
        self.sw_cost_cycles = config.software_prefetch_cost_cycles
        self.sw_cost_ns = self.sw_cost_cycles * self.cycle_ns
        self.store_scale = config.store_stall_fraction
        self.seq_mlp = config.sequential_mlp
        self.l2_hit_ns = config.l2.hit_latency_cycles * self.cycle_ns
        self.llc_hit_ns = config.llc.hit_latency_cycles * self.cycle_ns

        dram = config.dram
        self.sat_bw = dram.saturation_bandwidth
        self.max_util = dram.max_utilization
        self.queue_gain = dram.queue_gain
        self.queue_exp = dram.queue_exponent
        self.unloaded_ns = dram.unloaded_latency_ns
        self.overload_gain = dram.overload_gain
        self.win_span = dram.window_ns

        self.now = _np.array([h.now_ns for h in hierarchies], float)
        self.begin = self.now.copy()

        # External load: the scalar engine computes
        # (rate + external(now)) / sat for loaded arms and rate / sat for
        # unloaded ones; x + 0.0 == x bitwise for the non-negative rates
        # involved, so a zero entry makes the two formulas coincide.
        self.ext = _np.zeros(arms)
        for arm, h in enumerate(hierarchies):
            external = h.dram._external_load
            if external is not None:
                self.ext[arm] = external.bytes_per_ns

        # Shared cache state: deep copies of the (uniform) starting
        # state, evolved once for the whole batch with the scalar
        # engine's own structures.
        self.l1_sets = _copy_sets(reference.l1._sets)
        self.l2_sets = _copy_sets(reference.l2._sets)
        self.llc_sets = _copy_sets(reference.llc._sets)
        # Shared counter deltas (cache behavior is uniform).
        self.l1_hits = self.l1_misses = self.l1_pref_hits = 0
        self.l1_wasted = self.l1_sized = 0
        self.l2_hits = self.l2_misses = self.l2_pref_hits = 0
        self.l2_wasted = self.l2_sized = 0
        self.llc_hits = self.llc_misses = self.llc_pref_hits = 0
        self.llc_wasted = self.llc_sized = 0
        self.d_fills = 0
        self.p_fills = 0
        self.sw_issued = 0
        self.useful = 0

        # Bandwidth window as a per-arm ring: (time, bytes) columns plus
        # the running sum, updated with the scalar engine's exact op
        # sequence (sequential pops subtract, each append adds).
        cap = _WINDOW_CAP
        for h in hierarchies:
            cap = max(cap, 2 * len(h.dram._window._points) + 8)
        self.wtimes = _np.zeros((arms, cap))
        self.wbytes = _np.zeros((arms, cap))
        self.whead = _np.zeros(arms, _np.int64)
        self.wtail = _np.zeros(arms, _np.int64)
        self.win_sum = _np.zeros(arms)
        for arm, h in enumerate(hierarchies):
            points = list(h.dram._window._points)
            for slot, (t_ns, value) in enumerate(points):
                self.wtimes[arm, slot] = t_ns
                self.wbytes[arm, slot] = value
            self.wtail[arm] = len(points)
            self.win_sum[arm] = h.dram._window._sum

        # In-flight prefetches: membership is uniform (a fingerprint
        # precondition), arrival times are per-arm.
        self.in_flight: Dict[int, _np.ndarray] = {
            line: _np.array([h._in_flight[line] for h in hierarchies])
            for line in reference._in_flight
        }

        # Recent demand-miss lines: shared (maxlen-8 deque as a list,
        # exactly the scalar engine's in-loop shadow).
        self.recent: List[int] = list(reference._recent_miss_lines)

        # Enabled-prefetcher clones: bank training is arm-uniform (a
        # fingerprint precondition), so the batch trains one clone set
        # and every arm adopts the result at export. Clones start with
        # zeroed counters — their post-run counter signatures *are* the
        # batch deltas.
        self.bank_clones = reference.prefetchers.clone_enabled_for_lockstep()
        # The scalar engine's in-flight prune keys on per-arm clocks, so
        # crossing its threshold mid-batch aborts lockstep (the caller
        # reruns the chunk scalar). Read through the class so tests that
        # monkeypatch the threshold reach both engines.
        self.prune_threshold = type(reference)._IN_FLIGHT_PRUNE_THRESHOLD

        self.slots: List[_FunctionSlot] = []

    # --- the DRAM window --------------------------------------------------

    def _win_compact(self) -> None:
        arms, cap = self.wtimes.shape
        counts = self.wtail - self.whead
        new_cap = cap if int(counts.max()) * 2 <= cap else cap * 2
        times = _np.zeros((arms, new_cap))
        values = _np.zeros((arms, new_cap))
        for arm in range(arms):
            head, tail = int(self.whead[arm]), int(self.wtail[arm])
            count = tail - head
            times[arm, :count] = self.wtimes[arm, head:tail]
            values[arm, :count] = self.wbytes[arm, head:tail]
            self.whead[arm] = 0
            self.wtail[arm] = count
        self.wtimes = times
        self.wbytes = values

    def _dram_fill(self):
        """One line fill on every arm at its own clock; returns per-arm
        latency.

        Mirrors the scalar engine's inlined ``DRAMModel.request``: prune
        the window (pops subtract oldest-first, in order, per arm),
        compute the queuing latency from the utilization *before* the
        fill's bytes join the window, then append.
        """
        ar = self.ar
        horizon = self.now - self.win_span
        head = self.whead
        tail = self.wtail
        while True:
            live = head < tail
            probe = _np.where(live, head, 0)
            pop = live & (self.wtimes[ar, probe] <= horizon)
            if not pop.any():
                break
            popped = ar[pop]
            self.win_sum[popped] = (self.win_sum[popped]
                                    - self.wbytes[popped, head[pop]])
            head = head + pop
        self.whead = head

        rate = self.win_sum / self.win_span
        raw = (rate + self.ext) / self.sat_bw
        u = _np.maximum(raw, 0.0)
        clamped = _np.minimum(u, self.max_util)
        # NumPy's pow does not bit-match float.__pow__; the scalar oracle
        # uses Python ** so this must too, arm by arm.
        queue_exp = self.queue_exp
        powed = _np.array([c ** queue_exp for c in clamped.tolist()])
        queue = self.queue_gain * powed / (1.0 - clamped)
        latency = self.unloaded_ns * (1.0 + queue)
        over = u > self.max_util
        if over.any():
            latency[over] *= 1.0 + self.overload_gain \
                * (u[over] - self.max_util)

        if int(tail.max()) == self.wtimes.shape[1]:
            self._win_compact()
            tail = self.wtail
        self.wtimes[ar, tail] = self.now
        self.wbytes[ar, tail] = 64.0
        self.wtail = tail + 1
        self.win_sum += 64.0
        return latency

    # --- the record loop --------------------------------------------------

    def execute(self, compiled) -> None:
        """The scalar compiled engine's loop, with the cache/dict work
        done once for the batch and the float work vectorized per arm."""
        cycle_ns = self.cycle_ns
        sw_cost_cycles = self.sw_cost_cycles
        sw_cost_ns = self.sw_cost_ns
        store_scale = self.store_scale
        seq_mlp = self.seq_mlp
        l2_hit_ns = self.l2_hit_ns
        llc_hit_ns = self.llc_hit_ns
        line_bytes = CACHE_LINE_BYTES

        reference = self.hierarchies[0]
        l1 = reference.l1
        l1_shift = l1._line_shift
        l1_mask = l1._set_mask
        l1_nsets = l1.config.num_sets
        l1_assoc = l1.config.associativity
        l1_sets = self.l1_sets
        l1_sets_get = l1_sets.get
        l2 = reference.l2
        l2_shift = l2._line_shift
        l2_mask = l2._set_mask
        l2_nsets = l2.config.num_sets
        l2_assoc = l2.config.associativity
        l2_sets = self.l2_sets
        l2_sets_get = l2_sets.get
        llc = reference.llc
        llc_shift = llc._line_shift
        llc_mask = llc._set_mask
        llc_nsets = llc.config.num_sets
        llc_assoc = llc.config.associativity
        llc_sets = self.llc_sets
        llc_sets_get = llc_sets.get
        line_state = _LineState

        in_flight = self.in_flight
        recent_list = self.recent
        recent_cap = 8
        recent_append = recent_list.append
        now = self.now
        arms = self.arms
        dram_fill = self._dram_fill
        bank_clones = self.bank_clones
        prune_threshold = self.prune_threshold
        # Scalar hint dispatch iterates enabled prefetchers that expose
        # accept_hint; the clones are exactly those (always enabled).
        hint_handlers = [
            handler for handler in
            (getattr(clone, "accept_hint", None) for clone in bank_clones)
            if handler is not None]

        fnames = compiled.functions
        slots = self.slots
        slot_by_fid: Dict[int, _FunctionSlot] = {}
        slot = None
        cur_fid = -1
        # Shared int stats in locals, flushed at function boundaries —
        # the scalar engine's own pattern.
        s_instr = s_comp = s_loads = s_stores = s_swpf = 0
        s_l1m = s_l2m = s_llcm = s_cov = 0
        s_stall = s_late = s_dram_w = s_late_w = None

        for kind, line, extra, pc, gap, fid, addr, size in compiled.packed:
            if fid != cur_fid:
                if slot is not None:
                    slot.instr = s_instr
                    slot.comp = s_comp
                    slot.loads = s_loads
                    slot.stores = s_stores
                    slot.swpf = s_swpf
                    slot.l1m = s_l1m
                    slot.l2m = s_l2m
                    slot.llcm = s_llcm
                    slot.cov = s_cov
                slot = slot_by_fid.get(fid)
                if slot is None:
                    slot = slot_by_fid[fid] = _FunctionSlot(fnames[fid], arms)
                    slots.append(slot)
                s_instr = slot.instr
                s_comp = slot.comp
                s_loads = slot.loads
                s_stores = slot.stores
                s_swpf = slot.swpf
                s_l1m = slot.l1m
                s_l2m = slot.l2m
                s_llcm = slot.llcm
                s_cov = slot.cov
                s_stall = slot.stall
                s_late = slot.late
                s_dram_w = slot.dram_w
                s_late_w = slot.late_w
                cur_fid = fid

            if gap:
                now += gap * cycle_ns
                s_instr += gap
                s_comp += gap

            if kind <= 1:  # LOAD (0) / STORE (1): the demand path
                s_instr += 1
                s_comp += 1
                now += cycle_ns
                if kind:
                    s_stores += 1
                    scale = store_scale
                else:
                    s_loads += 1
                    scale = 1.0
                while True:
                    tag = line >> l1_shift
                    if l1_mask is None:
                        cache_set = l1_sets_get(tag % l1_nsets)
                    else:
                        cache_set = l1_sets_get(tag & l1_mask)
                    if cache_set is not None and line in cache_set:
                        state = cache_set[line]
                        cache_set.move_to_end(line)
                        self.l1_hits += 1
                        if state.prefetched and not state.referenced:
                            self.l1_pref_hits += 1
                        state.referenced = True
                        hit = True
                        # Hit: zero stall on every arm — the scalar
                        # engine skips the accumulation (x + 0.0 == x).
                    else:
                        self.l1_misses += 1
                        hit = False
                    if bank_clones:
                        # Train the clones exactly where the scalar loop
                        # trains the bank: after the L1 probe, before the
                        # miss is serviced. Proposals issue after the
                        # stall lands (the scalar op order).
                        hw_lines = []
                        for prefetcher in bank_clones:
                            hw_lines.extend(prefetcher.observe(line, pc, hit))
                    else:
                        hw_lines = None
                    if not hit:
                        s_l1m += 1
                        tag = line >> l2_shift
                        cache_set = l2_sets_get(
                            tag & l2_mask if l2_mask is not None
                            else tag % l2_nsets)
                        if cache_set is not None and line in cache_set:
                            # L2 hit.
                            state = cache_set[line]
                            cache_set.move_to_end(line)
                            self.l2_hits += 1
                            if state.prefetched and not state.referenced:
                                self.l2_pref_hits += 1
                            state.referenced = True
                            stall = l2_hit_ns
                            arrivals = in_flight.pop(line, None)
                            if arrivals is not None:
                                s_cov += 1
                                self.useful += 1
                                residual = (arrivals - now) * scale
                                late = residual > 0.0
                                if late.any():
                                    s_late[late] += 1
                                    s_late_w[late] += residual[late]
                                    stall = stall \
                                        + _np.where(late, residual, 0.0)
                            # Install into L1 (line just missed there).
                            tag = line >> l1_shift
                            index = tag & l1_mask if l1_mask is not None \
                                else tag % l1_nsets
                            cache_set = l1_sets_get(index)
                            if cache_set is None:
                                cache_set = l1_sets[index] = OrderedDict()
                            if len(cache_set) >= l1_assoc:
                                _, victim = cache_set.popitem(False)
                                self.l1_sized -= 1
                                if victim.prefetched and not victim.referenced:
                                    self.l1_wasted += 1
                            cache_set[line] = line_state(False)
                            self.l1_sized += 1
                        else:
                            self.l2_misses += 1
                            s_l2m += 1
                            tag = line >> llc_shift
                            cache_set = llc_sets_get(
                                tag & llc_mask if llc_mask is not None
                                else tag % llc_nsets)
                            if cache_set is not None and line in cache_set:
                                # LLC hit.
                                state = cache_set[line]
                                cache_set.move_to_end(line)
                                self.llc_hits += 1
                                if state.prefetched and not state.referenced:
                                    self.llc_pref_hits += 1
                                state.referenced = True
                                stall = llc_hit_ns
                                arrivals = in_flight.pop(line, None)
                                if arrivals is not None:
                                    s_cov += 1
                                    self.useful += 1
                                    residual = (arrivals - now) * scale
                                    late = residual > 0.0
                                    if late.any():
                                        s_late[late] += 1
                                        s_late_w[late] += residual[late]
                                        stall = stall \
                                            + _np.where(late, residual, 0.0)
                            else:
                                # Full miss: demand DRAM fill.
                                self.llc_misses += 1
                                in_flight.pop(line, None)
                                latency = dram_fill()
                                self.d_fills += 1
                                completion = now + latency
                                wait = (completion - now) * scale
                                if line - line_bytes in recent_list \
                                        or line + line_bytes in recent_list:
                                    wait /= seq_mlp
                                if len(recent_list) >= recent_cap:
                                    del recent_list[0]
                                recent_append(line)
                                s_llcm += 1
                                s_dram_w += wait
                                stall = llc_hit_ns * scale + wait
                                # Install into LLC.
                                index = tag & llc_mask \
                                    if llc_mask is not None \
                                    else tag % llc_nsets
                                cache_set = llc_sets_get(index)
                                if cache_set is None:
                                    cache_set = llc_sets[index] = OrderedDict()
                                if len(cache_set) >= llc_assoc:
                                    _, victim = cache_set.popitem(False)
                                    self.llc_sized -= 1
                                    if victim.prefetched \
                                            and not victim.referenced:
                                        self.llc_wasted += 1
                                cache_set[line] = line_state(False)
                                self.llc_sized += 1
                            # Install into L2.
                            tag = line >> l2_shift
                            index = tag & l2_mask if l2_mask is not None \
                                else tag % l2_nsets
                            cache_set = l2_sets_get(index)
                            if cache_set is None:
                                cache_set = l2_sets[index] = OrderedDict()
                            if len(cache_set) >= l2_assoc:
                                _, victim = cache_set.popitem(False)
                                self.l2_sized -= 1
                                if victim.prefetched and not victim.referenced:
                                    self.l2_wasted += 1
                            cache_set[line] = line_state(False)
                            self.l2_sized += 1
                            # Install into L1.
                            tag = line >> l1_shift
                            index = tag & l1_mask if l1_mask is not None \
                                else tag % l1_nsets
                            cache_set = l1_sets_get(index)
                            if cache_set is None:
                                cache_set = l1_sets[index] = OrderedDict()
                            if len(cache_set) >= l1_assoc:
                                _, victim = cache_set.popitem(False)
                                self.l1_sized -= 1
                                if victim.prefetched and not victim.referenced:
                                    self.l1_wasted += 1
                            cache_set[line] = line_state(False)
                            self.l1_sized += 1
                        now += stall
                        s_stall += stall / cycle_ns
                    if hw_lines:
                        # Inlined _issue_prefetch_at, hardware path:
                        # in-flight dedup, prune (per-arm clocks — the
                        # one thing lockstep cannot do, so bail out),
                        # presence in any level, then a DRAM prefetch
                        # fill and prefetched installs into LLC and L2.
                        # Hardware issues move no time and no stats.
                        for hw_line in hw_lines:
                            if hw_line >= 0 and hw_line not in in_flight:
                                if len(in_flight) > prune_threshold:
                                    raise LockstepBailout
                                tag = hw_line >> l1_shift
                                cache_set = l1_sets_get(
                                    tag & l1_mask if l1_mask is not None
                                    else tag % l1_nsets)
                                present = cache_set is not None \
                                    and hw_line in cache_set
                                if not present:
                                    tag = hw_line >> l2_shift
                                    l2_index = tag & l2_mask \
                                        if l2_mask is not None \
                                        else tag % l2_nsets
                                    cache_set = l2_sets_get(l2_index)
                                    present = cache_set is not None \
                                        and hw_line in cache_set
                                if not present:
                                    tag = hw_line >> llc_shift
                                    llc_index = tag & llc_mask \
                                        if llc_mask is not None \
                                        else tag % llc_nsets
                                    cache_set = llc_sets_get(llc_index)
                                    present = cache_set is not None \
                                        and hw_line in cache_set
                                if not present:
                                    latency = dram_fill()
                                    self.p_fills += 1
                                    in_flight[hw_line] = now + latency
                                    # Install into LLC, tagged prefetched.
                                    cache_set = llc_sets_get(llc_index)
                                    if cache_set is None:
                                        cache_set = llc_sets[llc_index] \
                                            = OrderedDict()
                                    if len(cache_set) >= llc_assoc:
                                        _, victim = cache_set.popitem(False)
                                        self.llc_sized -= 1
                                        if victim.prefetched \
                                                and not victim.referenced:
                                            self.llc_wasted += 1
                                    cache_set[hw_line] = line_state(True)
                                    self.llc_sized += 1
                                    # Install into L2, tagged prefetched.
                                    cache_set = l2_sets_get(l2_index)
                                    if cache_set is None:
                                        cache_set = l2_sets[l2_index] \
                                            = OrderedDict()
                                    if len(cache_set) >= l2_assoc:
                                        _, victim = cache_set.popitem(False)
                                        self.l2_sized -= 1
                                        if victim.prefetched \
                                                and not victim.referenced:
                                            self.l2_wasted += 1
                                    cache_set[hw_line] = line_state(True)
                                    self.l2_sized += 1
                    if not extra:
                        break
                    extra -= 1
                    line += line_bytes

            elif kind == 2:  # SOFTWARE_PREFETCH
                s_instr += 1
                s_comp += sw_cost_cycles
                s_swpf += 1
                now += sw_cost_ns
                while True:
                    if line not in in_flight:
                        # run_many bounds the table's software-prefetch
                        # growth statically, but hardware issues can
                        # still push it past the scalar engine's prune
                        # threshold — and the prune keys on per-arm
                        # clocks, so lockstep aborts instead.
                        if len(in_flight) > prune_threshold:
                            raise LockstepBailout
                        tag = line >> l1_shift
                        cache_set = l1_sets_get(
                            tag & l1_mask if l1_mask is not None
                            else tag % l1_nsets)
                        present = cache_set is not None and line in cache_set
                        if not present:
                            tag = line >> l2_shift
                            l2_index = tag & l2_mask if l2_mask is not None \
                                else tag % l2_nsets
                            cache_set = l2_sets_get(l2_index)
                            present = cache_set is not None \
                                and line in cache_set
                        if not present:
                            tag = line >> llc_shift
                            llc_index = tag & llc_mask \
                                if llc_mask is not None else tag % llc_nsets
                            cache_set = llc_sets_get(llc_index)
                            present = cache_set is not None \
                                and line in cache_set
                        if not present:
                            latency = dram_fill()
                            self.p_fills += 1
                            in_flight[line] = now + latency
                            # Install into LLC, tagged prefetched.
                            cache_set = llc_sets_get(llc_index)
                            if cache_set is None:
                                cache_set = llc_sets[llc_index] = OrderedDict()
                            if len(cache_set) >= llc_assoc:
                                _, victim = cache_set.popitem(False)
                                self.llc_sized -= 1
                                if victim.prefetched \
                                        and not victim.referenced:
                                    self.llc_wasted += 1
                            cache_set[line] = line_state(True)
                            self.llc_sized += 1
                            # Install into L2, tagged prefetched.
                            cache_set = l2_sets_get(l2_index)
                            if cache_set is None:
                                cache_set = l2_sets[l2_index] = OrderedDict()
                            if len(cache_set) >= l2_assoc:
                                _, victim = cache_set.popitem(False)
                                self.l2_sized -= 1
                                if victim.prefetched \
                                        and not victim.referenced:
                                    self.l2_wasted += 1
                            cache_set[line] = line_state(True)
                            self.l2_sized += 1
                            self.sw_issued += 1
                    if not extra:
                        break
                    extra -= 1
                    line += line_bytes

            else:  # STREAM_HINT: one instruction handing the stream
                # extent to the enabled engines — here, to the clones.
                s_instr += 1
                s_comp += sw_cost_cycles
                s_swpf += 1
                now += sw_cost_ns
                for handler in hint_handlers:
                    handler(addr, size)

        if slot is not None:
            slot.instr = s_instr
            slot.comp = s_comp
            slot.loads = s_loads
            slot.stores = s_stores
            slot.swpf = s_swpf
            slot.l1m = s_l1m
            slot.l2m = s_l2m
            slot.llcm = s_llcm
            slot.cov = s_cov

    # --- result assembly / state export ------------------------------------

    def results(self) -> List[RunResult]:
        wasted = self.l1_wasted + self.l2_wasted + self.llc_wasted
        # Clones started with zeroed counters, so their issue totals are
        # the run's deltas — the same quantity the scalar engine reports
        # as total_issued-after minus total_issued-before.
        hw_issued = sum(clone.issued for clone in self.bank_clones)
        out = []
        for arm in range(self.arms):
            result = RunResult()
            for slot in self.slots:
                stats = slot.stats_for(arm)
                result.functions[slot.name] = stats
                result.total.merge(stats)
            result.elapsed_ns = float(self.now[arm]) - float(self.begin[arm])
            result.dram_demand_fills = self.d_fills
            result.dram_prefetch_fills = self.p_fills
            result.dram_demand_bytes = self.d_fills * CACHE_LINE_BYTES
            result.dram_prefetch_bytes = self.p_fills * CACHE_LINE_BYTES
            result.hw_prefetches_issued = hw_issued
            result.useful_prefetches = self.useful
            result.wasted_prefetches = wasted
            out.append(result)
        return out

    def export(self, export_state: bool = True) -> None:
        """Write batch state back onto the hierarchy objects.

        Counters, the clock, the DRAM window, the in-flight table, and
        the recent-miss history are always exported (cheap); so are the
        prefetcher counter deltas (each arm's enabled prefetchers absorb
        the clones' counter signatures). Cache *contents* and prefetcher
        *training* are copied back per arm only when ``export_state`` is
        true — a sweep that discards its arms after reading results can
        skip the copies, in which case the caches come back flushed and
        the training reset (counters intact), the same post-run shape a
        scalar arm has after ``reset()``-style disposal. The last arm is
        donated the batch's working cache dicts outright (they alias
        nothing once every other arm holds a copy), which makes a batch
        of one — the CI equivalence matrix's ``batch_size=1`` leg —
        export for free. Finally the shared post-run state fingerprint
        (computed once: it is arm-invariant by construction) is stamped
        onto every arm's cache, so the next ``run_many`` regroups these
        arms without re-walking their caches.
        """
        counter_deltas = (
            ("l1", self.l1_hits, self.l1_misses, self.l1_pref_hits,
             self.l1_wasted, self.l1_sized, self.l1_sets),
            ("l2", self.l2_hits, self.l2_misses, self.l2_pref_hits,
             self.l2_wasted, self.l2_sized, self.l2_sets),
            ("llc", self.llc_hits, self.llc_misses, self.llc_pref_hits,
             self.llc_wasted, self.llc_sized, self.llc_sets),
        )
        last = self.arms - 1
        for arm, h in enumerate(self.hierarchies):
            h.now_ns = float(self.now[arm])
            for level, hits, misses, pref_hits, wasted, sized, sets \
                    in counter_deltas:
                cache = getattr(h, level)
                cache.hits += hits
                cache.misses += misses
                cache.prefetch_hits += pref_hits
                cache.wasted_prefetches += wasted
                if not export_state:
                    cache._sets.clear()
                    cache._size = 0
                elif arm == last:
                    cache._sets = sets
                    cache._size += sized
                else:
                    cache._sets = _copy_sets(sets)
                    cache._size += sized
            dram = h.dram
            dram.demand_fills += self.d_fills
            dram.demand_bytes += self.d_fills * CACHE_LINE_BYTES
            dram.prefetch_fills += self.p_fills
            dram.prefetch_bytes += self.p_fills * CACHE_LINE_BYTES
            window = dram._window
            head, tail = int(self.whead[arm]), int(self.wtail[arm])
            window._points = deque(
                (float(self.wtimes[arm, slot]), float(self.wbytes[arm, slot]))
                for slot in range(head, tail))
            window._sum = float(self.win_sum[arm])
            h._sw_issued += self.sw_issued
            h._useful += self.useful
            h._in_flight = {line: float(arrivals[arm])
                            for line, arrivals in self.in_flight.items()}
            h._recent_miss_lines = deque(self.recent, maxlen=8)
            for target, clone in zip(h.prefetchers.enabled_prefetchers(),
                                     self.bank_clones):
                target.apply_counter_delta(clone.counter_signature())
                if export_state:
                    target.adopt_training(clone)
                else:
                    target.reset()
        if export_state:
            shared_fp = state_fingerprint(self.hierarchies[last])
            for h in self.hierarchies:
                h._state_fp_cache = shared_fp
        else:
            for h in self.hierarchies:
                h._state_fp_cache = None


def run_lockstep(hierarchies, compiled,
                 export_state: bool = True) -> List[RunResult]:
    """Run ``compiled`` through every hierarchy in lockstep.

    All hierarchies must satisfy :func:`lockstep_eligible` and share one
    :func:`config_signature` *and* one :func:`state_fingerprint`
    (:func:`~repro.memsys.hierarchy.run_many` groups arms so these hold),
    and the trace's software-prefetch volume must stay under the scalar
    engine's in-flight prune threshold (see
    :func:`software_prefetch_lines`). Returns per-arm results in input
    order; every result and every arm's post-run state is bit-identical
    to the scalar compiled engine's.

    Raises :class:`LockstepBailout` — with every arm untouched — if the
    in-flight table crosses the scalar prune threshold mid-run (hardware
    issue volume has no static bound); rerun the chunk scalar.
    """
    batch = _LockstepBatch(list(hierarchies))
    batch.execute(compiled)
    batch.export(export_state)
    return batch.results()
