"""Configuration dataclasses for the memory-system simulator.

Defaults approximate one socket's share of a recent x86 server: a 2.5 GHz
core with 32 KiB L1D, 1 MiB L2, an 8 MiB LLC slice, and roughly 3 GB/s of
qualified DRAM bandwidth per core (the paper's Section 2.1 quotes ~3 GB/s
per core for its two platforms). The simulator models one core's trace
against its bandwidth share; fleet-level contention is modelled by the
DRAM model's ``external_load`` hook.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.units import CACHE_LINE_BYTES, KB, MB


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and hit latency of one cache level."""

    name: str
    size_bytes: int
    associativity: int
    hit_latency_cycles: int
    line_bytes: int = CACHE_LINE_BYTES

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.associativity <= 0:
            raise ConfigError(f"cache {self.name}: size and associativity must be positive")
        if self.line_bytes <= 0 or self.line_bytes & (self.line_bytes - 1):
            raise ConfigError(f"cache {self.name}: line size must be a power of two")
        if self.size_bytes % (self.associativity * self.line_bytes):
            raise ConfigError(
                f"cache {self.name}: size {self.size_bytes} is not divisible by "
                f"associativity*line ({self.associativity}*{self.line_bytes})")
        if self.hit_latency_cycles < 0:
            raise ConfigError(f"cache {self.name}: negative hit latency")

    @property
    def num_sets(self) -> int:
        """Number of cache sets implied by the geometry."""
        return self.size_bytes // (self.associativity * self.line_bytes)


@dataclass(frozen=True)
class DRAMConfig:
    """Parameters of the DRAM queuing-latency model.

    ``unloaded_latency_ns`` is the load-to-use latency of an isolated miss;
    the loaded latency follows the queuing curve

        latency(u) = unloaded * (1 + queue_gain * u**queue_exponent / (1 - min(u, max_utilization)))

    which rises slowly at low utilization and bends sharply near
    saturation, matching the measured MLC curve in Figure 1.
    """

    #: Qualified saturation bandwidth available to this core, bytes/ns.
    saturation_bandwidth: float = 3.0
    unloaded_latency_ns: float = 90.0
    #: Tuned to Figure 1's measured MLC curve: ~1.3x at 60% utilization,
    #: ~2x at 80%, ~3.4x at 90%, ~4x at full load (with overload growth).
    queue_gain: float = 0.30
    queue_exponent: float = 2.0
    #: Utilization is clamped below 1.0 so the curve stays finite.
    max_utilization: float = 0.90
    #: Above ``max_utilization`` the latency grows linearly with the excess,
    #: modelling a saturated controller pushing back on new requests.
    overload_gain: float = 2.0
    #: Span of the sliding window used to measure achieved bandwidth, ns.
    window_ns: float = 20_000.0

    def __post_init__(self) -> None:
        if self.saturation_bandwidth <= 0:
            raise ConfigError("saturation bandwidth must be positive")
        if self.unloaded_latency_ns <= 0:
            raise ConfigError("unloaded latency must be positive")
        if not 0.0 < self.max_utilization < 1.0:
            raise ConfigError("max_utilization must be in (0, 1)")
        if self.window_ns <= 0:
            raise ConfigError("bandwidth window must be positive")
        if self.queue_gain < 0 or self.queue_exponent <= 0:
            raise ConfigError("queue curve parameters must be positive")
        if self.overload_gain < 0:
            raise ConfigError("overload gain cannot be negative")


@dataclass(frozen=True)
class HierarchyConfig:
    """Full configuration of the simulated core + memory hierarchy."""

    l1: CacheConfig = field(default_factory=lambda: CacheConfig(
        "L1D", size_bytes=32 * KB, associativity=8, hit_latency_cycles=4))
    l2: CacheConfig = field(default_factory=lambda: CacheConfig(
        "L2", size_bytes=1 * MB, associativity=16, hit_latency_cycles=14))
    llc: CacheConfig = field(default_factory=lambda: CacheConfig(
        "LLC", size_bytes=8 * MB, associativity=16, hit_latency_cycles=42))
    dram: DRAMConfig = field(default_factory=DRAMConfig)
    #: Core clock period. 0.4 ns == 2.5 GHz.
    cycle_ns: float = 0.4
    #: Issue cost of one software-prefetch instruction, cycles.
    software_prefetch_cost_cycles: int = 1
    #: Stores drain through a write buffer, so the core only sees this
    #: fraction of a store miss's latency as back-pressure.
    store_stall_fraction: float = 0.3
    #: Out-of-order cores overlap misses to consecutive lines (memory-level
    #: parallelism); a demand miss adjacent to the previous demand miss
    #: stalls for only 1/sequential_mlp of the DRAM latency.
    sequential_mlp: float = 4.0

    def __post_init__(self) -> None:
        if self.cycle_ns <= 0:
            raise ConfigError("cycle time must be positive")
        if self.software_prefetch_cost_cycles < 0:
            raise ConfigError("software prefetch cost cannot be negative")
        if not 0.0 <= self.store_stall_fraction <= 1.0:
            raise ConfigError("store_stall_fraction must be in [0, 1]")
        if self.sequential_mlp < 1.0:
            raise ConfigError("sequential_mlp must be at least 1")
        if not (self.l1.size_bytes <= self.l2.size_bytes <= self.llc.size_bytes):
            raise ConfigError("cache sizes must be non-decreasing up the hierarchy")
