"""A time-bounded sliding window over numeric observations.

The DRAM model measures recent bandwidth by summing the bytes transferred
in a short trailing window; the Hard Limoncello controller checks whether
bandwidth has stayed above/below its thresholds for a sustained duration.
Both use :class:`SlidingWindow`.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Tuple

#: Rebuild the running sum exactly after this many incremental updates.
#: Compensated summation already keeps drift near one ulp per operation;
#: the periodic rebuild bounds the *worst case* over arbitrarily long
#: runs without measurably changing the amortized O(1) update cost.
_RECOMPUTE_INTERVAL = 4096


class SlidingWindow:
    """Sum/mean of observations within a trailing time window.

    Observations are (time, value) pairs appended in non-decreasing time
    order; stale points are evicted lazily relative to the latest
    observation (or an explicit ``now``).

    **Boundary semantics.** The window is half-open on the old side:
    at time ``t`` it covers ``(t - span_ns, t]``, so a point exactly
    ``span_ns`` old is *out* (see :meth:`_evict`'s ``<= horizon`` test).
    This deliberately mirrors the Hard Limoncello controller's sustain
    timer, which treats a threshold crossing that has lasted *exactly*
    ``sustain_duration_ns`` as sustained (``elapsed >= duration`` in
    ``HardLimoncelloController._maybe_expire``): in both, an interval of
    exactly S "has elapsed". The DRAM model's two inlined copies of the
    eviction loop (demand and software-prefetch paths in
    ``repro.memsys.hierarchy``) and the batched lockstep engine encode
    the same ``<=`` — changing any one of them would break the
    bit-identity invariant between engines, so the boundary is pinned by
    tests at exactly-``span_ns`` age.

    The running sum uses Kahan (compensated) summation: a daemon that
    ticks once per simulated second for a fleet-year performs ~3e7
    incremental add/evict updates per window, enough for naive ``+=`` /
    ``-=`` accumulation to drift visibly when large and small values mix.
    The compensation term absorbs per-operation rounding, a periodic
    exact recomputation bounds any residual, and :meth:`total` clamps at
    zero so rounding can never report a negative sum of non-negative
    observations.
    """

    __slots__ = ("span_ns", "_points", "_sum", "_comp", "_ops")

    def __init__(self, span_ns: float) -> None:
        if span_ns <= 0:
            raise ValueError(f"window span must be positive, got {span_ns}")
        self.span_ns = span_ns
        self._points: Deque[Tuple[float, float]] = deque()
        self._sum = 0.0
        self._comp = 0.0  # Kahan compensation (accumulated rounding error)
        self._ops = 0

    def _accumulate(self, value: float) -> None:
        # Kahan step: fold `value` into `_sum`, capturing the low-order
        # bits lost to rounding in `_comp` for the next step.
        y = value - self._comp
        t = self._sum + y
        self._comp = (t - self._sum) - y
        self._sum = t
        self._ops += 1
        if self._ops >= _RECOMPUTE_INTERVAL:
            self._recompute()

    def _recompute(self) -> None:
        total = 0.0
        comp = 0.0
        for _, value in self._points:
            y = value - comp
            t = total + y
            comp = (t - total) - y
            total = t
        self._sum = total
        self._comp = comp
        self._ops = 0

    def add(self, time_ns: float, value: float) -> None:
        """Add an observation."""
        if self._points and time_ns < self._points[-1][0]:
            raise ValueError(
                f"observations must be time-ordered: {time_ns} < "
                f"{self._points[-1][0]}")
        self._points.append((time_ns, value))
        self._accumulate(value)
        self._evict(time_ns)

    def _evict(self, now: float) -> None:
        # Half-open (now - span, now]: a point exactly span_ns old falls
        # on the horizon and is evicted. Keep in lockstep with the
        # inlined copies in repro.memsys.hierarchy / repro.memsys.batched.
        horizon = now - self.span_ns
        while self._points and self._points[0][0] <= horizon:
            _, value = self._points.popleft()
            self._accumulate(-value)
        if not self._points:
            # An empty window's sum is exactly zero; discard any residue.
            self._sum = 0.0
            self._comp = 0.0
            self._ops = 0

    def advance(self, now: float) -> None:
        """Evict stale observations as of ``now`` without adding any."""
        self._evict(now)

    def total(self, now: Optional[float] = None) -> float:
        """Sum of values currently in the window (never below zero)."""
        if now is not None:
            self._evict(now)
        # Bandwidth windows sum byte counts; floating-point residue must
        # not surface as a (physically meaningless) negative total.
        return self._sum if self._sum > 0.0 else 0.0

    def rate(self, now: Optional[float] = None) -> float:
        """Sum divided by the window span — e.g. bytes/ns for byte counts."""
        return self.total(now) / self.span_ns

    def __len__(self) -> int:
        return len(self._points)

    def clear(self) -> None:
        """Forget all remembered pages."""
        self._points.clear()
        self._sum = 0.0
        self._comp = 0.0
        self._ops = 0
