"""A time-bounded sliding window over numeric observations.

The DRAM model measures recent bandwidth by summing the bytes transferred
in a short trailing window; the Hard Limoncello controller checks whether
bandwidth has stayed above/below its thresholds for a sustained duration.
Both use :class:`SlidingWindow`.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Tuple


class SlidingWindow:
    """Sum/mean of observations within a trailing time window.

    Observations are (time, value) pairs appended in non-decreasing time
    order; anything older than ``span_ns`` relative to the latest
    observation (or an explicit ``now``) is evicted lazily.
    """

    __slots__ = ("span_ns", "_points", "_sum")

    def __init__(self, span_ns: float) -> None:
        if span_ns <= 0:
            raise ValueError(f"window span must be positive, got {span_ns}")
        self.span_ns = span_ns
        self._points: Deque[Tuple[float, float]] = deque()
        self._sum = 0.0

    def add(self, time_ns: float, value: float) -> None:
        """Add an observation."""
        if self._points and time_ns < self._points[-1][0]:
            raise ValueError(
                f"observations must be time-ordered: {time_ns} < "
                f"{self._points[-1][0]}")
        self._points.append((time_ns, value))
        self._sum += value
        self._evict(time_ns)

    def _evict(self, now: float) -> None:
        horizon = now - self.span_ns
        while self._points and self._points[0][0] <= horizon:
            _, value = self._points.popleft()
            self._sum -= value

    def advance(self, now: float) -> None:
        """Evict stale observations as of ``now`` without adding any."""
        self._evict(now)

    def total(self, now: float = None) -> float:
        """Sum of values currently in the window."""
        if now is not None:
            self._evict(now)
        return self._sum

    def rate(self, now: float = None) -> float:
        """Sum divided by the window span — e.g. bytes/ns for byte counts."""
        return self.total(now) / self.span_ns

    def __len__(self) -> int:
        return len(self._points)

    def clear(self) -> None:
        """Forget all remembered pages."""
        self._points.clear()
        self._sum = 0.0
