"""Tiny dependency-free ASCII charts for CLI output.

Just enough plotting to eyeball the paper's curves in a terminal: an XY
line chart (Figure 1's latency curves) and a horizontal bar chart
(Figures 16-18's deltas).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple


def line_chart(series: Dict[str, Sequence[Tuple[float, float]]],
               width: int = 60, height: int = 16,
               x_label: str = "", y_label: str = "") -> str:
    """Render one or more (x, y) series as an ASCII chart.

    Args:
        series: label -> [(x, y), ...]. Each series gets its own marker
            character, assigned in order: ``* + o x @``.
        width / height: Plot area in characters.
        x_label / y_label: Axis captions.
    """
    if not series or all(not points for points in series.values()):
        raise ValueError("need at least one non-empty series")
    if width < 10 or height < 4:
        raise ValueError("chart too small to draw")

    markers = "*+ox@"
    all_points = [point for points in series.values() for point in points]
    x_low = min(x for x, _ in all_points)
    x_high = max(x for x, _ in all_points)
    y_low = min(y for _, y in all_points)
    y_high = max(y for _, y in all_points)
    x_span = (x_high - x_low) or 1.0
    y_span = (y_high - y_low) or 1.0

    grid: List[List[str]] = [[" "] * width for _ in range(height)]
    for index, (label, points) in enumerate(series.items()):
        marker = markers[index % len(markers)]
        for x, y in points:
            column = round((x - x_low) / x_span * (width - 1))
            row = height - 1 - round((y - y_low) / y_span * (height - 1))
            grid[row][column] = marker

    lines = []
    y_top = f"{y_high:.6g}"
    y_bottom = f"{y_low:.6g}"
    gutter = max(len(y_top), len(y_bottom)) + 1
    for row_index, row in enumerate(grid):
        if row_index == 0:
            prefix = y_top.rjust(gutter)
        elif row_index == height - 1:
            prefix = y_bottom.rjust(gutter)
        else:
            prefix = " " * gutter
        lines.append(f"{prefix}|{''.join(row)}")
    lines.append(" " * gutter + "+" + "-" * width)
    x_axis = (f"{x_low:.6g}".ljust(width - 8) + f"{x_high:.6g}".rjust(8))
    lines.append(" " * (gutter + 1) + x_axis)
    if x_label or y_label:
        lines.append(" " * (gutter + 1)
                     + f"x: {x_label}   y: {y_label}".strip())
    legend = "   ".join(f"{markers[i % len(markers)]} {label}"
                        for i, label in enumerate(series))
    lines.append(" " * (gutter + 1) + legend)
    return "\n".join(lines)


def bar_chart(values: Dict[str, float], width: int = 50,
              unit: str = "") -> str:
    """Render labelled values as horizontal bars (negatives point left)."""
    if not values:
        raise ValueError("need at least one value")
    if width < 10:
        raise ValueError("chart too small to draw")
    label_width = max(len(label) for label in values)
    magnitude = max(abs(value) for value in values.values()) or 1.0
    half = width // 2
    lines = []
    for label, value in values.items():
        length = round(abs(value) / magnitude * half)
        if value >= 0:
            bar = " " * half + "|" + "#" * length
        else:
            bar = " " * (half - length) + "#" * length + "|"
        lines.append(f"{label.rjust(label_width)} {bar.ljust(width + 1)} "
                     f"{value:+.2%}{unit}")
    return "\n".join(lines)
