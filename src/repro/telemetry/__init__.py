"""Telemetry primitives: time series, sliding windows, percentiles.

These are the building blocks for the paper's measurement plane: the
per-socket 1-second memory-bandwidth sampler that feeds Hard Limoncello's
controller, and the fleetwide percentile summaries (P50/P90/P99 latency,
average/P99/peak bandwidth) reported throughout the evaluation.
"""

from repro.telemetry.timeseries import TimeSeries, TimePoint
from repro.telemetry.window import SlidingWindow
from repro.telemetry.percentile import (
    PercentileSummary,
    format_relative_change,
    percentile,
)
from repro.telemetry.counters import CounterSet
from repro.telemetry.sampler import (
    BandwidthSample,
    BandwidthSampler,
    PerfBandwidthSampler,
    ScriptedBandwidthSource,
)

__all__ = [
    "TimeSeries",
    "TimePoint",
    "SlidingWindow",
    "PercentileSummary",
    "format_relative_change",
    "percentile",
    "CounterSet",
    "BandwidthSample",
    "BandwidthSampler",
    "PerfBandwidthSampler",
    "ScriptedBandwidthSource",
]
