"""Percentile computation and the P50/P90/P99 summaries the paper reports."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Sequence

from repro.errors import TelemetryError


def format_relative_change(change: float, precision: int = 1) -> str:
    """Render a fractional change as a signed percentage.

    Infinite changes (a statistic appearing against a zero baseline, see
    :meth:`PercentileSummary.relative_change`) render as ``+inf``/``-inf``
    rather than the unreadable ``+inf%`` that ``format(inf, '+.1%')``
    produces. An undefined change (either operand was NaN) renders as a
    bare ``nan`` rather than the pseudo-signed ``+nan%`` of
    ``format(nan, '+.1%')``.
    """
    if math.isnan(change):
        return "nan"
    if change == float("inf"):
        return "+inf"
    if change == float("-inf"):
        return "-inf"
    return format(change, f"+.{precision}%")


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile of ``values`` (linear interpolation).

    Matches ``numpy.percentile``'s default method but avoids pulling numpy
    into hot simulator paths for tiny inputs.
    """
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    if not values:
        raise TelemetryError("cannot take a percentile of no observations")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    lo = int(rank)
    hi = min(lo + 1, len(ordered) - 1)
    frac = rank - lo
    # The a + (b - a) * f form is exact when a == b, so the result can
    # never round outside [min, max].
    return ordered[lo] + (ordered[hi] - ordered[lo]) * frac


@dataclass(frozen=True)
class PercentileSummary:
    """Mean plus the standard fleet percentiles of a set of observations.

    The evaluation reports averages, P50/P90/P99, and peaks for both memory
    latency (Figure 17) and socket bandwidth (Figure 18, Table 1); this is
    the container for those rows.
    """

    count: int
    mean: float
    p50: float
    p90: float
    p99: float
    peak: float

    @classmethod
    def of(cls, values: Sequence[float]) -> "PercentileSummary":
        """Build a summary from raw observations."""
        if not values:
            raise TelemetryError("cannot summarize zero observations")
        return cls(
            count=len(values),
            mean=sum(values) / len(values),
            p50=percentile(values, 50.0),
            p90=percentile(values, 90.0),
            p99=percentile(values, 99.0),
            peak=max(values),
        )

    def relative_change(self, baseline: "PercentileSummary") -> Dict[str, float]:
        """Fractional change of each statistic versus ``baseline``.

        A value of ``-0.15`` means this summary is 15% below the baseline —
        the form in which the paper quotes its reductions. A zero baseline
        with a nonzero new value is an unbounded change and is reported as
        signed infinity (previously it was silently reported as 0.0,
        masking e.g. a latency stat appearing where the baseline had
        none); zero-to-zero is genuinely "no change" and stays 0.0. A NaN
        in either operand makes the change undefined and is reported as
        NaN — notably, a NaN statistic against a zero baseline used to
        fall through ``new > 0.0`` (False for NaN) and masquerade as
        ``-inf``. Use :func:`format_relative_change` to render these
        values.
        """
        def change(new: float, old: float) -> float:
            """Fractional change of one statistic."""
            if math.isnan(new) or math.isnan(old):
                return float("nan")
            if old == 0.0:
                if new == 0.0:
                    return 0.0
                return float("inf") if new > 0.0 else float("-inf")
            return (new - old) / old

        return {
            "mean": change(self.mean, baseline.mean),
            "p50": change(self.p50, baseline.p50),
            "p90": change(self.p90, baseline.p90),
            "p99": change(self.p99, baseline.p99),
            "peak": change(self.peak, baseline.peak),
        }
