"""Per-socket memory-bandwidth sampling.

The paper's controller is driven by socket-level memory-bandwidth telemetry
collected every 1 second with ``perf`` (Section 3, "Telemetry"). Here the
role of ``perf`` is played by :class:`PerfBandwidthSampler`, which reads the
instantaneous bandwidth of any *source* — a simulated socket, a scripted
profile, or a fleet machine — and converts it to a utilization fraction of
the platform's saturation bandwidth.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Protocol

from repro.errors import TelemetryError


@dataclass(frozen=True)
class BandwidthSample:
    """One telemetry reading for a socket."""

    time_ns: float
    #: Observed memory bandwidth in bytes/ns (== GB/s).
    bandwidth: float
    #: Bandwidth as a fraction of the socket's saturation bandwidth.
    utilization: float


class BandwidthSource(Protocol):
    """Anything whose memory bandwidth can be observed."""

    @property
    def saturation_bandwidth(self) -> float:
        """The socket's qualified maximum bandwidth, bytes/ns."""

    def memory_bandwidth(self, now_ns: float) -> float:
        """Instantaneous memory bandwidth at ``now_ns``, bytes/ns."""


class BandwidthSampler(Protocol):
    """The interface Hard Limoncello's daemon polls every second."""

    def sample(self, now_ns: float) -> BandwidthSample:
        """Take one bandwidth sample at the given time."""


class PerfBandwidthSampler:
    """Samples a :class:`BandwidthSource`, optionally injecting dropouts.

    Args:
        source: The socket (or stand-in) to observe.
        dropout_rate: Probability that any given sample fails with
            :class:`~repro.errors.TelemetryError`, modelling the profiler
            being descheduled or a counter read failing. The controller
            daemon must tolerate these (it holds its previous state).
        rng: Random source for dropout decisions; supply a seeded
            ``random.Random`` for reproducibility.
    """

    def __init__(self, source: BandwidthSource, dropout_rate: float = 0.0,
                 rng: Optional[random.Random] = None) -> None:
        if not 0.0 <= dropout_rate < 1.0:
            raise ValueError(
                f"dropout_rate must be in [0, 1), got {dropout_rate}")
        self._source = source
        self._dropout_rate = dropout_rate
        self._rng = rng or random.Random(0)
        self.samples_taken = 0
        self.samples_dropped = 0

    def sample(self, now_ns: float) -> BandwidthSample:
        """Take one bandwidth sample at the given time."""
        if self._dropout_rate and self._rng.random() < self._dropout_rate:
            self.samples_dropped += 1
            raise TelemetryError(f"bandwidth sample dropped at t={now_ns}ns")
        bandwidth = self._source.memory_bandwidth(now_ns)
        saturation = self._source.saturation_bandwidth
        if saturation <= 0:
            raise TelemetryError("source reports non-positive saturation bandwidth")
        self.samples_taken += 1
        return BandwidthSample(
            time_ns=now_ns,
            bandwidth=bandwidth,
            utilization=bandwidth / saturation,
        )


class ScriptedBandwidthSource:
    """A :class:`BandwidthSource` that replays a scripted profile.

    Useful for unit tests and for reproducing the worked example of
    Figure 9, where a known bandwidth trajectory drives the controller.
    The profile is a sequence of (time_ns, bandwidth) breakpoints;
    lookups return the value of the most recent breakpoint (step-wise
    hold), which mirrors how a counter-based sampler behaves.
    """

    def __init__(self, profile, saturation_bandwidth: float) -> None:
        if saturation_bandwidth <= 0:
            raise ValueError("saturation bandwidth must be positive")
        self._profile = sorted(profile)
        if not self._profile:
            raise ValueError("profile must contain at least one breakpoint")
        self._saturation = float(saturation_bandwidth)

    @property
    def saturation_bandwidth(self) -> float:
        """The source's saturation bandwidth, bytes/ns."""
        return self._saturation

    def memory_bandwidth(self, now_ns: float) -> float:
        """Instantaneous bandwidth at a time, bytes/ns."""
        current = self._profile[0][1]
        for time_ns, value in self._profile:
            if time_ns > now_ns:
                break
            current = value
        return current
