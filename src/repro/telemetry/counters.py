"""Named monotonic counters, in the style of hardware performance counters."""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterator, Tuple


class CounterSet:
    """A bag of named, monotonically increasing counters.

    The cache hierarchy, prefetchers, and DRAM model all expose their event
    counts (hits, misses, prefetch issues, useful prefetches, bytes moved)
    through a :class:`CounterSet`, which supports snapshot-and-diff so the
    profiler can attribute deltas to intervals or functions.
    """

    __slots__ = ("_counts",)

    def __init__(self) -> None:
        self._counts: Dict[str, float] = defaultdict(float)

    def add(self, name: str, amount: float = 1.0) -> None:
        """Add an observation."""
        if amount < 0:
            raise ValueError(
                f"counter {name!r} is monotonic; cannot add {amount}")
        self._counts[name] += amount

    def get(self, name: str) -> float:
        """Current value of a counter (0 if never touched)."""
        return self._counts.get(name, 0.0)

    def __getitem__(self, name: str) -> float:
        return self.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._counts

    def __iter__(self) -> Iterator[Tuple[str, float]]:
        return iter(sorted(self._counts.items()))

    def snapshot(self) -> Dict[str, float]:
        """An independent copy of the current counts."""
        return dict(self._counts)

    def delta(self, since: Dict[str, float]) -> Dict[str, float]:
        """Per-counter increase since a previous :meth:`snapshot`."""
        names = set(self._counts) | set(since)
        return {name: self._counts.get(name, 0.0) - since.get(name, 0.0)
                for name in names}

    def merge(self, other: "CounterSet") -> None:
        """Add every counter in ``other`` into this set."""
        for name, value in other._counts.items():
            self._counts[name] += value

    def as_dict(self) -> Dict[str, float]:
        """A plain dict copy of all counters."""
        return dict(self._counts)
