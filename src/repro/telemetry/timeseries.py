"""Append-only time series with basic aggregation."""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.errors import TelemetryError


@dataclass(frozen=True)
class TimePoint:
    """One timestamped observation."""

    time_ns: float
    value: float


class TimeSeries:
    """An append-only series of (time, value) observations.

    Timestamps must be non-decreasing; the series supports range queries,
    resampling to fixed intervals, and summary statistics. This backs both
    the controller's bandwidth history and the evaluation's fleet metrics.
    """

    __slots__ = ("name", "_times", "_values")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._times: List[float] = []
        self._values: List[float] = []

    def append(self, time_ns: float, value: float) -> None:
        """Record an observation; ``time_ns`` must not move backwards."""
        if self._times and time_ns < self._times[-1]:
            raise TelemetryError(
                f"time series {self.name!r}: timestamp {time_ns} precedes "
                f"last timestamp {self._times[-1]}")
        self._times.append(time_ns)
        self._values.append(value)

    def extend(self, points: Sequence[Tuple[float, float]]) -> None:
        """Append many (time, value) observations."""
        for time_ns, value in points:
            self.append(time_ns, value)

    def __len__(self) -> int:
        return len(self._times)

    def __iter__(self) -> Iterator[TimePoint]:
        return (TimePoint(t, v) for t, v in zip(self._times, self._values))

    @property
    def times(self) -> Sequence[float]:
        """All timestamps, in order."""
        return tuple(self._times)

    @property
    def values(self) -> Sequence[float]:
        """All values, in order."""
        return tuple(self._values)

    def last(self) -> TimePoint:
        """The most recent observation."""
        if not self._times:
            raise TelemetryError(f"time series {self.name!r} is empty")
        return TimePoint(self._times[-1], self._values[-1])

    def between(self, start_ns: float, end_ns: float) -> "TimeSeries":
        """Observations with ``start_ns <= time < end_ns``."""
        lo = bisect.bisect_left(self._times, start_ns)
        hi = bisect.bisect_left(self._times, end_ns)
        out = TimeSeries(self.name)
        out._times = self._times[lo:hi]
        out._values = self._values[lo:hi]
        return out

    def mean(self) -> float:
        """Arithmetic mean of the values."""
        if not self._values:
            raise TelemetryError(f"time series {self.name!r} is empty")
        return sum(self._values) / len(self._values)

    def maximum(self) -> float:
        """Largest value."""
        if not self._values:
            raise TelemetryError(f"time series {self.name!r} is empty")
        return max(self._values)

    def minimum(self) -> float:
        """Smallest value."""
        if not self._values:
            raise TelemetryError(f"time series {self.name!r} is empty")
        return min(self._values)

    def resample(self, interval_ns: float) -> "TimeSeries":
        """Average observations into fixed ``interval_ns`` buckets.

        Bucket timestamps are the bucket start times, anchored at the first
        observation. Empty buckets are skipped.
        """
        if interval_ns <= 0:
            raise ValueError(f"interval must be positive, got {interval_ns}")
        out = TimeSeries(self.name)
        if not self._times:
            return out
        anchor = self._times[0]
        bucket_index: Optional[int] = None
        bucket_sum = 0.0
        bucket_count = 0
        for time_ns, value in zip(self._times, self._values):
            index = int((time_ns - anchor) // interval_ns)
            if bucket_index is None:
                bucket_index = index
            if index != bucket_index:
                out.append(anchor + bucket_index * interval_ns,
                           bucket_sum / bucket_count)
                bucket_index = index
                bucket_sum = 0.0
                bucket_count = 0
            bucket_sum += value
            bucket_count += 1
        if bucket_count:
            out.append(anchor + bucket_index * interval_ns,
                       bucket_sum / bucket_count)
        return out
