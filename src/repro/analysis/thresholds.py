"""The threshold study behind Figure 10.

"To identify the upper and lower thresholds for Hard Limoncello, we run a
hardware ablation study [...] we examined various lower and upper memory
bandwidth thresholds [...] by analyzing application performance trends."
The deployed winner was 60/80. The study runs Hard Limoncello (no
software prefetchers, matching the paper's ablation protocol) under each
candidate configuration and reports the fleet throughput change.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.config import LimoncelloConfig
from repro.errors import ConfigError
from repro.fleet.ablation import AblationStudy
from repro.units import SECOND

#: The configurations Figure 10 compares, as (lower%, upper%) pairs.
PAPER_CONFIGURATIONS: Tuple[Tuple[int, int], ...] = (
    (60, 80), (50, 70), (70, 90))


@dataclass(frozen=True)
class ThresholdOutcome:
    """One configuration's result."""

    label: str
    lower: float
    upper: float
    throughput_change: float
    latency_change_p50: float
    bandwidth_change_mean: float


class ThresholdStudy:
    """Sweeps (lower, upper) threshold pairs through fleet ablations."""

    def __init__(self, configurations: Sequence[Tuple[int, int]]
                 = PAPER_CONFIGURATIONS,
                 machines: int = 16, epochs: int = 60,
                 warmup_epochs: int = 20, seed: int = 13,
                 soft: bool = False) -> None:
        if not configurations:
            raise ConfigError("need at least one configuration")
        self.configurations = tuple(configurations)
        self.machines = machines
        self.epochs = epochs
        self.warmup_epochs = warmup_epochs
        self.seed = seed
        self.mode = "hard+soft" if soft else "hard"

    def run(self, workers: Optional[int] = None,
            cache_dir: Optional[str] = None) -> List[ThresholdOutcome]:
        """Run every configuration; returns outcomes in input order.

        ``workers`` and ``cache_dir`` pass straight through to each
        underlying :meth:`AblationStudy.run` — the sweep's ablations
        shard, parallelize, and cache like any other fleet study.
        """
        outcomes = []
        for lower, upper in self.configurations:
            # Timing matches the default fleet epoch (10 s): one telemetry
            # sample per epoch, three sustained samples to flip state.
            config = LimoncelloConfig.from_percent(
                lower, upper,
                sample_period_ns=10 * SECOND,
                sustain_duration_ns=30 * SECOND)
            study = AblationStudy(
                mode=self.mode, machines=self.machines, epochs=self.epochs,
                warmup_epochs=self.warmup_epochs, seed=self.seed,
                config=config)
            result = study.run(workers=workers, cache_dir=cache_dir)
            outcomes.append(ThresholdOutcome(
                label=f"{lower}/{upper}",
                lower=lower / 100.0,
                upper=upper / 100.0,
                throughput_change=result.throughput_change(),
                latency_change_p50=result.latency_reduction()["p50"],
                bandwidth_change_mean=result.bandwidth_reduction()["mean"],
            ))
        return outcomes

    @staticmethod
    def best(outcomes: List[ThresholdOutcome]) -> ThresholdOutcome:
        """The outcome with the highest throughput change."""
        if not outcomes:
            raise ConfigError("no outcomes to rank")
        return max(outcomes, key=lambda o: o.throughput_change)


def derive_thresholds_from_curve(curve, knee_ratio: float = 1.5,
                                 hysteresis_gap: float = 0.2
                                 ) -> LimoncelloConfig:
    """Derive controller thresholds from a measured latency curve.

    Section 3: "The thresholds for disabling and enabling hardware
    prefetchers were determined through fleetwide experimentation and
    analysis of last-level cache (LLC) miss latency curves." This is the
    curve-analysis half: the upper threshold is placed where loaded
    latency first exceeds ``knee_ratio`` times the unloaded latency (past
    the knee, running with prefetchers on costs more than their hit-rate
    is worth); the lower threshold sits ``hysteresis_gap`` below it.

    Args:
        curve: A prefetchers-on :class:`~repro.analysis.LatencyCurve`.
        knee_ratio: Loaded/unloaded latency ratio defining the knee.
        hysteresis_gap: Upper minus lower threshold, in utilization.
    """
    if knee_ratio <= 1.0:
        raise ConfigError("knee ratio must exceed 1")
    if hysteresis_gap <= 0.0:
        raise ConfigError("hysteresis gap must be positive")
    if not curve.points:
        raise ConfigError("cannot derive thresholds from an empty curve")
    unloaded = curve.points[0].latency_ns
    upper = None
    for point in curve.points:
        if point.latency_ns >= knee_ratio * unloaded:
            upper = point.utilization
            break
    if upper is None:
        raise ConfigError(
            f"curve never reaches {knee_ratio}x unloaded latency; "
            "measure further into saturation")
    upper = min(upper, 0.95)
    lower = upper - hysteresis_gap
    if lower <= 0.0:
        raise ConfigError(
            f"knee at {upper:.2f} leaves no room for a {hysteresis_gap} "
            "hysteresis gap")
    return LimoncelloConfig(lower_threshold=lower, upper_threshold=upper)
