"""Trace-level (micro) ablation analysis — high-fidelity Figures 11/12.

Runs the fleet-representative workload mix through the cycle-level
simulator twice — hardware prefetchers enabled and disabled — and reports
per-function cycle and MPKI deltas. This is the same experiment the fleet
harness approximates with calibration coefficients, but measured directly
on the trace simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import ConfigError
from repro.memsys.config import HierarchyConfig
from repro.memsys.hierarchy import MemoryHierarchy
from repro.memsys.prefetchers.bank import PrefetcherBank, default_prefetcher_bank
from repro.workloads.base import FunctionCategory, category_of_function
from repro.workloads.memo import memoized_fleet_mix


@dataclass(frozen=True)
class FunctionAblation:
    """One function's response to disabling hardware prefetchers."""

    function: str
    category: FunctionCategory
    cycles_on: float
    cycles_off: float
    mpki_on: float
    mpki_off: float

    @property
    def cycle_delta(self) -> float:
        """Fractional cycle change when prefetchers are disabled."""
        if self.cycles_on <= 0:
            return 0.0
        return self.cycles_off / self.cycles_on - 1.0

    @property
    def mpki_delta(self) -> float:
        """Fractional MPKI change when prefetchers are disabled."""
        if self.mpki_on <= 0:
            return float("inf") if self.mpki_off > 0 else 0.0
        return self.mpki_off / self.mpki_on - 1.0


class MicroAblationStudy:
    """Per-function prefetcher ablation on the trace simulator."""

    def __init__(self, seed: int = 7, scale: float = 1.0,
                 config: Optional[HierarchyConfig] = None) -> None:
        if scale <= 0:
            raise ConfigError("scale must be positive")
        self.seed = seed
        self.scale = scale
        self.config = config or HierarchyConfig()

    def _mix(self):
        # Memoized: the on and off arms replay the same trace object, so
        # it is generated and compiled once for the whole study.
        return memoized_fleet_mix(self.seed, self.scale)

    def run(self) -> List[FunctionAblation]:
        """Returns one record per function, sorted by cycle delta."""
        on_hierarchy = MemoryHierarchy(
            config=self.config, prefetchers=default_prefetcher_bank())
        on = on_hierarchy.run(self._mix())
        off_hierarchy = MemoryHierarchy(
            config=self.config, prefetchers=PrefetcherBank([]))
        off = off_hierarchy.run(self._mix())

        results = []
        for function, stats_on in on.functions.items():
            stats_off = off.function(function)
            if stats_off.instructions == 0:
                continue
            results.append(FunctionAblation(
                function=function,
                category=category_of_function(function),
                cycles_on=stats_on.cycles,
                cycles_off=stats_off.cycles,
                mpki_on=stats_on.llc_mpki,
                mpki_off=stats_off.llc_mpki,
            ))
        results.sort(key=lambda r: r.cycle_delta, reverse=True)
        return results


def aggregate_by_category(
        ablations: List[FunctionAblation]) -> Dict[FunctionCategory, float]:
    """Cycle-weighted mean cycle delta per category — Figure 12's bars."""
    delta_sums: Dict[FunctionCategory, float] = {}
    weights: Dict[FunctionCategory, float] = {}
    for ablation in ablations:
        weight = ablation.cycles_on
        if weight <= 0:
            continue
        delta_sums[ablation.category] = (
            delta_sums.get(ablation.category, 0.0)
            + ablation.cycle_delta * weight)
        weights[ablation.category] = (
            weights.get(ablation.category, 0.0) + weight)
    return {category: delta_sums[category] / weights[category]
            for category in delta_sums}
