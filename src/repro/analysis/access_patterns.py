"""Memory-access-pattern visibility — the Section 8.2 tooling.

"The toil of inserting software prefetches is largely due to [...] lack
of visibility into application memory access patterns. Better visibility
into memory layouts and memory access patterns can help with removing
some of the guesswork in software prefetching." (Section 8.2.)

:func:`analyze_trace` summarizes, per function, exactly the properties
Section 4 reasons about — stream lengths, stride regularity, sequential
fraction, working-set size — and :func:`propose_descriptors` turns those
summaries into candidate :class:`~repro.core.PrefetchDescriptor`s, seeding
the tuner instead of hand guessing.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.access.trace import Trace
from repro.core.soft.descriptor import PrefetchDescriptor
from repro.telemetry.percentile import percentile
from repro.units import CACHE_LINE_BYTES


@dataclass(frozen=True)
class FunctionPattern:
    """One function's observed memory behaviour."""

    function: str
    accesses: int
    #: Fraction of demand accesses continuing a +1-line stream.
    sequential_fraction: float
    #: Number of maximal sequential streams observed.
    stream_count: int
    #: Median and P90 stream length, bytes.
    stream_p50_bytes: float
    stream_p90_bytes: float
    #: Distinct cache lines touched.
    working_set_lines: int
    #: The most common non-zero per-site stride (bytes) and its share of
    #: strided transitions.
    dominant_stride: int
    dominant_stride_share: float

    @property
    def is_streaming(self) -> bool:
        """Prefetch-friendly by the Section 4.1 criteria: predominantly
        sequential with non-trivial stream lengths."""
        return (self.sequential_fraction >= 0.5
                and self.stream_p90_bytes >= 4 * CACHE_LINE_BYTES)


def analyze_trace(trace: Trace) -> Dict[str, FunctionPattern]:
    """Summarize the access pattern of every function in a trace."""
    per_site_last: Dict[Tuple[str, int], int] = {}
    strides: Dict[str, Counter] = defaultdict(Counter)
    sequential: Dict[str, int] = defaultdict(int)
    transitions: Dict[str, int] = defaultdict(int)
    accesses: Dict[str, int] = defaultdict(int)
    lines_touched: Dict[str, set] = defaultdict(set)
    open_streams: Dict[Tuple[str, int], int] = {}
    stream_lengths: Dict[str, List[int]] = defaultdict(list)

    def close_stream(key: Tuple[str, int]) -> None:
        length = open_streams.pop(key, 0)
        if length:
            stream_lengths[key[0]].append(length)

    for record in trace:
        if not record.is_demand or not record.function:
            continue
        function = record.function
        accesses[function] += 1
        for line in record.lines_touched():
            lines_touched[function].add(line)
        key = (function, record.pc)
        last = per_site_last.get(key)
        if last is not None:
            stride = record.address - last
            transitions[function] += 1
            if stride:
                strides[function][stride] += 1
            if 0 < stride <= CACHE_LINE_BYTES:
                sequential[function] += 1
                open_streams[key] = (open_streams.get(key, CACHE_LINE_BYTES)
                                     + max(stride, 0))
            else:
                close_stream(key)
        per_site_last[key] = record.address
    for key in list(open_streams):
        close_stream(key)

    patterns = {}
    for function, count in accesses.items():
        lengths = stream_lengths.get(function, [])
        total_transitions = transitions[function]
        stride_counts = strides[function]
        if stride_counts:
            dominant, dominant_count = stride_counts.most_common(1)[0]
            dominant_share = dominant_count / sum(stride_counts.values())
        else:
            dominant, dominant_share = 0, 0.0
        patterns[function] = FunctionPattern(
            function=function,
            accesses=count,
            sequential_fraction=(sequential[function] / total_transitions
                                 if total_transitions else 0.0),
            stream_count=len(lengths),
            stream_p50_bytes=percentile(lengths, 50) if lengths else 0.0,
            stream_p90_bytes=percentile(lengths, 90) if lengths else 0.0,
            working_set_lines=len(lines_touched[function]),
            dominant_stride=dominant,
            dominant_stride_share=dominant_share,
        )
    return patterns


def propose_descriptors(patterns: Dict[str, FunctionPattern],
                        min_accesses: int = 64,
                        max_candidates: int = 8
                        ) -> List[PrefetchDescriptor]:
    """Turn pattern summaries into candidate prefetch descriptors.

    Heuristics straight from Section 4.2/4.3: target streaming functions
    only; size the gate so that sub-median streams (too short to help)
    are skipped; pick distance around the P50 stream length (capped) so
    prefetches rarely overshoot; degree a quarter of the distance.
    Candidates are starting points for :class:`~repro.core.PrefetchTuner`,
    not final answers.
    """
    def line_round(value: float, low: int, high: int) -> int:
        lines = max(low, min(high, int(value) // CACHE_LINE_BYTES
                             * CACHE_LINE_BYTES))
        return lines

    candidates = []
    ranked = sorted(patterns.values(),
                    key=lambda p: p.accesses, reverse=True)
    for pattern in ranked:
        if len(candidates) >= max_candidates:
            break
        if pattern.accesses < min_accesses or not pattern.is_streaming:
            continue
        distance = line_round(pattern.stream_p50_bytes / 2, 128, 1024)
        degree = line_round(distance / 4, 64, 512)
        gate = line_round(pattern.stream_p50_bytes / 2, 0, 4096)
        candidates.append(PrefetchDescriptor(
            function=pattern.function,
            distance_bytes=distance,
            degree_bytes=degree,
            min_size_bytes=gate,
            clamp_to_stream=True,
        ))
    return candidates
