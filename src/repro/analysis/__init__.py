"""Measurement and analysis harnesses built on the simulators.

* :mod:`repro.analysis.latency_curves` — the Intel-MLC-style loaded
  latency measurement behind Figures 1 and 6.
* :mod:`repro.analysis.ablation_analysis` — micro-level (trace-driven)
  per-function ablation, the high-fidelity version of Figures 11/12.
* :mod:`repro.analysis.thresholds` — the Figure 10 threshold study.
* :mod:`repro.analysis.chaos` — the control loop under injected faults:
  availability, MTTR, and duty-cycle drift vs a fault-free twin.
"""

from repro.analysis.chaos import (
    ChaosOutcome,
    ChaosStudy,
    chaos_default_config,
    result_digest,
)

from repro.analysis.latency_curves import (
    LatencyCurve,
    LatencyPoint,
    limoncello_envelope,
    measure_latency_curve,
)
from repro.analysis.ablation_analysis import (
    FunctionAblation,
    MicroAblationStudy,
    aggregate_by_category,
)
from repro.analysis.thresholds import ThresholdStudy, ThresholdOutcome
from repro.analysis.access_patterns import (
    FunctionPattern,
    analyze_trace,
    propose_descriptors,
)

__all__ = [
    "FunctionPattern",
    "analyze_trace",
    "propose_descriptors",
    "LatencyCurve",
    "LatencyPoint",
    "measure_latency_curve",
    "limoncello_envelope",
    "FunctionAblation",
    "MicroAblationStudy",
    "aggregate_by_category",
    "ThresholdStudy",
    "ThresholdOutcome",
    "ChaosStudy",
    "ChaosOutcome",
    "chaos_default_config",
    "result_digest",
]
