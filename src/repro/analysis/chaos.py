"""The chaos study: the Hard Limoncello control loop under injected faults.

The paper's evaluation is about steady-state wins; this study is about
the operational claim underneath them — that a controller flipping
prefetcher state fleetwide can be trusted while telemetry drops out, MSR
writes fail, and machines reboot. A :class:`ChaosStudy` runs a paired
ablation under a :class:`~repro.faults.plan.FaultPlan` and reports, next
to the usual bandwidth/throughput deltas:

* **availability** — fraction of scheduled control ticks where the
  controller had live, usable telemetry;
* **duty-cycle error** — how far the prefetchers-disabled duty cycle
  drifted from a fault-free run of the same study (the faults should
  degrade observability, not flip policy);
* **MTTR** — mean time from detecting an incident to recovering from it.

Everything shards and merges exactly like the underlying ablation: the
same plan at any worker count produces a bit-identical result, which is
what :func:`result_digest` exists to check.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Optional

from repro.core.config import LimoncelloConfig, RetryPolicy
from repro.faults.metrics import ChaosMetrics
from repro.faults.plan import FaultPlan
from repro.fleet.ablation import AblationResult, AblationStudy
from repro.serialization import ablation_result_to_dict
from repro.units import SECOND


def chaos_default_config(epoch_ns: float = 10 * SECOND) -> LimoncelloConfig:
    """The hardened daemon configuration chaos studies run with.

    Unlike the legacy default (retry every tick forever, no fail-safe),
    this bounds actuation retries with exponential backoff and engages
    the telemetry fail-safe after three dark sampling periods — the
    configuration the fault-model docs describe.
    """
    return LimoncelloConfig(
        sample_period_ns=epoch_ns,
        sustain_duration_ns=3 * epoch_ns,
        retry_policy=RetryPolicy.exponential(
            max_attempts=6, initial_backoff_ns=epoch_ns),
        telemetry_failsafe_deadline_ns=3 * epoch_ns,
    )


@dataclass
class ChaosOutcome:
    """A chaos study's verdict: the faulted run, its fault-free twin,
    and the robustness numbers derived from comparing them."""

    plan: FaultPlan
    faulted: AblationResult
    baseline: AblationResult

    @property
    def chaos(self) -> ChaosMetrics:
        """The faulted run's chaos aggregate (always present)."""
        assert self.faulted.chaos is not None
        return self.faulted.chaos

    def availability(self) -> float:
        """Controller availability under the fault plan."""
        return self.chaos.availability()

    def mean_time_to_recovery_ns(self) -> Optional[float]:
        """Mean incident recovery time, or ``None`` if nothing recovered."""
        return self.chaos.mean_time_to_recovery_ns()

    def duty_cycle_error(self) -> float:
        """Absolute drift of the prefetchers-disabled duty cycle from
        the fault-free twin study.

        The fault-free duty cycle comes from the baseline's per-sample
        prefetcher-state series (aggregated fleetwide in its experiment
        arm); a robust controller keeps the error small because faults
        cost it observability, not policy.
        """
        return abs(self.chaos.duty_cycle_disabled()
                   - self._baseline_duty_cycle())

    def throughput_change(self) -> float:
        """Faulted-run fractional throughput change vs its own control
        arm (the usual ablation metric, under fault)."""
        return self.faulted.throughput_change()

    def _baseline_duty_cycle(self) -> float:
        # The twin runs under an inert (rate-zero) plan precisely so it
        # still carries a ChaosMetrics aggregate to read this from; a
        # hand-built outcome without one compares against 0.0.
        baseline_chaos = self.baseline.chaos
        if baseline_chaos is None:
            return 0.0
        return baseline_chaos.duty_cycle_disabled()


class ChaosStudy:
    """A paired chaos experiment: one ablation under a fault plan, one
    fault-free twin, same seed and population.

    Args:
        plan: The fault plan to inject.
        mode: Experiment-arm deployment (default ``"hard"`` — chaos is
            about the controller, so the arm must run daemons).
        config: Daemon configuration; defaults to
            :func:`chaos_default_config` (hardened retries + fail-safe).
        Everything else matches :class:`AblationStudy`.
    """

    def __init__(self, plan: FaultPlan, mode: str = "hard",
                 machines: int = 30, epochs: int = 100, seed: int = 11,
                 warmup_epochs: int = 20,
                 config: Optional[LimoncelloConfig] = None,
                 profile_sample_rate: float = 0.25,
                 shard_size: Optional[int] = None,
                 epoch_ns: float = 10 * SECOND) -> None:
        self.plan = plan
        self.config = config or chaos_default_config(epoch_ns)
        kwargs = dict(mode=mode, machines=machines, epochs=epochs,
                      seed=seed, warmup_epochs=warmup_epochs,
                      config=self.config,
                      profile_sample_rate=profile_sample_rate)
        if shard_size is not None:
            kwargs["shard_size"] = shard_size
        self._faulted = AblationStudy(fault_plan=plan, **kwargs)
        # The twin injects nothing (a rate-zero drop clause draws no
        # randomness and forwards every sample untouched) but still runs
        # "under a plan", so it collects the ChaosMetrics the duty-cycle
        # comparison needs.
        self._baseline = AblationStudy(
            fault_plan=FaultPlan.parse("telemetry-drop:rate=0",
                                       seed=plan.seed), **kwargs)

    def run(self, workers: Optional[int] = None,
            cache_dir: Optional[str] = None,
            obs_dir: Optional[str] = None) -> ChaosOutcome:
        """Run both the faulted study and its fault-free twin.

        ``obs_dir`` (or ``$REPRO_OBS_DIR``) traces the *faulted* study —
        the run whose incidents and fail-safe engagements the report
        renders; the inert twin stays untraced.
        """
        from repro.obs.session import resolve_obs_dir

        faulted = self._faulted.run(workers=workers, cache_dir=cache_dir,
                                    obs_dir=resolve_obs_dir(obs_dir))
        baseline = self._baseline.run(workers=workers, cache_dir=cache_dir,
                                      obs_dir="")
        return ChaosOutcome(plan=self.plan, faulted=faulted,
                            baseline=baseline)


def result_digest(result: AblationResult) -> str:
    """A stable content hash of an ablation result.

    Serializes losslessly (raw samples included) with sorted keys and
    hashes the canonical JSON — two results digest equal iff every
    sample, profile, and chaos counter matches bit-for-bit. The CLI's
    ``--compare-serial`` and the CI chaos-smoke job use this to prove
    serial/parallel equivalence.
    """
    payload = json.dumps(ablation_result_to_dict(result), sort_keys=True)
    return hashlib.sha256(payload.encode()).hexdigest()
