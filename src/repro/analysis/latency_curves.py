"""Loaded-latency measurement — the Intel MLC stand-in (Figures 1 and 6).

MLC measures load-to-use latency with a pointer-chasing probe while a
configurable amount of background traffic loads the memory system. Here
the probe is a pointer-chase trace through the cycle-level simulator and
the background load enters through the DRAM model's ``external_load``
hook. The prefetchers-on arm carries the hardware prefetchers' traffic
overhead on top of the same useful bandwidth, which is exactly why its
curve sits above the prefetchers-off curve at high utilization — the 15%
load-to-use gap of Figure 1.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.access.address import AddressSpace
from repro.errors import ConfigError
from repro.memsys.config import HierarchyConfig
from repro.memsys.hierarchy import MemoryHierarchy
from repro.memsys.prefetchers.bank import PrefetcherBank, default_prefetcher_bank
from repro.units import MB
from repro.workloads.irregular import pointer_chase_trace

#: Fleet-average traffic overhead of enabled hardware prefetchers,
#: consistent with Table 1's 11-16% bandwidth reduction when disabled.
DEFAULT_OVERFETCH = 0.15


@dataclass(frozen=True)
class LatencyPoint:
    """One measurement: useful-bandwidth utilization -> loaded latency."""

    utilization: float
    latency_ns: float


@dataclass(frozen=True)
class LatencyCurve:
    """A measured load-to-use latency curve."""

    prefetchers_on: bool
    points: Sequence[LatencyPoint]

    def latency_at(self, utilization: float) -> float:
        """Latency at the nearest measured utilization."""
        if not self.points:
            raise ConfigError("empty latency curve")
        nearest = min(self.points,
                      key=lambda p: abs(p.utilization - utilization))
        return nearest.latency_ns

    @property
    def utilizations(self) -> List[float]:
        """The curve's measured utilization points (x-axis)."""
        return [p.utilization for p in self.points]

    @property
    def latencies(self) -> List[float]:
        """The curve's measured latencies in ns (y-axis)."""
        return [p.latency_ns for p in self.points]

    def reduction_versus(self, other: "LatencyCurve",
                         utilization: float) -> float:
        """Fractional latency change of this curve vs ``other`` at a point.

        ``curve_off.reduction_versus(curve_on, 0.9)`` ≈ -0.15 reproduces
        the paper's "disabling prefetchers reduces latency by 15%"."""
        base = other.latency_at(utilization)
        if base <= 0:
            return 0.0
        return self.latency_at(utilization) / base - 1.0


def measure_latency_curve(prefetchers_on: bool,
                          utilizations: Sequence[float] = tuple(
                              x / 20 for x in range(20)),
                          probe_hops: int = 600,
                          overfetch: float = DEFAULT_OVERFETCH,
                          config: Optional[HierarchyConfig] = None,
                          seed: int = 0) -> LatencyCurve:
    """Measure load-to-use latency across background utilizations.

    Args:
        prefetchers_on: Whether the background traffic carries hardware
            prefetch overhead (the probe itself is pointer-chasing, which
            no prefetcher covers).
        utilizations: Useful-bandwidth utilization points (x-axis).
        probe_hops: Pointer-chase length per point; more hops, less noise.
        overfetch: Traffic overhead factor applied to the background when
            prefetchers are on.
        config: Hierarchy configuration (defaults to the standard core).
        seed: Probe address randomness.
    """
    if probe_hops <= 0:
        raise ConfigError("probe_hops must be positive")
    if overfetch < 0:
        raise ConfigError("overfetch cannot be negative")
    config = config or HierarchyConfig()
    saturation = config.dram.saturation_bandwidth
    multiplier = (1.0 + overfetch) if prefetchers_on else 1.0

    # One probe shared by every point: generation is deterministic in
    # ``seed`` (the per-point regeneration always produced this exact
    # trace), each point runs it on a fresh hierarchy, and traces are
    # immutable — so hoisting also shares the compiled lowering. The
    # working set is far larger than the LLC so that every hop is a
    # demand DRAM access.
    probe = pointer_chase_trace(
        AddressSpace(), working_set_bytes=512 * MB, hops=probe_hops,
        rng=random.Random(seed), gap_cycles=4,
        function="latency_probe")

    points: List[LatencyPoint] = []
    for utilization in utilizations:
        if utilization < 0:
            raise ConfigError("utilization cannot be negative")
        background = utilization * multiplier * saturation
        bank = default_prefetcher_bank() if prefetchers_on \
            else PrefetcherBank([])
        hierarchy = MemoryHierarchy(
            config=config, prefetchers=bank,
            external_load=lambda now, load=background: load)
        result = hierarchy.run(probe)
        points.append(LatencyPoint(
            utilization=utilization,
            latency_ns=result.total.average_load_to_use_ns,
        ))
    return LatencyCurve(prefetchers_on=prefetchers_on, points=tuple(points))


def limoncello_envelope(curve_on: LatencyCurve, curve_off: LatencyCurve,
                        upper_threshold: float = 0.8) -> LatencyCurve:
    """Figure 6: Limoncello rides the on-curve below the threshold (best
    cache hit rate) and the off-curve above it (best latency)."""
    if not curve_on.points or not curve_off.points:
        raise ConfigError("need non-empty curves")
    points = []
    for point in curve_on.points:
        if point.utilization <= upper_threshold:
            points.append(point)
        else:
            points.append(LatencyPoint(
                point.utilization,
                curve_off.latency_at(point.utilization)))
    return LatencyCurve(prefetchers_on=False, points=tuple(points))
