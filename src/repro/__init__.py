"""repro — a full reproduction of "Limoncello: Prefetchers for Scale"
(Jain & Lin et al., ASPLOS 2024) on a simulated substrate.

The package is organized in layers (see DESIGN.md):

* **Substrates** — :mod:`repro.memsys` (trace-driven cache/prefetcher/DRAM
  timing simulator), :mod:`repro.msr` (simulated model-specific
  registers), :mod:`repro.workloads` (synthetic fleet workloads),
  :mod:`repro.telemetry` (time series, percentiles, bandwidth sampling),
  :mod:`repro.fleet` (machines, scheduler, traffic, studies) and
  :mod:`repro.profiling` (the sampling fleetwide profiler).
* **The contribution** — :mod:`repro.core`: Hard Limoncello's hysteresis
  controller and MSR-actuating daemon, plus Soft Limoncello's prefetch
  descriptors, trace injector, target identification, and tuner.
* **Harnesses** — :mod:`repro.analysis` (loaded-latency curves, ablation
  analysis, threshold studies) and :mod:`repro.microbench` (memcpy
  microbenchmarks and load tests).

Quickstart::

    from repro import LimoncelloDaemon, LimoncelloConfig
    from repro import MSRPrefetcherActuator, PerfBandwidthSampler
    from repro.msr import MSRFile, INTEL_LIKE_MAP
    from repro.telemetry import ScriptedBandwidthSource
    from repro.units import SECOND

    socket = ScriptedBandwidthSource([(0, 90.0)], saturation_bandwidth=100.0)
    msrs = MSRFile()
    daemon = LimoncelloDaemon(
        PerfBandwidthSampler(socket),
        MSRPrefetcherActuator(msrs, INTEL_LIKE_MAP),
        LimoncelloConfig())
    daemon.run(duration_ns=60 * SECOND)
"""

from repro.core import (
    CallbackActuator,
    ControllerState,
    HardLimoncelloController,
    LimoncelloConfig,
    LimoncelloDaemon,
    MSRPrefetcherActuator,
    PrefetchDescriptor,
    PrefetchTuner,
    SingleThresholdController,
    SoftwarePrefetchInjector,
    identify_targets,
)
from repro.telemetry import PerfBandwidthSampler
from repro.memsys import MemoryHierarchy, HierarchyConfig
from repro.access import AddressSpace, MemoryAccess, Trace

__version__ = "1.0.0"

__all__ = [
    "LimoncelloConfig",
    "LimoncelloDaemon",
    "HardLimoncelloController",
    "SingleThresholdController",
    "ControllerState",
    "MSRPrefetcherActuator",
    "CallbackActuator",
    "PerfBandwidthSampler",
    "PrefetchDescriptor",
    "SoftwarePrefetchInjector",
    "PrefetchTuner",
    "identify_targets",
    "MemoryHierarchy",
    "HierarchyConfig",
    "AddressSpace",
    "MemoryAccess",
    "Trace",
    "__version__",
]
