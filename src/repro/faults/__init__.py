"""Fault injection for the Hard Limoncello control loop.

The paper's core claim is operational — the controller ran fleetwide —
which means the control loop had to survive telemetry gaps, failed MSR
writes, and machine reboots without ever leaving prefetchers stuck in
a bad state. This package models exactly those environments:

* :mod:`repro.faults.plan` — deterministic, seed-driven
  :class:`FaultPlan` descriptions (parse ``--fault-plan`` specs).
* :mod:`repro.faults.injectors` — wrappers around the telemetry
  sampler, the MSR actuator, and whole machines.
* :mod:`repro.faults.metrics` — the mergeable :class:`ChaosMetrics`
  aggregate (availability, MTTR, duty cycle) chaos studies report.

The daemon-side hardening these faults exercise — retry policy with
exponential backoff, the telemetry fail-safe, structured incident
logs — lives in :mod:`repro.core.daemon`.
"""

from repro.faults.plan import (
    FAULT_PLAN_ENV_VAR,
    RESTART_POLICIES,
    FaultClause,
    FaultPlan,
    fault_rng,
    fault_seed,
)
from repro.faults.injectors import (
    FaultyActuation,
    FaultyTelemetry,
    MachineChaos,
)
from repro.faults.metrics import ChaosMetrics, collect_chaos_metrics

__all__ = [
    "FAULT_PLAN_ENV_VAR",
    "RESTART_POLICIES",
    "FaultClause",
    "FaultPlan",
    "fault_seed",
    "fault_rng",
    "FaultyTelemetry",
    "FaultyActuation",
    "MachineChaos",
    "ChaosMetrics",
    "collect_chaos_metrics",
]
