"""Deterministic, seed-driven fault plans.

The deployed Hard Limoncello controller ran fleetwide, where partial
failure is the steady state: telemetry samplers get descheduled, perf
counters return garbage, ``wrmsr`` races firmware, and machines reboot
mid-experiment. A :class:`FaultPlan` describes such an environment as
data — a list of fault clauses plus a seed — so a chaos study can be
replayed bit-for-bit, sharded across workers, and keyed into the
on-disk result cache like any other study parameter.

Plans are written as compact specs, CLI- and env-var-friendly::

    telemetry-blackout:start=120,duration=60;msr-transient:rate=0.3

Every clause is ``kind[:key=value,...]``; clauses join with ``;``. A
leading ``seed=N`` clause overrides the plan seed. Times are in
seconds (converted to ns internally), rates are probabilities per
sample/write/epoch.

Determinism contract: every random draw a fault injector makes comes
from a :class:`random.Random` seeded by :func:`fault_seed` over
``(plan seed, fleet seed, machine name, role)`` — independent of
``PYTHONHASHSEED``, process, platform, and crucially of *worker
count*: a sharded study builds the same fleets from the same seeds
whether shards run serially or on a process pool, so the injected
fault streams (and therefore the study result) are identical.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from repro.errors import ConfigError
from repro.units import SECOND

#: Environment override for the default fault plan, honoured by the
#: fleet-study CLI commands when ``--fault-plan`` is not passed.
FAULT_PLAN_ENV_VAR = "REPRO_FAULT_PLAN"

#: Machine restart policies: prefetcher state after a crash-reboot.
RESTART_POLICIES = ("enabled", "disabled", "preserved")

#: Registry of fault kinds -> {param: (default, validator)}. ``None``
#: defaults mark required parameters.
_RATE = ("rate", "probability in [0, 1)")
_KINDS: Dict[str, Dict[str, Optional[Union[float, str]]]] = {
    # telemetry plane
    "telemetry-drop": {"rate": None},
    "telemetry-nan": {"rate": None},
    "telemetry-stale": {"rate": None},
    "telemetry-latency": {"rate": None, "delay": 2.0},
    "telemetry-skew": {"offset": None},
    "telemetry-blackout": {"start": None, "duration": None},
    # actuation plane
    "msr-transient": {"rate": None},
    "msr-permanent": {"after": None},
    "msr-partial": {"rate": None},
    # machine plane
    "machine-crash": {"rate": None, "outage": 2.0, "restart": "enabled"},
}

_RATE_PARAMS = {"rate"}
_TIME_PARAMS = {"delay", "offset", "start", "duration"}
_COUNT_PARAMS = {"after", "outage"}


def fault_seed(*parts) -> int:
    """Stable 63-bit seed for one fault injector's random stream.

    BLAKE2b over the joined parts, in the same style as
    :func:`repro.fleet.shard.shard_seed` — independent of
    ``PYTHONHASHSEED``, process, and platform.
    """
    text = "limoncello-fault:" + ":".join(str(part) for part in parts)
    digest = hashlib.blake2b(text.encode(), digest_size=8).digest()
    return int.from_bytes(digest, "big") & 0x7FFF_FFFF_FFFF_FFFF


def fault_rng(*parts) -> random.Random:
    """A seeded ``random.Random`` for one injector (see :func:`fault_seed`)."""
    return random.Random(fault_seed(*parts))


@dataclass(frozen=True)
class FaultClause:
    """One fault kind plus its parameters (validated, immutable)."""

    kind: str
    #: Sorted (name, value) pairs — a tuple so clauses stay hashable
    #: and picklable for shard specs crossing process boundaries.
    params: Tuple[Tuple[str, Union[float, str]], ...]

    def param(self, name: str) -> Union[float, str]:
        """Look up one parameter value (validation guarantees presence)."""
        for key, value in self.params:
            if key == name:
                return value
        raise ConfigError(f"clause {self.kind!r} has no parameter {name!r}")

    def time_ns(self, name: str) -> float:
        """A time parameter, converted from spec seconds to ns."""
        return float(self.param(name)) * SECOND

    def spec(self) -> str:
        """This clause back in compact spec syntax."""
        if not self.params:
            return self.kind
        rendered = ",".join(f"{key}={value}" for key, value in self.params)
        return f"{self.kind}:{rendered}"


@dataclass(frozen=True)
class FaultPlan:
    """A validated set of fault clauses plus the plan seed."""

    clauses: Tuple[FaultClause, ...]
    seed: int = 0

    def __post_init__(self) -> None:
        kinds = [clause.kind for clause in self.clauses]
        if len(set(kinds)) != len(kinds):
            raise ConfigError(f"duplicate fault kinds in plan: {kinds}")

    # --- construction ---------------------------------------------------------

    @classmethod
    def parse(cls, spec: str, seed: int = 0) -> "FaultPlan":
        """Parse a compact plan spec (see the module docstring).

        An empty/whitespace spec is rejected — "no faults" is spelled by
        not passing a plan at all, so a typo'd empty ``--fault-plan``
        cannot silently run a fault-free chaos study.
        """
        clauses: List[FaultClause] = []
        chunks = [chunk.strip() for chunk in spec.split(";") if chunk.strip()]
        if not chunks:
            raise ConfigError("empty fault plan spec")
        for chunk in chunks:
            if chunk.startswith("seed="):
                try:
                    seed = int(chunk[len("seed="):])
                except ValueError:
                    raise ConfigError(
                        f"fault plan seed must be an integer: {chunk!r}")
                continue
            kind, _, param_text = chunk.partition(":")
            kind = kind.strip()
            params: Dict[str, Union[float, str]] = {}
            if param_text.strip():
                for pair in param_text.split(","):
                    key, eq, value = pair.partition("=")
                    if not eq:
                        raise ConfigError(
                            f"malformed fault parameter {pair!r} in "
                            f"{chunk!r} (want key=value)")
                    params[key.strip()] = value.strip()
            clauses.append(_validate_clause(kind, params))
        return cls(clauses=tuple(clauses), seed=seed)

    # --- queries --------------------------------------------------------------

    def clause(self, kind: str) -> Optional[FaultClause]:
        """The clause for ``kind``, or ``None`` when the plan lacks it."""
        for clause in self.clauses:
            if clause.kind == kind:
                return clause
        return None

    def has(self, kind: str) -> bool:
        """Whether the plan includes the given fault kind."""
        return self.clause(kind) is not None

    @property
    def kinds(self) -> Tuple[str, ...]:
        """The fault kinds this plan injects, in clause order."""
        return tuple(clause.kind for clause in self.clauses)

    def spec(self) -> str:
        """The plan back in compact spec syntax (round-trips parse)."""
        parts = [f"seed={self.seed}"] if self.seed else []
        parts.extend(clause.spec() for clause in self.clauses)
        return ";".join(parts)

    def to_key_material(self) -> Dict:
        """Plain-data form for result-cache keys (stable, canonical)."""
        return {
            "seed": self.seed,
            "clauses": [
                {"kind": clause.kind,
                 "params": {key: value for key, value in clause.params}}
                for clause in self.clauses
            ],
        }


def _validate_clause(kind: str,
                     params: Dict[str, Union[float, str]]) -> FaultClause:
    """Check a clause against the registry; normalize parameter types."""
    if kind not in _KINDS:
        raise ConfigError(
            f"unknown fault kind {kind!r}; known: {sorted(_KINDS)}")
    schema = _KINDS[kind]
    unknown = set(params) - set(schema)
    if unknown:
        raise ConfigError(
            f"fault {kind!r} has no parameters {sorted(unknown)}; "
            f"accepts {sorted(schema)}")
    normalized: Dict[str, Union[float, str]] = {}
    for name, default in schema.items():
        raw = params.get(name, default)
        if raw is None:
            raise ConfigError(f"fault {kind!r} requires parameter {name!r}")
        normalized[name] = _coerce_param(kind, name, raw)
    return FaultClause(kind=kind, params=tuple(sorted(normalized.items())))


def _coerce_param(kind: str, name: str,
                  raw: Union[float, str]) -> Union[float, str]:
    if name == "restart":
        if raw not in RESTART_POLICIES:
            raise ConfigError(
                f"{kind}: restart policy must be one of {RESTART_POLICIES}, "
                f"got {raw!r}")
        return raw
    try:
        value = float(raw)
    except (TypeError, ValueError):
        raise ConfigError(
            f"{kind}: parameter {name!r} must be numeric, got {raw!r}")
    if name in _RATE_PARAMS and not 0.0 <= value < 1.0:
        raise ConfigError(
            f"{kind}: {name} must be a {_RATE[1]}, got {value}")
    if name in _TIME_PARAMS and name != "offset" and value < 0:
        raise ConfigError(f"{kind}: {name} cannot be negative, got {value}")
    if name in _COUNT_PARAMS:
        if value < 0 or value != int(value):
            raise ConfigError(
                f"{kind}: {name} must be a non-negative integer, got {raw!r}")
        return float(int(value))
    return value
