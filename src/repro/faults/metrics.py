"""Aggregated controller-robustness metrics for chaos studies.

A fleet under fault injection produces per-daemon incident logs
(:class:`~repro.core.daemon.Incident`). :class:`ChaosMetrics` reduces
them — plus machine crash/outage counters — to the operational numbers
the study reports: controller availability, mean time to recovery, the
prefetchers-disabled duty cycle, and per-kind incident counts.

Every field is a plain additive accumulator, so :meth:`ChaosMetrics.merge`
is associative and order-independent — the same algebra that lets
sharded fleet studies return bit-identical results at any worker count
(see :mod:`repro.fleet.shard`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional


@dataclass
class ChaosMetrics:
    """What a chaos study observed across every daemon in a fleet."""

    #: Control ticks the daemons actually ran.
    ticks: int = 0
    #: Ticks with a usable telemetry sample (the controller was live).
    available_ticks: int = 0
    #: Daemon-ticks lost to machine outages (daemons not running).
    down_ticks: int = 0
    dropouts: int = 0
    invalid_samples: int = 0
    actuation_attempts: int = 0
    actuation_failures: int = 0
    transitions: int = 0
    incidents: int = 0
    recovered_incidents: int = 0
    #: Sum over recovered incidents of (recovered - detected), ns.
    recovery_time_ns: float = 0.0
    #: Sum over incidents of (detected - onset), ns.
    detection_latency_ns: float = 0.0
    failsafe_engagements: int = 0
    #: Ticks with prefetchers disabled / total state ticks observed.
    disabled_ticks: int = 0
    state_ticks: int = 0
    machine_crashes: int = 0
    machine_restarts: int = 0
    incident_kinds: Dict[str, int] = field(default_factory=dict)

    # --- combination ----------------------------------------------------------

    def merge(self, other: "ChaosMetrics") -> "ChaosMetrics":
        """Fold another shard's chaos metrics into this one (in place).

        Pure addition on every field — associative and commutative, so
        merged shard metrics are independent of merge order. Returns
        ``self`` for chaining.
        """
        self.ticks += other.ticks
        self.available_ticks += other.available_ticks
        self.down_ticks += other.down_ticks
        self.dropouts += other.dropouts
        self.invalid_samples += other.invalid_samples
        self.actuation_attempts += other.actuation_attempts
        self.actuation_failures += other.actuation_failures
        self.transitions += other.transitions
        self.incidents += other.incidents
        self.recovered_incidents += other.recovered_incidents
        self.recovery_time_ns += other.recovery_time_ns
        self.detection_latency_ns += other.detection_latency_ns
        self.failsafe_engagements += other.failsafe_engagements
        self.disabled_ticks += other.disabled_ticks
        self.state_ticks += other.state_ticks
        self.machine_crashes += other.machine_crashes
        self.machine_restarts += other.machine_restarts
        for kind, count in other.incident_kinds.items():
            self.incident_kinds[kind] = (
                self.incident_kinds.get(kind, 0) + count)
        return self

    # --- views ---------------------------------------------------------------

    def availability(self) -> float:
        """Fraction of scheduled control ticks with live, usable
        telemetry — machine-down time counts against it."""
        scheduled = self.ticks + self.down_ticks
        if scheduled == 0:
            return 1.0
        return self.available_ticks / scheduled

    def mean_time_to_recovery_ns(self) -> Optional[float]:
        """Mean incident (detected -> recovered) time; ``None`` when no
        incident recovered."""
        if self.recovered_incidents == 0:
            return None
        return self.recovery_time_ns / self.recovered_incidents

    def mean_detection_latency_ns(self) -> Optional[float]:
        """Mean (fault onset -> detection) time; ``None`` without
        incidents."""
        if self.incidents == 0:
            return None
        return self.detection_latency_ns / self.incidents

    def duty_cycle_disabled(self) -> float:
        """Fraction of observed state ticks with prefetchers disabled."""
        if self.state_ticks == 0:
            return 0.0
        return self.disabled_ticks / self.state_ticks


def collect_chaos_metrics(machines) -> ChaosMetrics:
    """Reduce a fleet's daemons (and crash counters) to one
    :class:`ChaosMetrics`.

    Iterates machines in fleet order; since every field is additive the
    result is independent of that order anyway.
    """
    metrics = ChaosMetrics()
    for machine in machines:
        daemons = getattr(machine, "daemons", [])
        chaos = getattr(machine, "chaos", None)
        metrics.machine_restarts += getattr(machine, "restarts", 0)
        if chaos is not None:
            metrics.machine_crashes += chaos.crashes
            metrics.down_ticks += chaos.down_epochs * len(daemons)
        for daemon in daemons:
            report = daemon.report
            metrics.ticks += report.ticks
            metrics.available_ticks += report.samples
            metrics.dropouts += report.dropouts
            metrics.invalid_samples += report.invalid_samples
            metrics.actuation_attempts += report.actuation_attempts
            metrics.actuation_failures += report.actuation_failures
            metrics.transitions += report.transitions
            metrics.failsafe_engagements += report.failsafe_engagements
            metrics.disabled_ticks += report.disabled_ticks
            metrics.state_ticks += report.enabled_ticks + report.disabled_ticks
            for incident in report.incidents:
                metrics.incidents += 1
                metrics.incident_kinds[incident.kind] = (
                    metrics.incident_kinds.get(incident.kind, 0) + 1)
                metrics.detection_latency_ns += incident.detection_latency_ns
                if incident.recovered_ns is not None:
                    metrics.recovered_incidents += 1
                    metrics.recovery_time_ns += (
                        incident.recovered_ns - incident.detected_ns)
    return metrics
