"""Fault injectors: wrappers that sit between the daemon and the world.

Three planes, mirroring how the deployed controller actually fails:

* :class:`FaultyTelemetry` wraps any ``BandwidthSampler`` — dropped
  samples, NaN readings, stale (repeated) samples, sensor latency
  spikes, constant clock skew, and hard blackout windows.
* :class:`FaultyActuation` wraps any ``PrefetcherActuator`` — transient
  write failures, a permanent failure after N successful writes (dead
  msr driver), and torn multi-register writes that leave the socket in
  a mixed prefetcher state.
* :class:`MachineChaos` owns one machine's crash/restart schedule and
  builds the per-socket wrappers above, deriving every random stream
  from :func:`~repro.faults.plan.fault_seed` so an identical plan over
  an identical fleet replays identically — serial or sharded.

The wrappers never touch the fleet's own RNG streams: a fault plan
perturbs the run only through the faults themselves.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

from repro.errors import TelemetryError
from repro.faults.plan import FaultClause, FaultPlan, fault_rng
from repro.telemetry.sampler import BandwidthSample


class FaultyTelemetry:
    """A ``BandwidthSampler`` decorator injecting telemetry-plane faults.

    Fault checks run in a fixed order (blackout, drop, NaN, stale,
    latency) with one RNG draw per configured kind, so the stream of
    draws — and therefore the injected fault sequence — is a pure
    function of the injector's seed and the call count.
    """

    def __init__(self, inner, rng, drop_rate: float = 0.0,
                 nan_rate: float = 0.0, stale_rate: float = 0.0,
                 latency_rate: float = 0.0, latency_ns: float = 0.0,
                 skew_ns: float = 0.0,
                 blackouts: Tuple[Tuple[float, float], ...] = ()) -> None:
        self._inner = inner
        self._rng = rng
        self._drop_rate = drop_rate
        self._nan_rate = nan_rate
        self._stale_rate = stale_rate
        self._latency_rate = latency_rate
        self._latency_ns = latency_ns
        self._skew_ns = skew_ns
        self._blackouts = blackouts
        self._last: Optional[BandwidthSample] = None
        self.dropped = 0
        self.nans = 0
        self.stale_served = 0
        self.delayed = 0
        self.blackout_drops = 0

    @classmethod
    def from_plan(cls, inner, plan: FaultPlan, rng) -> "FaultyTelemetry":
        """Build a wrapper configured by the plan's telemetry clauses."""

        def rate(kind: str) -> float:
            clause = plan.clause(kind)
            return float(clause.param("rate")) if clause else 0.0

        latency = plan.clause("telemetry-latency")
        skew = plan.clause("telemetry-skew")
        blackout = plan.clause("telemetry-blackout")
        blackouts: Tuple[Tuple[float, float], ...] = ()
        if blackout is not None:
            start = blackout.time_ns("start")
            blackouts = ((start, start + blackout.time_ns("duration")),)
        return cls(
            inner, rng,
            drop_rate=rate("telemetry-drop"),
            nan_rate=rate("telemetry-nan"),
            stale_rate=rate("telemetry-stale"),
            latency_rate=(float(latency.param("rate")) if latency else 0.0),
            latency_ns=(latency.time_ns("delay") if latency else 0.0),
            skew_ns=(skew.time_ns("offset") if skew else 0.0),
            blackouts=blackouts,
        )

    def sample(self, now_ns: float) -> BandwidthSample:
        """One (possibly faulted) bandwidth sample at ``now_ns``."""
        for start_ns, end_ns in self._blackouts:
            if start_ns <= now_ns < end_ns:
                self.blackout_drops += 1
                raise TelemetryError(
                    f"telemetry blackout at t={now_ns}ns "
                    f"(window {start_ns}..{end_ns})")
        if self._drop_rate and self._rng.random() < self._drop_rate:
            self.dropped += 1
            raise TelemetryError(f"injected sample drop at t={now_ns}ns")
        observed_ns = now_ns + self._skew_ns
        if self._nan_rate and self._rng.random() < self._nan_rate:
            self.nans += 1
            return BandwidthSample(time_ns=observed_ns,
                                   bandwidth=math.nan,
                                   utilization=math.nan)
        if (self._stale_rate and self._last is not None
                and self._rng.random() < self._stale_rate):
            self.stale_served += 1
            return self._last
        if self._latency_rate and self._rng.random() < self._latency_rate:
            self.delayed += 1
            delayed_ns = observed_ns - self._latency_ns
            return self._inner.sample(delayed_ns)
        sample = self._inner.sample(observed_ns)
        self._last = sample
        return sample


class FaultyActuation:
    """A ``PrefetcherActuator`` decorator injecting actuation faults.

    ``msrs``/``msr_map`` (the socket's register file and platform map)
    are only needed for torn writes; without them ``partial_rate`` is
    ignored and the wrapper degrades to transient/permanent failures.
    """

    def __init__(self, inner, rng, transient_rate: float = 0.0,
                 fail_after: Optional[int] = None,
                 partial_rate: float = 0.0, msrs=None,
                 msr_map=None) -> None:
        self._inner = inner
        self._rng = rng
        self._transient_rate = transient_rate
        self._fail_after = fail_after
        self._partial_rate = partial_rate if msrs is not None else 0.0
        self._msrs = msrs
        self._msr_map = msr_map
        self._successful_writes = 0
        self.transient_failures = 0
        self.permanent_failures = 0
        self.torn_writes = 0

    @classmethod
    def from_plan(cls, inner, plan: FaultPlan, rng, msrs=None,
                  msr_map=None) -> "FaultyActuation":
        """Build a wrapper configured by the plan's MSR clauses."""
        transient = plan.clause("msr-transient")
        permanent = plan.clause("msr-permanent")
        partial = plan.clause("msr-partial")
        return cls(
            inner, rng,
            transient_rate=(float(transient.param("rate"))
                            if transient else 0.0),
            fail_after=(int(permanent.param("after"))
                        if permanent else None),
            partial_rate=(float(partial.param("rate")) if partial else 0.0),
            msrs=msrs, msr_map=msr_map,
        )

    @property
    def broken(self) -> bool:
        """Whether the permanent failure has tripped (writes dead)."""
        return (self._fail_after is not None
                and self._successful_writes >= self._fail_after)

    def set_enabled(self, enabled: bool) -> bool:
        """Attempt actuation through the fault model; True on success."""
        if self.broken:
            self.permanent_failures += 1
            return False
        if self._transient_rate and self._rng.random() < self._transient_rate:
            self.transient_failures += 1
            return False
        if self._partial_rate and self._rng.random() < self._partial_rate:
            # A torn write: only the first register of the multi-register
            # sequence lands, leaving a mixed per-core/per-prefetcher
            # state that readback reports as "not enabled".
            self.torn_writes += 1
            register = self._msr_map.registers[0]
            mask = self._msr_map.register_mask(register)
            if enabled:
                self._msrs.clear_bits(register, mask)
            else:
                self._msrs.set_bits(register, mask)
            # Success requires a fully consistent state — on a
            # multi-register platform the torn write leaves the other
            # registers untouched and reports failure.
            if enabled:
                return self._msr_map.all_enabled(self._msrs)
            return self._msr_map.all_disabled(self._msrs)
        if self._inner.set_enabled(enabled):
            self._successful_writes += 1
            return True
        return False

    def is_enabled(self) -> bool:
        """Readback passes straight through to the real actuator."""
        return self._inner.is_enabled()


class MachineChaos:
    """One machine's fault environment: crash schedule + socket wrappers.

    Built per machine by the fleet from ``(plan, fleet seed, machine
    name)``; every random stream derives from those three via
    :func:`~repro.faults.plan.fault_seed`, which is what keeps chaos
    studies bit-identical between serial and sharded execution.
    """

    def __init__(self, plan: FaultPlan, fleet_seed: int,
                 machine_name: str) -> None:
        self.plan = plan
        self._fleet_seed = fleet_seed
        self._machine_name = machine_name
        self._crash: Optional[FaultClause] = plan.clause("machine-crash")
        self._crash_rng = fault_rng(plan.seed, fleet_seed, machine_name,
                                    "crash")
        self.down = False
        self._outage_left = 0
        self.crashes = 0
        self.down_epochs = 0
        self.telemetry_wrappers: List[FaultyTelemetry] = []
        self.actuation_wrappers: List[FaultyActuation] = []

    # --- socket wrappers --------------------------------------------------------

    def wrap_sampler(self, inner, socket_index: int) -> FaultyTelemetry:
        """The plan's telemetry wrapper for one socket's sampler."""
        rng = fault_rng(self.plan.seed, self._fleet_seed,
                        self._machine_name, f"telemetry:{socket_index}")
        wrapper = FaultyTelemetry.from_plan(inner, self.plan, rng)
        self.telemetry_wrappers.append(wrapper)
        return wrapper

    def wrap_actuator(self, inner, socket) -> FaultyActuation:
        """The plan's actuation wrapper for one socket's actuator."""
        rng = fault_rng(self.plan.seed, self._fleet_seed,
                        self._machine_name, f"msr:{socket.index}")
        wrapper = FaultyActuation.from_plan(inner, self.plan, rng,
                                            msrs=socket.msrs,
                                            msr_map=socket.msr_map)
        self.actuation_wrappers.append(wrapper)
        return wrapper

    # --- crash/restart schedule -------------------------------------------------

    @property
    def restart_policy(self) -> str:
        """Prefetcher state policy applied when the machine reboots."""
        if self._crash is None:
            return "enabled"
        return str(self._crash.param("restart"))

    def advance(self) -> str:
        """Advance one epoch; returns ``"up"``, ``"down"``, or
        ``"restart"`` (the machine comes back up *this* epoch)."""
        if self.down:
            if self._outage_left > 0:
                self._outage_left -= 1
                self.down_epochs += 1
                return "down"
            self.down = False
            return "restart"
        if self._crash is not None:
            rate = float(self._crash.param("rate"))
            if rate and self._crash_rng.random() < rate:
                self.crashes += 1
                # The crash epoch itself is lost; the configured outage
                # counts the *additional* epochs the machine stays dark.
                self.down = True
                self._outage_left = int(self._crash.param("outage"))
                self.down_epochs += 1
                return "down"
        return "up"
