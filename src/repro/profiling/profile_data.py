"""Aggregated profile samples, keyed by function."""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

from repro.memsys.stats import FunctionStats
from repro.workloads.base import FunctionCategory, category_of_function


class ProfileData:
    """Per-function cycle/instruction/miss aggregates from sampling.

    Compatible with :func:`repro.core.soft.targets.identify_targets`
    through :meth:`as_mapping`.
    """

    def __init__(self) -> None:
        self._functions: Dict[str, FunctionStats] = {}
        self.samples = 0

    @classmethod
    def from_mapping(cls, functions: Dict[str, FunctionStats],
                     samples: int = 0) -> "ProfileData":
        """Rebuild an aggregate from a per-function stats mapping (the
        inverse of :meth:`as_mapping`, used by result deserialization)."""
        data = cls()
        data._functions = dict(functions)
        data.samples = samples
        return data

    def record(self, function: str, instructions: float, cycles: float,
               llc_misses: float) -> None:
        """Fold one sample's worth of a function's activity in."""
        stats = self._functions.get(function)
        if stats is None:
            stats = self._functions[function] = FunctionStats()
        whole_instructions = int(round(instructions))
        stats.instructions += whole_instructions
        stats.compute_cycles += whole_instructions
        stats.stall_cycles += max(cycles - instructions, 0.0)
        stats.llc_misses += int(round(llc_misses))

    def merge(self, other: "ProfileData") -> "ProfileData":
        """Fold another aggregate into this one.

        Per-function counters add, so merging is associative and
        order-independent — sharded profilers combine into the same
        aggregate a single fleet-wide profiler would have produced.
        Returns ``self`` for chaining.
        """
        for function, stats in other._functions.items():
            mine = self._functions.setdefault(function, FunctionStats())
            mine.merge(stats)
        self.samples += other.samples
        return self

    # --- views --------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._functions)

    def __contains__(self, function: str) -> bool:
        return function in self._functions

    def __iter__(self) -> Iterator[Tuple[str, FunctionStats]]:
        return iter(sorted(self._functions.items()))

    def function(self, name: str) -> FunctionStats:
        """Stats for one function (empty record if never seen)."""
        return self._functions.get(name, FunctionStats())

    def as_mapping(self) -> Dict[str, FunctionStats]:
        """A plain dict view, for the target-identification API."""
        return dict(self._functions)

    def total_cycles(self) -> float:
        """Total cycles across all profiled functions."""
        return sum(stats.cycles for stats in self._functions.values())

    def cycle_share(self, function: str) -> float:
        """One function's share of total profiled cycles."""
        total = self.total_cycles()
        if total <= 0:
            return 0.0
        return self.function(function).cycles / total

    def category_cycle_shares(self) -> Dict[FunctionCategory, float]:
        """Cycle share per taxonomy category — the Figure 20 y-axis."""
        total = self.total_cycles()
        shares: Dict[FunctionCategory, float] = {}
        if total <= 0:
            return shares
        for function, stats in self._functions.items():
            category = category_of_function(function)
            shares[category] = shares.get(category, 0.0) + stats.cycles / total
        return shares
