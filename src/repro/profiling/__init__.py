"""Fleetwide profiling — the measurement plane of the ablation studies.

Models the Google-Wide-Profiler-style tool of Section 4.1: it samples "a
limited number of random machines at any given time [...] activated only
for small time intervals", collecting per-function CPU cycles and LLC
misses. Aggregated over enough machine-epochs, the samples expose the
per-function impact of prefetcher configuration changes.
"""

from repro.profiling.profile_data import ProfileData
from repro.profiling.profiler import FleetProfiler

__all__ = ["ProfileData", "FleetProfiler"]
