"""The sampling fleet profiler.

Each epoch it samples a random subset of machines (the paper's profiler
"samples a limited number of random machines at any given time") and
attributes every sampled task's activity across its function shares,
using the socket's current operating point and the calibration table for
per-function speeds and MPKIs. The result is a :class:`ProfileData` that
the target-identification pipeline consumes directly.
"""

from __future__ import annotations

import random
from typing import Optional, Sequence

from repro.errors import ConfigError
from repro.fleet.calibration import DEFAULT_RESPONSES, ResponseTable
from repro.fleet.machine import Machine
from repro.profiling.profile_data import ProfileData

#: Abstract cycles one core contributes per sampled epoch. Only ratios
#: matter downstream; this just keeps instruction counts integral.
_CYCLES_PER_CORE_SAMPLE = 1_000_000


class FleetProfiler:
    """Samples machines and accumulates per-function profiles.

    Instances are callables compatible with ``Fleet.run(observers=...)``.

    Args:
        sample_rate: Probability a machine is profiled in a given epoch.
        responses: Calibration table for per-function MPKI and penalty.
        rng: Dedicated randomness (so profiling does not perturb the
            fleet's own random stream).
    """

    def __init__(self, sample_rate: float = 0.1,
                 responses: ResponseTable = DEFAULT_RESPONSES,
                 rng: Optional[random.Random] = None) -> None:
        if not 0.0 < sample_rate <= 1.0:
            raise ConfigError(
                f"sample rate must be in (0, 1], got {sample_rate}")
        self.sample_rate = sample_rate
        self.responses = responses
        self.data = ProfileData()
        self._rng = rng or random.Random(0x9F1E7)

    def __call__(self, now_ns: float, machines: Sequence[Machine],
                 rng: random.Random) -> None:
        """Observer hook: sample some machines this epoch."""
        for machine in machines:
            if self._rng.random() < self.sample_rate:
                self.sample_machine(machine)

    def sample_machine(self, machine: Machine) -> None:
        """Attribute one epoch of one machine's activity per function."""
        for socket in machine.sockets:
            if not socket.history:
                continue
            epoch = socket.history[-1]
            latency_ratio = epoch.latency_ns / socket.latency_at(0.0)
            hw_on = epoch.hw_prefetchers_on
            soft = socket.soft_deployed
            for task in socket.tasks:
                self._sample_task(task, latency_ratio, hw_on, soft)
        self.data.samples += 1

    def _sample_task(self, task, latency_ratio: float, hw_on: bool,
                     soft: bool) -> None:
        base_slowdown = 1.0 + task.memory_boundedness * (latency_ratio - 1.0)
        # Per-function slowdowns first: a function that regresses takes a
        # larger share of the task's (fixed) CPU time, which is exactly
        # what moves the Figure 12/20 cycle-share bars.
        slowdowns = {}
        for function, share in task.function_shares.items():
            if share <= 0.0:
                continue
            slowdown = base_slowdown
            if not hw_on:
                slowdown += self.responses[function].effective_penalty(soft)
            slowdowns[function] = max(slowdown, 1e-6)
        weight_total = sum(task.function_shares[fn] * s
                           for fn, s in slowdowns.items())
        if weight_total <= 0.0:
            return
        task_cycles = task.cores * _CYCLES_PER_CORE_SAMPLE
        for function, slowdown in slowdowns.items():
            share = task.function_shares[function]
            cycles = task_cycles * share * slowdown / weight_total
            instructions = cycles / slowdown
            mpki = self.responses[function].mpki(hw_on, soft)
            self.data.record(
                function=function,
                instructions=instructions,
                cycles=cycles,
                llc_misses=mpki * instructions / 1000.0,
            )
