"""Units and conversion helpers used across the simulator.

The simulator's canonical units are:

* time        — nanoseconds (``float``)
* data size   — bytes (``int``)
* bandwidth   — bytes per nanosecond (numerically equal to GB/s)

``bytes/ns`` was chosen deliberately: ``1 byte/ns == 1 GB/s`` (using the
decimal gigabyte the paper and vendors use for bandwidth), so bandwidth
values printed anywhere in the code read directly as GB/s.
"""

from __future__ import annotations

# --- data sizes -----------------------------------------------------------

KB = 1024
MB = 1024 * KB
GB = 1024 * MB

#: Size of one cache line in bytes; all modelled platforms use 64B lines.
CACHE_LINE_BYTES = 64

# --- time -----------------------------------------------------------------

NS = 1.0
US = 1_000.0
MS = 1_000_000.0
SECOND = 1_000_000_000.0
MINUTE = 60.0 * SECOND


def seconds(value: float) -> float:
    """Convert seconds to the canonical time unit (nanoseconds)."""
    return value * SECOND


def to_seconds(ns: float) -> float:
    """Convert nanoseconds to seconds."""
    return ns / SECOND


# --- bandwidth --------------------------------------------------------------


def gb_per_s(value: float) -> float:
    """Convert GB/s to the canonical bandwidth unit (bytes/ns).

    Numerically the identity (1 GB/s == 1 byte/ns with decimal GB); this
    function exists so call sites document their intent.
    """
    return float(value)


def to_gb_per_s(bytes_per_ns: float) -> float:
    """Convert bytes/ns to GB/s (numerically the identity)."""
    return float(bytes_per_ns)


def cache_lines(num_bytes: int, line_bytes: int = CACHE_LINE_BYTES) -> int:
    """Number of cache lines needed to hold ``num_bytes`` bytes (ceiling)."""
    if num_bytes < 0:
        raise ValueError(f"byte count must be non-negative, got {num_bytes}")
    return -(-num_bytes // line_bytes)


def line_address(address: int, line_bytes: int = CACHE_LINE_BYTES) -> int:
    """Round ``address`` down to the start of its cache line."""
    return address & ~(line_bytes - 1)
