"""Multi-tenant noisy-neighbor scenarios with per-tenant attribution.

Two or more tenants co-locate on each machine: their per-epoch traces
are round-robin :func:`~repro.access.trace.interleave`-d (every record
labelled with its tenant's name) and replayed through one shared
:class:`~repro.memsys.hierarchy.MemoryHierarchy`, so the tenants contend
for the same DRAM bandwidth window — the socket-level contention Hard
Limoncello's controller reacts to. Between epochs the controller samples
DRAM utilization and toggles the *whole socket's* prefetchers, which is
exactly the paper's tension: the disable helps the prefetch-hostile
tenant (less pollution, shorter queues) and hurts the streaming tenant
(its covered accesses become demand misses).

Every machine in a shard replays the *same* epoch trace (the shared
fleet-wide slice the paper's daemons observe), so the epoch loop runs
all live machines through :func:`~repro.memsys.hierarchy.run_many` in
lockstep: at each epoch boundary arms regroup by prefetcher-bank
enabled mask and training fingerprint, so machines whose controllers
currently agree batch together while disagreeing machines split into
sub-batches — the control-mode batching shape of ``DESIGN.md`` §11.
Machines differ only in their constant background load (a float array
lane) and their controller trajectory, never in cache-visible traffic.

Attribution needs no extra bookkeeping: the simulator's per-function
statistics, keyed by tenant label, yield per-tenant per-epoch latency
(P50/P90/P99 over epochs x machines), per-tenant demand bytes (LLC
misses x line size — these sum *exactly* to the socket's demand-byte
counter, a property test pins it), and the socket's disable duty cycle.

QoS knobs: each tenant has a ``throttle`` in (0, 1] scaling its offered
volume — the "what if we throttled the antagonist instead" lever.

Determinism mirrors the other studies: tenant traces come from
:func:`~repro.scenarios.workload.scenario_seed` streams keyed by the
study seed, tenant name, and epoch (machine-independent, which is what
makes the trace shareable), per-machine draws (load, crashes) key off
the *global* machine index, shards merge by concatenation in plan
order, and the result is bit-identical across worker counts, shard
sizes, and engines.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigError
from repro.faults.plan import FaultPlan
from repro.fleet.shard import DEFAULT_SHARD_SIZE, plan_shards
from repro.scenarios.workload import (check_kind, emit_request,
                                      scenario_rng)
from repro.serialization import canonical_json
from repro.telemetry import PercentileSummary
from repro.units import CACHE_LINE_BYTES

#: Arm configurations: fixed prefetcher states (``enabled`` /
#: ``disabled``), the stock hysteresis controller (``hard``), or a
#: pluggable :mod:`repro.policy` policy (``policy``).
NOISY_MODES = ("enabled", "disabled", "hard", "policy")

#: Upper bound of the per-machine constant co-tenant pressure, bytes/ns
#: (tenants beyond the ones we model explicitly). An in-order core
#: cannot saturate the 3.0 bytes/ns socket by itself, so this draw is
#: what spreads machines across the controller's operating range:
#: low-draw sockets never cross the upper threshold, high-draw sockets
#: sustain above it and disable.
_MAX_BACKGROUND_LOAD = 2.8

#: Default two-tenant co-location: a latency-sensitive streaming service
#: against a batch antagonist hammering random lookups.
DEFAULT_TENANTS = "latency:stream:24,batch:random:96"

#: Records taken from each tenant per interleave turn — fine enough to
#: model context-switched co-execution, the shape that defeats stream
#: prefetchers on short streams.
_INTERLEAVE_CHUNK = 16

_TENANT_FIELDS = ("epoch_latency_ns", "llc_misses", "accesses",
                  "demand_bytes")
_ROW_FIELDS = ("machine", "down", "external_load", "epochs_disabled",
               "transitions", "demand_bytes", "elapsed_ns", "tenants")


@dataclass(frozen=True)
class TenantSpec:
    """One co-located tenant.

    Args:
        name: Unique tenant name (the attribution label).
        kind: Request shape, one of
            :data:`~repro.scenarios.workload.WORKLOAD_KINDS`.
        lines: Cache-line touches offered per epoch (before throttling).
        throttle: QoS volume throttle in (0, 1]; the emitted volume is
            ``max(1, int(lines * throttle))``.
    """

    name: str
    kind: str
    lines: int = 32
    throttle: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("tenant name cannot be empty")
        check_kind(self.kind)
        if self.lines <= 0:
            raise ConfigError(
                f"tenant {self.name!r} lines must be positive")
        if not 0.0 < self.throttle <= 1.0:
            raise ConfigError(
                f"tenant {self.name!r} throttle must be in (0, 1], got "
                f"{self.throttle}")

    @property
    def effective_lines(self) -> int:
        """Offered volume after the QoS throttle."""
        return max(1, int(self.lines * self.throttle))

    def to_dict(self) -> Dict:
        return {"name": self.name, "kind": self.kind, "lines": self.lines,
                "throttle": self.throttle}


def parse_tenants(text: str) -> Tuple[TenantSpec, ...]:
    """Parse the CLI tenant grammar.

    Comma-separated tenants, each ``name:kind:lines[:throttle]`` — e.g.
    :data:`DEFAULT_TENANTS`.
    """
    tenants = []
    for chunk in text.replace(";", ",").split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        parts = chunk.split(":")
        if len(parts) not in (3, 4):
            raise ConfigError(
                f"tenant spec {chunk!r} must be name:kind:lines[:throttle]")
        try:
            tenants.append(TenantSpec(
                name=parts[0].strip(), kind=parts[1].strip(),
                lines=int(parts[2]),
                throttle=float(parts[3]) if len(parts) == 4 else 1.0))
        except ValueError as error:
            raise ConfigError(f"bad tenant spec {chunk!r}: {error}")
    if not tenants:
        raise ConfigError("no tenants in spec")
    return tuple(tenants)


@dataclass
class NoisyNeighborResult:
    """Per-machine rows for one noisy-neighbor run.

    One row per machine in global index order (down machines included,
    zeroed); merging concatenates in plan order, so serial and sharded
    runs are byte-identical at any shard size.
    """

    mode: str
    epochs: int
    tenant_names: List[str] = field(default_factory=list)
    machines: int = 0
    down: int = 0
    rows: List[Dict] = field(default_factory=list)
    #: Engine-occupancy telemetry (a
    #: :class:`~repro.memsys.batched.BatchOccupancy`), or ``None`` when
    #: restored from a cache/checkpoint payload. Excluded from
    #: :meth:`to_dict` so digests cover results, not execution strategy.
    occupancy: Optional[object] = field(default=None, compare=False,
                                        repr=False)

    def merge(self, other: "NoisyNeighborResult") -> "NoisyNeighborResult":
        """Fold the next shard's rows in (in place; plan order)."""
        if (other.mode != self.mode or other.epochs != self.epochs
                or other.tenant_names != self.tenant_names):
            raise ConfigError("cannot merge mismatched noisy-neighbor "
                              "shards")
        self.machines += other.machines
        self.down += other.down
        self.rows.extend(other.rows)
        theirs = getattr(other, "occupancy", None)
        if theirs is not None:
            if self.occupancy is None:
                self.occupancy = theirs
            else:
                self.occupancy.merge(theirs)
        return self

    # --- per-tenant attribution --------------------------------------------------

    def live_rows(self) -> List[Dict]:
        return [row for row in self.rows if not row["down"]]

    def tenant_latencies(self, name: str) -> List[float]:
        """Every live machine's per-epoch per-access latency for one
        tenant, ns (machines x epochs observations)."""
        return [latency
                for row in self.live_rows()
                for latency in row["tenants"][name]["epoch_latency_ns"]]

    def tenant_summary(self, name: str) -> Optional[PercentileSummary]:
        """P50/P90/P99 of one tenant's per-epoch latency (``None`` when
        every machine is down)."""
        latencies = self.tenant_latencies(name)
        return PercentileSummary.of(latencies) if latencies else None

    def tenant_demand_bytes(self, name: str) -> int:
        """DRAM demand bytes attributed to one tenant (exact int)."""
        return sum(row["tenants"][name]["demand_bytes"]
                   for row in self.live_rows())

    def total_demand_bytes(self) -> int:
        """The sockets' total DRAM demand bytes (exact int)."""
        return sum(row["demand_bytes"] for row in self.live_rows())

    def bandwidth_shares(self) -> Dict[str, float]:
        """Each tenant's share of total demand bytes (sums to 1.0 when
        any traffic flowed; the underlying byte counts sum exactly)."""
        total = self.total_demand_bytes()
        return {name: (self.tenant_demand_bytes(name) / total
                       if total else 0.0)
                for name in self.tenant_names}

    def duty_cycle_disabled(self) -> float:
        """Fraction of live machine-epochs with prefetchers disabled."""
        live = self.live_rows()
        if not live or self.epochs == 0:
            return 0.0
        return sum(row["epochs_disabled"] for row in live) / (
            len(live) * self.epochs)

    def transitions(self) -> int:
        """Total controller flips across live machines."""
        return sum(row["transitions"] for row in self.live_rows())

    # --- serialization ----------------------------------------------------------

    def to_dict(self) -> Dict:
        return {
            "mode": self.mode,
            "epochs": self.epochs,
            "tenant_names": list(self.tenant_names),
            "machines": self.machines,
            "down": self.down,
            "rows": [
                {**{name: row[name] for name in _ROW_FIELDS
                    if name != "tenants"},
                 "tenants": {tenant: {key: stats[key]
                                      for key in _TENANT_FIELDS}
                             for tenant, stats in row["tenants"].items()}}
                for row in self.rows
            ],
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "NoisyNeighborResult":
        return cls(mode=payload["mode"], epochs=payload["epochs"],
                   tenant_names=list(payload["tenant_names"]),
                   machines=payload["machines"], down=payload["down"],
                   rows=[dict(row) for row in payload["rows"]])


def noisy_digest(result: NoisyNeighborResult) -> str:
    """Stable content hash; equal iff every row matches bit-for-bit."""
    return hashlib.sha256(
        canonical_json(result.to_dict()).encode()).hexdigest()


@dataclass(frozen=True)
class NoisyShardSpec:
    """One shard's worth of machines (picklable pool payload)."""

    tenants: Tuple[TenantSpec, ...]
    start: int
    machines: int
    epochs: int
    study_seed: int
    mode: str
    crash_rate: float
    upper: float
    lower: float
    sustain_ns: float
    shard_index: int
    #: Serialized :mod:`repro.policy` policy (mode ``policy`` only).
    policy: Optional[str] = None
    #: Lockstep batch size forwarded to ``run_many``; never affects
    #: results, only throughput — excluded from cache and task keys.
    batch_size: Optional[int] = None


def run_noisy_shard(spec: NoisyShardSpec) -> NoisyNeighborResult:
    """Simulate this shard's machines epoch by epoch.

    Pure function of the spec — the process-pool worker entry point.
    Every machine replays the *same* interleaved tenant trace each epoch
    (tenant streams key off study seed, tenant name, and epoch — never
    the machine), so the epoch loop runs all live machines through
    :func:`~repro.memsys.hierarchy.run_many` together: arms group by
    prefetcher enabled-mask and training fingerprint, and regroup at
    every epoch boundary as controllers toggle socket state. Controller
    modes sample DRAM utilization at epoch boundaries and actuate the
    socket-level prefetcher state for the *next* epoch (telemetry acts
    with one epoch of lag, like the daemon's sampling loop).
    """
    from repro.access import AddressSpace, interleave, trace_builder
    from repro.core import LimoncelloConfig
    from repro.core.controller import HardLimoncelloController
    from repro.memsys.batched import BatchOccupancy
    from repro.memsys.dram import ConstantExternalLoad
    from repro.memsys.hierarchy import MemoryHierarchy, run_many

    tenant_names = [tenant.name for tenant in spec.tenants]
    controller_config = LimoncelloConfig(
        lower_threshold=spec.lower, upper_threshold=spec.upper,
        sustain_duration_ns=spec.sustain_ns,
        sample_period_ns=spec.sustain_ns)
    rows: List[Dict] = []
    live: List[Tuple[Dict, MemoryHierarchy, Optional[object]]] = []
    down = 0
    for local in range(spec.machines):
        machine = spec.start + local
        ident = f"m{machine}"
        row = {
            "machine": ident,
            "down": False,
            "external_load": 0.0,
            "epochs_disabled": 0,
            "transitions": 0,
            "demand_bytes": 0,
            "elapsed_ns": 0.0,
            "tenants": {name: {"epoch_latency_ns": [],
                               "llc_misses": 0,
                               "accesses": 0,
                               "demand_bytes": 0}
                        for name in tenant_names},
        }
        rows.append(row)
        if spec.crash_rate > 0.0 and scenario_rng(
                spec.study_seed, "noisy-crash",
                ident).random() < spec.crash_rate:
            row["down"] = True
            down += 1
            continue

        load = scenario_rng(spec.study_seed, "noisy-load",
                            ident).uniform(0.0, _MAX_BACKGROUND_LOAD)
        row["external_load"] = load
        hierarchy = MemoryHierarchy(
            external_load=ConstantExternalLoad(load))
        controller = None
        if spec.mode == "disabled":
            hierarchy.set_hardware_prefetchers(False)
        elif spec.mode == "hard":
            controller = HardLimoncelloController(controller_config,
                                                  ident=ident)
        elif spec.mode == "policy":
            from repro.policy.base import (PolicyController,
                                           policy_from_spec)
            controller = PolicyController(policy_from_spec(spec.policy),
                                          config=controller_config,
                                          ident=ident)
        live.append((row, hierarchy, controller))

    occupancy = BatchOccupancy()
    space = AddressSpace()
    for epoch in range(spec.epochs):
        if not live:
            break
        traces = []
        for tenant in spec.tenants:
            builder = trace_builder()
            emit_request(
                builder, tenant.kind,
                scenario_rng(spec.study_seed, "tenant", tenant.name,
                             epoch),
                space, tenant.effective_lines, function=tenant.name)
            traces.append(builder.build())
        epoch_trace = interleave(traces, chunk=_INTERLEAVE_CHUNK)
        for row, hierarchy, _ in live:
            if not hierarchy.prefetchers.enabled_prefetchers():
                row["epochs_disabled"] += 1
        results = run_many([arm for _, arm, _ in live], epoch_trace,
                           batch_size=spec.batch_size,
                           occupancy=occupancy)
        for (row, hierarchy, controller), result in zip(live, results):
            cycle_ns = hierarchy.config.cycle_ns
            row["demand_bytes"] += result.dram_demand_bytes
            row["elapsed_ns"] += result.elapsed_ns
            for name in tenant_names:
                stats = result.function(name)
                tenant_row = row["tenants"][name]
                accesses = stats.accesses
                tenant_row["epoch_latency_ns"].append(
                    stats.cycles * cycle_ns / accesses if accesses else 0.0)
                tenant_row["llc_misses"] += stats.llc_misses
                tenant_row["accesses"] += accesses
                tenant_row["demand_bytes"] += (stats.llc_misses
                                               * CACHE_LINE_BYTES)
            if controller is not None:
                decision = controller.observe(
                    hierarchy.now_ns,
                    hierarchy.dram.utilization(hierarchy.now_ns))
                hierarchy.set_hardware_prefetchers(
                    decision.prefetchers_enabled)
    for row, _, controller in live:
        if controller is not None:
            row["transitions"] = controller.transitions
    return NoisyNeighborResult(
        mode=spec.mode, epochs=spec.epochs, tenant_names=tenant_names,
        machines=spec.machines, down=down, rows=rows,
        occupancy=occupancy)


class NoisyNeighborScenario:
    """A multi-tenant interference study over a small fleet.

    Args:
        tenants: The co-located tenants (2+ for an interference study;
            parse CLI text with :func:`parse_tenants`).
        machines: Socket population; each runs every tenant.
        epochs: Control epochs per machine (one telemetry sample each).
        seed: Master study seed; every draw derives from it.
        mode: ``enabled`` / ``disabled`` (fixed prefetcher state),
            ``hard`` (hysteresis controller), or ``policy`` (pluggable
            :mod:`repro.policy` policy via ``policy``).
        policy: A :class:`repro.policy.base.Policy`, serialized policy
            dict, or canonical-JSON string (mode ``policy`` only).
            Enters cache and shard-task keys only when set, so
            policy-free keys are unchanged.
        upper / lower / sustain_ns: Controller thresholds and sustain
            duration, scaled to trace time (default 80%/60% and 30 µs —
            the paper's seconds-scale sustain would never expire inside
            a microsecond-scale replay).
        crash_rate: Fraction of machines a chaos run marks down
            (deterministic per-machine draw; a ``machine-crash`` clause
            in ``fault_plan`` supplies it when the explicit rate is 0).
        shard_size: Machines per shard. Machine identities and draws
            key off *global* indices, so the merged result is invariant
            to the shard size too (it is excluded from cache keys).
        batch_size: Lockstep batch size forwarded to ``run_many``;
            never affects results, only throughput — excluded from
            cache and task keys.
    """

    STUDY = "scenario-noisy"

    def __init__(self, tenants=None, machines: int = 8, epochs: int = 24,
                 seed: int = 23, mode: str = "hard",
                 policy=None, upper: float = 0.8, lower: float = 0.6,
                 sustain_ns: float = 30_000.0,
                 crash_rate: float = 0.0,
                 shard_size: int = DEFAULT_SHARD_SIZE,
                 batch_size: Optional[int] = None,
                 fault_plan: Optional[FaultPlan] = None) -> None:
        if tenants is None:
            tenants = parse_tenants(DEFAULT_TENANTS)
        if isinstance(tenants, str):
            tenants = parse_tenants(tenants)
        tenants = tuple(tenants)
        if not tenants:
            raise ConfigError("need at least one tenant")
        names = [tenant.name for tenant in tenants]
        if len(set(names)) != len(names):
            raise ConfigError(f"duplicate tenant names in {names}")
        if mode not in NOISY_MODES:
            raise ConfigError(
                f"mode must be one of {NOISY_MODES}, got {mode!r}")
        if mode == "policy":
            if policy is None:
                raise ConfigError("mode 'policy' needs a policy")
            from repro.policy.base import Policy, policy_from_spec
            if isinstance(policy, Policy):
                policy = canonical_json(policy.to_dict())
            elif isinstance(policy, dict):
                policy = canonical_json(policy)
            policy_from_spec(policy)  # validate early
        elif policy is not None:
            raise ConfigError(
                f"a policy needs mode 'policy', got mode {mode!r}")
        if machines <= 0:
            raise ConfigError("need at least one machine")
        if epochs <= 0:
            raise ConfigError(f"epochs must be positive, got {epochs}")
        if not 0.0 < lower < upper <= 1.0:
            raise ConfigError(
                f"need 0 < lower ({lower}) < upper ({upper}) <= 1")
        if sustain_ns <= 0:
            raise ConfigError("sustain_ns must be positive")
        if not 0.0 <= crash_rate < 1.0:
            raise ConfigError(
                f"crash rate must be in [0, 1), got {crash_rate}")
        if shard_size <= 0:
            raise ConfigError(
                f"shard size must be positive, got {shard_size}")
        if fault_plan is not None and crash_rate == 0.0:
            clause = fault_plan.clause("machine-crash")
            if clause is not None:
                rate = dict(clause.params).get("rate")
                crash_rate = float(rate) if rate is not None else 0.0
        self.tenants = tenants
        self.machines = machines
        self.epochs = epochs
        self.seed = seed
        self.mode = mode
        self.policy = policy
        self.upper = upper
        self.lower = lower
        self.sustain_ns = sustain_ns
        self.crash_rate = crash_rate
        self.shard_size = shard_size
        self.batch_size = batch_size
        #: Work-queue disposition of the last :meth:`run`, or ``None``.
        self.queue_stats = None

    # --- sharding ----------------------------------------------------------------

    def shard_specs(self) -> List[NoisyShardSpec]:
        """Per-shard specs (plan order), carrying global start indices."""
        plan = plan_shards(self.machines, self.shard_size)
        specs = []
        start = 0
        for index, size in enumerate(plan.sizes):
            specs.append(NoisyShardSpec(
                tenants=self.tenants, start=start, machines=size,
                epochs=self.epochs, study_seed=self.seed, mode=self.mode,
                crash_rate=self.crash_rate, upper=self.upper,
                lower=self.lower, sustain_ns=self.sustain_ns,
                shard_index=index, policy=self.policy,
                batch_size=self.batch_size))
            start += size
        return specs

    def cache_key_material(self) -> Dict:
        """Everything the result depends on, as plain data.

        Excludes workers, batch size, *and* shard size (machine draws
        key off global indices). The policy payload enters only when
        set, so policy-free keys are unchanged.
        """
        material = {
            "study": self.STUDY,
            "tenants": [tenant.to_dict() for tenant in self.tenants],
            "machines": self.machines,
            "epochs": self.epochs,
            "seed": self.seed,
            "mode": self.mode,
            "upper": self.upper,
            "lower": self.lower,
            "sustain_ns": self.sustain_ns,
            "crash_rate": self.crash_rate,
        }
        if self.policy is not None:
            material["policy"] = self.policy
        return material

    def shard_task_materials(self) -> List[Dict]:
        """Work-queue key material per shard (plan order)."""
        from repro.fleet.queue import shard_task_material

        materials = []
        for spec in self.shard_specs():
            body = {
                "tenants": [tenant.to_dict() for tenant in spec.tenants],
                "start": spec.start,
                "machines": spec.machines,
                "epochs": spec.epochs,
                "study_seed": spec.study_seed,
                "mode": spec.mode,
                "crash_rate": spec.crash_rate,
                "upper": spec.upper,
                "lower": spec.lower,
                "sustain_ns": spec.sustain_ns,
                "shard_index": spec.shard_index,
            }
            if spec.policy is not None:
                body["policy"] = spec.policy
            materials.append(shard_task_material(self.STUDY, body))
        return materials

    # --- execution ---------------------------------------------------------------

    def run(self, workers: Optional[int] = None,
            cache_dir: Optional[str] = None,
            checkpoint_dir: Optional[str] = None,
            resume: bool = True,
            obs_dir: Optional[str] = None) -> NoisyNeighborResult:
        """Run every machine shard and merge rows in plan order.

        Same contract as :meth:`MicroFleetSweep.run
        <repro.fleet.sweep.MicroFleetSweep.run>`; after the call,
        :attr:`queue_stats` holds the work-queue disposition.
        """
        from repro.scenarios.study import run_scenario_study

        result, stats = run_scenario_study(
            self, run_noisy_shard, NoisyNeighborResult.from_dict,
            workers=workers, cache_dir=cache_dir,
            checkpoint_dir=checkpoint_dir, resume=resume, obs_dir=obs_dir,
            shard_meta=lambda spec: {"machines": spec.machines,
                                     "seed": spec.study_seed,
                                     "epochs": spec.epochs})
        self.queue_stats = stats
        return result

    def baseline_twin(self) -> "NoisyNeighborScenario":
        """The paired always-``enabled`` arm over identical traffic —
        the ablation bridge: same seed, same tenants, same machines."""
        return NoisyNeighborScenario(
            tenants=self.tenants, machines=self.machines,
            epochs=self.epochs, seed=self.seed, mode="enabled",
            upper=self.upper, lower=self.lower,
            sustain_ns=self.sustain_ns, crash_rate=self.crash_rate,
            shard_size=self.shard_size, batch_size=self.batch_size)

    def compare_to_baseline(self, result: NoisyNeighborResult,
                            baseline: NoisyNeighborResult) -> Dict[str, Dict]:
        """Per-tenant relative change of every latency statistic versus
        the always-enabled twin (negative = this arm is faster)."""
        comparison: Dict[str, Dict] = {}
        for tenant in self.tenants:
            summary = result.tenant_summary(tenant.name)
            base = baseline.tenant_summary(tenant.name)
            if summary is None or base is None:
                continue
            comparison[tenant.name] = summary.relative_change(base)
        return comparison
