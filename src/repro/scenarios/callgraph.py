"""SLOFetch-style microservice call-graph scenarios.

A scenario is a DAG of services. Each service has a request shape (one
of :data:`~repro.scenarios.workload.WORKLOAD_KINDS`), a replica count,
and fan-out edges ``(child, calls-per-request)``. A shared arrival
stream of ``requests`` RPCs enters at the root; every service handles
every request (fan-out multiplies the *downstream* latency, not the
service's own work, which models the paper's datacenter-tax shape: the
leaf does the memory work, the edge pays the latency).

Execution is trace-driven: each service's requests are lowered into one
concatenated columnar trace — request ``i``'s records labelled
``req000i`` — and every replica replays it through a full
:class:`~repro.memsys.hierarchy.MemoryHierarchy` via
:func:`~repro.memsys.hierarchy.run_many`, so arms batch through the
lockstep engine exactly like the micro-fleet sweep — ``off`` arms in
empty-bank groups, ``control`` arms grouped by prefetcher-bank
configuration and training fingerprint. Each shard records a
:class:`~repro.memsys.batched.BatchOccupancy` surfaced through the
``repro scenario`` report.
Per-request per-replica latency falls out of the simulator's
per-function statistics; end-to-end request latency is assembled over
the DAG (request ``i`` routes to replica ``i % live``) and reported as
:class:`~repro.telemetry.PercentileSummary` P50/P90/P99 SLO rows.

Determinism mirrors the fleet studies: every draw (request contents,
replica background load, chaos crashes) comes from a
:func:`~repro.scenarios.workload.scenario_seed` stream keyed by the
study seed and the entity, shards are one-service-per-shard in listed
order, and merges concatenate in plan order — so serial, sharded, and
batched runs are bit-identical and :func:`callgraph_digest` proves it.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigError
from repro.faults.plan import FaultPlan
from repro.scenarios.workload import (check_kind, emit_request,
                                      request_label, scenario_rng)
from repro.serialization import canonical_json
from repro.telemetry import PercentileSummary

#: Arm configurations, mirroring the sweep: ``off`` ablates every
#: hardware prefetcher, ``control`` keeps the default aggressive bank.
#: Both batch through the lockstep engine.
CALLGRAPH_MODES = ("off", "control")

#: Upper bound of the per-replica background-load draw, bytes/ns.
_MAX_BACKGROUND_LOAD = 2.0

#: The default five-service topology: an edge frontend fanning out to
#: auth and two cache lookups, the caches sharing a storage leaf.
DEFAULT_SERVICES = ("frontend:mixed:2:24>auth*1+cache*2;"
                    "auth:random:1:12;"
                    "cache:stream:2:32>storage*1;"
                    "storage:chase:1:20")

_ROW_FIELDS = ("service", "replica", "external_load", "down",
               "elapsed_ns", "llc_misses", "dram_demand_bytes",
               "dram_wait_ns", "request_latency_ns")


@dataclass(frozen=True)
class ServiceSpec:
    """One service of the call graph.

    Args:
        name: Unique service name (the routing key of fan-out edges).
        kind: Request shape, one of
            :data:`~repro.scenarios.workload.WORKLOAD_KINDS`.
        replicas: Machine count; request ``i`` routes to replica
            ``i % live-replicas``.
        request_lines: Cache-line touches one request costs this service.
        calls: Fan-out edges as ``(child-service, calls-per-request)``.
    """

    name: str
    kind: str
    replicas: int = 1
    request_lines: int = 16
    calls: Tuple[Tuple[str, int], ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("service name cannot be empty")
        check_kind(self.kind)
        if self.replicas <= 0:
            raise ConfigError(
                f"service {self.name!r} needs at least one replica")
        if self.request_lines <= 0:
            raise ConfigError(
                f"service {self.name!r} request_lines must be positive")
        for child, calls in self.calls:
            if calls <= 0:
                raise ConfigError(
                    f"service {self.name!r} calls {child!r} {calls} times; "
                    "calls must be positive")

    def to_dict(self) -> Dict:
        return {"name": self.name, "kind": self.kind,
                "replicas": self.replicas,
                "request_lines": self.request_lines,
                "calls": [[child, calls] for child, calls in self.calls]}


def parse_services(text: str) -> Tuple[ServiceSpec, ...]:
    """Parse the CLI service grammar.

    Semicolon-separated services, each
    ``name:kind:replicas:lines[>child*calls+child*calls...]`` — e.g.
    :data:`DEFAULT_SERVICES`.
    """
    services = []
    for chunk in text.split(";"):
        chunk = chunk.strip()
        if not chunk:
            continue
        head, _, fanout = chunk.partition(">")
        parts = head.split(":")
        if len(parts) != 4:
            raise ConfigError(
                f"service spec {head!r} must be name:kind:replicas:lines")
        name, kind, replicas, lines = (part.strip() for part in parts)
        calls = []
        if fanout.strip():
            for edge in fanout.split("+"):
                child, star, count = edge.strip().partition("*")
                if not star:
                    raise ConfigError(
                        f"fan-out edge {edge!r} must be child*calls")
                calls.append((child.strip(), int(count)))
        try:
            services.append(ServiceSpec(
                name=name, kind=kind, replicas=int(replicas),
                request_lines=int(lines), calls=tuple(calls)))
        except ValueError as error:
            raise ConfigError(f"bad service spec {chunk!r}: {error}")
    if not services:
        raise ConfigError("no services in spec")
    return tuple(services)


@dataclass
class CallGraphResult:
    """Per-replica rows for one call-graph run.

    ``rows`` holds one row per replica in plan order (services in listed
    order, replicas in index order) — down replicas included with zeroed
    counters and an empty latency vector, so row count and order are a
    pure function of the scenario. Merging concatenates in plan order,
    keeping serial and sharded runs byte-identical.
    """

    mode: str
    requests: int
    replicas: int = 0
    down: int = 0
    rows: List[Dict] = field(default_factory=list)
    #: Engine-occupancy telemetry (a
    #: :class:`~repro.memsys.batched.BatchOccupancy`), or ``None`` when
    #: restored from a cache/checkpoint payload. Excluded from
    #: :meth:`to_dict` so digests cover results, not execution strategy.
    occupancy: Optional[object] = field(default=None, compare=False,
                                        repr=False)

    def merge(self, other: "CallGraphResult") -> "CallGraphResult":
        """Fold the next shard's rows in (in place; plan order)."""
        if other.mode != self.mode or other.requests != self.requests:
            raise ConfigError(
                f"cannot merge ({other.mode!r}, {other.requests}) into "
                f"({self.mode!r}, {self.requests})")
        self.replicas += other.replicas
        self.down += other.down
        self.rows.extend(other.rows)
        theirs = getattr(other, "occupancy", None)
        if theirs is not None:
            if self.occupancy is None:
                self.occupancy = theirs
            else:
                self.occupancy.merge(theirs)
        return self

    # --- lookups ---------------------------------------------------------------

    def service_rows(self, service: str) -> List[Dict]:
        """This service's replica rows, in replica order."""
        return [row for row in self.rows if row["service"] == service]

    def service_summary(self, service: str) -> Optional[PercentileSummary]:
        """Per-request own-latency percentiles over the service's live
        replicas (``None`` when every replica is down)."""
        latencies = [latency
                     for row in self.service_rows(service)
                     if not row["down"]
                     for latency in row["request_latency_ns"]]
        return PercentileSummary.of(latencies) if latencies else None

    # --- serialization ----------------------------------------------------------

    def to_dict(self) -> Dict:
        return {
            "mode": self.mode,
            "requests": self.requests,
            "replicas": self.replicas,
            "down": self.down,
            "rows": [{name: row[name] for name in _ROW_FIELDS}
                     for row in self.rows],
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "CallGraphResult":
        return cls(mode=payload["mode"], requests=payload["requests"],
                   replicas=payload["replicas"], down=payload["down"],
                   rows=[dict(row) for row in payload["rows"]])


def callgraph_digest(result: CallGraphResult) -> str:
    """Stable content hash; equal iff every row matches bit-for-bit.

    The CLI's ``--compare-serial`` and the CI scenario-smoke job diff
    these digests across worker counts and ``REPRO_BATCH`` settings.
    """
    return hashlib.sha256(
        canonical_json(result.to_dict()).encode()).hexdigest()


@dataclass(frozen=True)
class CallGraphShardSpec:
    """One service's worth of a call-graph run (picklable pool payload)."""

    service: str
    kind: str
    replicas: int
    request_lines: int
    requests: int
    study_seed: int
    mode: str
    crash_rate: float
    shard_index: int
    batch_size: Optional[int] = None


def run_callgraph_shard(spec: CallGraphShardSpec) -> CallGraphResult:
    """Replay one service's request stream through its replicas.

    Pure function of the spec — the process-pool worker entry point.
    The request stream is lowered once into a concatenated columnar
    trace; replicas (differing only in constant background load) replay
    it through :func:`~repro.memsys.hierarchy.run_many`, so arms in both
    modes batch through the lockstep engine.
    """
    from repro.access import AddressSpace, trace_builder
    from repro.memsys.batched import BatchOccupancy
    from repro.memsys.dram import ConstantExternalLoad
    from repro.memsys.hierarchy import MemoryHierarchy, run_many
    from repro.memsys.prefetchers.bank import PrefetcherBank

    space = AddressSpace()
    builder = trace_builder()
    for index in range(spec.requests):
        emit_request(builder, spec.kind,
                     scenario_rng(spec.study_seed, "request", spec.service,
                                  index),
                     space, spec.request_lines,
                     function=request_label(index))
    trace = builder.build()

    rows: List[Dict] = []
    live_arms: List = []
    live_rows: List[Dict] = []
    down = 0
    for replica in range(spec.replicas):
        load = scenario_rng(spec.study_seed, "load", spec.service,
                            replica).uniform(0.0, _MAX_BACKGROUND_LOAD)
        row = {
            "service": spec.service,
            "replica": f"{spec.service}/r{replica}",
            "external_load": load,
            "down": False,
            "elapsed_ns": 0.0,
            "llc_misses": 0,
            "dram_demand_bytes": 0,
            "dram_wait_ns": 0.0,
            "request_latency_ns": [],
        }
        rows.append(row)
        if spec.crash_rate > 0.0 and scenario_rng(
                spec.study_seed, "crash", spec.service,
                replica).random() < spec.crash_rate:
            row["down"] = True
            down += 1
            continue
        prefetchers = PrefetcherBank([]) if spec.mode == "off" else None
        arm = MemoryHierarchy(prefetchers=prefetchers,
                              external_load=ConstantExternalLoad(load))
        live_arms.append(arm)
        live_rows.append(row)

    occupancy = BatchOccupancy()
    if live_arms:
        cycle_ns = live_arms[0].config.cycle_ns
        results = run_many(live_arms, trace, batch_size=spec.batch_size,
                           export_state=False, occupancy=occupancy)
        for row, result in zip(live_rows, results):
            row["elapsed_ns"] = result.elapsed_ns
            row["llc_misses"] = result.total.llc_misses
            row["dram_demand_bytes"] = result.dram_demand_bytes
            row["dram_wait_ns"] = result.total.dram_wait_ns
            row["request_latency_ns"] = [
                result.function(request_label(index)).cycles * cycle_ns
                for index in range(spec.requests)]
    return CallGraphResult(mode=spec.mode, requests=spec.requests,
                           replicas=spec.replicas, down=down, rows=rows,
                           occupancy=occupancy)


class CallGraphScenario:
    """A deterministic microservice call-graph study.

    Args:
        services: The DAG, root first (validated: unique names, known
            children, acyclic). Parse CLI text with
            :func:`parse_services`.
        requests: Arrival-stream length (every service handles each).
        seed: Master study seed; every request, load, and crash draw
            derives from it via the scenario stream.
        mode: ``off`` (prefetchers ablated) or ``control`` (default
            bank). Replicas lockstep-batch in both modes. Same-seed
            pairs are a paired experiment over identical request
            streams.
        rpc_overhead_ns: Fixed per-call network/serialization cost added
            on every fan-out edge during end-to-end assembly.
        crash_rate: Fraction of replicas a chaos run marks down for the
            whole replay (deterministic per-replica draw). A
            ``machine-crash`` clause in ``fault_plan`` supplies it when
            the explicit rate is 0.
        batch_size: Lockstep batch size forwarded to ``run_many``;
            never affects results, only throughput — excluded from keys.
    """

    STUDY = "scenario-callgraph"

    def __init__(self, services=None, requests: int = 32,
                 seed: int = 21, mode: str = "off",
                 rpc_overhead_ns: float = 500.0,
                 crash_rate: float = 0.0,
                 batch_size: Optional[int] = None,
                 fault_plan: Optional[FaultPlan] = None) -> None:
        if services is None:
            services = parse_services(DEFAULT_SERVICES)
        if isinstance(services, str):
            services = parse_services(services)
        services = tuple(services)
        if not services:
            raise ConfigError("need at least one service")
        if mode not in CALLGRAPH_MODES:
            raise ConfigError(
                f"mode must be one of {CALLGRAPH_MODES}, got {mode!r}")
        if requests <= 0:
            raise ConfigError(f"requests must be positive, got {requests}")
        if rpc_overhead_ns < 0:
            raise ConfigError("rpc_overhead_ns cannot be negative")
        if not 0.0 <= crash_rate < 1.0:
            raise ConfigError(
                f"crash rate must be in [0, 1), got {crash_rate}")
        names = [service.name for service in services]
        if len(set(names)) != len(names):
            raise ConfigError(f"duplicate service names in {names}")
        by_name = {service.name: service for service in services}
        for service in services:
            for child, _ in service.calls:
                if child not in by_name:
                    raise ConfigError(
                        f"service {service.name!r} calls unknown service "
                        f"{child!r}")
        self._check_acyclic(services, by_name)
        if fault_plan is not None and crash_rate == 0.0:
            clause = fault_plan.clause("machine-crash")
            if clause is not None:
                rate = dict(clause.params).get("rate")
                crash_rate = float(rate) if rate is not None else 0.0
        self.services = services
        self.root = services[0].name
        self.requests = requests
        self.seed = seed
        self.mode = mode
        self.rpc_overhead_ns = rpc_overhead_ns
        self.crash_rate = crash_rate
        self.batch_size = batch_size
        #: Work-queue disposition of the last :meth:`run`, or ``None``.
        self.queue_stats = None

    @staticmethod
    def _check_acyclic(services, by_name) -> None:
        state: Dict[str, int] = {}  # 0 visiting, 1 done

        def visit(name: str, stack: Tuple[str, ...]) -> None:
            if state.get(name) == 1:
                return
            if state.get(name) == 0:
                raise ConfigError(
                    f"call graph has a cycle: {' -> '.join(stack + (name,))}")
            state[name] = 0
            for child, _ in by_name[name].calls:
                visit(child, stack + (name,))
            state[name] = 1

        for service in services:
            visit(service.name, ())

    @property
    def machines(self) -> int:
        """Total replica (machine) population."""
        return sum(service.replicas for service in self.services)

    # --- sharding ----------------------------------------------------------------

    def shard_specs(self) -> List[CallGraphShardSpec]:
        """One shard per service, in listed (plan) order."""
        return [
            CallGraphShardSpec(
                service=service.name, kind=service.kind,
                replicas=service.replicas,
                request_lines=service.request_lines,
                requests=self.requests, study_seed=self.seed,
                mode=self.mode, crash_rate=self.crash_rate,
                shard_index=index, batch_size=self.batch_size)
            for index, service in enumerate(self.services)
        ]

    def cache_key_material(self) -> Dict:
        """Everything the result depends on, as plain data.

        Excludes the worker count and the batch size (the lockstep
        engine is bit-identical to the scalar one; see
        :meth:`MicroFleetSweep.cache_key_material
        <repro.fleet.sweep.MicroFleetSweep.cache_key_material>`).
        """
        return {
            "study": self.STUDY,
            "services": [service.to_dict() for service in self.services],
            "requests": self.requests,
            "seed": self.seed,
            "mode": self.mode,
            "rpc_overhead_ns": self.rpc_overhead_ns,
            "crash_rate": self.crash_rate,
        }

    def shard_task_materials(self) -> List[Dict]:
        """Work-queue key material per shard (plan order); excludes the
        batch size so journals restore across ``REPRO_BATCH`` settings."""
        from repro.fleet.queue import shard_task_material

        materials = []
        for spec in self.shard_specs():
            body = {
                "service": spec.service,
                "kind": spec.kind,
                "replicas": spec.replicas,
                "request_lines": spec.request_lines,
                "requests": spec.requests,
                "study_seed": spec.study_seed,
                "mode": spec.mode,
                "crash_rate": spec.crash_rate,
                "shard_index": spec.shard_index,
            }
            materials.append(shard_task_material(self.STUDY, body))
        return materials

    # --- end-to-end assembly -----------------------------------------------------

    def end_to_end_latencies(self, result: CallGraphResult) -> List[float]:
        """Per-request end-to-end latency at the root, ns.

        ``e2e(service, i) = own(service, i) + sum over edges of
        calls * (rpc_overhead_ns + e2e(child, i))`` with request ``i``
        routed to live replica ``i % live``. A service whose replicas
        are all down contributes zero own-latency (the call fails fast);
        its subtree still pays the RPC overhead.
        """
        by_name = {service.name: service for service in self.services}
        live_latencies: Dict[str, List[List[float]]] = {}
        for service in self.services:
            live_latencies[service.name] = [
                row["request_latency_ns"]
                for row in result.service_rows(service.name)
                if not row["down"]]

        memo: Dict[str, List[float]] = {}

        def e2e(name: str) -> List[float]:
            cached = memo.get(name)
            if cached is not None:
                return cached
            live = live_latencies[name]
            own = [live[index % len(live)][index] if live else 0.0
                   for index in range(self.requests)]
            for child, calls in by_name[name].calls:
                child_e2e = e2e(child)
                own = [total + calls * (self.rpc_overhead_ns + downstream)
                       for total, downstream in zip(own, child_e2e)]
            memo[name] = own
            return own

        return e2e(self.root)

    def slo_summary(self, result: CallGraphResult) -> PercentileSummary:
        """End-to-end request-latency percentiles (the SLO row)."""
        return PercentileSummary.of(self.end_to_end_latencies(result))

    # --- execution ---------------------------------------------------------------

    def run(self, workers: Optional[int] = None,
            cache_dir: Optional[str] = None,
            checkpoint_dir: Optional[str] = None,
            resume: bool = True,
            obs_dir: Optional[str] = None) -> CallGraphResult:
        """Run every service shard and merge rows in plan order.

        Same contract as :meth:`MicroFleetSweep.run
        <repro.fleet.sweep.MicroFleetSweep.run>`: the result is
        bit-identical at any worker count, batch size, and
        checkpoint/resume disposition. After the call,
        :attr:`queue_stats` holds the work-queue disposition.
        """
        from repro.scenarios.study import run_scenario_study

        result, stats = run_scenario_study(
            self, run_callgraph_shard, CallGraphResult.from_dict,
            workers=workers, cache_dir=cache_dir,
            checkpoint_dir=checkpoint_dir, resume=resume, obs_dir=obs_dir,
            shard_meta=lambda spec: {"machines": spec.replicas,
                                     "seed": spec.study_seed,
                                     "epochs": spec.requests})
        self.queue_stats = stats
        return result
