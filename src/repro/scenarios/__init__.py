"""Scenario subsystem: microservice call graphs and noisy neighbors.

The paper's evaluation is fleet-scale but workload-narrow; this package
adds the two scenario classes its motivation describes — SLOFetch-style
RPC call graphs with end-to-end P50/P90/P99 SLO metrics, and
multi-tenant DRAM-bandwidth interference with per-tenant attribution —
threaded through the same sharded/cached/checkpointed execution
machinery as the fleet studies.
"""

from repro.scenarios.callgraph import (CALLGRAPH_MODES, CallGraphResult,
                                       CallGraphScenario,
                                       CallGraphShardSpec, DEFAULT_SERVICES,
                                       ServiceSpec, callgraph_digest,
                                       parse_services, run_callgraph_shard)
from repro.scenarios.tenancy import (DEFAULT_TENANTS, NOISY_MODES,
                                     NoisyNeighborResult,
                                     NoisyNeighborScenario, NoisyShardSpec,
                                     TenantSpec, noisy_digest,
                                     parse_tenants, run_noisy_shard)
from repro.scenarios.workload import (WORKLOAD_KINDS, emit_request,
                                      request_label, scenario_mix_trace,
                                      scenario_rng, scenario_seed)

__all__ = [
    "CALLGRAPH_MODES",
    "CallGraphResult",
    "CallGraphScenario",
    "CallGraphShardSpec",
    "DEFAULT_SERVICES",
    "DEFAULT_TENANTS",
    "NOISY_MODES",
    "NoisyNeighborResult",
    "NoisyNeighborScenario",
    "NoisyShardSpec",
    "ServiceSpec",
    "TenantSpec",
    "WORKLOAD_KINDS",
    "callgraph_digest",
    "emit_request",
    "noisy_digest",
    "parse_services",
    "parse_tenants",
    "request_label",
    "run_callgraph_shard",
    "run_noisy_shard",
    "scenario_mix_trace",
    "scenario_rng",
    "scenario_seed",
]
