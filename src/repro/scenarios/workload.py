"""Request-level workload emission for the scenario subsystem.

Microservice call graphs and tenant antagonists are built from a small
set of *request shapes* — short bursts of memory traffic modelling one
RPC's worth of work — emitted straight through the columnar
:func:`~repro.access.builder.trace_builder` bulk emitters
(``append_stream`` / ``append_addresses``), so scenario traces are born
column-backed like every other generator's.

Determinism mirrors :func:`repro.faults.plan.fault_rng`: every random
draw comes from a BLAKE2b-namespaced stream keyed by the scenario seed
and the entity (service, tenant, request, epoch) it belongs to — never
from shared RNG state — so traces are identical across worker counts,
shard sizes, and batch sizes.
"""

from __future__ import annotations

import hashlib
import random
from typing import Tuple

from repro.errors import ConfigError
from repro.units import CACHE_LINE_BYTES

#: Request-shape vocabulary. ``stream`` is the prefetch-friendly RPC
#: data plane (sequential payload scans); ``random`` models metadata /
#: hash-map lookups (independent uniform loads); ``chase`` models
#: dependent pointer walks (the prefetch-hostile worst case); ``mixed``
#: interleaves a stream burst with random lookups, the common
#: service shape.
WORKLOAD_KINDS = ("stream", "random", "chase", "mixed")

_PC_STREAM = 0x6000_0010
_PC_RANDOM = 0x6000_0110
_PC_CHASE = 0x6000_0210

#: Working-set region a request's random/chase lookups land in. Far
#: larger than the LLC so uncached lookups are demand DRAM accesses.
_LOOKUP_REGION_BYTES = 64 * 1024 * 1024


def scenario_seed(*parts) -> int:
    """Stable 63-bit seed for one scenario entity.

    BLAKE2b over ``"limoncello-scenario:" + part:part:...`` in the same
    style as :func:`repro.fleet.machine.machine_seed` and
    :func:`repro.faults.plan.fault_seed` — independent of
    ``PYTHONHASHSEED``, process, and platform.
    """
    text = "limoncello-scenario:" + ":".join(str(part) for part in parts)
    digest = hashlib.blake2b(text.encode(), digest_size=8).digest()
    return int.from_bytes(digest, "big") & 0x7FFF_FFFF_FFFF_FFFF


def scenario_rng(*parts) -> random.Random:
    """A fresh RNG seeded from the namespaced scenario stream."""
    return random.Random(scenario_seed(*parts))


def check_kind(kind: str) -> str:
    """Validate a workload-kind name (returns it unchanged)."""
    if kind not in WORKLOAD_KINDS:
        raise ConfigError(
            f"unknown workload kind {kind!r}; known: {WORKLOAD_KINDS}")
    return kind


def emit_request(builder, kind: str, rng: random.Random, space,
                 lines: int, function: str,
                 gap_cycles: int = 4) -> None:
    """Emit one request's worth of traffic (``lines`` line-touches).

    Every record carries ``function``, so per-request (call-graph) or
    per-tenant (co-location) attribution falls out of the simulator's
    per-function statistics with no bookkeeping of our own.
    """
    check_kind(kind)
    if lines <= 0:
        raise ConfigError(f"request lines must be positive, got {lines}")
    if kind == "stream":
        base = space.allocate(lines * CACHE_LINE_BYTES)
        builder.append_stream(base, lines, pc=_PC_STREAM,
                              function=function, gap_cycles=gap_cycles)
    elif kind == "random":
        _emit_lookups(builder, rng, space, lines, pc=_PC_RANDOM,
                      size=8, function=function, gap_cycles=gap_cycles)
    elif kind == "chase":
        # A dependent walk: one load per hop, larger gaps (the core is
        # stuck waiting on the previous hop before computing the next).
        _emit_lookups(builder, rng, space, lines, pc=_PC_CHASE,
                      size=8, function=function,
                      gap_cycles=gap_cycles * 2)
    else:  # mixed
        burst = max(1, lines // 2)
        base = space.allocate(burst * CACHE_LINE_BYTES)
        builder.append_stream(base, burst, pc=_PC_STREAM,
                              function=function, gap_cycles=gap_cycles)
        remainder = lines - burst
        if remainder > 0:
            _emit_lookups(builder, rng, space, remainder, pc=_PC_RANDOM,
                          size=8, function=function,
                          gap_cycles=gap_cycles)


def _emit_lookups(builder, rng: random.Random, space, count: int,
                  pc: int, size: int, function: str,
                  gap_cycles: int) -> None:
    base = space.allocate(_LOOKUP_REGION_BYTES)
    num_lines = _LOOKUP_REGION_BYTES // CACHE_LINE_BYTES
    builder.append_addresses(
        [base + rng.randrange(num_lines) * CACHE_LINE_BYTES
         for _ in range(count)],
        size=size, pc=pc, function=function, gap_cycles=gap_cycles)


def scenario_mix_trace(seed: int, scale: float = 1.0):
    """The default tenant mix as one interleaved, column-backed trace.

    The bridge from the scenario subsystem into the trace-driven
    micro-fleet sweep: the :data:`~repro.scenarios.tenancy.DEFAULT_TENANTS`
    co-location (a streaming latency tenant against a random-lookup batch
    antagonist) emitted round by round and round-robin interleaved, the
    same lowering :func:`~repro.scenarios.tenancy.run_noisy_shard` uses
    per epoch. ``scale`` multiplies the round count. Deterministic for
    ``(seed, scale)``; memoize via
    :func:`repro.workloads.memo.memoized_scenario_mix`.
    """
    # Imported lazily: tenancy imports this module at load time.
    from repro.access import AddressSpace, interleave, trace_builder
    from repro.scenarios.tenancy import (DEFAULT_TENANTS, _INTERLEAVE_CHUNK,
                                         parse_tenants)

    if scale <= 0:
        raise ConfigError(f"scale must be positive, got {scale}")
    tenants = parse_tenants(DEFAULT_TENANTS)
    rounds = max(1, int(8 * scale))
    space = AddressSpace()
    traces = []
    for tenant in tenants:
        builder = trace_builder()
        for index in range(rounds):
            emit_request(builder, tenant.kind,
                         scenario_rng(seed, "mix", tenant.name, index),
                         space, tenant.effective_lines,
                         function=tenant.name)
        traces.append(builder.build())
    return interleave(traces, chunk=_INTERLEAVE_CHUNK)


def request_label(index: int) -> str:
    """The per-request function label (``req0042``) used for per-request
    latency attribution inside one service's concatenated trace."""
    return f"req{index:04d}"


def parse_kind_field(text: str, what: str) -> Tuple[str, str]:
    """Split a ``name:kind...`` spec head, validating both parts."""
    name, _, rest = text.partition(":")
    name = name.strip()
    if not name:
        raise ConfigError(f"{what} spec {text!r} is missing a name")
    return name, rest
