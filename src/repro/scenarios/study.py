"""Shared execution plumbing for scenario studies.

Both scenario classes expose the same surface the fleet studies do —
``STUDY``, ``shard_specs()``, ``shard_task_materials()``,
``cache_key_material()``, and dict-serializable shard results — so one
runner threads them through the whole-study result cache, the
checkpointed work queue, and an optional observability session. Shard
events are emitted study-level in plan order at merge time, which keeps
the event log (like the result) bit-identical across worker counts.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple


def run_scenario_study(study, worker, from_payload,
                       workers: Optional[int] = None,
                       cache_dir: Optional[str] = None,
                       checkpoint_dir: Optional[str] = None,
                       resume: bool = True,
                       obs_dir: Optional[str] = None,
                       shard_meta: Optional[Callable] = None) -> Tuple:
    """Run a scenario study's shards; returns ``(result, queue_stats)``.

    Args:
        study: The scenario (duck-typed: ``STUDY``, ``shard_specs``,
            ``shard_task_materials``, ``cache_key_material``).
        worker: Pure shard worker (the pool entry point).
        from_payload: Rebuilds a shard result from its dict payload.
        workers / cache_dir / checkpoint_dir / resume: The standard
            sharded-study contract (see :meth:`MicroFleetSweep.run
            <repro.fleet.sweep.MicroFleetSweep.run>`).
        obs_dir: Observability run directory (``None`` reads
            ``$REPRO_OBS_DIR``; unset disables it).
        shard_meta: ``spec -> {"machines", "seed", "epochs"}`` for the
            plan-order ``shard-start`` / ``shard-finish`` events.

    ``queue_stats`` is ``None`` on a whole-study cache hit.
    """
    from repro.fleet.parallel import resolve_workers
    from repro.fleet.queue import run_checkpointed, shard_checkpoint
    from repro.fleet.result_cache import study_cache
    from repro.obs.session import ObsSession, resolve_obs_dir

    workers = resolve_workers(workers)
    obs_dir = resolve_obs_dir(obs_dir)
    session = (ObsSession(obs_dir, study.STUDY, workers=workers)
               if obs_dir is not None else None)
    if session is not None:
        session.event("study-start", study=study.STUDY)
    cache = study_cache(cache_dir)
    checkpoint = shard_checkpoint(checkpoint_dir)
    material = study.cache_key_material()

    result = None
    stats = None
    if cache is not None:
        payload = cache.load(material)
        if payload is not None:
            try:
                result = from_payload(payload)
            except (KeyError, TypeError):
                result = None  # stale/foreign payload: recompute
        if session is not None:
            session.cache_probe(result is not None,
                                cache.key_for(material))

    if result is None:
        specs = study.shard_specs()
        materials = study.shard_task_materials()

        def execute():
            return run_checkpointed(
                worker, specs, materials, workers,
                checkpoint=checkpoint,
                to_payload=lambda shard: shard.to_dict(),
                from_payload=from_payload,
                resume=resume)

        if session is not None:
            with session.phase("execute"):
                shards, stats = execute()
            if checkpoint is not None:
                session.queue_stats(stats)
                restored = set(stats.restored_indexes)
                for spec in specs:
                    session.event(
                        "shard-restored"
                        if spec.shard_index in restored
                        else "shard-checkpoint",
                        index=spec.shard_index)
            if shard_meta is not None:
                for spec in specs:
                    meta: Dict = shard_meta(spec)
                    session.event("shard-start", index=spec.shard_index,
                                  machines=meta["machines"],
                                  seed=meta["seed"])
                    session.event("shard-finish", index=spec.shard_index,
                                  epochs=meta["epochs"])
            with session.phase("merge"):
                result = shards[0]
                for index, shard in enumerate(shards[1:], start=1):
                    session.event("merge-step", index=index)
                    result.merge(shard)
        else:
            shards, stats = execute()
            result = shards[0]
            for shard in shards[1:]:
                result.merge(shard)
        if cache is not None:
            cache.store(material, result.to_dict())
            if session is not None:
                session.event("cache-store", key=cache.key_for(material))

    if session is not None:
        session.event("study-finish", study=study.STUDY)
        session.finalize(material)
    return result, stats
