"""Hard Limoncello's hysteresis controller — the Figure 8 state machine.

Two hysteresis mechanisms keep the controller from thrashing on volatile
bandwidth (Figure 7): separate upper/lower thresholds, and a sustain timer —
bandwidth must stay beyond a threshold for a full ``sustain_duration``
before prefetcher state changes. The four states map onto Figure 8:

* ``ENABLED``       — prefetchers on, bandwidth below the upper threshold.
* ``OVERLOADED``    — prefetchers still on; bandwidth has exceeded the
  upper threshold and the timer is running ("machine overloaded").
* ``DISABLED``      — prefetchers off, bandwidth above the lower threshold.
* ``UNDERLOADED``   — prefetchers still off; bandwidth has dropped below
  the lower threshold and the timer is running ("machine underloaded").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.config import LimoncelloConfig
from repro.errors import TelemetryError


class ControllerState(enum.Enum):
    """The four states of Figure 8."""

    ENABLED = "enabled"
    OVERLOADED = "overloaded"      # enabled, timing toward disable
    DISABLED = "disabled"
    UNDERLOADED = "underloaded"    # disabled, timing toward enable

    @property
    def prefetchers_enabled(self) -> bool:
        """Whether hardware prefetchers are currently on."""
        return self in (ControllerState.ENABLED, ControllerState.OVERLOADED)


@dataclass(frozen=True)
class Decision:
    """The controller's output for one telemetry sample."""

    time_ns: float
    utilization: float
    state: ControllerState
    #: True exactly when this sample flipped the prefetcher state.
    changed: bool

    @property
    def prefetchers_enabled(self) -> bool:
        """Whether hardware prefetchers are currently on."""
        return self.state.prefetchers_enabled


class HardLimoncelloController:
    """Consumes utilization samples, decides prefetcher on/off."""

    def __init__(self, config: Optional[LimoncelloConfig] = None,
                 tracer=None, ident: str = "") -> None:
        self.config = config or LimoncelloConfig()
        #: Optional :class:`repro.obs.Tracer`; when set, every state
        #: change (including the OVERLOADED/UNDERLOADED timing states)
        #: emits a ``controller-transition`` event at simulated time.
        self.tracer = tracer
        self.ident = ident
        self._state = ControllerState.ENABLED
        #: When the current timing state was entered (None if not timing).
        self._timing_since: Optional[float] = None
        self._last_time: Optional[float] = None
        self.transitions = 0
        self.decisions: List[Decision] = []

    @property
    def state(self) -> ControllerState:
        """The controller's current state."""
        return self._state

    @property
    def prefetchers_enabled(self) -> bool:
        """Whether hardware prefetchers are currently on."""
        return self._state.prefetchers_enabled

    def observe(self, time_ns: float, utilization: float) -> Decision:
        """Feed one bandwidth-utilization sample; returns the decision.

        ``time_ns`` must be non-decreasing across calls. Gaps (dropped
        samples) are tolerated: the timer still runs on wall time, so a
        threshold crossing that persists through a telemetry dropout still
        flips state once a later sample confirms it.
        """
        if self._last_time is not None and time_ns < self._last_time:
            raise TelemetryError(
                f"controller time moved backwards: {time_ns} < {self._last_time}")
        self._last_time = time_ns

        was_enabled = self.prefetchers_enabled
        upper = self.config.upper_threshold
        lower = self.config.lower_threshold

        if self._state is ControllerState.ENABLED:
            if utilization > upper:
                self._enter(ControllerState.OVERLOADED, time_ns, time_ns)
                self._maybe_expire(time_ns, ControllerState.DISABLED)
        elif self._state is ControllerState.OVERLOADED:
            if utilization <= upper:
                self._enter(ControllerState.ENABLED, None, time_ns)
            else:
                self._maybe_expire(time_ns, ControllerState.DISABLED)
        elif self._state is ControllerState.DISABLED:
            if utilization < lower:
                self._enter(ControllerState.UNDERLOADED, time_ns, time_ns)
                self._maybe_expire(time_ns, ControllerState.ENABLED)
        else:  # UNDERLOADED
            if utilization >= lower:
                self._enter(ControllerState.DISABLED, None, time_ns)
            else:
                self._maybe_expire(time_ns, ControllerState.ENABLED)

        changed = self.prefetchers_enabled != was_enabled
        if changed:
            self.transitions += 1
        decision = Decision(time_ns=time_ns, utilization=utilization,
                            state=self._state, changed=changed)
        self.decisions.append(decision)
        return decision

    def reset(self) -> None:
        """Return to the boot state (prefetchers enabled, no timers).

        Used when the hosting machine restarts: cumulative counters and
        the decision history survive, the volatile control state does
        not — exactly what a daemon respawned by init would see.
        """
        self._state = ControllerState.ENABLED
        self._timing_since = None
        self._last_time = None

    def _enter(self, state: ControllerState, timing_since,
               time_ns: float) -> None:
        if self.tracer and state is not self._state:
            self.tracer.event("controller-transition", time_ns,
                              ident=self.ident, state=state.value,
                              enabled=state.prefetchers_enabled)
        self._state = state
        self._timing_since = timing_since

    def _maybe_expire(self, time_ns: float, target: ControllerState) -> None:
        """Flip to ``target`` if the sustain timer has run out."""
        assert self._timing_since is not None
        if time_ns - self._timing_since >= self.config.sustain_duration_ns:
            self._enter(target, None, time_ns)

    # --- introspection -----------------------------------------------------

    def state_intervals(self) -> List[Tuple[float, float, bool]]:
        """(start, end, prefetchers_enabled) intervals over the decision
        history — the data behind Figure 9's red/green shading."""
        intervals: List[Tuple[float, float, bool]] = []
        if not self.decisions:
            return intervals
        start = self.decisions[0].time_ns
        current = self.decisions[0].prefetchers_enabled
        for decision in self.decisions[1:]:
            if decision.prefetchers_enabled != current:
                intervals.append((start, decision.time_ns, current))
                start = decision.time_ns
                current = decision.prefetchers_enabled
        intervals.append((start, self.decisions[-1].time_ns, current))
        return intervals


class SingleThresholdController:
    """A no-hysteresis baseline: one threshold, immediate flips.

    This is the straw-man the paper's hysteresis design is defending
    against — on volatile bandwidth it toggles prefetchers constantly.
    Used by the hysteresis ablation benchmark.
    """

    def __init__(self, threshold: float = 0.8,
                 tracer=None, ident: str = "") -> None:
        if not 0.0 < threshold <= 1.0:
            raise ValueError(f"threshold must be in (0, 1], got {threshold}")
        self.threshold = threshold
        self.tracer = tracer
        self.ident = ident
        self._enabled = True
        self._last_time: Optional[float] = None
        self.transitions = 0
        self.decisions: List[Decision] = []

    @property
    def prefetchers_enabled(self) -> bool:
        """Whether hardware prefetchers are currently on."""
        return self._enabled

    @property
    def state(self) -> ControllerState:
        """The controller's current state."""
        return (ControllerState.ENABLED if self._enabled
                else ControllerState.DISABLED)

    def reset(self) -> None:
        """Return to the boot state (prefetchers enabled)."""
        self._enabled = True
        self._last_time = None

    def observe(self, time_ns: float, utilization: float) -> Decision:
        """Feed one utilization sample; returns the decision."""
        if self._last_time is not None and time_ns < self._last_time:
            raise TelemetryError(
                f"controller time moved backwards: {time_ns} < {self._last_time}")
        self._last_time = time_ns
        desired = utilization <= self.threshold
        changed = desired != self._enabled
        if changed:
            self.transitions += 1
            if self.tracer:
                self.tracer.event(
                    "controller-transition", time_ns, ident=self.ident,
                    state=(ControllerState.ENABLED if desired
                           else ControllerState.DISABLED).value,
                    enabled=desired)
        self._enabled = desired
        decision = Decision(time_ns=time_ns, utilization=utilization,
                            state=self.state, changed=changed)
        self.decisions.append(decision)
        return decision
