"""The Limoncello per-socket control daemon.

Ties together the three planes of Section 3: telemetry (a bandwidth
sampler polled every second), decision (the hysteresis controller), and
actuation (MSR writes). The daemon is deliberately defensive — telemetry
dropouts hold the previous state, failed MSR writes are retried on the
next tick, and an externally perturbed MSR state is detected by readback
and re-converged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.actuator import PrefetcherActuator
from repro.core.config import LimoncelloConfig
from repro.core.controller import ControllerState, HardLimoncelloController
from repro.errors import TelemetryError
from repro.telemetry.sampler import BandwidthSampler
from repro.telemetry.timeseries import TimeSeries


@dataclass
class DaemonReport:
    """What a daemon observed and did over its run."""

    samples: int = 0
    dropouts: int = 0
    actuation_attempts: int = 0
    actuation_failures: int = 0
    transitions: int = 0
    #: (time_ns, utilization) history of successful samples.
    utilization: TimeSeries = field(default_factory=lambda: TimeSeries("util"))
    #: (time_ns, 1.0/0.0) history of the applied prefetcher state.
    prefetcher_state: TimeSeries = field(
        default_factory=lambda: TimeSeries("prefetchers"))

    def duty_cycle_disabled(self) -> float:
        """Fraction of samples with prefetchers disabled."""
        values = self.prefetcher_state.values
        if not values:
            return 0.0
        return sum(1 for v in values if v == 0.0) / len(values)


class LimoncelloDaemon:
    """The per-socket control loop.

    Args:
        sampler: Bandwidth telemetry source (1-second granularity).
        actuator: Applies prefetcher state to the socket.
        config: Thresholds and timing; also used to build the controller.
        controller: Optional pre-built controller (ablation studies swap
            in :class:`~repro.core.controller.SingleThresholdController`).
    """

    def __init__(self, sampler: BandwidthSampler,
                 actuator: PrefetcherActuator,
                 config: Optional[LimoncelloConfig] = None,
                 controller=None) -> None:
        self.config = config or LimoncelloConfig()
        self.sampler = sampler
        self.actuator = actuator
        self.controller = controller if controller is not None \
            else HardLimoncelloController(self.config)
        self.report = DaemonReport()
        self._pending_state: Optional[bool] = None

    def step(self, now_ns: float) -> Optional[ControllerState]:
        """One control tick: sample, decide, actuate.

        Returns the controller state after the tick, or None when the
        sample was dropped (state unchanged).
        """
        try:
            sample = self.sampler.sample(now_ns)
        except TelemetryError:
            self.report.dropouts += 1
            self._retry_pending()
            return None
        self.report.samples += 1
        self.report.utilization.append(now_ns, sample.utilization)
        decision = self.controller.observe(now_ns, sample.utilization)
        if decision.changed:
            self.report.transitions += 1
        self._apply(decision.prefetchers_enabled)
        self.report.prefetcher_state.append(
            now_ns, 1.0 if self.actuator.is_enabled() else 0.0)
        return decision.state

    def run(self, duration_ns: float, start_ns: float = 0.0) -> DaemonReport:
        """Run ticks every ``config.sample_period_ns`` for ``duration_ns``."""
        if duration_ns < 0:
            raise ValueError(f"duration must be non-negative, got {duration_ns}")
        period = self.config.sample_period_ns
        ticks = int(duration_ns // period)
        for tick in range(ticks):
            self.step(start_ns + tick * period)
        return self.report

    # --- internals -----------------------------------------------------------

    def _apply(self, desired: bool) -> None:
        """Actuate if the socket state differs from the decision."""
        if self.actuator.is_enabled() == desired:
            self._pending_state = None
            return
        self.report.actuation_attempts += 1
        if self.actuator.set_enabled(desired):
            self._pending_state = None
        else:
            self.report.actuation_failures += 1
            self._pending_state = desired

    def _retry_pending(self) -> None:
        """A dropped sample still retries an actuation that failed earlier."""
        if self._pending_state is not None:
            self._apply(self._pending_state)
