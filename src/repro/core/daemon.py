"""The Limoncello per-socket control daemon.

Ties together the three planes of Section 3: telemetry (a bandwidth
sampler polled every second), decision (the hysteresis controller), and
actuation (MSR writes). The daemon is deliberately defensive — the
deployed controller ran fleetwide, where partial failure is the steady
state, so every plane is hardened:

* Telemetry dropouts hold the previous state; NaN or stale samples are
  rejected rather than fed to the controller; and when telemetry stays
  dark past a configurable deadline the daemon *fails safe* by
  re-enabling prefetchers (the hardware-default state) until samples
  return.
* Failed MSR writes are retried under a configurable
  :class:`~repro.core.config.RetryPolicy` — exponential backoff with
  optionally bounded attempts — instead of hammering a possibly-dead
  msr driver every tick.
* An externally perturbed MSR state is detected by readback and
  re-converged.

Everything the daemon detects and does about a fault is recorded as a
structured :class:`Incident` in its :class:`DaemonReport`, which is
what chaos studies aggregate into availability / MTTR numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.actuator import PrefetcherActuator
from repro.core.config import LimoncelloConfig, RetryPolicy
from repro.core.controller import ControllerState, HardLimoncelloController
from repro.errors import TelemetryError
from repro.telemetry.sampler import BandwidthSampler
from repro.telemetry.timeseries import TimeSeries


@dataclass
class Incident:
    """One detected fault: what happened, when, and what the daemon did.

    Attributes:
        kind: Fault class — ``"telemetry-blackout"``,
            ``"actuation-failure"``, or ``"machine-restart"``.
        onset_ns: When the underlying condition began (best estimate —
            for a blackout, the last good sample).
        detected_ns: When the daemon recognized it.
        action: The recovery action taken, human-readable.
        recovered_ns: When the condition cleared, or ``None`` while
            (or if never) unresolved.
    """

    kind: str
    onset_ns: float
    detected_ns: float
    action: str
    recovered_ns: Optional[float] = None

    @property
    def detection_latency_ns(self) -> float:
        """Time from fault onset to the daemon noticing it."""
        return self.detected_ns - self.onset_ns

    @property
    def recovery_ns(self) -> Optional[float]:
        """Time from detection to recovery, or ``None`` if unresolved."""
        if self.recovered_ns is None:
            return None
        return self.recovered_ns - self.detected_ns

    @property
    def resolved(self) -> bool:
        """Whether the incident has recovered."""
        return self.recovered_ns is not None


@dataclass
class DaemonReport:
    """What a daemon observed and did over its run."""

    samples: int = 0
    dropouts: int = 0
    #: Samples delivered but rejected (NaN utilization, stale timestamp).
    invalid_samples: int = 0
    #: Total control ticks (samples + dropouts).
    ticks: int = 0
    actuation_attempts: int = 0
    actuation_failures: int = 0
    transitions: int = 0
    #: Times the telemetry fail-safe engaged (prefetchers re-enabled).
    failsafe_engagements: int = 0
    #: Per-tick actuator state tallies (counted on every tick, unlike
    #: the sample-gated ``prefetcher_state`` series).
    enabled_ticks: int = 0
    disabled_ticks: int = 0
    #: Structured log of detected faults and recovery actions.
    incidents: List[Incident] = field(default_factory=list)
    #: (time_ns, utilization) history of successful samples.
    utilization: TimeSeries = field(default_factory=lambda: TimeSeries("util"))
    #: (time_ns, 1.0/0.0) history of the applied prefetcher state.
    prefetcher_state: TimeSeries = field(
        default_factory=lambda: TimeSeries("prefetchers"))

    def duty_cycle_disabled(self) -> float:
        """Fraction of samples with prefetchers disabled.

        A zero-duration run (no samples) has, by definition, never
        disabled prefetchers — the duty cycle is 0.0, not NaN.
        """
        values = self.prefetcher_state.values
        if not values:
            return 0.0
        return sum(1 for v in values if v == 0.0) / len(values)

    def availability(self) -> float:
        """Fraction of control ticks with usable telemetry (1.0 for a
        zero-duration run: the controller was never unavailable)."""
        if self.ticks == 0:
            return 1.0
        return self.samples / self.ticks

    def open_incidents(self) -> List[Incident]:
        """Incidents not yet recovered."""
        return [i for i in self.incidents if not i.resolved]

    def mean_time_to_recovery_ns(self) -> Optional[float]:
        """Mean (detected -> recovered) time over resolved incidents;
        ``None`` when nothing has recovered."""
        recovered = [i.recovery_ns for i in self.incidents if i.resolved]
        if not recovered:
            return None
        return sum(recovered) / len(recovered)


class LimoncelloDaemon:
    """The per-socket control loop.

    Args:
        sampler: Bandwidth telemetry source (1-second granularity).
        actuator: Applies prefetcher state to the socket.
        config: Thresholds and timing; also used to build the controller
            and carrying the retry policy and fail-safe deadline.
        controller: Optional pre-built controller (ablation studies swap
            in :class:`~repro.core.controller.SingleThresholdController`).
        tracer: Optional :class:`repro.obs.Tracer`; when set, MSR writes,
            fail-safe engagements, and incident open/resolve all emit
            structured events at simulated time. Propagated to the
            controller so its transitions share the same log.
        ident: Stable identity for emitted events, conventionally
            ``"<machine>/<socket>"``.
    """

    def __init__(self, sampler: BandwidthSampler,
                 actuator: PrefetcherActuator,
                 config: Optional[LimoncelloConfig] = None,
                 controller=None, tracer=None, ident: str = "") -> None:
        self.config = config or LimoncelloConfig()
        self.sampler = sampler
        self.actuator = actuator
        self.tracer = tracer
        self.ident = ident
        self.controller = controller if controller is not None \
            else HardLimoncelloController(self.config, tracer=tracer,
                                          ident=ident)
        if controller is not None and tracer \
                and getattr(controller, "tracer", None) is None:
            # A pre-built controller joins this daemon's event stream.
            controller.tracer = tracer
            controller.ident = ident
        self.report = DaemonReport()
        self._pending_state: Optional[bool] = None
        self._retry_failures = 0
        self._next_retry_ns = 0.0
        self._first_tick_ns: Optional[float] = None
        self._last_good_ns: Optional[float] = None
        self._failsafe_active = False
        self._blackout_incident: Optional[Incident] = None
        self._actuation_incident: Optional[Incident] = None

    @property
    def failsafe_active(self) -> bool:
        """Whether the telemetry fail-safe currently holds prefetchers
        enabled."""
        return self._failsafe_active

    def step(self, now_ns: float) -> Optional[ControllerState]:
        """One control tick: sample, validate, decide, actuate.

        Returns the controller state after the tick, or None when no
        usable sample arrived (previous state held, pending actuations
        retried, fail-safe deadline checked).
        """
        self.report.ticks += 1
        if self._first_tick_ns is None:
            self._first_tick_ns = now_ns
        sample = self._sample(now_ns)
        if sample is None:
            self.report.dropouts += 1
            self._on_dark_tick(now_ns)
            self._tally_state()
            return None
        self.report.samples += 1
        self._last_good_ns = now_ns
        if self._failsafe_active:
            self._release_failsafe(now_ns)
        self.report.utilization.append(now_ns, sample.utilization)
        decision = self.controller.observe(now_ns, sample.utilization)
        if decision.changed:
            self.report.transitions += 1
        self._apply(decision.prefetchers_enabled, now_ns)
        self.report.prefetcher_state.append(
            now_ns, 1.0 if self.actuator.is_enabled() else 0.0)
        self._tally_state()
        return decision.state

    def run(self, duration_ns: float, start_ns: float = 0.0) -> DaemonReport:
        """Run ticks every ``config.sample_period_ns`` for ``duration_ns``."""
        if duration_ns < 0:
            raise ValueError(f"duration must be non-negative, got {duration_ns}")
        period = self.config.sample_period_ns
        ticks = int(duration_ns // period)
        for tick in range(ticks):
            self.step(start_ns + tick * period)
        return self.report

    def restart(self, now_ns: float,
                restored_enabled: Optional[bool] = None) -> None:
        """The machine hosting this daemon rebooted: reset the control
        loop's volatile state, keep the (study-owned) report.

        Open incidents are closed — whatever condition they tracked no
        longer describes the freshly booted machine — and the restart
        itself is logged. ``restored_enabled`` records what the restart
        policy did to the prefetcher state, for the incident log.
        """
        for incident in self.report.open_incidents():
            incident.recovered_ns = now_ns
            incident.action += "; cleared by machine restart"
            if self.tracer:
                self.tracer.event(
                    "incident-resolved", now_ns, ident=self.ident,
                    incident=incident.kind,
                    detected_ns=incident.detected_ns, recovered_ns=now_ns)
        reset = getattr(self.controller, "reset", None)
        if callable(reset):
            reset()
        self._pending_state = None
        self._retry_failures = 0
        self._next_retry_ns = 0.0
        self._failsafe_active = False
        self._blackout_incident = None
        self._actuation_incident = None
        self._last_good_ns = None
        self._first_tick_ns = now_ns
        state = {True: "prefetchers enabled", False: "prefetchers disabled",
                 None: "prefetcher state preserved"}[restored_enabled]
        self.report.incidents.append(Incident(
            kind="machine-restart", onset_ns=now_ns, detected_ns=now_ns,
            action=f"controller state reset; {state}",
            recovered_ns=now_ns))
        if self.tracer:
            self.tracer.event("machine-restart", now_ns, ident=self.ident,
                              policy=state)

    # --- internals -----------------------------------------------------------

    def _sample(self, now_ns: float):
        """One validated sample, or None (dropout / NaN / stale)."""
        try:
            sample = self.sampler.sample(now_ns)
        except TelemetryError:
            return None
        # A NaN utilization or a reading older than one sampling period
        # is telemetry noise, not signal; feeding it to the controller
        # could flip prefetcher state on garbage. Treat it as a dropout.
        if not (sample.utilization == sample.utilization):  # NaN check
            self.report.invalid_samples += 1
            return None
        if now_ns - sample.time_ns >= self.config.sample_period_ns:
            self.report.invalid_samples += 1
            return None
        return sample

    def _on_dark_tick(self, now_ns: float) -> None:
        """Bookkeeping for a tick without usable telemetry."""
        if self._failsafe_active:
            # Keep converging on the fail-safe state (the first attempt
            # may have failed and be in backoff).
            self._apply(True, now_ns)
            return
        self._retry_pending(now_ns)
        deadline = self.config.telemetry_failsafe_deadline_ns
        if deadline is None:
            return
        dark_since = (self._last_good_ns if self._last_good_ns is not None
                      else self._first_tick_ns)
        if now_ns - dark_since >= deadline:
            self._engage_failsafe(now_ns, dark_since)

    def _engage_failsafe(self, now_ns: float, dark_since: float) -> None:
        self._failsafe_active = True
        self.report.failsafe_engagements += 1
        self._blackout_incident = Incident(
            kind="telemetry-blackout", onset_ns=dark_since,
            detected_ns=now_ns,
            action="fail-safe: reverting to prefetchers enabled")
        self.report.incidents.append(self._blackout_incident)
        if self.tracer:
            self.tracer.event("failsafe-engaged", now_ns, ident=self.ident,
                              dark_since_ns=dark_since)
            self.tracer.event("incident-open", now_ns, ident=self.ident,
                              incident="telemetry-blackout",
                              onset_ns=dark_since)
        self._apply(True, now_ns)

    def _release_failsafe(self, now_ns: float) -> None:
        self._failsafe_active = False
        if self.tracer:
            self.tracer.event("failsafe-released", now_ns, ident=self.ident)
        if self._blackout_incident is not None:
            self._blackout_incident.recovered_ns = now_ns
            self._blackout_incident.action += "; telemetry recovered"
            if self.tracer:
                self.tracer.event(
                    "incident-resolved", now_ns, ident=self.ident,
                    incident="telemetry-blackout",
                    detected_ns=self._blackout_incident.detected_ns,
                    recovered_ns=now_ns)
            self._blackout_incident = None

    def _tally_state(self) -> None:
        if self.actuator.is_enabled():
            self.report.enabled_ticks += 1
        else:
            self.report.disabled_ticks += 1

    def _apply(self, desired: bool, now_ns: float) -> None:
        """Actuate toward ``desired`` under the retry policy."""
        if self.actuator.is_enabled() == desired:
            self._pending_state = None
            self._retry_failures = 0
            self._close_actuation_incident(now_ns)
            return
        policy: RetryPolicy = self.config.retry_policy
        if self._pending_state != desired:
            # New target state: fresh retry budget; an incident tracking
            # the abandoned target no longer has a recovery to await.
            self._supersede_actuation_incident()
            self._pending_state = desired
            self._retry_failures = 0
            self._next_retry_ns = now_ns
        if now_ns < self._next_retry_ns:
            return  # backing off
        if (policy.max_attempts is not None
                and self._retry_failures >= policy.max_attempts):
            return  # gave up on this target until the decision changes
        self.report.actuation_attempts += 1
        ok = self.actuator.set_enabled(desired)
        if self.tracer:
            self.tracer.event("msr-write", now_ns, ident=self.ident,
                              enabled=desired, ok=ok)
        if ok:
            self._pending_state = None
            self._retry_failures = 0
            self._close_actuation_incident(now_ns)
            return
        self.report.actuation_failures += 1
        self._retry_failures += 1
        self._next_retry_ns = now_ns + policy.backoff_ns(self._retry_failures)
        if self._actuation_incident is None:
            self._actuation_incident = Incident(
                kind="actuation-failure", onset_ns=now_ns,
                detected_ns=now_ns,
                action=("retrying toward prefetchers "
                        + ("enabled" if desired else "disabled")))
            self.report.incidents.append(self._actuation_incident)
            if self.tracer:
                self.tracer.event("incident-open", now_ns, ident=self.ident,
                                  incident="actuation-failure",
                                  onset_ns=now_ns)
        if (policy.max_attempts is not None
                and self._retry_failures >= policy.max_attempts):
            self._actuation_incident.action = (
                f"gave up after {self._retry_failures} attempts; "
                "awaiting controller state change")

    def _close_actuation_incident(self, now_ns: float) -> None:
        if self._actuation_incident is not None:
            self._actuation_incident.recovered_ns = now_ns
            self._actuation_incident.action += "; actuation recovered"
            if self.tracer:
                self.tracer.event(
                    "incident-resolved", now_ns, ident=self.ident,
                    incident="actuation-failure",
                    detected_ns=self._actuation_incident.detected_ns,
                    recovered_ns=now_ns)
            self._actuation_incident = None

    def _supersede_actuation_incident(self) -> None:
        if self._actuation_incident is not None:
            self._actuation_incident.action += "; superseded by new target"
            self._actuation_incident = None

    def _retry_pending(self, now_ns: float) -> None:
        """A dropped sample still retries an actuation that failed earlier."""
        if self._pending_state is not None:
            self._apply(self._pending_state, now_ns)
