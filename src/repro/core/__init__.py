"""Limoncello itself: the paper's contribution.

* :mod:`repro.core.config` — thresholds and timing configuration.
* :mod:`repro.core.controller` — Hard Limoncello's hysteresis state
  machine (Figure 8).
* :mod:`repro.core.actuator` — prefetcher actuation through (simulated)
  model-specific registers, with retry on transient failures.
* :mod:`repro.core.daemon` — the per-socket control loop: sample memory
  bandwidth every second, feed the controller, actuate on decisions.
* :mod:`repro.core.soft` — Soft Limoncello: targeted software prefetch
  injection for data center tax functions, target identification from
  ablation profiles, and the distance/degree tuning loop.
"""

from repro.core.config import LimoncelloConfig, RetryPolicy
from repro.core.controller import (
    ControllerState,
    HardLimoncelloController,
    SingleThresholdController,
)
from repro.core.actuator import (
    CallbackActuator,
    MSRPrefetcherActuator,
    PrefetcherActuator,
)
from repro.core.daemon import DaemonReport, Incident, LimoncelloDaemon
from repro.core.soft import (
    PrefetchDescriptor,
    SoftwarePrefetchInjector,
    TargetSelection,
    TuningResult,
    PrefetchTuner,
    identify_targets,
)

__all__ = [
    "LimoncelloConfig",
    "RetryPolicy",
    "ControllerState",
    "HardLimoncelloController",
    "SingleThresholdController",
    "PrefetcherActuator",
    "MSRPrefetcherActuator",
    "CallbackActuator",
    "LimoncelloDaemon",
    "DaemonReport",
    "Incident",
    "PrefetchDescriptor",
    "SoftwarePrefetchInjector",
    "TargetSelection",
    "identify_targets",
    "PrefetchTuner",
    "TuningResult",
]
