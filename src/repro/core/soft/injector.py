"""The software-prefetch injector: rewrites traces like editing library code.

In production, Soft Limoncello inserts ``prefetcht0`` instructions into
library source (memcpy, compression, hashing, serialization). In this
reproduction the "library" is a trace generator, so insertion means trace
rewriting: the injector detects each targeted function's sequential
streams and inserts :data:`~repro.access.AccessKind.SOFTWARE_PREFETCH`
records ahead of them, honouring the descriptor's distance, degree,
size gate, and clamping.

Because the injector sees the whole stream, it has exactly the knowledge
the paper attributes to software: "we know the exact addresses we want to
prefetch, and we also know how much data should be prefetched."
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.access.record import AccessKind, MemoryAccess
from repro.access.trace import Trace
from repro.core.soft.descriptor import PrefetchDescriptor
from repro.errors import ConfigError
from repro.units import CACHE_LINE_BYTES

#: XORed into the demand PC to form the synthetic prefetch-site PC.
_PREFETCH_PC_TAG = 0x1


@dataclass
class InjectionStats:
    """What the injector did to one trace."""

    streams_seen: int = 0
    streams_instrumented: int = 0
    streams_gated: int = 0
    prefetches_inserted: int = 0
    per_function: Dict[str, int] = field(default_factory=dict)


class _Run:
    """A maximal ascending line-stream of one (function, pc) site."""

    __slots__ = ("start_line", "next_line", "positions")

    def __init__(self, start_line: int, first_index: int) -> None:
        self.start_line = start_line
        self.next_line = start_line
        #: (record index, line offset from start) for each record.
        self.positions: List[Tuple[int, int]] = []
        self.append(first_index, start_line, start_line)

    def append(self, index: int, first_line: int, last_line: int) -> None:
        """Extend the run with one record's line coverage."""
        self.positions.append((index, first_line - self.start_line))
        self.next_line = last_line + CACHE_LINE_BYTES

    @property
    def length_lines(self) -> int:
        """Run length in cache lines."""
        return (self.next_line - self.start_line) // CACHE_LINE_BYTES

    @property
    def length_bytes(self) -> int:
        """Run length in bytes."""
        return self.next_line - self.start_line


class SoftwarePrefetchInjector:
    """Inserts software prefetches into targeted functions' streams."""

    def __init__(self, descriptors: Iterable[PrefetchDescriptor],
                 emit_hints: bool = False) -> None:
        """Args:
            descriptors: One per targeted function.
            emit_hints: When True, emit a single
                :data:`~repro.access.AccessKind.STREAM_HINT` record per
                instrumented stream instead of per-``degree`` prefetch
                instructions — the Section 8.3 interface prototype. The
                descriptor's size gate still applies; distance/degree are
                the hardware engine's business in this mode.
        """
        self._descriptors: Dict[str, PrefetchDescriptor] = {}
        for descriptor in descriptors:
            if descriptor.function in self._descriptors:
                raise ConfigError(
                    f"duplicate descriptor for {descriptor.function!r}")
            self._descriptors[descriptor.function] = descriptor
        self._emit_hints = emit_hints
        self.last_stats: Optional[InjectionStats] = None

    @property
    def functions(self) -> List[str]:
        """Targeted function names, sorted."""
        return sorted(self._descriptors)

    def inject(self, trace: Trace) -> Trace:
        """Return a copy of ``trace`` with prefetch records inserted."""
        runs = self._collect_runs(trace)
        insertions = self._plan_insertions(trace, runs)
        return self._rebuild(trace, insertions)

    # --- pass 1: stream detection ------------------------------------------------

    def _collect_runs(self, trace: Trace) -> List[Tuple[str, int, _Run]]:
        """Maximal ascending runs per (function, pc) site.

        Runs of different sites may interleave freely (memcpy's loads and
        stores, or co-scheduled functions); a site's run breaks when its
        next access is not the line following its previous one.
        """
        active: Dict[Tuple[str, int], _Run] = {}
        closed: List[Tuple[str, int, _Run]] = []
        for index, record in enumerate(trace):
            if record.kind is AccessKind.SOFTWARE_PREFETCH:
                continue
            if record.function not in self._descriptors:
                continue
            key = (record.function, record.pc)
            lines = record.lines_touched()
            first_line, last_line = lines[0], lines[-1]
            run = active.get(key)
            if run is not None and first_line == run.next_line:
                run.append(index, first_line, last_line)
                continue
            if run is not None and first_line == run.next_line - CACHE_LINE_BYTES:
                # Sub-line stride: another access within the run's current
                # last line (e.g. serialize reading 32-byte fields). The
                # stream continues; extend if this record reaches further.
                if last_line >= run.next_line:
                    run.append(index, run.next_line, last_line)
                continue
            if run is not None:
                closed.append((key[0], key[1], run))
            active[key] = _Run(first_line, index)
            active[key].next_line = last_line + CACHE_LINE_BYTES
        for (function, pc), run in active.items():
            closed.append((function, pc, run))
        return closed

    # --- pass 2: planning ---------------------------------------------------------

    def _plan_insertions(self, trace: Trace,
                         runs: List[Tuple[str, int, _Run]]):
        stats = InjectionStats()
        insertions: Dict[int, List[MemoryAccess]] = defaultdict(list)
        for function, pc, run in runs:
            stats.streams_seen += 1
            descriptor = self._descriptors[function]
            if not descriptor.applies_to(run.length_bytes):
                stats.streams_gated += 1
                continue
            stats.streams_instrumented += 1
            inserted = self._instrument_run(descriptor, pc, run, insertions)
            stats.prefetches_inserted += inserted
            stats.per_function[function] = (
                stats.per_function.get(function, 0) + inserted)
        self.last_stats = stats
        return insertions

    def _instrument_run(self, descriptor: PrefetchDescriptor, pc: int,
                        run: _Run, insertions) -> int:
        """Plan prefetches for one stream; returns how many were inserted."""
        if self._emit_hints:
            first_index, _ = run.positions[0]
            insertions[first_index].append(MemoryAccess(
                address=run.start_line, size=run.length_bytes,
                kind=AccessKind.STREAM_HINT,
                pc=pc ^ _PREFETCH_PC_TAG, function=descriptor.function))
            return 1
        degree = descriptor.degree_bytes
        distance = descriptor.distance_bytes
        end = run.length_bytes
        inserted = 0
        position = 0  # walks run.positions
        for offset in range(0, end, degree):
            # Find the record covering this line offset.
            while (position + 1 < len(run.positions)
                   and run.positions[position + 1][1] <= offset):
                position += 1
            index, _ = run.positions[position]
            target = offset + distance
            size = degree
            if descriptor.clamp_to_stream:
                if target >= end:
                    continue
                size = min(degree, end - target)
            insertions[index].append(MemoryAccess(
                address=run.start_line + target, size=size,
                kind=AccessKind.SOFTWARE_PREFETCH,
                pc=pc ^ _PREFETCH_PC_TAG, function=descriptor.function))
            inserted += 1
        return inserted

    # --- pass 3: rebuild ------------------------------------------------------------

    @staticmethod
    def _rebuild(trace: Trace, insertions) -> Trace:
        if not insertions:
            return Trace(trace)
        records: List[MemoryAccess] = []
        for index, record in enumerate(trace):
            records.extend(insertions.get(index, ()))
            records.append(record)
        return Trace(records)
