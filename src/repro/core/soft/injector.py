"""The software-prefetch injector: rewrites traces like editing library code.

In production, Soft Limoncello inserts ``prefetcht0`` instructions into
library source (memcpy, compression, hashing, serialization). In this
reproduction the "library" is a trace generator, so insertion means trace
rewriting: the injector detects each targeted function's sequential
streams and inserts :data:`~repro.access.AccessKind.SOFTWARE_PREFETCH`
records ahead of them, honouring the descriptor's distance, degree,
size gate, and clamping.

Because the injector sees the whole stream, it has exactly the knowledge
the paper attributes to software: "we know the exact addresses we want to
prefetch, and we also know how much data should be prefetched."

Injection runs directly on a trace's compiled columns (run detection,
planning, and the splice all stay in packed int tuples), so a sweep that
re-injects one base trace per (distance, degree) config never materializes
a record. The original record-path implementation is kept verbatim as the
oracle: ``REPRO_SLOW_INJECTOR=1`` forces it, and the equivalence suite
(``tests/test_injector_compiled.py``) proves both paths bit-identical.
"""

from __future__ import annotations

import os
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.access.compiled import CompiledTrace
from repro.access.record import (
    AccessKind,
    KIND_CODES,
    MemoryAccess,
)
from repro.access.trace import Trace
from repro.core.soft.descriptor import PrefetchDescriptor
from repro.errors import ConfigError
from repro.units import CACHE_LINE_BYTES

#: XORed into the demand PC to form the synthetic prefetch-site PC.
_PREFETCH_PC_TAG = 0x1

#: Set to "1" (or "true"/"yes"/"on") to force the record-path injector.
SLOW_INJECTOR_ENV = "REPRO_SLOW_INJECTOR"

_KIND_PREFETCH = KIND_CODES[AccessKind.SOFTWARE_PREFETCH]
_KIND_HINT = KIND_CODES[AccessKind.STREAM_HINT]
_LINE_MASK = ~(CACHE_LINE_BYTES - 1)
_LINE_SHIFT = CACHE_LINE_BYTES.bit_length() - 1


def slow_injector_requested() -> bool:
    """Whether ``REPRO_SLOW_INJECTOR`` forces the record-path injector."""
    return os.environ.get(SLOW_INJECTOR_ENV, "").strip().lower() in (
        "1", "true", "yes", "on")


@dataclass
class InjectionStats:
    """What the injector did to one trace."""

    streams_seen: int = 0
    streams_instrumented: int = 0
    streams_gated: int = 0
    prefetches_inserted: int = 0
    per_function: Dict[str, int] = field(default_factory=dict)


class _Run:
    """A maximal ascending line-stream of one (function, pc) site."""

    __slots__ = ("start_line", "next_line", "positions")

    def __init__(self, start_line: int, first_index: int) -> None:
        self.start_line = start_line
        self.next_line = start_line
        #: (record index, line offset from start) for each record.
        self.positions: List[Tuple[int, int]] = []
        self.append(first_index, start_line, start_line)

    def append(self, index: int, first_line: int, last_line: int) -> None:
        """Extend the run with one record's line coverage."""
        self.positions.append((index, first_line - self.start_line))
        self.next_line = last_line + CACHE_LINE_BYTES

    @property
    def length_lines(self) -> int:
        """Run length in cache lines."""
        return (self.next_line - self.start_line) // CACHE_LINE_BYTES

    @property
    def length_bytes(self) -> int:
        """Run length in bytes."""
        return self.next_line - self.start_line


class SoftwarePrefetchInjector:
    """Inserts software prefetches into targeted functions' streams."""

    def __init__(self, descriptors: Iterable[PrefetchDescriptor],
                 emit_hints: bool = False) -> None:
        """Args:
            descriptors: One per targeted function.
            emit_hints: When True, emit a single
                :data:`~repro.access.AccessKind.STREAM_HINT` record per
                instrumented stream instead of per-``degree`` prefetch
                instructions — the Section 8.3 interface prototype. The
                descriptor's size gate still applies; distance/degree are
                the hardware engine's business in this mode.
        """
        self._descriptors: Dict[str, PrefetchDescriptor] = {}
        for descriptor in descriptors:
            if descriptor.function in self._descriptors:
                raise ConfigError(
                    f"duplicate descriptor for {descriptor.function!r}")
            self._descriptors[descriptor.function] = descriptor
        self._emit_hints = emit_hints
        self.last_stats: Optional[InjectionStats] = None

    @property
    def functions(self) -> List[str]:
        """Targeted function names, sorted."""
        return sorted(self._descriptors)

    def inject(self, trace: Trace) -> Trace:
        """Return a copy of ``trace`` with prefetch records inserted.

        Runs on the trace's compiled columns (free for builder-generated
        traces, cached otherwise) and returns a column-backed trace;
        ``REPRO_SLOW_INJECTOR=1`` forces the original record-path oracle.
        """
        if slow_injector_requested():
            runs = self._collect_runs(trace)
            insertions = self._plan_insertions(trace, runs)
            return self._rebuild(trace, insertions)
        return self._inject_compiled(trace.compile())

    # --- compiled fast path -------------------------------------------------

    def _inject_compiled(self, compiled: CompiledTrace) -> Trace:
        """Columnar injection: identical output to the record path.

        Inserted records only ever land at indices at or after the first
        record of their function's run, so the first-seen interning order
        of function names is unchanged — the output adopts the input
        ``functions`` list as-is and inserted tuples reuse the input fid.
        """
        runs = self._collect_runs_compiled(compiled)
        insertions = self._plan_insertions_compiled(compiled, runs)
        if not insertions:
            return Trace._from_compiled(compiled)
        in_packed = compiled.packed
        out_packed: list = []
        extend = out_packed.extend
        previous = 0
        for index in sorted(insertions):
            extend(in_packed[previous:index])
            extend(insertions[index])
            previous = index
        extend(in_packed[previous:])
        return Trace._from_compiled(CompiledTrace.from_packed(
            out_packed, compiled.functions))

    def _collect_runs_compiled(self, compiled: CompiledTrace):
        """Column twin of :meth:`_collect_runs`: runs keyed ``(fid, pc)``."""
        descriptors = self._descriptors
        targeted = {fid for fid, name in enumerate(compiled.functions)
                    if name in descriptors}
        if not targeted:
            return []
        line_bytes = CACHE_LINE_BYTES
        active: Dict[Tuple[int, int], _Run] = {}
        closed: List[Tuple[int, int, _Run]] = []
        for index, (kind, first_line, extra, pc, _gap, fid, _addr,
                    _size) in enumerate(compiled.packed):
            if kind == _KIND_PREFETCH or fid not in targeted:
                continue
            key = (fid, pc)
            last_line = first_line + extra * line_bytes
            run = active.get(key)
            if run is not None and first_line == run.next_line:
                run.append(index, first_line, last_line)
                continue
            if run is not None and first_line == run.next_line - line_bytes:
                # Sub-line stride: another access within the run's current
                # last line (e.g. serialize reading 32-byte fields). The
                # stream continues; extend if this record reaches further.
                if last_line >= run.next_line:
                    run.append(index, run.next_line, last_line)
                continue
            if run is not None:
                closed.append((key[0], key[1], run))
            active[key] = _Run(first_line, index)
            active[key].next_line = last_line + line_bytes
        for (fid, pc), run in active.items():
            closed.append((fid, pc, run))
        return closed

    def _plan_insertions_compiled(self, compiled: CompiledTrace, runs):
        """Column twin of :meth:`_plan_insertions`: plans packed tuples."""
        functions = compiled.functions
        stats = InjectionStats()
        insertions: Dict[int, list] = defaultdict(list)
        for fid, pc, run in runs:
            stats.streams_seen += 1
            function = functions[fid]
            descriptor = self._descriptors[function]
            if not descriptor.applies_to(run.length_bytes):
                stats.streams_gated += 1
                continue
            stats.streams_instrumented += 1
            inserted = self._instrument_run_compiled(
                descriptor, fid, pc, run, insertions)
            stats.prefetches_inserted += inserted
            stats.per_function[function] = (
                stats.per_function.get(function, 0) + inserted)
        self.last_stats = stats
        return insertions

    def _instrument_run_compiled(self, descriptor: PrefetchDescriptor,
                                 fid: int, pc: int, run: _Run,
                                 insertions) -> int:
        """Column twin of :meth:`_instrument_run` (packed-tuple output)."""
        tagged_pc = pc ^ _PREFETCH_PC_TAG
        if self._emit_hints:
            first_index, _ = run.positions[0]
            start = run.start_line
            size = run.length_bytes
            extra = (((start + size - 1) & _LINE_MASK) - start) >> _LINE_SHIFT
            insertions[first_index].append(
                (_KIND_HINT, start, extra, tagged_pc, 0, fid, start, size))
            return 1
        degree = descriptor.degree_bytes
        distance = descriptor.distance_bytes
        clamp = descriptor.clamp_to_stream
        start_line = run.start_line
        positions = run.positions
        last_position = len(positions) - 1
        end = run.length_bytes
        inserted = 0
        position = 0  # walks run.positions
        for offset in range(0, end, degree):
            # Find the record covering this line offset.
            while (position < last_position
                   and positions[position + 1][1] <= offset):
                position += 1
            index = positions[position][0]
            target = offset + distance
            size = degree
            if clamp:
                if target >= end:
                    continue
                size = min(degree, end - target)
            address = start_line + target
            line = address & _LINE_MASK
            extra = (((address + size - 1) & _LINE_MASK) - line) >> _LINE_SHIFT
            insertions[index].append(
                (_KIND_PREFETCH, line, extra, tagged_pc, 0, fid,
                 address, size))
            inserted += 1
        return inserted

    # --- record-path oracle -------------------------------------------------
    #
    # The original implementation, kept verbatim (modulo the trusted
    # constructor in _rebuild). REPRO_SLOW_INJECTOR=1 routes inject()
    # here; the equivalence suite diffs the two paths record for record.

    # --- pass 1: stream detection ------------------------------------------------

    def _collect_runs(self, trace: Trace) -> List[Tuple[str, int, _Run]]:
        """Maximal ascending runs per (function, pc) site.

        Runs of different sites may interleave freely (memcpy's loads and
        stores, or co-scheduled functions); a site's run breaks when its
        next access is not the line following its previous one.
        """
        active: Dict[Tuple[str, int], _Run] = {}
        closed: List[Tuple[str, int, _Run]] = []
        for index, record in enumerate(trace):
            if record.kind is AccessKind.SOFTWARE_PREFETCH:
                continue
            if record.function not in self._descriptors:
                continue
            key = (record.function, record.pc)
            lines = record.lines_touched()
            first_line, last_line = lines[0], lines[-1]
            run = active.get(key)
            if run is not None and first_line == run.next_line:
                run.append(index, first_line, last_line)
                continue
            if run is not None and first_line == run.next_line - CACHE_LINE_BYTES:
                # Sub-line stride: another access within the run's current
                # last line (e.g. serialize reading 32-byte fields). The
                # stream continues; extend if this record reaches further.
                if last_line >= run.next_line:
                    run.append(index, run.next_line, last_line)
                continue
            if run is not None:
                closed.append((key[0], key[1], run))
            active[key] = _Run(first_line, index)
            active[key].next_line = last_line + CACHE_LINE_BYTES
        for (function, pc), run in active.items():
            closed.append((function, pc, run))
        return closed

    # --- pass 2: planning ---------------------------------------------------------

    def _plan_insertions(self, trace: Trace,
                         runs: List[Tuple[str, int, _Run]]):
        stats = InjectionStats()
        insertions: Dict[int, List[MemoryAccess]] = defaultdict(list)
        for function, pc, run in runs:
            stats.streams_seen += 1
            descriptor = self._descriptors[function]
            if not descriptor.applies_to(run.length_bytes):
                stats.streams_gated += 1
                continue
            stats.streams_instrumented += 1
            inserted = self._instrument_run(descriptor, pc, run, insertions)
            stats.prefetches_inserted += inserted
            stats.per_function[function] = (
                stats.per_function.get(function, 0) + inserted)
        self.last_stats = stats
        return insertions

    def _instrument_run(self, descriptor: PrefetchDescriptor, pc: int,
                        run: _Run, insertions) -> int:
        """Plan prefetches for one stream; returns how many were inserted."""
        if self._emit_hints:
            first_index, _ = run.positions[0]
            insertions[first_index].append(MemoryAccess(
                address=run.start_line, size=run.length_bytes,
                kind=AccessKind.STREAM_HINT,
                pc=pc ^ _PREFETCH_PC_TAG, function=descriptor.function))
            return 1
        degree = descriptor.degree_bytes
        distance = descriptor.distance_bytes
        end = run.length_bytes
        inserted = 0
        position = 0  # walks run.positions
        for offset in range(0, end, degree):
            # Find the record covering this line offset.
            while (position + 1 < len(run.positions)
                   and run.positions[position + 1][1] <= offset):
                position += 1
            index, _ = run.positions[position]
            target = offset + distance
            size = degree
            if descriptor.clamp_to_stream:
                if target >= end:
                    continue
                size = min(degree, end - target)
            insertions[index].append(MemoryAccess(
                address=run.start_line + target, size=size,
                kind=AccessKind.SOFTWARE_PREFETCH,
                pc=pc ^ _PREFETCH_PC_TAG, function=descriptor.function))
            inserted += 1
        return inserted

    # --- pass 3: rebuild ------------------------------------------------------------

    @staticmethod
    def _rebuild(trace: Trace, insertions) -> Trace:
        if not insertions:
            return Trace._trusted(list(trace))
        records: List[MemoryAccess] = []
        for index, record in enumerate(trace):
            records.extend(insertions.get(index, ()))
            records.append(record)
        return Trace._trusted(records)
