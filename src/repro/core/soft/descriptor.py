"""Prefetch descriptors: the Section 4.2 design space as data.

A descriptor pins down the three key parameters for one insertion site:

* **address** — which function's streams to prefetch (we know the stream
  extent, so the address is "current position + distance");
* **distance** — how far ahead of the access stream to fetch (Figure 13);
* **degree** — how many bytes each prefetch instruction covers.

Plus the deployment learnings of Section 4.3: a minimum-call-size gate
(small copies finish before any prefetch can help) and clamping to the
object's end (software knows exactly how much data will be accessed).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigError
from repro.units import CACHE_LINE_BYTES


@dataclass(frozen=True)
class PrefetchDescriptor:
    """One software-prefetch insertion policy for one function.

    Attributes:
        function: Trace function name whose streams get prefetched.
        distance_bytes: Lead of the prefetch over the demand stream.
        degree_bytes: Bytes fetched per prefetch instruction.
        min_size_bytes: Streams shorter than this are left alone — the
            size gate that removed the small-copy regressions (Section 4.3).
        clamp_to_stream: Never prefetch past the stream's end. True for
            production descriptors; the raw design-space sweeps of
            Figure 15 disable it to expose the overshoot cost.
    """

    function: str
    distance_bytes: int = 512
    degree_bytes: int = 256
    min_size_bytes: int = 0
    clamp_to_stream: bool = True

    def __post_init__(self) -> None:
        if not self.function:
            raise ConfigError("descriptor needs a function name")
        if self.distance_bytes < CACHE_LINE_BYTES:
            raise ConfigError(
                f"distance must be at least one line, got {self.distance_bytes}")
        if self.degree_bytes < CACHE_LINE_BYTES:
            raise ConfigError(
                f"degree must be at least one line, got {self.degree_bytes}")
        if self.distance_bytes % CACHE_LINE_BYTES:
            raise ConfigError("distance must be line-aligned")
        if self.degree_bytes % CACHE_LINE_BYTES:
            raise ConfigError("degree must be line-aligned")
        if self.min_size_bytes < 0:
            raise ConfigError("min_size_bytes cannot be negative")

    @property
    def distance_lines(self) -> int:
        """Prefetch distance in cache lines."""
        return self.distance_bytes // CACHE_LINE_BYTES

    @property
    def degree_lines(self) -> int:
        """Prefetch degree in cache lines."""
        return self.degree_bytes // CACHE_LINE_BYTES

    def with_distance(self, distance_bytes: int) -> "PrefetchDescriptor":
        """A copy with a different prefetch distance."""
        return replace(self, distance_bytes=distance_bytes)

    def with_degree(self, degree_bytes: int) -> "PrefetchDescriptor":
        """A copy with a different prefetch degree."""
        return replace(self, degree_bytes=degree_bytes)

    def applies_to(self, stream_bytes: int) -> bool:
        """Whether a stream of this length passes the size gate."""
        return stream_bytes >= self.min_size_bytes

    def label(self) -> str:
        """Human-readable descriptor summary."""
        return (f"{self.function}: d={self.distance_bytes}B "
                f"g={self.degree_bytes}B gate>={self.min_size_bytes}B"
                f"{'' if self.clamp_to_stream else ' unclamped'}")
