"""Soft Limoncello: targeted software prefetching (Section 4).

The workflow mirrors the paper's:

1. :func:`identify_targets` ranks functions by how much they regress
   (cycles and LLC MPKI) when hardware prefetchers are ablated —
   surfacing the data center tax functions of Figure 11.
2. :class:`PrefetchDescriptor` captures a prefetch insertion's design
   point: distance, degree, and a call-size gate (Section 4.2/4.3).
3. :class:`SoftwarePrefetchInjector` rewrites traces, inserting prefetch
   records into the targeted functions' streams — the stand-in for
   editing the library source.
4. :class:`PrefetchTuner` sweeps distances and degrees on
   microbenchmarks and validates winners on load tests (Figure 15).
"""

from repro.core.soft.descriptor import PrefetchDescriptor
from repro.core.soft.injector import SoftwarePrefetchInjector
from repro.core.soft.targets import TargetSelection, identify_targets
from repro.core.soft.tuner import PrefetchTuner, SweepPoint, TuningResult

__all__ = [
    "PrefetchDescriptor",
    "SoftwarePrefetchInjector",
    "TargetSelection",
    "identify_targets",
    "PrefetchTuner",
    "SweepPoint",
    "TuningResult",
]
