"""The distance/degree tuning loop (Section 4.2, Figure 15).

"We first use these benchmarks to sweep a chosen set of prefetching
addresses, distances, and degrees. Then we select the best performing
parameters for load testing [...]. If either microbenchmarks or load tests
fail to return positive performance improvements, we choose a different
set of prefetching addresses, degrees, or distances for testing."

:class:`PrefetchTuner` implements exactly that loop over two callables:
a *microbenchmark* (fast, sweepable) and a *load test* (expensive,
authoritative), each mapping a descriptor to a fractional speedup.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from repro.core.soft.descriptor import PrefetchDescriptor
from repro.errors import ConfigError

#: Maps a candidate descriptor to fractional speedup vs. no-SW-prefetch
#: (+0.10 means 10% faster).
BenchmarkFn = Callable[[PrefetchDescriptor], float]


@dataclass(frozen=True)
class SweepPoint:
    """One microbenchmark measurement in the sweep grid."""

    descriptor: PrefetchDescriptor
    speedup: float


@dataclass
class TuningResult:
    """Outcome of a tuning run for one function."""

    function: str
    sweep: List[SweepPoint] = field(default_factory=list)
    #: Candidates that won the sweep but failed load testing.
    rejected: List[SweepPoint] = field(default_factory=list)
    chosen: Optional[PrefetchDescriptor] = None
    chosen_microbench_speedup: float = 0.0
    chosen_loadtest_speedup: float = 0.0

    @property
    def succeeded(self) -> bool:
        """Whether a descriptor survived load testing."""
        return self.chosen is not None

    def best_by_distance(self):
        """distance -> best sweep point, for plotting Figure 15a."""
        best = {}
        for point in self.sweep:
            distance = point.descriptor.distance_bytes
            if distance not in best or point.speedup > best[distance].speedup:
                best[distance] = point
        return best


class PrefetchTuner:
    """Sweeps the descriptor grid, validates winners under load."""

    def __init__(self, microbenchmark: BenchmarkFn,
                 loadtest: BenchmarkFn,
                 min_speedup: float = 0.0,
                 max_candidates: int = 5) -> None:
        if max_candidates < 1:
            raise ConfigError("need at least one candidate")
        self._microbenchmark = microbenchmark
        self._loadtest = loadtest
        self._min_speedup = min_speedup
        self._max_candidates = max_candidates

    def tune(self, base: PrefetchDescriptor,
             distances: Sequence[int],
             degrees: Sequence[int]) -> TuningResult:
        """Run the sweep-then-validate loop for one function.

        Args:
            base: Template descriptor (function name, size gate, clamping).
            distances: Candidate prefetch distances, bytes.
            degrees: Candidate prefetch degrees, bytes.
        """
        if not distances or not degrees:
            raise ConfigError("need at least one distance and one degree")
        result = TuningResult(function=base.function)
        for distance in distances:
            for degree in degrees:
                candidate = base.with_distance(distance).with_degree(degree)
                speedup = self._microbenchmark(candidate)
                result.sweep.append(SweepPoint(candidate, speedup))

        # Paper flow: best microbench candidates go to load testing; a
        # candidate that fails there is discarded and the next one tried.
        ranked = sorted(result.sweep, key=lambda p: p.speedup, reverse=True)
        for point in ranked[:self._max_candidates]:
            if point.speedup <= self._min_speedup:
                break  # nothing left that even helps the microbenchmark
            load_speedup = self._loadtest(point.descriptor)
            if load_speedup > self._min_speedup:
                result.chosen = point.descriptor
                result.chosen_microbench_speedup = point.speedup
                result.chosen_loadtest_speedup = load_speedup
                return result
            result.rejected.append(point)
        return result
